#!/usr/bin/env bash
# Regenerate every figure/table of the evaluation.
#
# Each binary writes its CSV into results/ and, via the run-report layer
# (euno-sim::report, DESIGN.md §11), a BENCH_<figure>.json next to it with
# full provenance: workload spec, θ, thread count, seed, policy, cost-model
# constants, git describe, per-cause abort counts, stage counters and
# latency quantiles for every run.  Afterwards every report is validated
# against the schema by the report_check binary — a drift fails the script.
#
# Usage: scripts/bench.sh [scale]
#   scale defaults to $EUNO_BENCH_SCALE, then 0.3 — the scale the recorded
#   results in results/ were produced with (see results/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-${EUNO_BENCH_SCALE:-0.3}}"
export EUNO_BENCH_SCALE="$SCALE"
OUT=results
LOG="$OUT/all_figures.log"
mkdir -p "$OUT"

cargo build --release -p euno-bench

run() { # run <binary> <csv-name>
    local bin="$1" csv="$2"
    echo "=== $bin ===" | tee -a "$LOG"
    cargo run --release -q -p euno-bench --bin "$bin" -- --csv "$OUT/$csv" \
        2>&1 | tee -a "$LOG"
}

run_rtm() { # run_rtm <binary> <csv-name> — built with the hw-rtm feature
            # so the engine backend axis gains engine-rtm rows on TSX
            # hosts (runtime-gated: a no-op column elsewhere).
    local bin="$1" csv="$2"
    echo "=== $bin (hw-rtm) ===" | tee -a "$LOG"
    cargo run --release -q -p euno-bench --features hw-rtm --bin "$bin" -- \
        --csv "$OUT/$csv" 2>&1 | tee -a "$LOG"
}

: >"$LOG"
echo "# EUNO_BENCH_SCALE=$SCALE  $(date -u +%Y-%m-%dT%H:%M:%SZ)" | tee -a "$LOG"
run fig01_motivation fig01_motivation.csv
run fig02_abort_breakdown fig02_abort_breakdown.csv
run fig08_throughput fig08_throughput.csv
run fig09_abort_comparison fig09_abort_comparison.csv
run fig10_scalability fig10_scalability.csv
run fig11_getput_ratio fig11_getput_ratio.csv
run fig12_distributions fig12_distributions.csv
run fig13_ablation fig13_ablation.csv
run fig13_threepath fig13_threepath.csv
run fig14_timeline fig14_timeline.csv
run ycsb_suite ycsb_suite.csv
run mem_overhead mem_overhead.csv
run sensitivity sensitivity.csv
run_rtm engine_bench engine.csv

echo | tee -a "$LOG"
echo "=== report_check ===" | tee -a "$LOG"
cargo run --release -q -p euno-bench --bin report_check -- "$OUT"/BENCH_*.json \
    | tee -a "$LOG"
echo "all run reports validate against the DESIGN.md §11 schema" | tee -a "$LOG"
