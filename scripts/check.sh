#!/usr/bin/env bash
# Repo gate: formatting, lints, then the tier-1 test suite.
# Usage: scripts/check.sh [--fix]   (--fix runs `cargo fmt` instead of --check)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt --all
else
    cargo fmt --all -- --check
fi

cargo clippy --workspace --all-targets -- -D warnings

cargo build --release
cargo test -q

# Smoke-bench: one tiny figure run covering all four trees, then validate
# the emitted run report against the DESIGN.md §11 schema.  Catches a
# broken measurement pipeline (empty latency, missing report keys) that
# unit tests alone would miss.
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cargo run --release -q -p euno-bench --bin fig08_throughput -- \
    --csv "$SMOKE/fig08.csv" --ops 300 --keys 20000 --threads 8 >/dev/null
cargo run --release -q -p euno-bench --bin report_check -- \
    "$SMOKE/BENCH_fig08.json"
echo "smoke-bench report OK"
