#!/usr/bin/env bash
# Repo gate: formatting, lints, then the tier-1 test suite.
# Usage: scripts/check.sh [--fix]   (--fix runs `cargo fmt` instead of --check)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt --all
else
    cargo fmt --all -- --check
fi

cargo clippy --workspace --all-targets -- -D warnings

cargo build --release
cargo test -q
