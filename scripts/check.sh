#!/usr/bin/env bash
# Repo gate: formatting, lints, then the tier-1 test suite.
# Usage: scripts/check.sh [--fix]   (--fix runs `cargo fmt` instead of --check)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt --all
else
    cargo fmt --all -- --check
fi

cargo clippy --workspace --all-targets -- -D warnings

cargo build --release
cargo test -q

# hw-rtm gate: the RTM backend is cfg'd out of the default build and
# would bit-rot silently — build and test it explicitly.  Actual RTM
# execution stays runtime-gated on rtm_supported(): on CPUs without TSX
# these tests run the same assertions through the software episodes.
cargo build --release --features hw-rtm
cargo test -q -p euno-htm --features hw-rtm

# Smoke-bench: one tiny figure run covering all four trees, then validate
# the emitted run report against the DESIGN.md §11 schema.  Catches a
# broken measurement pipeline (empty latency, missing report keys) that
# unit tests alone would miss.
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cargo run --release -q -p euno-bench --bin fig08_throughput -- \
    --csv "$SMOKE/fig08.csv" --ops 300 --keys 20000 --threads 8 >/dev/null
cargo run --release -q -p euno-bench --bin report_check -- \
    "$SMOKE/BENCH_fig08.json"
echo "smoke-bench report OK"

# Trace smoke: the same figure with tracing + profiling on.  The report
# must re-validate with its new per-run `profile` sections, and the
# Chrome trace export must round-trip through the in-tree JSON parser
# (DESIGN.md §13).  A small ring keeps the export cheap.
cargo run --release -q -p euno-bench --bin fig08_throughput -- \
    --csv "$SMOKE/fig08t.csv" --ops 300 --keys 20000 --threads 8 \
    --profile --trace "$SMOKE/trace.json" --trace-capacity 2048 >/dev/null
cargo run --release -q -p euno-bench --bin report_check -- \
    "$SMOKE/BENCH_fig08.json" | grep -E "profiled=[1-9]"
cargo run --release -q -p euno-bench --bin report_check -- \
    --trace "$SMOKE/trace.json"
test -s "$SMOKE/trace.json.folded"
echo "smoke-trace report + export OK"

# Engine smoke: a tiny wall-clock run of the episode machinery itself
# (raw scenarios + the tree workload, virtual and concurrent modes), then
# schema-validate its report.  Catches hot-path regressions that break the
# bench harness rather than the trees — throughput here is NOT judged
# (wall-clock numbers are meaningless at smoke sizes), only that every
# scenario completes and emits a well-formed report.
cargo run --release -q -p euno-bench --bin engine_bench -- \
    --csv "$SMOKE/engine.csv" --ops 2000 >/dev/null
cargo run --release -q -p euno-bench --bin report_check -- \
    "$SMOKE/BENCH_engine.json"
echo "smoke-engine report OK"

# Smoke-stm: the TL2 software backend on real threads.  The engine bench
# must emit its engine-stm rows (the backend axis is load-bearing for
# EXPERIMENTS.md), and the dedicated concurrent-correctness suites — hot
# cell, permuted commit orders, transfer invariant, commit-path ABA —
# must pass at their checked-in sizes.
grep -q "engine-stm" "$SMOKE/engine.csv" \
    || { echo "smoke-stm: engine-stm rows missing from engine bench"; exit 1; }
cargo test -q -p euno-htm --test tl2_stm --test aba_regression
echo "smoke-stm (TL2 backend rows + concurrent suites) OK"

# Three-path smoke: the abort-storm ablation at a tiny scale, schema
# validation of its report, and a sanity grep that the middle path
# actually engaged (a nonzero middle rate on the three-path HTM-B+Tree
# rows).  Catches a silently dead middle path — unit tests drive the
# executor directly, but only this figure exercises footprints end to
# end through the trees.
EUNO_BENCH_SCALE=0.08 cargo run --release -q -p euno-bench --bin fig13_threepath -- \
    --csv "$SMOKE/fig13tp.csv" | tee "$SMOKE/fig13tp.out"
grep -E "^HTM-B\+Tree/3path +[0-9.]+ +[0-9.]+ +0\.[0-9]*[1-9]" "$SMOKE/fig13tp.out" >/dev/null \
    || { echo "three-path smoke: middle path never engaged"; exit 1; }
cargo run --release -q -p euno-bench --bin report_check -- \
    "$SMOKE/BENCH_fig13_threepath.json"
echo "smoke-threepath report OK"

# Metrics smoke: a tiny Figure 14 run (rotating-hotspot timeline) must
# quantify an adaptation lag for at least one programmed shift, emit a
# schema-v3 report with its timeseries sections (validated by
# report_check) and the JSON-lines export next to the CSV; then the
# counting-allocator harness asserts the sampling hot path stays
# allocation-free (the "always-on, low-overhead" contract of DESIGN.md
# §14).
EUNO_BENCH_SCALE=0.1 cargo run --release -q -p euno-bench --bin fig14_timeline -- \
    --csv "$SMOKE/fig14.csv" >"$SMOKE/fig14.out"
grep -qE "answered [1-9]+/" "$SMOKE/fig14.out" \
    || { echo "smoke-metrics: no adaptation lag quantified"; exit 1; }
cargo run --release -q -p euno-bench --bin report_check -- \
    "$SMOKE/BENCH_fig14.json"
test -s "$SMOKE/fig14.jsonl"
cargo test -q -p euno-metrics --test zero_alloc_sample
echo "smoke-metrics (fig14 timeline + schema v3 + zero-alloc sampler) OK"

# Concurrent-correctness stage: real threads, recorded histories, the
# linearizability oracle, and structural audits over all four trees.
# Fixed seed for reproducibility; the wall-clock cap keeps the stage
# time-boxed (~5 s of traffic) on slow machines.  On violation the stress
# binary exits nonzero and prints the reproducing command line.
cargo run --release -q -p euno-check --bin stress -- \
    --threads 4 --ops 8000 --seed 20170204 --keys 512 --duration 5
echo "stress + linearizability check OK"

# Abort-storm stress: the same oracle under the --storm schedule (8
# threads hammering 8 keys), the interleaving that drives the executor
# onto its middle path on real threads whenever the timing allows it.
cargo run --release -q -p euno-check --bin stress -- \
    --storm --ops 4000 --seed 20170204 --duration 5
echo "storm stress + linearizability check OK"

# Read-path smoke: the --churn schedule (delete-heavy mix with the
# maintenance thread merging and retiring leaves under live readers)
# over both Euno variants, judged by the linearizability oracle — the
# schedule that exercises epoch reclamation against the episode-free
# optimistic read path.  Then a tiny read-mostly YCSB cell (workload B,
# 95 % gets) confirming the Euno-ReadOpt system is wired through the
# bench surface and emits a row.
cargo run --release -q -p euno-check --bin stress -- \
    --churn --ops 3000 --seed 20170204 --duration 5 --tree euno
EUNO_BENCH_SCALE=0.05 cargo run --release -q -p euno-bench --bin ycsb_suite -- \
    --threads 8 --csv "$SMOKE/ycsb.csv" >"$SMOKE/ycsb.out"
grep -q "Euno-ReadOpt" "$SMOKE/ycsb.out" \
    || { echo "read-path smoke: Euno-ReadOpt row missing"; exit 1; }
echo "smoke-readpath (churn stress + read-mostly bench) OK"
