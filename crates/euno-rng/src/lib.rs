//! # euno-rng — deterministic PRNG for the Eunomia workspace
//!
//! A self-contained replacement for the tiny slice of the `rand` crate
//! API this workspace uses, so the whole reproduction builds with no
//! external dependencies. The generator is xoshiro256++ (Blackman &
//! Vigna), seeded through SplitMix64 — the same construction `rand`'s
//! `SmallRng` uses on 64-bit targets: fast, tiny state, and more than
//! adequate statistical quality for workload generation and scheduling
//! jitter (nothing here is cryptographic).
//!
//! The API mirrors `rand` where the workspace touches it:
//!
//! * [`SmallRng::seed_from_u64`] (also via the [`SeedableRng`] trait),
//! * [`Rng::gen`] for `f64`/`u64`/`u32`,
//! * [`Rng::gen_range`] over half-open integer ranges,
//! * [`Rng::gen_bool`],
//! * generic `R: Rng` bounds for caller-supplied generators.

/// Sources of raw 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Values drawable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased-enough bounded sample via the widening-multiply reduction
/// (Lemire); deterministic and branch-free, which matters more here than
/// the ~2^-64 modulo bias it retains.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
    )*};
}

int_range!(u64, u32, u16, u8, usize);

/// The user-facing RNG methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniform value of an implementing type (`f64` is `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a half-open integer range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a 64-bit seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: the recommended seed expander for xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ — small-state, fast, solid equidistribution.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one degenerate orbit; SplitMix64 cannot
        // produce four zero outputs in a row, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng::seed_from_u64(seed)
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// `rand`-compatible module path (`euno_rng::rngs::SmallRng`).
pub mod rngs {
    pub use crate::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds_for_every_width() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(10u64..17);
            assert!((10..17).contains(&a));
            let b = rng.gen_range(0usize..3);
            assert!(b < 3);
            let c = rng.gen_range(5u32..6);
            assert_eq!(c, 5, "single-element range");
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(3u64..3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.3).abs() < 0.01, "p=0.3 observed {f}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn generic_rng_bound_works_like_rand() {
        fn sample_mean<R: Rng>(rng: &mut R) -> f64 {
            (0..1000).map(|_| rng.gen::<f64>()).sum::<f64>() / 1000.0
        }
        let mut rng = SmallRng::seed_from_u64(17);
        let m = sample_mean(&mut rng);
        assert!((m - 0.5).abs() < 0.05);
    }

    #[test]
    fn known_answer_xoshiro256pp() {
        // Spot-check the raw generator against the reference
        // implementation's first outputs for state {1, 2, 3, 4}.
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }
}
