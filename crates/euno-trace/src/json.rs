//! The in-tree JSON value type, writer and parser.
//!
//! The container's crate registry is unreachable (DESIGN.md §6), so no
//! serde: this minimal implementation serves both the run-report
//! pipeline (`euno-sim` re-exports it) and the Chrome trace exporter in
//! this crate. It lives here — the lowest crate in the workspace graph —
//! so every layer can write and validate JSON without a dependency
//! cycle.

/// A minimal JSON document tree. Numbers are `f64` (every counter this
/// repo emits fits 2^53 with room to spare); integral values are written
/// without a fractional part.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn u64(v: u64) -> Json {
        debug_assert!(v < (1u64 << 53), "u64 {v} exceeds exact f64 range");
        Json::Num(v as f64)
    }

    /// Object-field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integral-number lookup: `Some` only for non-negative whole values
    /// within the exact-`f64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation (human-diffable reports).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize on one line with no indentation — the JSON-lines record
    /// form (`metrics_jsonl`), where one object per physical line is the
    /// framing.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => Self::write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (n, item) in items.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (n, (k, v)) in fields.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    Self::write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null"); // JSON has no NaN/Inf
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => Self::write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Obj(_) | Json::Arr(_)));
                out.push('[');
                for (n, item) in items.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    if !scalar {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    } else if n > 0 {
                        out.push(' ');
                    }
                    item.write(out, indent + 1);
                }
                if !scalar {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (n, (k, v)) in fields.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    Self::write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parse a JSON document (strict enough for round-tripping our own
    /// reports and validating them in CI).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one step. UTF-8 continuation bytes are >= 0x80, so
                    // a byte-wise scan for '"' and '\\' never splits a
                    // multi-byte scalar, and the input arrived as a &str so
                    // the run re-validates cheaply.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    s.push_str(run);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Arr(vec![Json::u64(7), Json::Null])),
            ("c \"quoted\"\n".into(), Json::str("näïve\tstring")),
            ("d".into(), Json::Bool(false)),
            ("e".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,,]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_serialize_exactly() {
        let text = Json::u64(9_007_199_254_740_992 >> 1).to_pretty();
        assert_eq!(text.trim(), "4503599627370496");
        // Non-finite values degrade to null instead of emitting invalid JSON.
        assert_eq!(Json::Num(f64::NAN).to_pretty().trim(), "null");
    }
}
