//! Trace exporters: Chrome trace-event JSON and a flamegraph-style
//! folded rollup.
//!
//! The Chrome format (one object per event, `ph` phase letter, `ts`
//! timestamp) loads directly into Perfetto / `chrome://tracing`.
//! Timestamps are virtual cycles written into the `ts` microsecond
//! field — absolute units don't matter for inspection, relative spans
//! do; `otherData.clock` records the convention. Episodes and client
//! operations become `B`/`E` duration pairs (per-thread event order is
//! the ring order, so pairing is well-defined); waits whose length is
//! known at emission (backoff, lock wait, fallback wait) become `X`
//! complete events ending at the emission timestamp; everything else is
//! an instant.
//!
//! The folded rollup is the classic `stack;frame value` format: one
//! line per distinct stack, cycle-weighted where the event stream
//! carries durations, count-weighted otherwise — small enough to eyeball
//! in CI logs, structured enough for any flamegraph renderer.

use std::collections::BTreeMap;

use euno_metrics::{Counter, FlipEvent, Gauge, TimeSeries};

use crate::event::{codes, EventKind};
use crate::json::Json;
use crate::ring::ThreadTrace;

fn field(k: &str, v: Json) -> (String, Json) {
    (k.to_string(), v)
}

fn chrome_event(name: &str, ph: &str, ts: u64, tid: u32, args: Vec<(String, Json)>) -> Json {
    let mut fields = vec![
        field("name", Json::str(name)),
        field("ph", Json::str(ph)),
        field("ts", Json::u64(ts)),
        field("pid", Json::u64(0)),
        field("tid", Json::u64(u64::from(tid))),
    ];
    if ph == "i" {
        // Thread-scoped instant: renders as a tick on the thread track.
        fields.push(field("s", Json::str("t")));
    }
    if !args.is_empty() {
        fields.push(field("args", Json::Obj(args)));
    }
    Json::Obj(fields)
}

fn span_event(name: &str, end_ts: u64, dur: u64, tid: u32) -> Json {
    let mut ev = chrome_event(name, "X", end_ts.saturating_sub(dur), tid, vec![]);
    if let Json::Obj(fields) = &mut ev {
        fields.push(field("dur", Json::u64(dur.max(1))));
    }
    ev
}

fn hex(addr: u64) -> Json {
    Json::str(format!("{addr:#x}"))
}

/// Build a Chrome trace-event document from finished thread traces.
pub fn chrome_trace(traces: &[ThreadTrace]) -> Json {
    let mut events = Vec::new();
    for t in traces {
        events.push(chrome_event(
            "thread_name",
            "M",
            0,
            t.thread,
            vec![field("name", Json::str(format!("thread {}", t.thread)))],
        ));
        for ev in &t.events {
            let tid = t.thread;
            match ev.kind {
                EventKind::EpisodeBegin { kind } => {
                    events.push(chrome_event(
                        codes::episode_name(kind),
                        "B",
                        ev.ts,
                        tid,
                        vec![],
                    ));
                }
                EventKind::EpisodeCommit { kind } => {
                    events.push(chrome_event(
                        codes::episode_name(kind),
                        "E",
                        ev.ts,
                        tid,
                        vec![field("outcome", Json::str("commit"))],
                    ));
                }
                EventKind::EpisodeAbort {
                    kind,
                    cause,
                    line_addr,
                } => {
                    events.push(chrome_event(
                        codes::episode_name(kind),
                        "E",
                        ev.ts,
                        tid,
                        vec![field("outcome", Json::str("abort"))],
                    ));
                    let mut args = vec![field("cause", Json::str(codes::cause_name(cause)))];
                    if line_addr != 0 {
                        args.push(field("line", hex(line_addr)));
                    }
                    events.push(chrome_event("abort", "i", ev.ts, tid, args));
                }
                EventKind::Backoff { cycles } => {
                    events.push(span_event("backoff", ev.ts, cycles, tid));
                }
                EventKind::FallbackWait { cycles } => {
                    events.push(span_event("fallback_wait", ev.ts, cycles, tid));
                }
                EventKind::MiddleWait { cycles } => {
                    events.push(span_event("middle_wait", ev.ts, cycles, tid));
                }
                EventKind::LockAcquire { addr, wait_cycles } => {
                    if wait_cycles > 0 {
                        events.push(span_event("lock_wait", ev.ts, wait_cycles, tid));
                    }
                    events.push(chrome_event(
                        "lock_acquire",
                        "i",
                        ev.ts,
                        tid,
                        vec![field("lock", hex(addr))],
                    ));
                }
                EventKind::LockRelease { addr } => {
                    events.push(chrome_event(
                        "lock_release",
                        "i",
                        ev.ts,
                        tid,
                        vec![field("lock", hex(addr))],
                    ));
                }
                EventKind::CcmFlip { addr, bypass } => {
                    events.push(chrome_event(
                        "ccm_bypass_flip",
                        "i",
                        ev.ts,
                        tid,
                        vec![field("ccm", hex(addr)), field("bypass", Json::Bool(bypass))],
                    ));
                }
                EventKind::Split { left, right } => {
                    events.push(chrome_event(
                        "split",
                        "i",
                        ev.ts,
                        tid,
                        vec![field("left", hex(left)), field("right", hex(right))],
                    ));
                }
                EventKind::Merge { left, right } => {
                    events.push(chrome_event(
                        "merge",
                        "i",
                        ev.ts,
                        tid,
                        vec![field("left", hex(left)), field("right", hex(right))],
                    ));
                }
                EventKind::Reorg { leaf } => {
                    events.push(chrome_event(
                        "reorg",
                        "i",
                        ev.ts,
                        tid,
                        vec![field("leaf", hex(leaf))],
                    ));
                }
                EventKind::Maintain { merges } => {
                    events.push(chrome_event(
                        "maintain",
                        "i",
                        ev.ts,
                        tid,
                        vec![field("merges", Json::u64(merges))],
                    ));
                }
                EventKind::OpBegin { kind, key } => {
                    events.push(chrome_event(
                        &format!("op:{}", codes::op_name(kind)),
                        "B",
                        ev.ts,
                        tid,
                        vec![field("key", Json::u64(key))],
                    ));
                }
                EventKind::OpEnd => {
                    events.push(chrome_event("op", "E", ev.ts, tid, vec![]));
                }
                EventKind::SchedStep { clock } => {
                    events.push(chrome_event(
                        "sched_step",
                        "i",
                        ev.ts,
                        tid,
                        vec![field("clock", Json::u64(clock))],
                    ));
                }
                EventKind::EpochAdvance { epoch } => {
                    events.push(chrome_event(
                        "epoch_advance",
                        "i",
                        ev.ts,
                        tid,
                        vec![field("epoch", Json::u64(epoch))],
                    ));
                }
                EventKind::EpochReclaim { nodes, bytes } => {
                    events.push(chrome_event(
                        "epoch_reclaim",
                        "i",
                        ev.ts,
                        tid,
                        vec![
                            field("nodes", Json::u64(nodes)),
                            field("bytes", Json::u64(bytes)),
                        ],
                    ));
                }
                EventKind::ReadRetry { key } => {
                    events.push(chrome_event(
                        "read_retry",
                        "i",
                        ev.ts,
                        tid,
                        vec![field("key", Json::u64(key))],
                    ));
                }
            }
        }
    }
    Json::Obj(vec![
        field("traceEvents", Json::Arr(events)),
        field("displayTimeUnit", Json::str("ns")),
        field(
            "otherData",
            Json::Obj(vec![field("clock", Json::str("virtual-cycles-as-us"))]),
        ),
    ])
}

/// Check that `text` is a loadable Chrome trace-event document produced
/// by [`chrome_trace`]: parses as JSON, has a non-empty `traceEvents`
/// array, and every event carries the required fields.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace: traceEvents must be an array")?;
    if events.is_empty() {
        return Err("trace: traceEvents is empty".into());
    }
    for (i, ev) in events.iter().enumerate() {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            ev.get(key)
                .ok_or_else(|| format!("trace: traceEvents[{i}] missing {key:?}"))?;
        }
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph == "X" && ev.get("dur").is_none() {
            return Err(format!("trace: traceEvents[{i}] is 'X' without dur"));
        }
    }
    Ok(())
}

/// Serialize a metric time-series as JSON lines: one object per line,
/// each self-describing via a `"kind"` tag, so consumers can stream the
/// file without holding the run in memory (and `jq`/pandas load it
/// directly).
///
/// Line kinds, in emission order:
///
/// * `header` — once, first: `tick_unit` ("cycles" or "us"), the sampler
///   `delta`, sample/drop counts.
/// * `window` — one per adjacent snapshot pair: `[t0, t1]` ticks, the
///   nonzero counter *deltas* (zero counters elided to keep lines short),
///   gauge levels at window close, latency event count, cumulative flip
///   count at close.
/// * `flip` — one per flip-log event, after all windows: tick, leaf
///   address, kind name. Shift marks carry address 0.
pub fn metrics_jsonl(ts: &TimeSeries, flips: &[FlipEvent], tick_unit: &str) -> String {
    let mut out = String::new();
    let mut line = |j: Json| {
        out.push_str(&j.to_compact());
        out.push('\n');
    };
    line(Json::Obj(vec![
        field("kind", Json::str("header")),
        field("tick_unit", Json::str(tick_unit)),
        field("delta", Json::u64(ts.delta())),
        field("samples", Json::u64(ts.len() as u64)),
        field("dropped", Json::u64(ts.dropped())),
        field("flips", Json::u64(flips.len() as u64)),
    ]));
    for w in ts.windows() {
        let counters: Vec<(String, Json)> = Counter::ALL
            .iter()
            .filter(|c| w.counter(**c) != 0)
            .map(|c| field(c.name(), Json::u64(w.counter(*c))))
            .collect();
        let gauges: Vec<(String, Json)> = Gauge::ALL
            .iter()
            .map(|g| field(g.name(), Json::u64(w.gauges[g.index()])))
            .collect();
        let latency_count: u64 = w.hist.iter().sum();
        line(Json::Obj(vec![
            field("kind", Json::str("window")),
            field("t0", Json::u64(w.t0)),
            field("t1", Json::u64(w.t1)),
            field("counters", Json::Obj(counters)),
            field("gauges", Json::Obj(gauges)),
            field("latency_count", Json::u64(latency_count)),
            field("flip_events", Json::u64(w.flip_events)),
        ]));
    }
    for f in flips {
        line(Json::Obj(vec![
            field("kind", Json::str("flip")),
            field("tick", Json::u64(f.tick)),
            field("addr", hex(f.addr)),
            field("flip", Json::str(f.kind.name())),
        ]));
    }
    out
}

/// Check that `text` is a well-formed [`metrics_jsonl`] document: every
/// line parses as a tagged JSON object, the first (and only the first)
/// line is a `header` with a known `tick_unit`, window `t1` ticks are
/// strictly increasing, and flip lines carry tick/addr/flip.
pub fn validate_metrics_jsonl(text: &str) -> Result<(), String> {
    let mut prev_t1: Option<u64> = None;
    let mut saw_header = false;
    for (i, raw) in text.lines().enumerate() {
        let obj = Json::parse(raw).map_err(|e| format!("metrics jsonl line {i}: {e}"))?;
        let kind = obj
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("metrics jsonl line {i}: missing \"kind\""))?;
        match kind {
            "header" => {
                if i != 0 {
                    return Err(format!("metrics jsonl line {i}: header must be first"));
                }
                saw_header = true;
                let unit = obj
                    .get("tick_unit")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("metrics jsonl line {i}: header missing tick_unit"))?;
                if unit != "cycles" && unit != "us" {
                    return Err(format!("metrics jsonl line {i}: bad tick_unit {unit:?}"));
                }
                for key in ["delta", "samples", "dropped", "flips"] {
                    obj.get(key)
                        .ok_or_else(|| format!("metrics jsonl line {i}: header missing {key}"))?;
                }
            }
            "window" => {
                let t1 = obj
                    .get("t1")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("metrics jsonl line {i}: window missing t1"))?;
                if let Some(p) = prev_t1 {
                    if t1 <= p {
                        return Err(format!(
                            "metrics jsonl line {i}: window ticks not strictly increasing \
                             ({t1} after {p})"
                        ));
                    }
                }
                prev_t1 = Some(t1);
                for key in ["t0", "counters", "gauges", "latency_count", "flip_events"] {
                    obj.get(key)
                        .ok_or_else(|| format!("metrics jsonl line {i}: window missing {key}"))?;
                }
            }
            "flip" => {
                for key in ["tick", "addr", "flip"] {
                    obj.get(key)
                        .ok_or_else(|| format!("metrics jsonl line {i}: flip missing {key}"))?;
                }
            }
            other => {
                return Err(format!("metrics jsonl line {i}: unknown kind {other:?}"));
            }
        }
    }
    if !saw_header {
        return Err("metrics jsonl: empty document (no header line)".into());
    }
    Ok(())
}

/// Cycle-weighted folded stacks (`stack;frame value`), deterministic
/// order. Episode/op durations are reconstructed from begin/end pairs;
/// waits use their carried cycle counts; structural events count 1.
pub fn folded_rollup(traces: &[ThreadTrace]) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for t in traces {
        let tn = format!("thread_{}", t.thread);
        // Reconstruct episode spans: per-thread events are ordered, and
        // episodes do not nest within a thread.
        let mut open_episode: Option<(u8, u64)> = None;
        let mut open_op: Option<(u8, u64)> = None;
        for ev in &t.events {
            match ev.kind {
                EventKind::EpisodeBegin { kind } => open_episode = Some((kind, ev.ts)),
                EventKind::EpisodeCommit { kind } | EventKind::EpisodeAbort { kind, .. } => {
                    let outcome = match ev.kind {
                        EventKind::EpisodeCommit { .. } => "commit".to_string(),
                        EventKind::EpisodeAbort { cause, .. } => {
                            codes::cause_name(cause).to_string()
                        }
                        _ => unreachable!(),
                    };
                    // Tolerate a begin lost to ring overwrite: weight 1.
                    let dur = match open_episode.take() {
                        Some((k, begin)) if k == kind => ev.ts.saturating_sub(begin).max(1),
                        _ => 1,
                    };
                    *stacks
                        .entry(format!("{tn};{};{outcome}", codes::episode_name(kind)))
                        .or_default() += dur;
                }
                EventKind::Backoff { cycles } => {
                    *stacks.entry(format!("{tn};backoff")).or_default() += cycles.max(1);
                }
                EventKind::FallbackWait { cycles } => {
                    *stacks.entry(format!("{tn};fallback_wait")).or_default() += cycles.max(1);
                }
                EventKind::MiddleWait { cycles } => {
                    *stacks.entry(format!("{tn};middle_wait")).or_default() += cycles.max(1);
                }
                EventKind::LockAcquire { wait_cycles, .. } if wait_cycles > 0 => {
                    *stacks.entry(format!("{tn};lock_wait")).or_default() += wait_cycles;
                }
                EventKind::CcmFlip { .. } => {
                    *stacks.entry(format!("{tn};ccm_bypass_flip")).or_default() += 1;
                }
                EventKind::Split { .. } => {
                    *stacks.entry(format!("{tn};split")).or_default() += 1;
                }
                EventKind::Merge { .. } => {
                    *stacks.entry(format!("{tn};merge")).or_default() += 1;
                }
                EventKind::Reorg { .. } => {
                    *stacks.entry(format!("{tn};reorg")).or_default() += 1;
                }
                EventKind::EpochReclaim { nodes, .. } => {
                    *stacks.entry(format!("{tn};epoch_reclaim")).or_default() += nodes.max(1);
                }
                EventKind::ReadRetry { .. } => {
                    *stacks.entry(format!("{tn};read_retry")).or_default() += 1;
                }
                EventKind::OpBegin { kind, .. } => open_op = Some((kind, ev.ts)),
                EventKind::OpEnd => {
                    if let Some((kind, begin)) = open_op.take() {
                        *stacks
                            .entry(format!("{tn};op_{}", codes::op_name(kind)))
                            .or_default() += ev.ts.saturating_sub(begin).max(1);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = String::new();
    for (stack, value) in stacks {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn sample_traces() -> Vec<ThreadTrace> {
        let mk = |ts, kind| Event {
            ts,
            thread: 0,
            kind,
        };
        vec![ThreadTrace {
            thread: 0,
            dropped: 0,
            total: 9,
            events: vec![
                mk(
                    10,
                    EventKind::OpBegin {
                        kind: codes::OP_PUT,
                        key: 42,
                    },
                ),
                mk(
                    11,
                    EventKind::EpisodeBegin {
                        kind: codes::EP_HTM_TX,
                    },
                ),
                mk(
                    40,
                    EventKind::EpisodeAbort {
                        kind: codes::EP_HTM_TX,
                        cause: codes::AB_CONFLICT_TRUE,
                        line_addr: 0x4040,
                    },
                ),
                mk(90, EventKind::Backoff { cycles: 50 }),
                mk(
                    91,
                    EventKind::EpisodeBegin {
                        kind: codes::EP_HTM_TX,
                    },
                ),
                mk(
                    130,
                    EventKind::EpisodeCommit {
                        kind: codes::EP_HTM_TX,
                    },
                ),
                mk(
                    131,
                    EventKind::LockAcquire {
                        addr: 0x4000,
                        wait_cycles: 20,
                    },
                ),
                mk(135, EventKind::MiddleWait { cycles: 4 }),
                mk(140, EventKind::OpEnd),
            ],
        }]
    }

    #[test]
    fn chrome_export_roundtrips_through_parser() {
        let doc = chrome_trace(&sample_traces());
        let text = doc.to_pretty();
        validate_chrome_trace(&text).unwrap();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc, "export must round-trip bit-exactly");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // metadata + 8 source events, some expanding to 2 chrome events.
        assert!(events.len() >= 9, "got {}", events.len());
        // B/E pairing balances per phase letter.
        let count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(count("B"), count("E"), "begin/end pairs must balance");
        assert!(count("X") >= 2, "backoff and lock_wait become spans");
    }

    #[test]
    fn validate_rejects_junk() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": []}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\": [{\"name\": \"x\"}]}").is_err(),
            "events missing ph/ts/pid/tid must fail"
        );
    }

    #[test]
    fn metrics_jsonl_roundtrips_and_validates() {
        use euno_metrics::Registry;
        let reg = Registry::new();
        let shard = reg.register_shard().expect("registry enabled");
        let mut ts = TimeSeries::new(100, 16);
        ts.sample(0, &reg);
        shard.add(Counter::Ops, 5);
        shard.add(Counter::Commits, 4);
        shard.record_latency(37);
        reg.record_flip(140, 0x4040, true);
        ts.sample(100, &reg);
        shard.add(Counter::Ops, 3);
        ts.sample(200, &reg);
        let flips = reg.flips().events();

        let text = metrics_jsonl(&ts, &flips, "cycles");
        validate_metrics_jsonl(&text).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // header + 2 windows + 1 flip.
        assert_eq!(lines.len(), 4, "{text}");
        let header = Json::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("tick_unit").and_then(Json::as_str),
            Some("cycles")
        );
        assert_eq!(header.get("samples").and_then(Json::as_u64), Some(3));
        let w0 = Json::parse(lines[1]).unwrap();
        assert_eq!(w0.get("t1").and_then(Json::as_u64), Some(100));
        let counters = w0.get("counters").unwrap();
        assert_eq!(counters.get("ops").and_then(Json::as_u64), Some(5));
        assert_eq!(counters.get("commits").and_then(Json::as_u64), Some(4));
        // Zero counters are elided from window lines.
        assert!(counters.get("fallbacks").is_none(), "{text}");
        assert_eq!(w0.get("latency_count").and_then(Json::as_u64), Some(1));
        assert_eq!(w0.get("flip_events").and_then(Json::as_u64), Some(1));
        let flip = Json::parse(lines[3]).unwrap();
        assert_eq!(flip.get("kind").and_then(Json::as_str), Some("flip"));
        assert_eq!(flip.get("tick").and_then(Json::as_u64), Some(140));
        assert_eq!(flip.get("addr").and_then(Json::as_str), Some("0x4040"));
        assert_eq!(flip.get("flip").and_then(Json::as_str), Some("to_bypass"));
    }

    #[test]
    fn metrics_jsonl_validator_rejects_junk() {
        assert!(validate_metrics_jsonl("").is_err(), "empty doc");
        assert!(validate_metrics_jsonl("not json\n").is_err());
        assert!(
            validate_metrics_jsonl("{\"kind\":\"window\",\"t1\":5}\n").is_err(),
            "window before header"
        );
        let ok = "{\"kind\":\"header\",\"tick_unit\":\"us\",\"delta\":10,\
                  \"samples\":0,\"dropped\":0,\"flips\":0}\n";
        assert!(validate_metrics_jsonl(ok).is_ok());
        let bad_unit = ok.replace("\"us\"", "\"seconds\"");
        assert!(validate_metrics_jsonl(&bad_unit).is_err(), "bad tick_unit");
        // Non-monotone window ticks fail.
        let windows = format!(
            "{ok}{}{}",
            "{\"kind\":\"window\",\"t0\":0,\"t1\":20,\"counters\":{},\"gauges\":{},\
             \"latency_count\":0,\"flip_events\":0}\n",
            "{\"kind\":\"window\",\"t0\":20,\"t1\":20,\"counters\":{},\"gauges\":{},\
             \"latency_count\":0,\"flip_events\":0}\n"
        );
        let err = validate_metrics_jsonl(&windows).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn folded_rollup_weights_by_cycles() {
        let text = folded_rollup(&sample_traces());
        // Aborted episode: 40-11 = 29 cycles under the cause name.
        assert!(
            text.contains("thread_0;htm_tx;conflict_true_same_record 29"),
            "{text}"
        );
        // Committed episode: 130-91 = 39 cycles.
        assert!(text.contains("thread_0;htm_tx;commit 39"), "{text}");
        assert!(text.contains("thread_0;backoff 50"), "{text}");
        assert!(text.contains("thread_0;lock_wait 20"), "{text}");
        assert!(text.contains("thread_0;middle_wait 4"), "{text}");
        // The op span: 140-10 = 130 cycles.
        assert!(text.contains("thread_0;op_put 130"), "{text}");
    }
}
