//! The event schema (DESIGN.md §13).
//!
//! Events are small `Copy` records: a cycle timestamp, the emitting
//! thread, and a kind-specific payload. Payloads use raw `u64` addresses
//! and `u8` code points rather than engine types — this crate sits below
//! `euno-htm` in the dependency graph, so the engine maps its own enums
//! (episode kinds, abort causes) onto the [`codes`] constants at the
//! emission site.

use std::fmt;

/// Stable code points for episode kinds and abort causes. The engine
/// translates its richer enums into these at emission time; exporters
/// translate them back into names.
pub mod codes {
    /// Episode kinds (`EpisodeKind` in `euno-htm`).
    pub const EP_HTM_TX: u8 = 0;
    pub const EP_FALLBACK: u8 = 1;
    pub const EP_OPTIMISTIC_READ: u8 = 2;
    pub const EP_LOCKED_WRITE: u8 = 3;

    /// Abort causes (`AbortCause` + `ConflictKind` in `euno-htm`).
    pub const AB_CONFLICT_TRUE: u8 = 0;
    pub const AB_CONFLICT_FALSE_RECORD: u8 = 1;
    pub const AB_CONFLICT_FALSE_METADATA: u8 = 2;
    pub const AB_CONFLICT_FALSE_STRUCTURE: u8 = 3;
    pub const AB_CONFLICT_UNCLASSIFIED: u8 = 4;
    pub const AB_CAPACITY: u8 = 5;
    pub const AB_EXPLICIT: u8 = 6;
    pub const AB_SPURIOUS: u8 = 7;
    pub const AB_FALLBACK_LOCKED: u8 = 8;

    /// Client operation kinds (`OpKind` in `euno-htm`).
    pub const OP_GET: u8 = 0;
    pub const OP_PUT: u8 = 1;
    pub const OP_DELETE: u8 = 2;
    pub const OP_SCAN: u8 = 3;
    pub const OP_MAINTAIN: u8 = 4;

    pub fn episode_name(kind: u8) -> &'static str {
        match kind {
            EP_HTM_TX => "htm_tx",
            EP_FALLBACK => "fallback",
            EP_OPTIMISTIC_READ => "optimistic_read",
            EP_LOCKED_WRITE => "locked_write",
            _ => "episode?",
        }
    }

    pub fn cause_name(cause: u8) -> &'static str {
        match cause {
            AB_CONFLICT_TRUE => "conflict_true_same_record",
            AB_CONFLICT_FALSE_RECORD => "conflict_false_different_record",
            AB_CONFLICT_FALSE_METADATA => "conflict_false_metadata",
            AB_CONFLICT_FALSE_STRUCTURE => "conflict_false_structure",
            AB_CONFLICT_UNCLASSIFIED => "conflict_unclassified",
            AB_CAPACITY => "capacity",
            AB_EXPLICIT => "explicit",
            AB_SPURIOUS => "spurious",
            AB_FALLBACK_LOCKED => "fallback_locked",
            _ => "abort?",
        }
    }

    /// Whether a cause code denotes a data conflict (it then carries a
    /// meaningful conflicting-line address).
    pub fn is_conflict(cause: u8) -> bool {
        cause <= AB_CONFLICT_UNCLASSIFIED
    }

    pub fn op_name(kind: u8) -> &'static str {
        match kind {
            OP_GET => "get",
            OP_PUT => "put",
            OP_DELETE => "delete",
            OP_SCAN => "scan",
            OP_MAINTAIN => "maintain",
            _ => "op?",
        }
    }
}

/// What happened. Addresses are raw (`usize as u64`) so the profiler can
/// resolve them to owning objects after the run; `0` means "no address".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An episode (HTM attempt, fallback, optimistic read, locked write)
    /// started.
    EpisodeBegin {
        kind: u8,
    },
    /// The episode committed / finished successfully.
    EpisodeCommit {
        kind: u8,
    },
    /// The episode aborted. `line_addr` is the base address of the
    /// conflicting cache line for conflict causes, else 0.
    EpisodeAbort {
        kind: u8,
        cause: u8,
        line_addr: u64,
    },
    /// The executor backed off for `cycles` before retrying.
    Backoff {
        cycles: u64,
    },
    /// The executor waited `cycles` for the fallback lock to clear.
    FallbackWait {
        cycles: u64,
    },
    /// The executor waited `cycles` acquiring a middle-path footprint's
    /// advisory slot locks before a locked speculative attempt.
    MiddleWait {
        cycles: u64,
    },
    /// An advisory lock / CCM lock bit was acquired after waiting
    /// `wait_cycles` (0 = uncontended).
    LockAcquire {
        addr: u64,
        wait_cycles: u64,
    },
    LockRelease {
        addr: u64,
    },
    /// The adaptive contention detector flipped a leaf's bypass flag.
    CcmFlip {
        addr: u64,
        bypass: bool,
    },
    /// Structural: `left` split, producing `right`.
    Split {
        left: u64,
        right: u64,
    },
    /// Structural: `right` merged into `left`.
    Merge {
        left: u64,
        right: u64,
    },
    /// A leaf reorganized in place (tombstone compaction + round-robin
    /// redeal) without splitting.
    Reorg {
        leaf: u64,
    },
    /// A maintenance sweep finished, having performed `merges` merges.
    Maintain {
        merges: u64,
    },
    /// A client-level operation started / ended (emitted by harnesses).
    OpBegin {
        kind: u8,
        key: u64,
    },
    OpEnd,
    /// The virtual-time scheduler dispatched a thread at `clock`.
    SchedStep {
        clock: u64,
    },
    /// The global reclamation epoch advanced to `epoch`.
    EpochAdvance {
        epoch: u64,
    },
    /// A reclamation pass freed `nodes` retired nodes (`bytes` total).
    EpochReclaim {
        nodes: u64,
        bytes: u64,
    },
    /// An episode-free optimistic read of `key` failed validation and is
    /// retrying from the root.
    ReadRetry {
        key: u64,
    },
}

/// One trace record: when, who, what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual-cycle timestamp (the emitting thread's clock).
    pub ts: u64,
    /// Emitting thread id.
    pub thread: u32,
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t{} @{}] ", self.thread, self.ts)?;
        match self.kind {
            EventKind::EpisodeBegin { kind } => write!(f, "{} begin", codes::episode_name(kind)),
            EventKind::EpisodeCommit { kind } => write!(f, "{} commit", codes::episode_name(kind)),
            EventKind::EpisodeAbort {
                kind,
                cause,
                line_addr,
            } => {
                write!(
                    f,
                    "{} abort: {}",
                    codes::episode_name(kind),
                    codes::cause_name(cause)
                )?;
                if line_addr != 0 {
                    write!(f, " line {line_addr:#x}")?;
                }
                Ok(())
            }
            EventKind::Backoff { cycles } => write!(f, "backoff {cycles} cyc"),
            EventKind::FallbackWait { cycles } => write!(f, "fallback-wait {cycles} cyc"),
            EventKind::MiddleWait { cycles } => write!(f, "middle-wait {cycles} cyc"),
            EventKind::LockAcquire { addr, wait_cycles } => {
                write!(f, "lock {addr:#x} acquired (waited {wait_cycles} cyc)")
            }
            EventKind::LockRelease { addr } => write!(f, "lock {addr:#x} released"),
            EventKind::CcmFlip { addr, bypass } => {
                write!(
                    f,
                    "ccm {addr:#x} bypass {}",
                    if bypass { "on" } else { "off" }
                )
            }
            EventKind::Split { left, right } => write!(f, "split {left:#x} -> {right:#x}"),
            EventKind::Merge { left, right } => write!(f, "merge {right:#x} into {left:#x}"),
            EventKind::Reorg { leaf } => write!(f, "reorg {leaf:#x}"),
            EventKind::Maintain { merges } => write!(f, "maintain sweep: {merges} merges"),
            EventKind::OpBegin { kind, key } => {
                write!(f, "op {} key {key}", codes::op_name(kind))
            }
            EventKind::OpEnd => write!(f, "op end"),
            EventKind::SchedStep { clock } => write!(f, "sched step @{clock}"),
            EventKind::EpochAdvance { epoch } => write!(f, "epoch advance -> {epoch}"),
            EventKind::EpochReclaim { nodes, bytes } => {
                write!(f, "epoch reclaim: {nodes} nodes ({bytes} B)")
            }
            EventKind::ReadRetry { key } => write!(f, "read retry key {key}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        // The ring buffer stores events by value on the hot path; keep
        // them register-friendly.
        assert!(std::mem::size_of::<Event>() <= 40);
        let e = Event {
            ts: 1,
            thread: 2,
            kind: EventKind::OpEnd,
        };
        let f = e; // Copy
        assert_eq!(e, f);
    }

    #[test]
    fn display_is_human_readable() {
        let e = Event {
            ts: 1234,
            thread: 3,
            kind: EventKind::EpisodeAbort {
                kind: codes::EP_HTM_TX,
                cause: codes::AB_CONFLICT_FALSE_METADATA,
                line_addr: 0x1000,
            },
        };
        let s = e.to_string();
        assert!(s.contains("htm_tx abort"), "{s}");
        assert!(s.contains("conflict_false_metadata"), "{s}");
        assert!(s.contains("0x1000"), "{s}");
    }

    #[test]
    fn code_names_cover_all_codes() {
        for k in 0..4 {
            assert!(!codes::episode_name(k).contains('?'));
        }
        for c in 0..9 {
            assert!(!codes::cause_name(c).contains('?'));
        }
        assert!(codes::is_conflict(codes::AB_CONFLICT_UNCLASSIFIED));
        assert!(!codes::is_conflict(codes::AB_CAPACITY));
    }
}
