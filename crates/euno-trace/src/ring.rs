//! The per-thread trace ring buffer.
//!
//! One [`TraceBuf`] is owned by exactly one thread's context and written
//! through `&mut`, so a push is two plain stores and a wrapping index
//! bump — no atomics, no locks, no allocation after the first lap. When
//! the buffer is full the oldest event is overwritten; `total` keeps
//! counting, so consumers can report exactly how many events were
//! dropped. Capacity is fixed at construction: the hot path never
//! reallocates, and a run's memory bill is `threads × capacity ×
//! size_of::<Event>()`.

use crate::event::{Event, EventKind};

/// Default ring capacity (events per thread) when the caller does not
/// choose one: big enough to hold the full measured phase of a smoke
/// run, small enough (~1.25 MiB at 32-byte events) to install on every
/// thread of a 16-thread figure run without noticing.
pub const DEFAULT_CAPACITY: usize = 1 << 15;

/// Fixed-capacity, overwrite-oldest event ring for one thread.
#[derive(Debug)]
pub struct TraceBuf {
    thread: u32,
    cap: usize,
    events: Vec<Event>,
    /// Events ever pushed; `total % cap` is the next write slot once the
    /// ring has filled.
    total: u64,
}

impl TraceBuf {
    pub fn new(thread: u32, capacity: usize) -> Self {
        let cap = capacity.max(1);
        TraceBuf {
            thread,
            cap,
            events: Vec::with_capacity(cap),
            total: 0,
        }
    }

    pub fn with_default_capacity(thread: u32) -> Self {
        Self::new(thread, DEFAULT_CAPACITY)
    }

    pub fn thread(&self) -> u32 {
        self.thread
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events ever pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events lost to overwrites.
    pub fn dropped(&self) -> u64 {
        self.total - self.events.len() as u64
    }

    /// Record one event. O(1), allocation-free once the ring is full.
    #[inline]
    pub fn push(&mut self, ts: u64, thread: u32, kind: EventKind) {
        let ev = Event { ts, thread, kind };
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            let slot = (self.total % self.cap as u64) as usize;
            self.events[slot] = ev;
        }
        self.total += 1;
    }

    /// The retained events, oldest first.
    pub fn drain_ordered(&self) -> Vec<Event> {
        if self.total <= self.cap as u64 {
            return self.events.clone();
        }
        let split = (self.total % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[split..]);
        out.extend_from_slice(&self.events[..split]);
        out
    }

    /// The last `n` retained events, oldest first (for failure dumps).
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let all = self.drain_ordered();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }

    /// Finalize into an owned, ordered snapshot.
    pub fn into_thread_trace(self) -> ThreadTrace {
        ThreadTrace {
            thread: self.thread,
            dropped: self.dropped(),
            total: self.total,
            events: self.drain_ordered(),
        }
    }
}

/// One thread's finished trace: ordered events plus drop accounting.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    pub thread: u32,
    pub events: Vec<Event>,
    /// Events overwritten before collection.
    pub dropped: u64,
    /// Events ever emitted (`events.len() + dropped`).
    pub total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> EventKind {
        EventKind::Backoff { cycles: i }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut b = TraceBuf::new(7, 4);
        for i in 0..10u64 {
            b.push(i, 7, ev(i));
        }
        assert_eq!(b.total(), 10);
        assert_eq!(b.len(), 4);
        assert_eq!(b.dropped(), 6);
        let got: Vec<u64> = b.drain_ordered().iter().map(|e| e.ts).collect();
        // The newest four, oldest first.
        assert_eq!(got, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ordering_preserved_before_wrap() {
        let mut b = TraceBuf::new(1, 16);
        for i in 0..5u64 {
            b.push(100 + i, 1, ev(i));
        }
        assert_eq!(b.dropped(), 0);
        let ts: Vec<u64> = b.drain_ordered().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![100, 101, 102, 103, 104]);
    }

    #[test]
    fn wrap_boundary_is_exact() {
        // Exactly capacity pushes: nothing dropped, order intact.
        let mut b = TraceBuf::new(0, 3);
        for i in 0..3u64 {
            b.push(i, 0, ev(i));
        }
        assert_eq!(b.dropped(), 0);
        assert_eq!(
            b.drain_ordered().iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // One more: the oldest goes.
        b.push(3, 0, ev(3));
        assert_eq!(b.dropped(), 1);
        assert_eq!(
            b.drain_ordered().iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn tail_returns_last_n() {
        let mut b = TraceBuf::new(2, 8);
        for i in 0..6u64 {
            b.push(i, 2, ev(i));
        }
        let t: Vec<u64> = b.tail(2).iter().map(|e| e.ts).collect();
        assert_eq!(t, vec![4, 5]);
        assert_eq!(b.tail(100).len(), 6);
    }

    #[test]
    fn into_thread_trace_accounts_drops() {
        let mut b = TraceBuf::new(9, 2);
        for i in 0..5u64 {
            b.push(i, 9, ev(i));
        }
        let t = b.into_thread_trace();
        assert_eq!(t.thread, 9);
        assert_eq!(t.total, 5);
        assert_eq!(t.dropped, 3);
        assert_eq!(t.events.iter().map(|e| e.ts).collect::<Vec<_>>(), [3, 4]);
    }
}
