//! # euno-trace — structured event tracing for the Eunomia workspace
//!
//! Run-level aggregates (`RunReport`, `ExecObserver` counters) say *how
//! much* went wrong; they cannot say *which* leaf, *which* cache line, or
//! *which* retry path did it. This crate closes that gap with a
//! per-thread, fixed-capacity ring buffer of cycle-timestamped structured
//! [`Event`]s that the engine emits from its hot paths — HTM episode
//! begin/commit/abort (with cause and conflicting line address), lock
//! acquire/wait/release, CCM bypass flips, split/merge/maintain
//! structural events, and scheduler steps.
//!
//! The contract mirrors `euno-htm`'s `OpObserver`: the sink is
//! disabled by default, every instrumentation point is one
//! `if let Some(..)` branch when no buffer is installed, and emission
//! never charges cycles, touches the RNG, or otherwise perturbs the
//! deterministic virtual-time schedule. A [`TraceBuf`] is owned
//! exclusively by one thread's context (`&mut` access only), so pushes
//! are plain stores — lock-free by construction.
//!
//! On top of the raw stream sit three consumers:
//!
//! * [`profile::build_profile`] — the hot-leaf contention profiler:
//!   attributes aborts, lock-wait cycles and CCM flips to the leaf
//!   object covering the event's address (the resolver is supplied by
//!   the caller, keeping this crate structure-agnostic) and returns a
//!   ranked table ready for a `RunReport`'s `profile` section;
//! * [`export::chrome_trace`] — Chrome trace-event JSON, loadable in
//!   Perfetto / `chrome://tracing`, built on the in-tree [`Json`]
//!   writer (no external deps);
//! * [`export::folded_rollup`] — a plain-text, cycle-weighted
//!   flamegraph-style rollup (`stack;frame value` lines).
//!
//! The JSON value type, writer and parser live here (in [`json`]) and
//! are re-exported by `euno-sim` for the run-report pipeline; the
//! container's crate registry is unreachable (DESIGN.md §6), so the
//! whole stack stays dependency-free.

pub mod event;
pub mod export;
pub mod json;
pub mod profile;
pub mod ring;

pub use event::{codes, Event, EventKind};
pub use export::{
    chrome_trace, folded_rollup, metrics_jsonl, validate_chrome_trace, validate_metrics_jsonl,
};
pub use json::Json;
pub use profile::{build_profile, LeafCounters, LeafProfile};
pub use ring::{ThreadTrace, TraceBuf, DEFAULT_CAPACITY};
