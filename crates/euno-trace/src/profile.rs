//! The hot-leaf contention profiler.
//!
//! Aggregate counters can say "2.3 aborts per op"; this profiler says
//! *leaf `0x7f3a…` ate 61 % of them*. It walks the finished event
//! stream and attributes every address-carrying event — conflict aborts
//! (the conflicting cache line), lock acquisitions (the lock cell),
//! CCM bypass flips (the CCM word), splits and merges (the leaf header)
//! — to the object covering that address.
//!
//! Attribution rules (DESIGN.md §13):
//!
//! * The caller supplies `resolve: addr → Option<object base>` — in
//!   practice `Runtime::object_base_of`, backed by the leaf registry
//!   that `EunoLeaf::register` populates. This crate never learns what
//!   a leaf *is*, only which base address owns an event.
//! * Events whose address resolves to no registered object (baseline
//!   trees, the global fallback lock, internal nodes) are pooled under
//!   `unattributed` rather than dropped — the profile's totals always
//!   add up to the event stream's.
//! * Non-conflict aborts (capacity, spurious, explicit, fallback-locked)
//!   carry no line address and also land in `unattributed`.
//! * Leaves are ranked by abort count, then lock-wait cycles, then CCM
//!   flips — the order the paper's Figures 2/9 care about.

use std::collections::HashMap;

use crate::event::{codes, Event, EventKind};
use crate::ring::ThreadTrace;

/// Contention charged to one leaf (or to the unattributed pool).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeafCounters {
    /// HTM aborts whose conflicting line falls inside the leaf.
    pub aborts: u64,
    /// Cycles spent waiting for locks homed in the leaf (split lock, CCM
    /// lock bits).
    pub lock_wait_cycles: u64,
    /// Lock acquisitions (contended or not).
    pub lock_acquires: u64,
    /// Adaptive-detector bypass flips on the leaf's CCM.
    pub ccm_flips: u64,
    pub splits: u64,
    pub merges: u64,
}

impl LeafCounters {
    pub fn is_zero(&self) -> bool {
        *self == LeafCounters::default()
    }
}

/// The ranked hot-leaf table plus stream accounting.
#[derive(Clone, Debug, Default)]
pub struct LeafProfile {
    /// `(leaf base address, counters)`, hottest first.
    pub leaves: Vec<(u64, LeafCounters)>,
    /// Events that resolved to no registered object.
    pub unattributed: LeafCounters,
    /// Events inspected (sum over threads of retained events).
    pub events_seen: u64,
    /// Events lost to ring overwrites before collection.
    pub events_dropped: u64,
}

impl LeafProfile {
    /// Top `n` rows (for printing).
    pub fn top(&self, n: usize) -> &[(u64, LeafCounters)] {
        &self.leaves[..self.leaves.len().min(n)]
    }

    /// A human-readable ranked table (used by `--profile` on the stress
    /// binary and handy in test failures).
    pub fn render(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>9} {:>15} {:>9} {:>9} {:>7} {:>7}",
            "leaf", "aborts", "lock_wait_cyc", "acquires", "ccm_flips", "splits", "merges"
        );
        for (addr, c) in self.top(top) {
            let _ = writeln!(
                out,
                "{:<18} {:>9} {:>15} {:>9} {:>9} {:>7} {:>7}",
                format!("{addr:#x}"),
                c.aborts,
                c.lock_wait_cycles,
                c.lock_acquires,
                c.ccm_flips,
                c.splits,
                c.merges
            );
        }
        let u = &self.unattributed;
        let _ = writeln!(
            out,
            "{:<18} {:>9} {:>15} {:>9} {:>9} {:>7} {:>7}",
            "(unattributed)",
            u.aborts,
            u.lock_wait_cycles,
            u.lock_acquires,
            u.ccm_flips,
            u.splits,
            u.merges
        );
        let _ = writeln!(
            out,
            "events: {} seen, {} dropped",
            self.events_seen, self.events_dropped
        );
        out
    }
}

/// Build the profile from finished thread traces. `resolve` maps an
/// address to the base of the registered object containing it (`None` ⇒
/// unattributed).
pub fn build_profile(traces: &[ThreadTrace], resolve: impl Fn(u64) -> Option<u64>) -> LeafProfile {
    let mut by_leaf: HashMap<u64, LeafCounters> = HashMap::new();
    let mut unattributed = LeafCounters::default();
    let mut seen = 0u64;
    let mut dropped = 0u64;

    let mut charge = |addr: u64, f: &dyn Fn(&mut LeafCounters)| match resolve(addr) {
        Some(base) if addr != 0 => f(by_leaf.entry(base).or_default()),
        _ => f(&mut unattributed),
    };

    for t in traces {
        dropped += t.dropped;
        for ev in &t.events {
            seen += 1;
            apply_event(ev, &mut charge);
        }
    }

    let mut leaves: Vec<(u64, LeafCounters)> = by_leaf.into_iter().collect();
    leaves.sort_by(|(aa, a), (ba, b)| {
        (b.aborts, b.lock_wait_cycles, b.ccm_flips, *aa).cmp(&(
            a.aborts,
            a.lock_wait_cycles,
            a.ccm_flips,
            *ba,
        ))
    });
    LeafProfile {
        leaves,
        unattributed,
        events_seen: seen,
        events_dropped: dropped,
    }
}

fn apply_event(ev: &Event, charge: &mut impl FnMut(u64, &dyn Fn(&mut LeafCounters))) {
    match ev.kind {
        EventKind::EpisodeAbort {
            cause, line_addr, ..
        } => {
            let addr = if codes::is_conflict(cause) {
                line_addr
            } else {
                0
            };
            charge(addr, &|c| c.aborts += 1);
        }
        EventKind::LockAcquire { addr, wait_cycles } => {
            charge(addr, &move |c| {
                c.lock_acquires += 1;
                c.lock_wait_cycles += wait_cycles;
            });
        }
        EventKind::CcmFlip { addr, .. } => charge(addr, &|c| c.ccm_flips += 1),
        EventKind::Split { left, .. } => charge(left, &|c| c.splits += 1),
        EventKind::Merge { left, .. } => charge(left, &|c| c.merges += 1),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(events: Vec<Event>) -> ThreadTrace {
        ThreadTrace {
            thread: 0,
            total: events.len() as u64,
            dropped: 0,
            events,
        }
    }

    fn ev(kind: EventKind) -> Event {
        Event {
            ts: 0,
            thread: 0,
            kind,
        }
    }

    /// Two fake leaves at 0x1000 and 0x2000, each 256 bytes.
    fn resolve(addr: u64) -> Option<u64> {
        [(0x1000u64, 256u64), (0x2000, 256)]
            .iter()
            .find(|&&(base, len)| addr >= base && addr < base + len)
            .map(|&(base, _)| base)
    }

    #[test]
    fn attributes_and_ranks_by_aborts() {
        let t = trace(vec![
            ev(EventKind::EpisodeAbort {
                kind: codes::EP_HTM_TX,
                cause: codes::AB_CONFLICT_TRUE,
                line_addr: 0x2040, // leaf 2
            }),
            ev(EventKind::EpisodeAbort {
                kind: codes::EP_HTM_TX,
                cause: codes::AB_CONFLICT_FALSE_METADATA,
                line_addr: 0x2080, // leaf 2 again
            }),
            ev(EventKind::EpisodeAbort {
                kind: codes::EP_HTM_TX,
                cause: codes::AB_CONFLICT_FALSE_RECORD,
                line_addr: 0x1010, // leaf 1
            }),
            ev(EventKind::LockAcquire {
                addr: 0x1040,
                wait_cycles: 500,
            }),
            ev(EventKind::CcmFlip {
                addr: 0x20c0,
                bypass: false,
            }),
        ]);
        let p = build_profile(&[t], resolve);
        assert_eq!(p.events_seen, 5);
        assert_eq!(p.leaves.len(), 2);
        // Leaf 2 has 2 aborts → ranked first.
        assert_eq!(p.leaves[0].0, 0x2000);
        assert_eq!(p.leaves[0].1.aborts, 2);
        assert_eq!(p.leaves[0].1.ccm_flips, 1);
        assert_eq!(p.leaves[1].0, 0x1000);
        assert_eq!(p.leaves[1].1.aborts, 1);
        assert_eq!(p.leaves[1].1.lock_wait_cycles, 500);
        assert_eq!(p.leaves[1].1.lock_acquires, 1);
        assert!(p.unattributed.is_zero());
    }

    #[test]
    fn unresolved_and_capacity_aborts_pool_unattributed() {
        let t = trace(vec![
            // Address outside both leaves.
            ev(EventKind::EpisodeAbort {
                kind: codes::EP_HTM_TX,
                cause: codes::AB_CONFLICT_TRUE,
                line_addr: 0x9000,
            }),
            // Capacity abort: no meaningful address.
            ev(EventKind::EpisodeAbort {
                kind: codes::EP_HTM_TX,
                cause: codes::AB_CAPACITY,
                line_addr: 0x1010, // must be ignored: not a conflict
            }),
            ev(EventKind::LockAcquire {
                addr: 0x8888,
                wait_cycles: 9,
            }),
        ]);
        let p = build_profile(&[t], resolve);
        assert!(p.leaves.is_empty());
        assert_eq!(p.unattributed.aborts, 2);
        assert_eq!(p.unattributed.lock_wait_cycles, 9);
    }

    #[test]
    fn splits_merges_and_drops_accounted() {
        let mut t = trace(vec![
            ev(EventKind::Split {
                left: 0x1000,
                right: 0x2000,
            }),
            ev(EventKind::Merge {
                left: 0x1000,
                right: 0x2000,
            }),
        ]);
        t.dropped = 7;
        t.total += 7;
        let p = build_profile(&[t], resolve);
        assert_eq!(p.events_dropped, 7);
        assert_eq!(p.leaves[0].1.splits, 1);
        assert_eq!(p.leaves[0].1.merges, 1);
        let rendered = p.render(10);
        assert!(rendered.contains("0x1000"), "{rendered}");
        assert!(rendered.contains("7 dropped"), "{rendered}");
    }
}
