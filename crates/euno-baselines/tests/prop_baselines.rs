//! Property-based model equivalence for the three comparator trees.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use euno_baselines::{HtmBTree, HtmMasstree, Masstree};
use euno_htm::{ConcurrentMap, Runtime};

#[derive(Clone, Debug)]
enum Op {
    Put(u64, u64),
    Get(u64),
    Del(u64),
    Scan(u64, usize),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..key_space, 0u64..1_000_000).prop_map(|(k, v)| Op::Put(k, v)),
        2 => (0..key_space).prop_map(Op::Get),
        2 => (0..key_space).prop_map(Op::Del),
        1 => (0..key_space, 1usize..12).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

fn check(map: &dyn ConcurrentMap, rt: &Arc<Runtime>, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut ctx = rt.thread(1);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Put(k, v) => {
                prop_assert_eq!(map.put(&mut ctx, k, v), model.insert(k, v), "put {}", k)
            }
            Op::Get(k) => {
                prop_assert_eq!(map.get(&mut ctx, k), model.get(&k).copied(), "get {}", k)
            }
            Op::Del(k) => {
                prop_assert_eq!(map.delete(&mut ctx, k), model.remove(&k), "del {}", k)
            }
            Op::Scan(k, n) => {
                let mut got = Vec::new();
                map.scan(&mut ctx, k, n, &mut got);
                let expect: Vec<(u64, u64)> =
                    model.range(k..).take(n).map(|(&k, &v)| (k, v)).collect();
                prop_assert_eq!(got, expect, "scan {}", k);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn htm_btree_matches_model(ops in prop::collection::vec(op_strategy(96), 1..350)) {
        let rt = Runtime::new_virtual();
        let t = HtmBTree::<16>::new(Arc::clone(&rt));
        check(&t, &rt, &ops)?;
    }

    #[test]
    fn masstree_matches_model(ops in prop::collection::vec(op_strategy(96), 1..350)) {
        let rt = Runtime::new_virtual();
        let t = Masstree::new(Arc::clone(&rt));
        check(&t, &rt, &ops)?;
    }

    #[test]
    fn htm_masstree_matches_model(ops in prop::collection::vec(op_strategy(96), 1..350)) {
        let rt = Runtime::new_virtual();
        let t = HtmMasstree::new(Arc::clone(&rt));
        check(&t, &rt, &ops)?;
    }

    /// Small fanout alternative for the generic HtmBTree: splits every few
    /// inserts, stressing the propagation paths.
    #[test]
    fn htm_btree_small_fanout_matches_model(ops in prop::collection::vec(op_strategy(64), 1..300)) {
        let rt = Runtime::new_virtual();
        let t = HtmBTree::<4>::new(Arc::clone(&rt));
        check(&t, &rt, &ops)?;
    }
}
