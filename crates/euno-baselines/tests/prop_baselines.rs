//! Randomized model equivalence for the three comparator trees, driven
//! by seeded `euno-rng` operation streams.

use std::collections::BTreeMap;
use std::sync::Arc;

use euno_baselines::{HtmBTree, HtmMasstree, Masstree};
use euno_htm::{ConcurrentMap, Runtime};
use euno_rng::{Rng, SmallRng};

#[derive(Clone, Debug)]
enum Op {
    Put(u64, u64),
    Get(u64),
    Del(u64),
    Scan(u64, usize),
}

fn random_ops(rng: &mut SmallRng, key_space: u64, max_len: usize) -> Vec<Op> {
    let n = rng.gen_range(1usize..max_len);
    (0..n)
        .map(|_| match rng.gen_range(0u32..9) {
            0..=3 => Op::Put(rng.gen_range(0..key_space), rng.gen_range(0u64..1_000_000)),
            4..=5 => Op::Get(rng.gen_range(0..key_space)),
            6..=7 => Op::Del(rng.gen_range(0..key_space)),
            _ => Op::Scan(rng.gen_range(0..key_space), rng.gen_range(1usize..12)),
        })
        .collect()
}

fn check(map: &dyn ConcurrentMap, rt: &Arc<Runtime>, ops: &[Op]) {
    let mut ctx = rt.thread(1);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Put(k, v) => {
                assert_eq!(map.put(&mut ctx, k, v), model.insert(k, v), "put {k}")
            }
            Op::Get(k) => {
                assert_eq!(map.get(&mut ctx, k), model.get(&k).copied(), "get {k}")
            }
            Op::Del(k) => {
                assert_eq!(map.delete(&mut ctx, k), model.remove(&k), "del {k}")
            }
            Op::Scan(k, n) => {
                let mut got = Vec::new();
                map.scan(&mut ctx, k, n, &mut got);
                let expect: Vec<(u64, u64)> =
                    model.range(k..).take(n).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(got, expect, "scan {k}");
            }
        }
    }
}

const CASES: usize = 40;

#[test]
fn htm_btree_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0xb7ee);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 96, 350);
        let rt = Runtime::new_virtual();
        let t = HtmBTree::<16>::new(Arc::clone(&rt));
        check(&t, &rt, &ops);
    }
}

#[test]
fn masstree_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0x3a55);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 96, 350);
        let rt = Runtime::new_virtual();
        let t = Masstree::new(Arc::clone(&rt));
        check(&t, &rt, &ops);
    }
}

#[test]
fn htm_masstree_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0x47a5);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 96, 350);
        let rt = Runtime::new_virtual();
        let t = HtmMasstree::new(Arc::clone(&rt));
        check(&t, &rt, &ops);
    }
}

/// Small fanout alternative for the generic HtmBTree: splits every few
/// inserts, stressing the propagation paths.
#[test]
fn htm_btree_small_fanout_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0x5f44);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 64, 300);
        let rt = Runtime::new_virtual();
        let t = HtmBTree::<4>::new(Arc::clone(&rt));
        check(&t, &rt, &ops);
    }
}
