//! Real-thread (`Mode::Concurrent`) smoke coverage for every baseline:
//! each of the five client operations (get/put/delete/scan/maintain)
//! under genuine parallelism, with post-quiescence assertions. The
//! baselines previously had concurrent coverage only via the repo-level
//! stress tests; this pins it at the crate boundary.

use std::sync::Arc;

use euno_baselines::{HtmBTree, HtmMasstree, Masstree};
use euno_htm::{ConcurrentMap, Runtime};

fn baselines(rt: &Arc<Runtime>) -> Vec<Box<dyn ConcurrentMap>> {
    vec![
        Box::new(HtmBTree::<16>::new(Arc::clone(rt))),
        Box::new(Masstree::new(Arc::clone(rt))),
        Box::new(HtmMasstree::new(Arc::clone(rt))),
    ]
}

#[test]
fn all_five_ops_under_real_threads() {
    let rt = Runtime::new_concurrent();
    for tree in baselines(&rt) {
        // Preload even keys.
        {
            let mut ctx = rt.thread(0);
            for k in (0..400u64).step_by(2) {
                tree.put(&mut ctx, k, k + 1);
            }
        }
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let tree = tree.as_ref();
                let mut ctx = rt.thread(10 + tid);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..300u64 {
                        let key = (i * 7 + tid * 13) % 400;
                        match i % 5 {
                            0 => {
                                tree.put(&mut ctx, key, (tid << 32) | i);
                            }
                            1 => {
                                tree.get(&mut ctx, key);
                            }
                            2 => {
                                tree.delete(&mut ctx, key | 1); // odd keys only
                            }
                            3 => {
                                out.clear();
                                let n = tree.scan(&mut ctx, key, 10, &mut out);
                                assert_eq!(n, out.len(), "{}", tree.name());
                                assert!(
                                    out.windows(2).all(|w| w[0].0 < w[1].0),
                                    "{} scan unsorted under concurrency",
                                    tree.name()
                                );
                                assert!(out.iter().all(|&(k, _)| k >= key));
                            }
                            _ => {
                                // Baselines have no deferred rebalancing:
                                // the trait default must be a no-op.
                                assert_eq!(tree.maintain(&mut ctx), 0, "{}", tree.name());
                            }
                        }
                    }
                });
            }
        });
        // Quiesced: the full scan is sorted, duplicate-free, and no odd
        // key survives unless a racing put re-inserted it (odd keys were
        // only ever deleted — puts target the preloaded even space and
        // tid*13 offsets, both even or odd; just check structure).
        let mut ctx = rt.thread(99);
        let mut out = Vec::new();
        tree.scan(&mut ctx, 0, usize::MAX, &mut out);
        assert!(
            out.windows(2).all(|w| w[0].0 < w[1].0),
            "{} final scan broken",
            tree.name()
        );
    }
}

#[test]
fn deletes_and_reinserts_converge() {
    let rt = Runtime::new_concurrent();
    for tree in baselines(&rt) {
        std::thread::scope(|s| {
            // Two threads fight over the same 32 keys with put/delete.
            for tid in 0..2u64 {
                let tree = tree.as_ref();
                let mut ctx = rt.thread(20 + tid);
                s.spawn(move || {
                    for i in 0..400u64 {
                        let key = i % 32;
                        if (i + tid) % 2 == 0 {
                            tree.put(&mut ctx, key, (tid << 16) | i);
                        } else {
                            tree.delete(&mut ctx, key);
                        }
                    }
                });
            }
        });
        // Every surviving record must be a value some thread wrote.
        let mut ctx = rt.thread(30);
        for key in 0..32u64 {
            if let Some(v) = tree.get(&mut ctx, key) {
                let (tid, i) = (v >> 16, v & 0xffff);
                assert!(tid < 2 && i < 400, "{} forged value {v:#x}", tree.name());
                assert_eq!(i % 32, key, "{} value for wrong key", tree.name());
            }
        }
    }
}
