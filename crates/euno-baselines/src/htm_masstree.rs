//! HTM-Masstree: the Masstree structure with every operation wrapped in
//! one monolithic HTM region that subsumes its fine-grained locks (§5.1
//! comparator (3)).
//!
//! The paper's finding: this performs *worse* than lock-based Masstree at
//! every contention level, "because HTM-based Masstree has shared variable
//! accesses which incurs frequent HTM aborts" — the per-node version
//! words that make the optimistic protocol work become transactional
//! read/write-set members, so every writer's counter bump aborts every
//! overlapping reader of that node. "Even for a highly optimized
//! concurrent B+Tree, it is still hard to directly take advantage of
//! HTM."
//!
//! Inside the region no locks are taken (elision): the transaction reads
//! each traversed node's version word (subscribing to it — a concurrent
//! non-transactional lock acquisition or counter bump aborts us) and
//! writers bump the counters transactionally, exactly what naive lock
//! subsumption produces.

use std::sync::Arc;

use euno_htm::{
    slot_for_key, Arena, BitLockVector, ConcurrentMap, Footprint, MemoryReport, RetryPolicy,
    RetryStrategy, Runtime, ThreadCtx, Tx, TxCell, TxResult, TxWord, KEY_SENTINEL, TOMBSTONE,
};

use crate::masstree::{
    node_visit_overhead, permutation_decode, MtInternal, MtLeaf, MtRef, LOCK_BIT, VINSERT_UNIT,
    VSPLIT_UNIT,
};
use crate::node::DEFAULT_FANOUT;

const F: usize = DEFAULT_FANOUT;

/// Masstree with whole-operation HTM regions subsuming its locks.
pub struct HtmMasstree {
    rt: Arc<Runtime>,
    ctrl: Box<euno_htm::ControlBlock>,
    strategy: Arc<dyn RetryStrategy>,
    leaves: Arena<MtLeaf>,
    internals: Arena<MtInternal>,
    /// Tree-global advisory slots for the executor's middle path; `None`
    /// (the default — this tree is the paper's two-path baseline)
    /// reproduces the classic two-path escalation (the ablation baseline).
    middle: Option<BitLockVector>,
}

impl HtmMasstree {
    pub fn new(rt: Arc<Runtime>) -> Self {
        let leaves = Arena::new();
        let internals = Arena::new();
        let first: &MtLeaf = leaves.alloc(MtLeaf::empty());
        rt.register_value(first, euno_htm::LineClass::Record);
        let ctrl = euno_htm::ControlBlock::new(MtRef::of_leaf(first).to_word());
        rt.register_value(&*ctrl, euno_htm::LineClass::Structure);
        HtmMasstree {
            ctrl,
            strategy: Arc::new(RetryPolicy::default()),
            rt,
            leaves,
            internals,
            middle: None,
        }
    }

    /// Middle-path advisory slots per tree.
    const MIDDLE_SLOTS: usize = 64;

    /// Enable the footprint-local middle path (§4.3): point operations
    /// declare a slot of a tree-global advisory table and escalate onto
    /// it before touching the global fallback. Off by default — the tree
    /// models the paper's two-path baseline; `fig13_threepath` measures
    /// the difference.
    pub fn three_path(mut self) -> Self {
        self.middle = Some(BitLockVector::new(Self::MIDDLE_SLOTS));
        self
    }

    /// The middle-path footprint of a point operation on `key`.
    fn middle_footprint(&self, key: u64) -> Option<Footprint<'_>> {
        self.middle
            .as_ref()
            .map(|m| Footprint::new(m, &[slot_for_key(key, Self::MIDDLE_SLOTS as u32)]))
    }

    /// Select the retry strategy the executor runs this tree under.
    pub fn with_strategy(rt: Arc<Runtime>, strategy: Arc<dyn RetryStrategy>) -> Self {
        let mut t = Self::new(rt);
        t.strategy = strategy;
        t
    }

    /// Read a node's version word transactionally — the lock-subsumption
    /// step: joins the read set, and a locked version (a concurrent
    /// fallback-path writer) forces an explicit abort, like hardware lock
    /// elision checking the elided lock.
    fn subscribe_version(tx: &mut Tx<'_>, cell: &TxCell<u64>) -> TxResult<u64> {
        let v = tx.read(cell)?;
        if v & LOCK_BIT != 0 {
            return tx.explicit_abort(0x10);
        }
        Ok(v)
    }

    fn descend<'t>(&'t self, tx: &mut Tx<'_>, key: u64) -> TxResult<&'t MtLeaf> {
        let mut cur = MtRef::from_word(tx.read(&self.ctrl.root)?);
        loop {
            Self::subscribe_version(tx, unsafe { &cur.version().cell })?;
            if cur.is_leaf() {
                return Ok(unsafe { cur.leaf() });
            }
            let int: &MtInternal = unsafe { cur.internal() };
            node_visit_overhead(tx.ctx());
            let cnt = tx.read(&int.count)? as usize;
            let (mut lo, mut hi) = (0usize, cnt);
            while lo < hi {
                let mid = (lo + hi) / 2;
                permutation_decode(tx.ctx());
                if tx.read(&int.keys[mid])? <= key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            cur = if lo == 0 {
                MtRef::from_word(tx.read(&int.child0)?)
            } else {
                MtRef::from_word(tx.read(&int.children[lo - 1])?)
            };
        }
    }

    fn leaf_find(&self, tx: &mut Tx<'_>, leaf: &MtLeaf, key: u64) -> TxResult<Option<usize>> {
        node_visit_overhead(tx.ctx());
        let cnt = tx.read(&leaf.count)? as usize;
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            permutation_decode(tx.ctx());
            if tx.read(&leaf.keys[mid])? < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < cnt && tx.read(&leaf.keys[lo])? == key {
            Ok(Some(lo))
        } else {
            Ok(None)
        }
    }

    /// Transactional version-counter bump — the shared-metadata write that
    /// makes this design abort-prone.
    fn bump(tx: &mut Tx<'_>, cell: &TxCell<u64>, inserted: bool, split: bool) -> TxResult<()> {
        let v = tx.read(cell)?;
        let mut next = v;
        if inserted {
            next = next.wrapping_add(VINSERT_UNIT);
        }
        if split {
            next = next.wrapping_add(VSPLIT_UNIT);
        }
        tx.write(cell, next)
    }

    fn leaf_insert(&self, tx: &mut Tx<'_>, leaf: &MtLeaf, key: u64, val: u64) -> TxResult<()> {
        let cnt = tx.read(&leaf.count)? as usize;
        debug_assert!(cnt < F);
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if tx.read(&leaf.keys[mid])? < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut i = cnt;
        while i > lo {
            let k = tx.read(&leaf.keys[i - 1])?;
            let v = tx.read(&leaf.vals[i - 1])?;
            tx.write(&leaf.keys[i], k)?;
            tx.write(&leaf.vals[i], v)?;
            i -= 1;
        }
        tx.write(&leaf.keys[lo], key)?;
        tx.write(&leaf.vals[lo], val)?;
        tx.write(&leaf.count, (cnt + 1) as u64)?;
        Self::bump(tx, &leaf.version.cell, true, false)
    }

    fn split_leaf<'t>(
        &'t self,
        tx: &mut Tx<'_>,
        leaf: &'t MtLeaf,
        key: u64,
    ) -> TxResult<&'t MtLeaf> {
        let right: &MtLeaf = self.leaves.alloc(MtLeaf::empty());
        self.rt.register_value(right, euno_htm::LineClass::Record);
        let mid = F / 2;
        for i in mid..F {
            let k = tx.read(&leaf.keys[i])?;
            let v = tx.read(&leaf.vals[i])?;
            tx.write(&right.keys[i - mid], k)?;
            tx.write(&right.vals[i - mid], v)?;
        }
        let sep = tx.read(&leaf.keys[mid])?;
        tx.write(&right.count, (F - mid) as u64)?;
        tx.write(&leaf.count, mid as u64)?;
        let old_next = tx.read(&leaf.next)?;
        tx.write(&right.next, old_next)?;
        tx.write(&leaf.next, MtRef::of_leaf(right).to_word())?;
        let parent_bits = tx.read(&leaf.parent)?;
        tx.write(&right.parent, parent_bits)?;
        Self::bump(tx, &leaf.version.cell, false, true)?;
        self.insert_into_parent(tx, MtRef::of_leaf(leaf), sep, MtRef::of_leaf(right))?;
        Ok(if key < sep { leaf } else { right })
    }

    fn insert_into_parent(
        &self,
        tx: &mut Tx<'_>,
        mut child: MtRef,
        mut sep: u64,
        mut right: MtRef,
    ) -> TxResult<()> {
        loop {
            let parent_bits = tx.read(unsafe { child.parent_cell() })?;
            if parent_bits == 0 {
                let nr: &MtInternal = self.internals.alloc(MtInternal::empty());
                self.rt.register_value(nr, euno_htm::LineClass::Structure);
                tx.write(&nr.child0, child.to_word())?;
                tx.write(&nr.keys[0], sep)?;
                tx.write(&nr.children[0], right.to_word())?;
                tx.write(&nr.count, 1)?;
                let nref = MtRef::of_internal(nr);
                tx.write(unsafe { child.parent_cell() }, nref.to_word())?;
                tx.write(unsafe { right.parent_cell() }, nref.to_word())?;
                tx.write(&self.ctrl.root, nref.to_word())?;
                return Ok(());
            }
            let parent: &MtInternal = unsafe { MtRef::from_word(parent_bits).internal() };
            let cnt = tx.read(&parent.count)? as usize;
            if cnt < F {
                self.internal_insert(tx, parent, cnt, sep, right)?;
                tx.write(unsafe { right.parent_cell() }, parent_bits)?;
                Self::bump(tx, &parent.version.cell, true, false)?;
                return Ok(());
            }
            let new_int: &MtInternal = self.internals.alloc(MtInternal::empty());
            self.rt
                .register_value(new_int, euno_htm::LineClass::Structure);
            let new_ref = MtRef::of_internal(new_int);
            let mid = F / 2;
            let promoted = tx.read(&parent.keys[mid])?;
            let mid_child = MtRef::from_word(tx.read(&parent.children[mid])?);
            tx.write(&new_int.child0, mid_child.to_word())?;
            tx.write(unsafe { mid_child.parent_cell() }, new_ref.to_word())?;
            for i in mid + 1..F {
                let k = tx.read(&parent.keys[i])?;
                let c = MtRef::from_word(tx.read(&parent.children[i])?);
                tx.write(&new_int.keys[i - mid - 1], k)?;
                tx.write(&new_int.children[i - mid - 1], c.to_word())?;
                tx.write(unsafe { c.parent_cell() }, new_ref.to_word())?;
            }
            tx.write(&new_int.count, (F - mid - 1) as u64)?;
            tx.write(&parent.count, mid as u64)?;
            let grandparent = tx.read(&parent.parent)?;
            tx.write(&new_int.parent, grandparent)?;
            Self::bump(tx, &parent.version.cell, true, true)?;

            let (target, target_bits) = if sep < promoted {
                (parent, parent_bits)
            } else {
                (new_int, new_ref.to_word())
            };
            let tcnt = tx.read(&target.count)? as usize;
            self.internal_insert(tx, target, tcnt, sep, right)?;
            tx.write(unsafe { right.parent_cell() }, target_bits)?;

            sep = promoted;
            right = new_ref;
            child = MtRef::from_word(parent_bits);
        }
    }

    fn internal_insert(
        &self,
        tx: &mut Tx<'_>,
        node: &MtInternal,
        cnt: usize,
        sep: u64,
        right: MtRef,
    ) -> TxResult<()> {
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if tx.read(&node.keys[mid])? < sep {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut i = cnt;
        while i > lo {
            let k = tx.read(&node.keys[i - 1])?;
            let c = tx.read(&node.children[i - 1])?;
            tx.write(&node.keys[i], k)?;
            tx.write(&node.children[i], c)?;
            i -= 1;
        }
        tx.write(&node.keys[lo], sep)?;
        tx.write(&node.children[lo], right.to_word())?;
        tx.write(&node.count, (cnt + 1) as u64)?;
        Ok(())
    }
}

impl ConcurrentMap for HtmMasstree {
    fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let fp = self.middle_footprint(key);
        ctx.htm_execute_with(&self.ctrl.fallback, &*self.strategy, fp.as_ref(), |tx| {
            tx.set_op_key(key);
            let leaf = self.descend(tx, key)?;
            match self.leaf_find(tx, leaf, key)? {
                Some(i) => {
                    let v = tx.read(&leaf.vals[i])?;
                    Ok((v != TOMBSTONE).then_some(v))
                }
                None => Ok(None),
            }
        })
        .value
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Option<u64> {
        assert!(key < KEY_SENTINEL && value != TOMBSTONE);
        let fp = self.middle_footprint(key);
        ctx.htm_execute_with(&self.ctrl.fallback, &*self.strategy, fp.as_ref(), |tx| {
            tx.set_op_key(key);
            let leaf = self.descend(tx, key)?;
            if let Some(i) = self.leaf_find(tx, leaf, key)? {
                let old = tx.read(&leaf.vals[i])?;
                tx.write(&leaf.vals[i], value)?;
                return Ok((old != TOMBSTONE).then_some(old));
            }
            let cnt = tx.read(&leaf.count)? as usize;
            let target = if cnt == F {
                self.split_leaf(tx, leaf, key)?
            } else {
                leaf
            };
            self.leaf_insert(tx, target, key, value)?;
            Ok(None)
        })
        .value
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let fp = self.middle_footprint(key);
        ctx.htm_execute_with(&self.ctrl.fallback, &*self.strategy, fp.as_ref(), |tx| {
            tx.set_op_key(key);
            let leaf = self.descend(tx, key)?;
            match self.leaf_find(tx, leaf, key)? {
                Some(i) => {
                    let old = tx.read(&leaf.vals[i])?;
                    if old == TOMBSTONE {
                        return Ok(None);
                    }
                    tx.write(&leaf.vals[i], TOMBSTONE)?;
                    Self::bump(tx, &leaf.version.cell, true, false)?;
                    Ok(Some(old))
                }
                None => Ok(None),
            }
        })
        .value
    }

    fn scan(
        &self,
        ctx: &mut ThreadCtx,
        from: u64,
        count: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        let collected = ctx
            .htm_execute(&self.ctrl.fallback, &*self.strategy, |tx| {
                tx.set_op_key(from);
                let mut acc = Vec::with_capacity(count.min(1024));
                let mut leaf = self.descend(tx, from)?;
                'outer: loop {
                    let cnt = tx.read(&leaf.count)? as usize;
                    for i in 0..cnt {
                        let k = tx.read(&leaf.keys[i])?;
                        if k < from {
                            continue;
                        }
                        let v = tx.read(&leaf.vals[i])?;
                        if v == TOMBSTONE {
                            continue;
                        }
                        acc.push((k, v));
                        if acc.len() == count {
                            break 'outer;
                        }
                    }
                    let next = MtRef::from_word(tx.read(&leaf.next)?);
                    if next.is_null() {
                        break;
                    }
                    leaf = unsafe { next.leaf() };
                }
                Ok(acc)
            })
            .value;
        let n = collected.len();
        out.extend(collected);
        n
    }

    fn name(&self) -> &'static str {
        "HTM-Masstree"
    }

    fn memory(&self) -> MemoryReport {
        MemoryReport {
            structural_bytes: self.leaves.live_bytes() + self.internals.live_bytes(),
            ..MemoryReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tree() -> (Arc<Runtime>, HtmMasstree, ThreadCtx) {
        let rt = Runtime::new_virtual();
        let t = HtmMasstree::new(Arc::clone(&rt));
        let ctx = rt.thread(1);
        (rt, t, ctx)
    }

    #[test]
    fn basic_roundtrip_and_splits() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..3_000u64 {
            t.put(&mut ctx, (k * 11) % 3_000, k);
        }
        for k in 0..3_000u64 {
            assert!(t.get(&mut ctx, k).is_some(), "key {k}");
        }
    }

    #[test]
    fn matches_model() {
        let (_rt, t, mut ctx) = tree();
        let mut model = BTreeMap::new();
        let mut s = 0xD1B54A32D192ED03u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..15_000 {
            let key = rnd() % 400;
            match rnd() % 10 {
                0..=4 => {
                    let v = rnd() % 100_000;
                    assert_eq!(t.put(&mut ctx, key, v), model.insert(key, v));
                }
                5..=6 => assert_eq!(t.delete(&mut ctx, key), model.remove(&key)),
                _ => assert_eq!(t.get(&mut ctx, key), model.get(&key).copied()),
            }
        }
        let mut out = Vec::new();
        t.scan(&mut ctx, 0, usize::MAX, &mut out);
        assert_eq!(out, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn version_bumps_cause_reader_aborts_under_overlap() {
        // The defining pathology: an overlapping reader and writer of the
        // same node conflict on the version word even when they touch
        // different records.
        let rt = Runtime::new_virtual();
        let t = HtmMasstree::new(Arc::clone(&rt));
        {
            let mut ctx = rt.thread(0);
            for k in 0..8u64 {
                t.put(&mut ctx, k, k);
            }
        }
        rt.reset_dynamics();
        let mut ctxs: Vec<ThreadCtx> = (1..=6).map(|i| rt.thread(i)).collect();
        for round in 0..600u64 {
            let idx = (0..ctxs.len()).min_by_key(|&i| (ctxs[i].clock, i)).unwrap();
            if idx % 2 == 0 {
                // Writer repeatedly inserts fresh keys (bumps versions).
                t.put(&mut ctxs[idx], 1_000 + round, round);
            } else {
                // Reader touches a *different* existing key.
                t.get(&mut ctxs[idx], round % 8);
            }
        }
        let aborts: u64 = ctxs.iter().map(|c| c.stats.aborts.total()).sum();
        assert!(aborts > 0, "version-word sharing must abort transactions");
    }

    #[test]
    fn concurrent_inserts_no_lost_updates() {
        let rt = Runtime::new_concurrent();
        let t = HtmMasstree::new(Arc::clone(&rt));
        let per = 300u64;
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                let mut ctx = rt.thread(tid);
                s.spawn(move || {
                    for i in 0..per {
                        let key = tid * per + i;
                        t.put(&mut ctx, key, key + 1);
                    }
                });
            }
        });
        let mut ctx = rt.thread(9);
        for key in 0..4 * per {
            assert_eq!(t.get(&mut ctx, key), Some(key + 1), "key {key}");
        }
    }
}
