//! A fine-grained-locking concurrent B+Tree implementing the Masstree
//! §4.6 concurrency protocol — the paper's lock-based comparator.
//!
//! The paper compares Euno-B+Tree against "a highly optimized concurrent
//! B+Tree implementation derived from Masstree" (§5.1). The essence of
//! that design (Mao, Kohler, Morris, EuroSys 2012, §4.6) is per-node
//! *version words* combined with optimistic reads:
//!
//! * every node carries a version with a lock bit, an insert counter and a
//!   split counter;
//! * readers take no locks: they snapshot a *stable* version (spinning out
//!   writers), read the node, and re-check the version — retrying on any
//!   change ("before-and-after" validation);
//! * writers spin-lock the node, mutate in place, bump the matching
//!   counter and unlock; splits hand-over-hand lock upward (child before
//!   parent), which is deadlock-free because all multi-lock operations
//!   lock in the same leaf-to-root order.
//!
//! This protocol is exactly why Masstree executes ~2.1× the instructions
//! of Euno-B+Tree at θ = 0.5 (§5.2: "a put operation in Masstree needs on
//! average to check and manipulate a version number about 15 times while
//! traversing the tree") — every level costs a stable-read and a
//! validation on top of the key comparisons. Those instruction counts
//! emerge here from the same per-access charging as every other tree.

use std::sync::Arc;

use euno_htm::runtime::lock_key_for_addr;
use euno_htm::{
    Arena, ConcurrentMap, EpisodeKind, MemoryReport, Mode, Runtime, ThreadCtx, TxCell, TxWord,
    KEY_SENTINEL, TOMBSTONE,
};

use crate::node::DEFAULT_FANOUT;

// ----- version word layout: [vsplit:31][vinsert:32][lock:1] -----

pub(crate) const LOCK_BIT: u64 = 1;
pub(crate) const VINSERT_UNIT: u64 = 1 << 1;
pub(crate) const VSPLIT_UNIT: u64 = 1 << 33;
const VSPLIT_MASK: u64 = !0 << 33;

/// A Masstree-style node version word with lock semantics in both engine
/// modes.
pub struct Version {
    pub(crate) cell: TxCell<u64>,
}

impl Version {
    pub(crate) fn new() -> Self {
        Version {
            cell: TxCell::new(0),
        }
    }

    /// Spin until unlocked; return the observed stable version.
    fn stable(&self, ctx: &mut ThreadCtx) -> u64 {
        let spin = ctx.runtime().cost.spin_iter;
        loop {
            let v = self.cell.load_direct(ctx);
            if v & LOCK_BIT == 0 {
                return v;
            }
            ctx.charge(spin);
            ctx.stats.cycles_lock_wait += spin;
            std::hint::spin_loop();
        }
    }

    /// Plain read for before/after validation.
    fn read(&self, ctx: &mut ThreadCtx) -> u64 {
        self.cell.load_direct(ctx)
    }

    /// Writer lock (CAS on the lock bit; virtual-time wait semantics in
    /// virtual mode).
    fn lock(&self, ctx: &mut ThreadCtx) {
        match ctx.mode() {
            Mode::Concurrent => {
                let spin = ctx.runtime().cost.spin_iter;
                loop {
                    let v = self.cell.load_direct(ctx);
                    if v & LOCK_BIT == 0 && self.cell.cas_direct_quiet(ctx, v, v | LOCK_BIT) {
                        return;
                    }
                    ctx.charge(spin);
                    ctx.stats.cycles_lock_wait += spin;
                    std::hint::spin_loop();
                }
            }
            Mode::Virtual => {
                let key = lock_key_for_addr(&self.cell as *const _ as usize);
                let free_at = ctx.runtime().vlock_free_at(key, ctx.clock);
                if free_at > ctx.clock {
                    ctx.stats.cycles_lock_wait += free_at - ctx.clock;
                    ctx.clock = free_at;
                }
                let v = self.cell.load_direct(ctx);
                debug_assert_eq!(v & LOCK_BIT, 0);
                let ok = self.cell.cas_direct_quiet(ctx, v, v | LOCK_BIT);
                debug_assert!(ok);
            }
        }
    }

    /// Unlock, bumping the insert and/or split counters.
    fn unlock(&self, ctx: &mut ThreadCtx, inserted: bool, split: bool) {
        if ctx.mode() == Mode::Virtual {
            let key = lock_key_for_addr(&self.cell as *const _ as usize);
            ctx.runtime().vlock_hold(key, ctx.clock);
        }
        let v = self.cell.load_direct(ctx);
        debug_assert_ne!(v & LOCK_BIT, 0, "unlock of unlocked version");
        let mut next = v & !LOCK_BIT;
        if inserted {
            next = next.wrapping_add(VINSERT_UNIT);
        }
        if split {
            next = next.wrapping_add(VSPLIT_UNIT);
        }
        if inserted || split {
            // Counter bump: version-visible — overlapping optimistic
            // readers must observe it (published point write).
            self.cell.store_direct(ctx, next);
        } else {
            // Pure unlock: validators compare version values, and the
            // value is back to what they read before — invisible.
            self.cell.store_direct_quiet(ctx, next);
        }
    }

    fn vsplit_of(v: u64) -> u64 {
        v & VSPLIT_MASK
    }
}

// ----- nodes -----

/// Masstree leaf: sorted records, version word, leaf chain.
#[repr(C, align(64))]
pub struct MtLeaf {
    pub(crate) version: Version,
    pub(crate) parent: TxCell<u64>,
    pub(crate) next: TxCell<u64>,
    pub(crate) count: TxCell<u64>,
    /// B-link fence: exclusive upper bound of this leaf's key range
    /// (`KEY_SENTINEL` = +∞). A traversal that lands here *after* a
    /// concurrent split detects the shrunken range by `key ≥ highkey`
    /// and retries — closing the stale-child-pointer race that version
    /// validation alone cannot see once the split has completed.
    pub(crate) highkey: TxCell<u64>,
    _pad: [u64; 3],
    pub(crate) keys: [TxCell<u64>; DEFAULT_FANOUT],
    pub(crate) vals: [TxCell<u64>; DEFAULT_FANOUT],
}

/// Masstree internal node.
#[repr(C, align(64))]
pub struct MtInternal {
    pub(crate) version: Version,
    pub(crate) parent: TxCell<u64>,
    pub(crate) count: TxCell<u64>,
    pub(crate) child0: TxCell<u64>,
    _pad: [u64; 4],
    pub(crate) keys: [TxCell<u64>; DEFAULT_FANOUT],
    pub(crate) children: [TxCell<u64>; DEFAULT_FANOUT],
}

impl MtLeaf {
    pub(crate) fn empty() -> Self {
        MtLeaf {
            version: Version::new(),
            parent: TxCell::new(0),
            next: TxCell::new(0),
            count: TxCell::new(0),
            highkey: TxCell::new(KEY_SENTINEL),
            _pad: [0; 3],
            keys: std::array::from_fn(|_| TxCell::new(KEY_SENTINEL)),
            vals: std::array::from_fn(|_| TxCell::new(0)),
        }
    }
}

impl MtInternal {
    pub(crate) fn empty() -> Self {
        MtInternal {
            version: Version::new(),
            parent: TxCell::new(0),
            count: TxCell::new(0),
            child0: TxCell::new(0),
            _pad: [0; 4],
            keys: std::array::from_fn(|_| TxCell::new(KEY_SENTINEL)),
            children: std::array::from_fn(|_| TxCell::new(0)),
        }
    }
}

/// Tagged pointer: bit 0 ⇒ leaf.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MtRef(pub u64);

impl MtRef {
    pub const NULL: MtRef = MtRef(0);
    pub(crate) fn of_leaf(l: &MtLeaf) -> Self {
        MtRef(l as *const MtLeaf as u64 | 1)
    }
    pub(crate) fn of_internal(i: &MtInternal) -> Self {
        MtRef(i as *const MtInternal as u64)
    }
    pub(crate) fn is_null(self) -> bool {
        self.0 == 0
    }
    pub(crate) fn is_leaf(self) -> bool {
        self.0 & 1 == 1
    }
    /// Safety: arena-owned node, tree outlives use.
    pub(crate) unsafe fn leaf<'a>(self) -> &'a MtLeaf {
        &*((self.0 & !1) as *const MtLeaf)
    }
    pub(crate) unsafe fn internal<'a>(self) -> &'a MtInternal {
        &*(self.0 as *const MtInternal)
    }
    pub(crate) unsafe fn version<'a>(self) -> &'a Version {
        if self.is_leaf() {
            &self.leaf().version
        } else {
            &self.internal().version
        }
    }
    pub(crate) unsafe fn parent_cell<'a>(self) -> &'a TxCell<u64> {
        if self.is_leaf() {
            &self.leaf().parent
        } else {
            &self.internal().parent
        }
    }
}

impl TxWord for MtRef {
    fn to_word(self) -> u64 {
        self.0
    }
    fn from_word(w: u64) -> Self {
        MtRef(w)
    }
}

/// Does an optimistic-read overlap force a retry? Masstree readers
/// validate node *versions*, which writers bump only for inserts and
/// splits — a concurrent value update changes no version, so a collision
/// on record storage is invisible to the protocol (the reader returns one
/// of the two linearizable values). Only collisions on header/metadata or
/// index-structure lines (count words, version words, child pointers)
/// correspond to observable version changes.
#[inline]
fn version_visible(overlap: Option<euno_htm::ConflictInfo>) -> bool {
    use euno_htm::ConflictKind::*;
    match overlap {
        None => false,
        Some(ci) => matches!(ci.kind, FalseMetadata | FalseStructure | Unclassified),
    }
}

fn register_leaf(rt: &Runtime, l: &MtLeaf) {
    let base = l as *const MtLeaf as usize;
    let keys_off = std::mem::offset_of!(MtLeaf, keys);
    rt.register_region(base, keys_off, euno_htm::LineClass::Metadata);
    rt.register_region(
        base + keys_off,
        std::mem::size_of::<MtLeaf>() - keys_off,
        euno_htm::LineClass::Record,
    );
}

/// Charge the cost of one permutation-word indirection: real Masstree
/// stores records unsorted and reads them through a 64-bit permutation,
/// so every key comparison is `keys[perm[i]]` — an extra dependent load
/// plus shift/mask work. This (with the version protocol) is where the
/// paper's "Masstree executes ~2.1× the instructions" comes from (§5.2).
#[inline]
pub(crate) fn permutation_decode(ctx: &mut ThreadCtx) {
    // Two dependent loads (permutation word slot + key slice) plus the
    // extract/compare ALU work of variable-length key handling.
    ctx.stats.mem_accesses += 2;
    let c = 2 * ctx.runtime().cost.access_hit + 6 * ctx.runtime().cost.alu;
    ctx.charge(c);
}

/// Per-node overhead of entering a Masstree node: fetch and decode the
/// permutation word, border-node bookkeeping.
#[inline]
pub(crate) fn node_visit_overhead(ctx: &mut ThreadCtx) {
    ctx.stats.mem_accesses += 1;
    let c = ctx.runtime().cost.line_first_touch / 2 + 4 * ctx.runtime().cost.alu;
    ctx.charge(c);
}

/// Value-indirection charge: Masstree stores values out-of-node behind a
/// pointer (leafvalue/suffix storage), so touching a record's value is an
/// extra dependent cache access.
#[inline]
fn value_indirection(ctx: &mut ThreadCtx) {
    ctx.stats.mem_accesses += 1;
    ctx.charge(ctx.runtime().cost.line_first_touch / 2 + 2 * ctx.runtime().cost.alu);
}

/// The fine-grained-locking comparator tree ("Masstree" in the figures).
pub struct Masstree {
    rt: Arc<Runtime>,
    ctrl: Box<euno_htm::ControlBlock>,
    leaves: Arena<MtLeaf>,
    internals: Arena<MtInternal>,
}

const F: usize = DEFAULT_FANOUT;

impl Masstree {
    pub fn new(rt: Arc<Runtime>) -> Self {
        let leaves = Arena::new();
        let internals = Arena::new();
        let first: &MtLeaf = leaves.alloc(MtLeaf::empty());
        register_leaf(&rt, first);
        let ctrl = euno_htm::ControlBlock::new(MtRef::of_leaf(first).to_word());
        rt.register_value(&*ctrl, euno_htm::LineClass::Structure);
        Masstree {
            ctrl,
            rt,
            leaves,
            internals,
        }
    }

    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    // ----- optimistic descent (readers and writer location) -----

    /// Optimistically walk to the leaf for `key`. Returns the leaf and the
    /// stable version observed on it, or `None` if validation failed and
    /// the caller should restart. Must run inside an OptimisticRead
    /// episode.
    fn descend(&self, ctx: &mut ThreadCtx, key: u64) -> Option<(&MtLeaf, u64)> {
        let mut node = MtRef::from_word(self.ctrl.root.load_direct(ctx));
        let mut v = unsafe { node.version() }.stable(ctx);
        loop {
            if node.is_leaf() {
                return Some((unsafe { node.leaf() }, v));
            }
            let int = unsafe { node.internal() };
            node_visit_overhead(ctx);
            let cnt = (int.count.load_direct(ctx) as usize).min(F);
            let (mut lo, mut hi) = (0usize, cnt);
            while lo < hi {
                let mid = (lo + hi) / 2;
                // Masstree reads keys through a permutation word: one
                // extra decoded load per comparison (§4.6 of that paper).
                permutation_decode(ctx);
                if int.keys[mid].load_direct(ctx) <= key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let child = if lo == 0 {
                MtRef::from_word(int.child0.load_direct(ctx))
            } else {
                MtRef::from_word(int.children[lo - 1].load_direct(ctx))
            };
            // Before/after check: the child pointer is only trustworthy if
            // the node did not change while we searched it.
            if int.version.read(ctx) != v || child.is_null() {
                return None;
            }
            node = child;
            v = unsafe { node.version() }.stable(ctx);
        }
    }

    /// Search a leaf's sorted records without locks. Returns
    /// (slot, value) when present.
    fn leaf_search(&self, ctx: &mut ThreadCtx, leaf: &MtLeaf, key: u64) -> Option<(usize, u64)> {
        node_visit_overhead(ctx);
        let cnt = (leaf.count.load_direct(ctx) as usize).min(F);
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            permutation_decode(ctx);
            if leaf.keys[mid].load_direct(ctx) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < cnt && leaf.keys[lo].load_direct(ctx) == key {
            Some((lo, leaf.vals[lo].load_direct(ctx)))
        } else {
            None
        }
    }

    /// Full optimistic read of one key: descent + leaf search + double
    /// validation (node version and, in virtual mode, episode overlap).
    /// The retry loop is the engine's [`ThreadCtx::optimistic_execute`].
    fn read_key(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let found = ctx.optimistic_execute(Some(key), version_visible, |ctx| {
            let (leaf, v) = self.descend(ctx, key)?;
            let in_range = key < leaf.highkey.load_direct(ctx);
            let found = self.leaf_search(ctx, leaf, key);
            if found.is_some() {
                value_indirection(ctx);
            }
            if !in_range || leaf.version.read(ctx) != v {
                return None;
            }
            Some(found.map(|(_, val)| val))
        });
        found.filter(|&v| v != TOMBSTONE)
    }

    /// Locate and writer-lock the leaf for `key`, revalidating that no
    /// split moved the key range while we were locking.
    fn locate_locked(&self, ctx: &mut ThreadCtx, key: u64) -> &MtLeaf {
        loop {
            let (leaf_ptr, v) = ctx.optimistic_execute(None, version_visible, |ctx| {
                self.descend(ctx, key).map(|(l, v)| (l as *const MtLeaf, v))
            });
            let leaf = unsafe { &*leaf_ptr };
            leaf.version.lock(ctx);
            // Two staleness guards once the lock is held: the split
            // counter (split since we located it) and the B-link fence
            // (we located it after a split had already shrunk its range).
            let split_since = Version::vsplit_of(leaf.version.read(ctx)) != Version::vsplit_of(v);
            let out_of_range = key >= leaf.highkey.load_direct(ctx);
            if split_since || out_of_range {
                leaf.version.unlock(ctx, false, false);
                ctx.stats.optimistic_retries += 1;
                continue;
            }
            return leaf;
        }
    }

    // ----- locked mutations -----

    /// Insert into a locked, non-full leaf (sorted shift).
    fn leaf_insert(&self, ctx: &mut ThreadCtx, leaf: &MtLeaf, key: u64, val: u64) {
        let cnt = leaf.count.load_direct(ctx) as usize;
        debug_assert!(cnt < F);
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if leaf.keys[mid].load_direct(ctx) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut i = cnt;
        while i > lo {
            let k = leaf.keys[i - 1].load_direct(ctx);
            let v = leaf.vals[i - 1].load_direct(ctx);
            leaf.keys[i].store_direct(ctx, k);
            leaf.vals[i].store_direct(ctx, v);
            i -= 1;
        }
        leaf.keys[lo].store_direct(ctx, key);
        leaf.vals[lo].store_direct(ctx, val);
        leaf.count.store_direct(ctx, (cnt + 1) as u64);
    }

    /// Split a locked, full leaf; returns the (locked) leaf that should
    /// receive `key`. The sibling is returned locked too when it is the
    /// target; the non-target side is unlocked here.
    fn split_leaf<'t>(&'t self, ctx: &mut ThreadCtx, leaf: &'t MtLeaf, key: u64) -> &'t MtLeaf {
        let right: &MtLeaf = self.leaves.alloc(MtLeaf::empty());
        register_leaf(&self.rt, right);
        right.version.lock(ctx);
        let mid = F / 2;
        for i in mid..F {
            let k = leaf.keys[i].load_direct(ctx);
            let v = leaf.vals[i].load_direct(ctx);
            right.keys[i - mid].store_direct(ctx, k);
            right.vals[i - mid].store_direct(ctx, v);
        }
        let sep = leaf.keys[mid].load_direct(ctx);
        right.count.store_direct(ctx, (F - mid) as u64);
        leaf.count.store_direct(ctx, mid as u64);
        let old_next = leaf.next.load_direct(ctx);
        right.next.store_direct(ctx, old_next);
        leaf.next.store_direct(ctx, MtRef::of_leaf(right).to_word());
        let parent_bits = leaf.parent.load_direct(ctx);
        right.parent.store_direct(ctx, parent_bits);
        // B-link fences: the right node inherits the old bound; the old
        // node's range now ends at the separator.
        let old_high = leaf.highkey.load_direct(ctx);
        right.highkey.store_direct(ctx, old_high);
        leaf.highkey.store_direct(ctx, sep);

        self.insert_into_parent(ctx, MtRef::of_leaf(leaf), sep, MtRef::of_leaf(right));

        // Release the non-target half. The *old* leaf must observe a
        // split-counter bump either here (when the new right node is the
        // target) or at the caller's final unlock (when the old leaf is) —
        // writers that located it before the split revalidate on vsplit.
        if key < sep {
            right.version.unlock(ctx, false, false);
            leaf
        } else {
            leaf.version.unlock(ctx, false, true);
            right
        }
    }

    /// Hand-over-hand upward split propagation: the child is locked; lock
    /// the parent (revalidating the link), insert or split recursively.
    fn insert_into_parent(&self, ctx: &mut ThreadCtx, child: MtRef, sep: u64, right: MtRef) {
        let parent_bits = unsafe { child.parent_cell() }.load_direct(ctx);
        if parent_bits == 0 {
            // Child is the root: serialize root replacement.
            self.ctrl.root_lock.acquire(ctx);
            // Re-check: another split may have already grown the tree.
            let still_root = unsafe { child.parent_cell() }.load_direct(ctx) == 0;
            if still_root {
                let nr: &MtInternal = self.internals.alloc(MtInternal::empty());
                self.rt.register_value(nr, euno_htm::LineClass::Structure);
                nr.child0.store_direct(ctx, child.to_word());
                nr.keys[0].store_direct(ctx, sep);
                nr.children[0].store_direct(ctx, right.to_word());
                nr.count.store_direct(ctx, 1);
                let nr_ref = MtRef::of_internal(nr);
                unsafe { child.parent_cell() }.store_direct(ctx, nr_ref.to_word());
                unsafe { right.parent_cell() }.store_direct(ctx, nr_ref.to_word());
                self.ctrl.root.store_direct(ctx, nr_ref.to_word());
                self.ctrl.root_lock.release(ctx);
                return;
            }
            self.ctrl.root_lock.release(ctx);
            // Fall through: re-read the (now non-null) parent below.
            return self.insert_into_parent(ctx, child, sep, right);
        }

        // Lock the parent, revalidating the link (the parent itself may
        // split concurrently and move `child` to a new node).
        let parent: &MtInternal = loop {
            let p = MtRef::from_word(unsafe { child.parent_cell() }.load_direct(ctx));
            let int = unsafe { p.internal() };
            int.version.lock(ctx);
            if unsafe { child.parent_cell() }.load_direct(ctx) == p.to_word() {
                break int;
            }
            int.version.unlock(ctx, false, false);
        };

        let cnt = parent.count.load_direct(ctx) as usize;
        if cnt < F {
            self.internal_insert(ctx, parent, cnt, sep, right);
            unsafe { right.parent_cell() }.store_direct(ctx, MtRef::of_internal(parent).to_word());
            parent.version.unlock(ctx, true, false);
            return;
        }

        // Split the parent, then recurse upward while still holding it.
        let new_int: &MtInternal = self.internals.alloc(MtInternal::empty());
        self.rt
            .register_value(new_int, euno_htm::LineClass::Structure);
        new_int.version.lock(ctx);
        let new_ref = MtRef::of_internal(new_int);
        let mid = F / 2;
        let promoted = parent.keys[mid].load_direct(ctx);
        let mid_child = MtRef::from_word(parent.children[mid].load_direct(ctx));
        new_int.child0.store_direct(ctx, mid_child.to_word());
        unsafe { mid_child.parent_cell() }.store_direct(ctx, new_ref.to_word());
        for i in mid + 1..F {
            let k = parent.keys[i].load_direct(ctx);
            let c = MtRef::from_word(parent.children[i].load_direct(ctx));
            new_int.keys[i - mid - 1].store_direct(ctx, k);
            new_int.children[i - mid - 1].store_direct(ctx, c.to_word());
            unsafe { c.parent_cell() }.store_direct(ctx, new_ref.to_word());
        }
        new_int.count.store_direct(ctx, (F - mid - 1) as u64);
        parent.count.store_direct(ctx, mid as u64);
        let grandparent_bits = parent.parent.load_direct(ctx);
        new_int.parent.store_direct(ctx, grandparent_bits);

        let (target, target_ref) = if sep < promoted {
            (parent, MtRef::of_internal(parent))
        } else {
            (new_int, new_ref)
        };
        let tcnt = target.count.load_direct(ctx) as usize;
        self.internal_insert(ctx, target, tcnt, sep, right);
        unsafe { right.parent_cell() }.store_direct(ctx, target_ref.to_word());

        // Recurse upward before unlocking (lock order is strictly upward,
        // so holding these locks cannot deadlock).
        self.insert_into_parent(ctx, MtRef::of_internal(parent), promoted, new_ref);
        new_int.version.unlock(ctx, true, false);
        parent.version.unlock(ctx, true, true);
    }

    fn internal_insert(
        &self,
        ctx: &mut ThreadCtx,
        node: &MtInternal,
        cnt: usize,
        sep: u64,
        right: MtRef,
    ) {
        debug_assert!(cnt < F);
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if node.keys[mid].load_direct(ctx) < sep {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut i = cnt;
        while i > lo {
            let k = node.keys[i - 1].load_direct(ctx);
            let c = node.children[i - 1].load_direct(ctx);
            node.keys[i].store_direct(ctx, k);
            node.children[i].store_direct(ctx, c);
            i -= 1;
        }
        node.keys[lo].store_direct(ctx, sep);
        node.children[lo].store_direct(ctx, right.to_word());
        node.count.store_direct(ctx, (cnt + 1) as u64);
    }
}

impl ConcurrentMap for Masstree {
    fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        self.read_key(ctx, key)
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Option<u64> {
        assert!(key < KEY_SENTINEL && value != TOMBSTONE);
        let leaf = self.locate_locked(ctx, key);
        ctx.episode_begin(EpisodeKind::LockedWrite);
        ctx.set_op_key(key);
        value_indirection(ctx);
        value_indirection(ctx);
        let result;
        let inserted;
        if let Some((slot, old)) = self.leaf_search(ctx, leaf, key) {
            leaf.vals[slot].store_direct(ctx, value);
            result = (old != TOMBSTONE).then_some(old);
            inserted = false;
        } else {
            let cnt = leaf.count.load_direct(ctx) as usize;
            let (target, old_leaf_needs_split_bump) = if cnt == F {
                let t = self.split_leaf(ctx, leaf, key);
                (t, std::ptr::eq(t, leaf))
            } else {
                (leaf, false)
            };
            self.leaf_insert(ctx, target, key, value);
            ctx.episode_end_locked_write();
            target.version.unlock(ctx, true, old_leaf_needs_split_bump);
            return None;
        }
        ctx.episode_end_locked_write();
        leaf.version.unlock(ctx, inserted, false);
        result
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let leaf = self.locate_locked(ctx, key);
        ctx.episode_begin(EpisodeKind::LockedWrite);
        ctx.set_op_key(key);
        let result = match self.leaf_search(ctx, leaf, key) {
            Some((slot, old)) if old != TOMBSTONE => {
                leaf.vals[slot].store_direct(ctx, TOMBSTONE);
                Some(old)
            }
            _ => None,
        };
        ctx.episode_end_locked_write();
        leaf.version.unlock(ctx, false, false);
        result
    }

    fn scan(
        &self,
        ctx: &mut ThreadCtx,
        from: u64,
        count: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        let mut collected = 0usize;
        let mut cursor = from;
        // Walk the leaf chain directly (a `hint`); re-descend only after a
        // validation failure. Descending per leaf would loop forever on a
        // leaf that yields no records ≥ cursor (e.g. all tombstoned).
        let mut hint: Option<MtRef> = None;
        loop {
            // Optimistically read one leaf's run. `hint.take()` implements
            // the hint-reset on failure: a retry attempt (the hint was
            // consumed by the failed one) re-descends.
            let (part, next) = ctx.optimistic_execute(Some(cursor), version_visible, |ctx| {
                let (leaf, v) = match hint.take() {
                    Some(r) => {
                        let l = unsafe { r.leaf() };
                        let v = l.version.stable(ctx);
                        (l, v)
                    }
                    None => self.descend(ctx, cursor)?,
                };
                let cnt = (leaf.count.load_direct(ctx) as usize).min(F);
                let mut part = Vec::with_capacity(cnt);
                for i in 0..cnt {
                    let k = leaf.keys[i].load_direct(ctx);
                    let val = leaf.vals[i].load_direct(ctx);
                    if k >= cursor && val != TOMBSTONE {
                        part.push((k, val));
                    }
                }
                part.sort_unstable_by_key(|&(k, _)| k);
                let next = MtRef::from_word(leaf.next.load_direct(ctx));
                if leaf.version.read(ctx) != v {
                    return None;
                }
                Some((part, next))
            });
            for (k, v) in part {
                if collected == count {
                    return collected;
                }
                out.push((k, v));
                collected += 1;
                cursor = k.saturating_add(1);
            }
            if collected == count || next.is_null() {
                return collected;
            }
            hint = Some(next);
        }
    }

    fn name(&self) -> &'static str {
        "Masstree"
    }

    fn memory(&self) -> MemoryReport {
        MemoryReport {
            structural_bytes: self.leaves.live_bytes() + self.internals.live_bytes(),
            ..MemoryReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tree() -> (Arc<Runtime>, Masstree, ThreadCtx) {
        let rt = Runtime::new_virtual();
        let t = Masstree::new(Arc::clone(&rt));
        let ctx = rt.thread(1);
        (rt, t, ctx)
    }

    #[test]
    fn put_get_update() {
        let (_rt, t, mut ctx) = tree();
        assert_eq!(t.get(&mut ctx, 9), None);
        assert_eq!(t.put(&mut ctx, 9, 90), None);
        assert_eq!(t.get(&mut ctx, 9), Some(90));
        assert_eq!(t.put(&mut ctx, 9, 91), Some(90));
        assert_eq!(t.get(&mut ctx, 9), Some(91));
    }

    #[test]
    fn many_inserts_split_correctly() {
        let (_rt, t, mut ctx) = tree();
        let n = 4_000u64;
        for k in 0..n {
            t.put(&mut ctx, (k * 13) % n, k);
        }
        for k in 0..n {
            assert!(t.get(&mut ctx, k).is_some(), "key {k}");
        }
    }

    #[test]
    fn matches_model() {
        let (_rt, t, mut ctx) = tree();
        let mut model = BTreeMap::new();
        let mut s = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..20_000 {
            let key = rnd() % 600;
            match rnd() % 10 {
                0..=4 => {
                    let v = rnd() % 100_000;
                    assert_eq!(t.put(&mut ctx, key, v), model.insert(key, v));
                }
                5..=6 => assert_eq!(t.delete(&mut ctx, key), model.remove(&key)),
                _ => assert_eq!(t.get(&mut ctx, key), model.get(&key).copied()),
            }
        }
        let mut out = Vec::new();
        t.scan(&mut ctx, 0, usize::MAX, &mut out);
        assert_eq!(out, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn scan_sorted_run() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..200u64 {
            t.put(&mut ctx, k, k + 1);
        }
        t.delete(&mut ctx, 50);
        let mut out = Vec::new();
        let n = t.scan(&mut ctx, 48, 5, &mut out);
        assert_eq!(n, 5);
        let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![48, 49, 51, 52, 53]);
    }

    #[test]
    fn concurrent_inserts_no_lost_updates() {
        let rt = Runtime::new_concurrent();
        let t = Masstree::new(Arc::clone(&rt));
        let per = 400u64;
        let threads = 4u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = &t;
                let mut ctx = rt.thread(tid);
                s.spawn(move || {
                    for i in 0..per {
                        let key = tid * per + i;
                        t.put(&mut ctx, key, key + 1);
                    }
                });
            }
        });
        let mut ctx = rt.thread(9);
        for key in 0..threads * per {
            assert_eq!(t.get(&mut ctx, key), Some(key + 1), "key {key}");
        }
    }

    #[test]
    fn concurrent_mixed_hot_keys() {
        let rt = Runtime::new_concurrent();
        let t = Masstree::new(Arc::clone(&rt));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                let mut ctx = rt.thread(tid);
                s.spawn(move || {
                    for i in 0..500u64 {
                        if i % 3 == 0 {
                            t.get(&mut ctx, i % 16);
                        } else {
                            t.put(&mut ctx, i % 16, tid * 1000 + i);
                        }
                    }
                });
            }
        });
        let mut ctx = rt.thread(9);
        for k in 0..16u64 {
            assert!(t.get(&mut ctx, k).is_some());
        }
    }

    #[test]
    fn version_word_arithmetic() {
        assert_eq!(Version::vsplit_of(0), 0);
        let v = VSPLIT_UNIT * 3 + VINSERT_UNIT * 5;
        assert_eq!(Version::vsplit_of(v), VSPLIT_UNIT * 3);
        assert_eq!(Version::vsplit_of(v | LOCK_BIT), VSPLIT_UNIT * 3);
        // Insert bumps never leak into the split counter.
        let w = VINSERT_UNIT * ((1 << 32) - 1);
        assert_eq!(Version::vsplit_of(w), 0);
    }

    #[test]
    fn optimistic_retries_counted_under_contention() {
        // Virtual-time: interleave a writer and readers on one leaf.
        let rt = Runtime::new_virtual();
        let t = Masstree::new(Arc::clone(&rt));
        {
            let mut ctx = rt.thread(0);
            for k in 0..8u64 {
                t.put(&mut ctx, k, k);
            }
        }
        rt.reset_dynamics();
        let mut ctxs: Vec<ThreadCtx> = (1..=6).map(|i| rt.thread(i)).collect();
        for round in 0..600u64 {
            let idx = (0..ctxs.len()).min_by_key(|&i| (ctxs[i].clock, i)).unwrap();
            if idx % 2 == 0 {
                // Writers INSERT fresh keys: inserts bump node versions,
                // which is what the §4.6 protocol makes readers retry on
                // (value updates are version-invisible by design).
                t.put(&mut ctxs[idx], 8 + round, round);
            } else {
                t.get(&mut ctxs[idx], round % 8);
            }
        }
        let retries: u64 = ctxs.iter().map(|c| c.stats.optimistic_retries).sum();
        let lock_wait: u64 = ctxs.iter().map(|c| c.stats.cycles_lock_wait).sum();
        assert!(
            retries + lock_wait > 0,
            "overlapping inserts/reads must retry or convoy"
        );
        let aborts: u64 = ctxs.iter().map(|c| c.stats.aborts.total()).sum();
        assert_eq!(aborts, 0, "Masstree uses no HTM: no HTM aborts");
    }
}
