//! The conventional HTM-B+Tree (Algorithm 1): one monolithic RTM region
//! per operation.
//!
//! This is the design the paper analyses and attacks — a textbook B+Tree
//! whose get/put/delete/scan each run, start to finish (root-to-leaf
//! traversal, leaf access, split propagation), inside a single HTM region
//! with a DBX-style retry policy and global-lock fallback. It is simple
//! and fast under low contention, and collapses under high contention for
//! the three reasons of §2.3: whole-operation retry cost, false conflicts
//! from the consecutive sorted layout and shared `count` metadata, and
//! true conflicts on hot records.

use std::sync::Arc;

use euno_htm::{
    slot_for_key, Arena, BitLockVector, ConcurrentMap, Footprint, MemoryReport, RetryPolicy,
    RetryStrategy, Runtime, ThreadCtx, Tx, TxResult, TxWord, KEY_SENTINEL, TOMBSTONE,
};

use crate::node::{Internal, Leaf, NodeRef, DEFAULT_FANOUT};

/// A B+Tree protected by one monolithic HTM region per operation.
pub struct HtmBTree<const F: usize = DEFAULT_FANOUT> {
    rt: Arc<Runtime>,
    ctrl: Box<euno_htm::ControlBlock>,
    strategy: Arc<dyn RetryStrategy>,
    leaves: Arena<Leaf<F>>,
    internals: Arena<Internal<F>>,
    /// Tree-global advisory slots for the executor's middle path; `None`
    /// (the default — this tree is the paper's two-path baseline)
    /// reproduces the classic two-path escalation (the ablation baseline).
    middle: Option<BitLockVector>,
}

impl<const F: usize> HtmBTree<F> {
    pub fn new(rt: Arc<Runtime>) -> Self {
        assert!(
            F >= 4 && F.is_multiple_of(2),
            "fanout must be an even number ≥ 4"
        );
        let leaves = Arena::new();
        let internals = Arena::new();
        let first: &Leaf<F> = leaves.alloc(Leaf::empty());
        first.register(&rt);
        let ctrl = euno_htm::ControlBlock::new(NodeRef::of_leaf(first).to_word());
        rt.register_value(&*ctrl, euno_htm::LineClass::Structure);
        HtmBTree {
            rt,
            ctrl,
            strategy: Arc::new(RetryPolicy::default()),
            leaves,
            internals,
            middle: None,
        }
    }

    /// Middle-path advisory slots per tree.
    const MIDDLE_SLOTS: usize = 64;

    /// Enable the footprint-local middle path (§4.3): point operations
    /// declare a slot of a tree-global advisory table and escalate onto
    /// it before touching the global fallback. Off by default — the tree
    /// models the paper's two-path baseline; `fig13_threepath` measures
    /// the difference.
    pub fn three_path(mut self) -> Self {
        self.middle = Some(BitLockVector::new(Self::MIDDLE_SLOTS));
        self
    }

    /// The middle-path footprint of a point operation on `key`.
    fn middle_footprint(&self, key: u64) -> Option<Footprint<'_>> {
        self.middle
            .as_ref()
            .map(|m| Footprint::new(m, &[slot_for_key(key, Self::MIDDLE_SLOTS as u32)]))
    }

    pub fn with_policy(rt: Arc<Runtime>, policy: RetryPolicy) -> Self {
        Self::with_strategy(rt, Arc::new(policy))
    }

    /// Select the retry strategy the executor runs this tree under.
    pub fn with_strategy(rt: Arc<Runtime>, strategy: Arc<dyn RetryStrategy>) -> Self {
        let mut t = Self::new(rt);
        t.strategy = strategy;
        t
    }

    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    // ---------- in-transaction helpers ----------

    /// Root-to-leaf descent; pushes visited internal nodes on `path`.
    fn descend<'t>(
        &'t self,
        tx: &mut Tx<'_>,
        key: u64,
        mut path: Option<&mut Vec<&'t Internal<F>>>,
    ) -> TxResult<&'t Leaf<F>> {
        let mut cur = NodeRef::from_word(tx.read(&self.ctrl.root)?);
        while !cur.is_leaf() {
            // Safety: nodes live as long as the tree (deferred reclamation).
            let node: &'t Internal<F> = unsafe { cur.as_internal::<F>() };
            if let Some(p) = path.as_deref_mut() {
                p.push(node);
            }
            let cnt = tx.read(&node.count)? as usize;
            // Number of separators ≤ key (binary search).
            let (mut lo, mut hi) = (0usize, cnt);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if tx.read(&node.keys[mid])? <= key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            cur = if lo == 0 {
                NodeRef::from_word(tx.read(&node.child0)?)
            } else {
                NodeRef::from_word(tx.read(&node.children[lo - 1])?)
            };
        }
        Ok(unsafe { cur.as_leaf::<F>() })
    }

    /// Binary search for `key` among the leaf's occupied slots.
    fn leaf_find(&self, tx: &mut Tx<'_>, leaf: &Leaf<F>, key: u64) -> TxResult<Option<usize>> {
        let cnt = tx.read(&leaf.count)? as usize;
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = tx.read(&leaf.keys[mid])?;
            if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < cnt && tx.read(&leaf.keys[lo])? == key {
            Ok(Some(lo))
        } else {
            Ok(None)
        }
    }

    /// Insert `key→val` into a non-full leaf, shifting the tail right —
    /// the consecutive-record data movement of §2.3.
    fn leaf_insert_at(&self, tx: &mut Tx<'_>, leaf: &Leaf<F>, key: u64, val: u64) -> TxResult<()> {
        let cnt = tx.read(&leaf.count)? as usize;
        debug_assert!(cnt < F);
        // Position = lower bound.
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if tx.read(&leaf.keys[mid])? < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut i = cnt;
        while i > lo {
            let k = tx.read(&leaf.keys[i - 1])?;
            let v = tx.read(&leaf.vals[i - 1])?;
            tx.write(&leaf.keys[i], k)?;
            tx.write(&leaf.vals[i], v)?;
            i -= 1;
        }
        tx.write(&leaf.keys[lo], key)?;
        tx.write(&leaf.vals[lo], val)?;
        tx.write(&leaf.count, (cnt + 1) as u64)?;
        Ok(())
    }

    /// Split a full leaf; returns the leaf that should receive `key`.
    fn split_leaf<'t>(
        &'t self,
        tx: &mut Tx<'_>,
        leaf: &'t Leaf<F>,
        path: &[&'t Internal<F>],
        key: u64,
    ) -> TxResult<&'t Leaf<F>> {
        let new: &'t Leaf<F> = self.leaves.alloc(Leaf::empty());
        new.register(&self.rt);
        let mid = F / 2;
        for i in mid..F {
            let k = tx.read(&leaf.keys[i])?;
            let v = tx.read(&leaf.vals[i])?;
            tx.write(&new.keys[i - mid], k)?;
            tx.write(&new.vals[i - mid], v)?;
        }
        let sep = tx.read(&leaf.keys[mid])?;
        tx.write(&new.count, (F - mid) as u64)?;
        tx.write(&leaf.count, mid as u64)?;
        let old_next = tx.read(&leaf.next)?;
        tx.write(&new.next, old_next)?;
        tx.write(&leaf.next, NodeRef::of_leaf(new).to_word())?;
        self.insert_into_parents(tx, path, sep, NodeRef::of_leaf(new))?;
        Ok(if key < sep { leaf } else { new })
    }

    /// Propagate a split upward (Algorithm 1 lines 17-19).
    fn insert_into_parents(
        &self,
        tx: &mut Tx<'_>,
        path: &[&Internal<F>],
        mut sep: u64,
        mut right: NodeRef,
    ) -> TxResult<()> {
        for parent in path.iter().rev() {
            let cnt = tx.read(&parent.count)? as usize;
            if cnt < F {
                self.internal_insert_at(tx, parent, cnt, sep, right)?;
                return Ok(());
            }
            // Split the full internal node; promote the middle separator.
            let new: &Internal<F> = self.internals.alloc(Internal::empty());
            new.register(&self.rt);
            let mid = F / 2;
            let promoted = tx.read(&parent.keys[mid])?;
            let mid_child = tx.read(&parent.children[mid])?;
            tx.write(&new.child0, mid_child)?;
            for i in mid + 1..F {
                let k = tx.read(&parent.keys[i])?;
                let c = tx.read(&parent.children[i])?;
                tx.write(&new.keys[i - mid - 1], k)?;
                tx.write(&new.children[i - mid - 1], c)?;
            }
            tx.write(&new.count, (F - mid - 1) as u64)?;
            tx.write(&parent.count, mid as u64)?;
            // Insert the pending (sep, right) into the proper half.
            let target = if sep < promoted { *parent } else { new };
            let tcnt = tx.read(&target.count)? as usize;
            self.internal_insert_at(tx, target, tcnt, sep, right)?;
            sep = promoted;
            right = NodeRef::of_internal(new);
        }
        // Split reached the root: grow the tree by one level.
        let old_root = tx.read(&self.ctrl.root)?;
        let new_root: &Internal<F> = self.internals.alloc(Internal::empty());
        new_root.register(&self.rt);
        tx.write(&new_root.child0, old_root)?;
        tx.write(&new_root.keys[0], sep)?;
        tx.write(&new_root.children[0], right.to_word())?;
        tx.write(&new_root.count, 1)?;
        tx.write(&self.ctrl.root, NodeRef::of_internal(new_root).to_word())?;
        Ok(())
    }

    fn internal_insert_at(
        &self,
        tx: &mut Tx<'_>,
        node: &Internal<F>,
        cnt: usize,
        sep: u64,
        right: NodeRef,
    ) -> TxResult<()> {
        debug_assert!(cnt < F);
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if tx.read(&node.keys[mid])? < sep {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut i = cnt;
        while i > lo {
            let k = tx.read(&node.keys[i - 1])?;
            let c = tx.read(&node.children[i - 1])?;
            tx.write(&node.keys[i], k)?;
            tx.write(&node.children[i], c)?;
            i -= 1;
        }
        tx.write(&node.keys[lo], sep)?;
        tx.write(&node.children[lo], right.to_word())?;
        tx.write(&node.count, (cnt + 1) as u64)?;
        Ok(())
    }

    /// Depth of the tree (levels of internal nodes above the leaves).
    pub fn depth_plain(&self) -> usize {
        let mut d = 0;
        let mut cur = NodeRef::from_word(self.ctrl.root.load_plain());
        while !cur.is_leaf() {
            let n = unsafe { cur.as_internal::<F>() };
            cur = NodeRef::from_word(n.child0.load_plain());
            d += 1;
        }
        d
    }
}

impl<const F: usize> ConcurrentMap for HtmBTree<F> {
    fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let fp = self.middle_footprint(key);
        ctx.htm_execute_with(&self.ctrl.fallback, &*self.strategy, fp.as_ref(), |tx| {
            tx.set_op_key(key);
            let leaf = self.descend(tx, key, None)?;
            match self.leaf_find(tx, leaf, key)? {
                Some(i) => {
                    let v = tx.read(&leaf.vals[i])?;
                    Ok((v != TOMBSTONE).then_some(v))
                }
                None => Ok(None),
            }
        })
        .value
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Option<u64> {
        assert!(key < KEY_SENTINEL && value != TOMBSTONE);
        let fp = self.middle_footprint(key);
        ctx.htm_execute_with(&self.ctrl.fallback, &*self.strategy, fp.as_ref(), |tx| {
            tx.set_op_key(key);
            let mut path = Vec::with_capacity(8);
            let leaf = self.descend(tx, key, Some(&mut path))?;
            if let Some(i) = self.leaf_find(tx, leaf, key)? {
                let old = tx.read(&leaf.vals[i])?;
                tx.write(&leaf.vals[i], value)?;
                return Ok((old != TOMBSTONE).then_some(old));
            }
            let cnt = tx.read(&leaf.count)? as usize;
            let target = if cnt == F {
                self.split_leaf(tx, leaf, &path, key)?
            } else {
                leaf
            };
            self.leaf_insert_at(tx, target, key, value)?;
            Ok(None)
        })
        .value
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let fp = self.middle_footprint(key);
        ctx.htm_execute_with(&self.ctrl.fallback, &*self.strategy, fp.as_ref(), |tx| {
            tx.set_op_key(key);
            let leaf = self.descend(tx, key, None)?;
            match self.leaf_find(tx, leaf, key)? {
                Some(i) => {
                    let old = tx.read(&leaf.vals[i])?;
                    if old == TOMBSTONE {
                        return Ok(None);
                    }
                    tx.write(&leaf.vals[i], TOMBSTONE)?;
                    Ok(Some(old))
                }
                None => Ok(None),
            }
        })
        .value
    }

    fn scan(
        &self,
        ctx: &mut ThreadCtx,
        from: u64,
        count: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        let collected = ctx
            .htm_execute(&self.ctrl.fallback, &*self.strategy, |tx| {
                tx.set_op_key(from);
                let mut acc = Vec::with_capacity(count.min(1024));
                let mut leaf = self.descend(tx, from, None)?;
                'outer: loop {
                    let cnt = tx.read(&leaf.count)? as usize;
                    for i in 0..cnt {
                        let k = tx.read(&leaf.keys[i])?;
                        if k < from {
                            continue;
                        }
                        let v = tx.read(&leaf.vals[i])?;
                        if v == TOMBSTONE {
                            continue;
                        }
                        acc.push((k, v));
                        if acc.len() == count {
                            break 'outer;
                        }
                    }
                    let next = NodeRef::from_word(tx.read(&leaf.next)?);
                    if next.is_null() {
                        break;
                    }
                    leaf = unsafe { next.as_leaf::<F>() };
                }
                Ok(acc)
            })
            .value;
        let n = collected.len();
        out.extend(collected);
        n
    }

    fn name(&self) -> &'static str {
        "HTM-B+Tree"
    }

    fn memory(&self) -> MemoryReport {
        MemoryReport {
            structural_bytes: self.leaves.live_bytes() + self.internals.live_bytes(),
            ..MemoryReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tree() -> (Arc<Runtime>, HtmBTree<16>, ThreadCtx) {
        let rt = Runtime::new_virtual();
        let t = HtmBTree::new(Arc::clone(&rt));
        let ctx = rt.thread(1);
        (rt, t, ctx)
    }

    #[test]
    fn put_get_roundtrip() {
        let (_rt, t, mut ctx) = tree();
        assert_eq!(t.get(&mut ctx, 5), None);
        assert_eq!(t.put(&mut ctx, 5, 50), None);
        assert_eq!(t.get(&mut ctx, 5), Some(50));
        assert_eq!(t.put(&mut ctx, 5, 51), Some(50));
        assert_eq!(t.get(&mut ctx, 5), Some(51));
    }

    #[test]
    fn splits_preserve_all_keys() {
        let (_rt, t, mut ctx) = tree();
        let n = 5_000u64;
        for k in 0..n {
            t.put(&mut ctx, k * 7 % n, k * 7 % n + 1);
        }
        for k in 0..n {
            assert_eq!(t.get(&mut ctx, k), Some(k + 1), "key {k}");
        }
        assert!(t.depth_plain() >= 2, "tree must have grown levels");
    }

    #[test]
    fn descending_inserts() {
        let (_rt, t, mut ctx) = tree();
        for k in (0..2_000u64).rev() {
            t.put(&mut ctx, k, k);
        }
        for k in 0..2_000u64 {
            assert_eq!(t.get(&mut ctx, k), Some(k));
        }
    }

    #[test]
    fn delete_then_reinsert() {
        let (_rt, t, mut ctx) = tree();
        t.put(&mut ctx, 10, 1);
        assert_eq!(t.delete(&mut ctx, 10), Some(1));
        assert_eq!(t.get(&mut ctx, 10), None);
        assert_eq!(t.delete(&mut ctx, 10), None, "double delete is a miss");
        assert_eq!(t.put(&mut ctx, 10, 2), None, "reinsert after delete");
        assert_eq!(t.get(&mut ctx, 10), Some(2));
    }

    #[test]
    fn scan_returns_sorted_live_records() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..300u64 {
            t.put(&mut ctx, k, k * 10);
        }
        t.delete(&mut ctx, 105);
        let mut out = Vec::new();
        let n = t.scan(&mut ctx, 100, 10, &mut out);
        assert_eq!(n, 10);
        let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![100, 101, 102, 103, 104, 106, 107, 108, 109, 110]);
        assert!(out.iter().all(|(k, v)| *v == k * 10));
    }

    #[test]
    fn scan_across_leaf_boundaries_and_tail() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..100u64 {
            t.put(&mut ctx, k, k);
        }
        let mut out = Vec::new();
        // Ask for more than remain: get the tail only.
        let n = t.scan(&mut ctx, 90, 50, &mut out);
        assert_eq!(n, 10);
        assert_eq!(out.first().unwrap().0, 90);
        assert_eq!(out.last().unwrap().0, 99);
    }

    #[test]
    fn matches_btreemap_model() {
        let (_rt, t, mut ctx) = tree();
        let mut model = BTreeMap::new();
        let mut state = 88172645463325252u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20_000 {
            let key = rnd() % 500;
            match rnd() % 10 {
                0..=4 => {
                    let v = rnd() % 1_000_000;
                    assert_eq!(t.put(&mut ctx, key, v), model.insert(key, v));
                }
                5..=6 => {
                    assert_eq!(t.delete(&mut ctx, key), model.remove(&key));
                }
                _ => {
                    assert_eq!(t.get(&mut ctx, key), model.get(&key).copied());
                }
            }
        }
        // Final full scan agrees with the model.
        let mut out = Vec::new();
        t.scan(&mut ctx, 0, usize::MAX, &mut out);
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_threads_preserve_all_inserts() {
        let rt = Runtime::new_concurrent();
        let t = HtmBTree::<16>::new(Arc::clone(&rt));
        let per = 500u64;
        let threads = 4u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = &t;
                let mut ctx = rt.thread(tid);
                s.spawn(move || {
                    for i in 0..per {
                        let key = tid * per + i;
                        t.put(&mut ctx, key, key + 1);
                    }
                });
            }
        });
        let mut ctx = rt.thread(99);
        for key in 0..threads * per {
            assert_eq!(t.get(&mut ctx, key), Some(key + 1), "key {key}");
        }
    }

    #[test]
    fn hot_leaf_contention_aborts_in_virtual_time() {
        // Interleave 8 logical threads by always advancing the one with
        // the smallest virtual clock (what euno-sim's scheduler does);
        // updates to one leaf must overlap in virtual time and conflict.
        let rt = Runtime::new_virtual();
        let t = HtmBTree::<16>::new(Arc::clone(&rt));
        {
            let mut ctx = rt.thread(0);
            for k in 0..8u64 {
                t.put(&mut ctx, k, 0);
            }
        }
        rt.reset_dynamics();
        let mut ctxs: Vec<ThreadCtx> = (1..=8).map(|i| rt.thread(i)).collect();
        for round in 0..400u64 {
            let idx = (0..ctxs.len()).min_by_key(|&i| (ctxs[i].clock, i)).unwrap();
            t.put(&mut ctxs[idx], round % 8, round);
        }
        let aborts: u64 = ctxs.iter().map(|c| c.stats.aborts.total()).sum();
        assert!(aborts > 0, "8 threads updating one leaf must conflict");
        // And the structure stayed correct throughout.
        let mut ctx = rt.thread(99);
        for k in 0..8u64 {
            assert!(t.get(&mut ctx, k).is_some());
        }
    }
}
