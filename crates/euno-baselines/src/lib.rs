//! # euno-baselines — the comparator systems of the Eunomia evaluation
//!
//! Three concurrent B+Trees the paper measures Euno-B+Tree against (§5.1):
//!
//! * [`HtmBTree`] — the conventional monolithic-HTM-region B+Tree used by
//!   DBX-style in-memory databases (Algorithm 1); the design §2.3 analyses.
//! * `Masstree` — a fine-grained-locking B+Tree implementing the
//!   Masstree §4.6 optimistic version-validation protocol.
//! * `HtmMasstree` — the same structure with every operation wrapped in one
//!   HTM region that subsumes its locks.
//!
//! All implement [`euno_htm::ConcurrentMap`] and run under both execution
//! modes of the engine.

pub mod htm_btree;
pub mod htm_masstree;
pub mod masstree;
pub mod node;

pub use htm_btree::HtmBTree;
pub use htm_masstree::HtmMasstree;
pub use masstree::Masstree;
pub use node::{Internal, Leaf, NodeRef, DEFAULT_FANOUT};
