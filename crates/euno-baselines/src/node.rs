//! Conventional sorted B+Tree nodes — the layout the paper's §2.3 analysis
//! blames for false conflicts.
//!
//! Keys in a node are stored **sorted and consecutive**: an insertion
//! shifts every slot after the insertion point one position right, writing
//! a swath of contiguous cells. Because cells sit eight to a cache line,
//! two inserts of *different* keys into the same node almost always touch
//! a common line — that is the "cache line sharing of consecutive records"
//! false-conflict source. The per-node `count` word is the "shared
//! metadata" source. Both layouts are deliberate reproductions.
//!
//! Nodes are `repr(C, align(64))` with the header padded to one cache
//! line, so header metadata and record storage fault on *different* lines
//! and the abort classifier can attribute conflicts precisely.

use euno_htm::{LineClass, Runtime, TxCell, TxWord, KEY_SENTINEL};

/// Default node fanout; §5.7 sets the paper's fanout to 16.
pub const DEFAULT_FANOUT: usize = 16;

/// A leaf node: sorted keys with co-located values, chained for scans.
#[repr(C, align(64))]
pub struct Leaf<const F: usize> {
    /// Number of occupied slots (including tombstoned records).
    pub count: TxCell<u64>,
    /// Next-leaf link (NodeRef bits; 0 = end).
    pub next: TxCell<u64>,
    _pad: [u64; 6],
    /// Sorted keys; unoccupied slots hold `KEY_SENTINEL`.
    pub keys: [TxCell<u64>; F],
    /// Values parallel to `keys`; `TOMBSTONE` marks a deleted record.
    pub vals: [TxCell<u64>; F],
}

/// An internal node: sorted separator keys and child pointers.
/// `child0` is left of `keys[0]`; `children[i]` is right of `keys[i]`.
#[repr(C, align(64))]
pub struct Internal<const F: usize> {
    /// Number of separator keys.
    pub count: TxCell<u64>,
    /// Leftmost child.
    pub child0: TxCell<u64>,
    _pad: [u64; 6],
    pub keys: [TxCell<u64>; F],
    pub children: [TxCell<u64>; F],
}

impl<const F: usize> Leaf<F> {
    pub fn empty() -> Self {
        Leaf {
            count: TxCell::new(0),
            next: TxCell::new(0),
            _pad: [0; 6],
            keys: std::array::from_fn(|_| TxCell::new(KEY_SENTINEL)),
            vals: std::array::from_fn(|_| TxCell::new(0)),
        }
    }

    /// Tag this node's lines for conflict classification: header ⇒
    /// metadata, key/value slots ⇒ record.
    pub fn register(&self, rt: &Runtime) {
        let base = self as *const Self as usize;
        let keys_off = std::mem::offset_of!(Leaf<F>, keys);
        rt.register_region(base, keys_off, LineClass::Metadata);
        rt.register_region(
            base + keys_off,
            std::mem::size_of::<Self>() - keys_off,
            LineClass::Record,
        );
    }
}

impl<const F: usize> Internal<F> {
    pub fn empty() -> Self {
        Internal {
            count: TxCell::new(0),
            child0: TxCell::new(0),
            _pad: [0; 6],
            keys: std::array::from_fn(|_| TxCell::new(KEY_SENTINEL)),
            children: std::array::from_fn(|_| TxCell::new(0)),
        }
    }

    /// Interior structure: every line is `Structure` class (conflicts here
    /// are the rare non-leaf-level kind of §2.3).
    pub fn register(&self, rt: &Runtime) {
        rt.register_value(self, LineClass::Structure);
    }
}

/// A tagged node pointer stored in cells: bit 0 set ⇒ leaf.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeRef(pub u64);

impl NodeRef {
    pub const NULL: NodeRef = NodeRef(0);

    pub fn of_leaf<const F: usize>(l: &Leaf<F>) -> Self {
        NodeRef(l as *const Leaf<F> as u64 | 1)
    }

    pub fn of_internal<const F: usize>(i: &Internal<F>) -> Self {
        NodeRef(i as *const Internal<F> as u64)
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn is_leaf(self) -> bool {
        self.0 & 1 == 1
    }

    /// # Safety
    /// `self` must have been created by [`NodeRef::of_leaf`] on a node from
    /// an arena that outlives `'a` (the trees guarantee this: nodes are
    /// only reclaimed when the tree drops).
    #[inline]
    pub unsafe fn as_leaf<'a, const F: usize>(self) -> &'a Leaf<F> {
        debug_assert!(self.is_leaf() && !self.is_null());
        &*((self.0 & !1) as *const Leaf<F>)
    }

    /// # Safety
    /// As [`NodeRef::as_leaf`], for internal nodes.
    #[inline]
    pub unsafe fn as_internal<'a, const F: usize>(self) -> &'a Internal<F> {
        debug_assert!(!self.is_leaf() && !self.is_null());
        &*(self.0 as *const Internal<F>)
    }
}

impl TxWord for NodeRef {
    fn to_word(self) -> u64 {
        self.0
    }
    fn from_word(w: u64) -> Self {
        NodeRef(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euno_htm::LineId;

    #[test]
    fn leaf_layout_separates_header_from_records() {
        let l: Leaf<16> = Leaf::empty();
        let header_line = LineId::of_ptr(&l as *const _);
        let first_key_line = l.keys[0].line();
        assert_ne!(
            header_line, first_key_line,
            "count/next must not share a line with record slots"
        );
        // 16 keys = 128 bytes = exactly 2 lines, line-aligned.
        assert_eq!(l.keys[0].line().0 + 1, l.keys[8].line().0);
        assert_eq!(l.keys[0].line(), l.keys[7].line());
    }

    #[test]
    fn node_sizes_are_line_multiples() {
        assert_eq!(std::mem::size_of::<Leaf<16>>() % 64, 0);
        assert_eq!(std::mem::size_of::<Internal<16>>() % 64, 0);
        assert_eq!(std::mem::align_of::<Leaf<16>>(), 64);
    }

    #[test]
    fn noderef_tagging_roundtrip() {
        let l: Leaf<16> = Leaf::empty();
        let i: Internal<16> = Internal::empty();
        let lr = NodeRef::of_leaf(&l);
        let ir = NodeRef::of_internal(&i);
        assert!(lr.is_leaf());
        assert!(!ir.is_leaf());
        assert!(!lr.is_null());
        assert!(NodeRef::NULL.is_null());
        let l2 = unsafe { lr.as_leaf::<16>() };
        assert!(std::ptr::eq(l2, &l));
        let i2 = unsafe { ir.as_internal::<16>() };
        assert!(std::ptr::eq(i2, &i));
        // TxWord roundtrip preserves the tag.
        let w = lr.to_word();
        assert_eq!(NodeRef::from_word(w), lr);
    }

    #[test]
    fn registration_tags_classes() {
        let rt = Runtime::new_virtual();
        let l: Box<Leaf<16>> = Box::new(Leaf::empty());
        l.register(&rt);
        assert_eq!(rt.class_of(l.keys[3].line()), LineClass::Record);
        assert_eq!(
            rt.class_of(LineId::of_ptr(&l.count as *const _)),
            LineClass::Metadata
        );
        let i: Box<Internal<16>> = Box::new(Internal::empty());
        i.register(&rt);
        assert_eq!(rt.class_of(i.keys[0].line()), LineClass::Structure);
    }
}
