//! The fixed metric vocabulary: counters, gauges and the executor-stage
//! aggregate the run report serializes.
//!
//! Names returned by [`Counter::name`] / [`Gauge::name`] are *canonical*:
//! the run-report stage section, the JSONL exporter and the fig14 CSV all
//! spell metrics exactly this way, which is what kills the naming drift
//! the old hand-rolled observer counters had accumulated.

macro_rules! define_metric_enum {
    ($(#[$meta:meta])* $enum_name:ident { $( $variant:ident => $name:literal, )* }) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum $enum_name { $( $variant, )* }

        impl $enum_name {
            /// Number of variants (array dimension for shards/snapshots).
            pub const COUNT: usize = [$( $enum_name::$variant, )*].len();
            /// Every variant, in index order.
            pub const ALL: [$enum_name; Self::COUNT] = [$( $enum_name::$variant, )*];

            /// Canonical metric name (the one spelling used everywhere).
            pub const fn name(self) -> &'static str {
                match self { $( $enum_name::$variant => $name, )* }
            }

            /// Dense index into shard / snapshot arrays.
            #[inline]
            pub const fn index(self) -> usize {
                self as usize
            }
        }
    };
}

define_metric_enum! {
    /// Monotone event counters, sharded per thread.
    ///
    /// The first block mirrors the executor stage counters the run report
    /// has serialized since schema v1 (same names, same semantics:
    /// `commits` includes middle-path commits, `middle_attempts` is a
    /// subset of `attempts`, fallback executions are not commits). The
    /// remaining blocks are new, finer-grained views that only surface in
    /// the time-series section and the fig14 timeline.
    Counter {
        Ops => "ops",
        Attempts => "attempts",
        Commits => "commits",
        Middles => "middles",
        MiddleAttempts => "middle_attempts",
        Fallbacks => "fallbacks",
        Backoffs => "backoffs",
        CcmBypassFlips => "ccm_bypass_flips",
        // Per-path / per-backend commit refinement.
        CommitsHtm => "commits_htm",
        CommitsVirtual => "commits_virtual",
        CommitsStm => "commits_stm",
        CommitsRtm => "commits_rtm",
        // Aborts by cause on the plain HTM path (bucket order matches
        // `AbortCounts` field order; see `ABORTS_HTM`).
        AbortsHtmTrueSameRecord => "aborts_htm_true_same_record",
        AbortsHtmFalseDifferentRecord => "aborts_htm_false_different_record",
        AbortsHtmFalseMetadata => "aborts_htm_false_metadata",
        AbortsHtmFalseStructure => "aborts_htm_false_structure",
        AbortsHtmUnclassified => "aborts_htm_unclassified",
        AbortsHtmCapacity => "aborts_htm_capacity",
        AbortsHtmExplicit => "aborts_htm_explicit",
        AbortsHtmSpurious => "aborts_htm_spurious",
        AbortsHtmFallbackLocked => "aborts_htm_fallback_locked",
        // Aborts by cause on the middle (footprint-locked) path.
        AbortsMiddleTrueSameRecord => "aborts_middle_true_same_record",
        AbortsMiddleFalseDifferentRecord => "aborts_middle_false_different_record",
        AbortsMiddleFalseMetadata => "aborts_middle_false_metadata",
        AbortsMiddleFalseStructure => "aborts_middle_false_structure",
        AbortsMiddleUnclassified => "aborts_middle_unclassified",
        AbortsMiddleCapacity => "aborts_middle_capacity",
        AbortsMiddleExplicit => "aborts_middle_explicit",
        AbortsMiddleSpurious => "aborts_middle_spurious",
        AbortsMiddleFallbackLocked => "aborts_middle_fallback_locked",
        // TL2 version-lock table (concurrent-mode STM commit path).
        Tl2LockAcquires => "tl2_lock_acquires",
        Tl2LockFails => "tl2_lock_fails",
        Tl2ValidationFails => "tl2_validation_fails",
        Tl2Extensions => "tl2_extensions",
        Tl2ReadWaits => "tl2_read_waits",
        // Middle-path advisory slot locks (`acquire_mask_blocking`).
        AdvisoryAcquires => "advisory_lock_acquires",
        AdvisoryWaits => "advisory_lock_waits",
        // Directional CCM flips (the sum equals `ccm_bypass_flips`).
        CcmFlipsToProtect => "ccm_flips_to_protect",
        CcmFlipsToBypass => "ccm_flips_to_bypass",
    }
}

define_metric_enum! {
    /// Last-write-wins gauges (absolute levels, not event counts). Set by
    /// the harness right before each sample from the epoch collector.
    Gauge {
        EpochRetiredPending => "epoch_retired_pending",
        EpochRetiredPendingBytes => "epoch_retired_pending_bytes",
        EpochReclaimed => "epoch_reclaimed",
    }
}

/// Number of abort-cause buckets (the paper's taxonomy, Figure 2).
pub const ABORT_BUCKETS: usize = 9;

/// HTM-path abort counters in `AbortCounts` field order:
/// `true_same_record, false_different_record, false_metadata,
/// false_structure, unclassified_conflict, capacity, explicit, spurious,
/// fallback_locked`.
pub const ABORTS_HTM: [Counter; ABORT_BUCKETS] = [
    Counter::AbortsHtmTrueSameRecord,
    Counter::AbortsHtmFalseDifferentRecord,
    Counter::AbortsHtmFalseMetadata,
    Counter::AbortsHtmFalseStructure,
    Counter::AbortsHtmUnclassified,
    Counter::AbortsHtmCapacity,
    Counter::AbortsHtmExplicit,
    Counter::AbortsHtmSpurious,
    Counter::AbortsHtmFallbackLocked,
];

/// Middle-path abort counters, same bucket order as [`ABORTS_HTM`].
pub const ABORTS_MIDDLE: [Counter; ABORT_BUCKETS] = [
    Counter::AbortsMiddleTrueSameRecord,
    Counter::AbortsMiddleFalseDifferentRecord,
    Counter::AbortsMiddleFalseMetadata,
    Counter::AbortsMiddleFalseStructure,
    Counter::AbortsMiddleUnclassified,
    Counter::AbortsMiddleCapacity,
    Counter::AbortsMiddleExplicit,
    Counter::AbortsMiddleSpurious,
    Counter::AbortsMiddleFallbackLocked,
];

/// The executor stage counters as a plain value struct — what
/// `RunMetrics` carries and the run report's stage section serializes.
/// Field names are the canonical counter names.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStages {
    pub attempts: u64,
    pub commits: u64,
    pub middles: u64,
    pub middle_attempts: u64,
    pub fallbacks: u64,
    pub backoffs: u64,
    pub ccm_bypass_flips: u64,
}

impl ExecStages {
    pub fn merge(&mut self, other: &ExecStages) {
        self.attempts += other.attempts;
        self.commits += other.commits;
        self.middles += other.middles;
        self.middle_attempts += other.middle_attempts;
        self.fallbacks += other.fallbacks;
        self.backoffs += other.backoffs;
        self.ccm_bypass_flips += other.ccm_bypass_flips;
    }

    /// Extract the stage view from a dense counter vector (a shard or a
    /// registry total).
    pub fn from_counters(c: &[u64; Counter::COUNT]) -> Self {
        ExecStages {
            attempts: c[Counter::Attempts.index()],
            commits: c[Counter::Commits.index()],
            middles: c[Counter::Middles.index()],
            middle_attempts: c[Counter::MiddleAttempts.index()],
            fallbacks: c[Counter::Fallbacks.index()],
            backoffs: c[Counter::Backoffs.index()],
            ccm_bypass_flips: c[Counter::CcmBypassFlips.index()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            assert!(!c.name().is_empty());
            assert!(seen.insert(c.name()), "duplicate counter name {}", c.name());
        }
        for g in Gauge::ALL {
            assert!(seen.insert(g.name()), "gauge name collides: {}", g.name());
        }
    }

    #[test]
    fn indices_are_dense() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn stage_extraction_round_trips() {
        let mut c = [0u64; Counter::COUNT];
        c[Counter::Attempts.index()] = 10;
        c[Counter::Commits.index()] = 7;
        c[Counter::Middles.index()] = 2;
        c[Counter::MiddleAttempts.index()] = 3;
        c[Counter::Fallbacks.index()] = 1;
        c[Counter::Backoffs.index()] = 5;
        c[Counter::CcmBypassFlips.index()] = 4;
        let s = ExecStages::from_counters(&c);
        assert_eq!(
            s,
            ExecStages {
                attempts: 10,
                commits: 7,
                middles: 2,
                middle_attempts: 3,
                fallbacks: 1,
                backoffs: 5,
                ccm_bypass_flips: 4,
            }
        );
        let mut acc = ExecStages::default();
        acc.merge(&s);
        acc.merge(&s);
        assert_eq!(acc.attempts, 20);
        assert_eq!(acc.ccm_bypass_flips, 8);
    }
}
