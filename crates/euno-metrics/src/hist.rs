//! The single log-bucketed histogram implementation in the tree.
//!
//! Throughput curves hide tail behaviour: a fallback convoy shows up as a
//! p99.9 two orders of magnitude above the median long before it moves
//! the mean. The harness records each operation's virtual-cycle latency
//! here; experiments report quantiles alongside the figures, and the
//! metrics sampler snapshots the raw buckets so windows between snapshots
//! yield time-resolved quantiles.
//!
//! Buckets are powers of √2 (~3 dB resolution), covering 1 cycle to ~10¹²
//! with 80 buckets — constant memory, O(1) insert, quantile error < 20 %,
//! and merging two histograms is a bucket-wise add (the property the
//! sharded registry depends on).
//!
//! `euno_sim::LatencyHistogram` is an alias of this type: the API below is
//! exactly the old `hist.rs` one, including the PR-2 fix where the
//! terminal (highest non-empty) bucket reports the *exact* observed max
//! rather than its bucket floor.

/// A fixed-size logarithmic histogram of u64 samples.
#[derive(Clone)]
pub struct LogHistogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl LogHistogram {
    /// Bucket array dimension — also the snapshot layout the sampler uses.
    pub const BUCKETS: usize = 80;

    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; Self::BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index: ~2 buckets per octave (powers of √2).
    #[inline]
    pub(crate) fn index(value: u64) -> usize {
        let v = value.max(1);
        // floor(2·log2(v)) = number of half-octaves.
        let bits = 63 - v.leading_zeros() as usize; // floor(log2 v)
        let half = if bits < 63 && v >= (3u64 << bits.saturating_sub(1)).max(1) && bits > 0 {
            // Upper half-octave: v ≥ 1.5·2^bits … approximated via the
            // second-highest bit.
            2 * bits + 1
        } else {
            2 * bits
        };
        half.min(Self::BUCKETS - 1)
    }

    /// Lower bound of a bucket (for quantile reporting).
    pub fn bucket_floor(i: usize) -> u64 {
        let bits = i / 2;
        let base = 1u64 << bits.min(62);
        if i % 2 == 1 {
            base + base / 2
        } else {
            base
        }
    }

    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile (`q` in [0,1]): the floor of the bucket where
    /// the cumulative count crosses `q·count` — except in the **terminal**
    /// (highest non-empty) bucket, where the exact observed maximum is
    /// returned. Without that, `quantile(1.0)` under-reported the max by
    /// up to √2× (the bucket's width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let last = match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return 0,
        };
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return if i == last {
                    self.max
                } else {
                    Self::bucket_floor(i)
                };
            }
        }
        self.max
    }

    /// The non-empty buckets as `(floor, count)` pairs — the raw
    /// distribution a run report serializes.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
            .collect()
    }

    /// Raw bucket counts (snapshot layout; index i covers
    /// [`bucket_floor(i)`, `bucket_floor(i+1)`)).
    pub fn bucket_counts(&self) -> &[u64; Self::BUCKETS] {
        &self.buckets
    }

    /// Rebuild a histogram from raw bucket counts (e.g. a snapshot delta).
    /// `sum` is approximated from bucket floors and `max` from the highest
    /// non-empty bucket, so windowed quantiles are floor-approximate —
    /// the exact-max terminal refinement only applies to live histograms.
    pub fn from_bucket_counts(buckets: &[u64; Self::BUCKETS]) -> Self {
        let mut h = LogHistogram::new();
        h.buckets = *buckets;
        for (i, &c) in buckets.iter().enumerate() {
            h.count += c;
            h.sum = h
                .sum
                .saturating_add(Self::bucket_floor(i).saturating_mul(c));
            if c > 0 {
                h.max = Self::bucket_floor(i);
            }
        }
        h
    }

    /// Overwrite the approximate sum/max `from_bucket_counts` derived with
    /// exactly-tracked values (shard histograms track these in atomics).
    pub(crate) fn set_exact(&mut self, sum: u64, max: u64) {
        if self.count > 0 {
            self.sum = sum;
            self.max = max;
        }
    }

    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// One-line summary: `mean/p50/p99/p999/max` in cycles.
    pub fn summary(&self) -> String {
        format!(
            "mean {:.0}cyc p50 {} p99 {} p99.9 {} max {}",
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
            self.max()
        )
    }
}

/// Bucket-floor quantile over a raw bucket vector (a snapshot window).
/// Returns 0 for an empty window.
pub fn approx_quantile_from_buckets(buckets: &[u64; LogHistogram::BUCKETS], q: f64) -> u64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0;
    }
    let target = (q.clamp(0.0, 1.0) * count as f64).ceil() as u64;
    let mut acc = 0;
    for (i, &c) in buckets.iter().enumerate() {
        acc += c;
        if acc >= target {
            return LogHistogram::bucket_floor(i);
        }
    }
    LogHistogram::bucket_floor(LogHistogram::BUCKETS - 1)
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LogHistogram({})", self.summary())
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn records_and_counts() {
        let mut h = LogHistogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 2222.2).abs() < 1.0);
    }

    #[test]
    fn terminal_quantile_is_exact_max() {
        // Regression (PR 2): quantile(1.0) used to return the last
        // bucket's floor. 1000 is in bucket [768, 1024) → floor 768 ≠ max.
        let mut h = LogHistogram::new();
        h.record(1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.5), 1000);
        for _ in 0..99 {
            h.record(10);
        }
        assert!(h.quantile(0.5) < 1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(1.0) >= h.quantile(0.999));
    }

    #[test]
    fn from_bucket_counts_round_trips_buckets() {
        let mut h = LogHistogram::new();
        for v in [3u64, 3, 700, 900_000] {
            h.record(v);
        }
        let rebuilt = LogHistogram::from_bucket_counts(h.bucket_counts());
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.bucket_counts(), h.bucket_counts());
        assert_eq!(rebuilt.nonzero_buckets(), h.nonzero_buckets());
        // Rebuilt max is the floor of the terminal bucket, ≤ exact max,
        // and within one bucket width (√2×) of it.
        assert!(rebuilt.max() <= h.max());
        assert!(h.max() as f64 / rebuilt.max() as f64 <= 1.5);
    }

    #[test]
    fn approx_quantile_matches_floor_quantile() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 7);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let a = approx_quantile_from_buckets(h.bucket_counts(), q);
            let b = h.quantile(q);
            // They agree except in the terminal bucket where quantile()
            // reports exact max.
            assert!(a <= b || b == h.max(), "q={q}: approx {a} vs {b}");
        }
        assert_eq!(
            approx_quantile_from_buckets(&[0; LogHistogram::BUCKETS], 0.5),
            0
        );
    }

    #[test]
    fn bucket_floors_monotone() {
        let mut prev = 0;
        for i in 0..LogHistogram::BUCKETS {
            let f = LogHistogram::bucket_floor(i);
            assert!(f >= prev, "bucket {i}: {f} < {prev}");
            prev = f;
        }
    }
}
