//! Timestamped CCM bypass-flip ledger and the adaptation-lag derivation.
//!
//! Eunomia's CCM protects a leaf while it is contended and *bypasses*
//! prefetch-protection once it cools down. How fast those flips chase a
//! moving hotspot is the paper's adaptivity story (ROADMAP item 4): the
//! fig14 timeline programs hotspot rotations, marks each rotation tick
//! here as a [`FlipKind::ShiftMark`], and the CCM records every flip with
//! the flipping thread's clock. [`adaptation_lags`] then pairs each shift
//! with the first re-protect flip after it — the **adaptation lag**.
//!
//! The log is a fixed-capacity array of atomic slots claimed by
//! `fetch_add` — wait-free for writers, no allocation after construction.
//! In virtual mode recording is deterministic (the scheduler serializes
//! threads); in concurrent mode a slot's fields are written independently,
//! so a reader racing a writer could observe a partially-filled slot —
//! slots are therefore published with a release flag and unpublished
//! slots are skipped on read.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// What a flip-log entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlipKind {
    /// CCM re-protected a leaf (bypass → protect): contention detected.
    ToProtect,
    /// CCM disabled protection (protect → bypass): leaf went calm.
    ToBypass,
    /// A programmed hotspot rotation boundary (written by the workload
    /// driver, not the CCM) — the reference point lags are measured from.
    ShiftMark,
}

impl FlipKind {
    fn encode(self) -> u64 {
        match self {
            FlipKind::ToProtect => 0,
            FlipKind::ToBypass => 1,
            FlipKind::ShiftMark => 2,
        }
    }

    fn decode(v: u64) -> FlipKind {
        match v {
            0 => FlipKind::ToProtect,
            1 => FlipKind::ToBypass,
            _ => FlipKind::ShiftMark,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            FlipKind::ToProtect => "to_protect",
            FlipKind::ToBypass => "to_bypass",
            FlipKind::ShiftMark => "shift_mark",
        }
    }
}

/// One decoded flip-log entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlipEvent {
    /// Virtual cycles (virtual mode) or wall µs (concurrent mode) of the
    /// recording thread at the moment of the flip.
    pub tick: u64,
    /// Leaf address (0 for shift marks).
    pub addr: u64,
    pub kind: FlipKind,
}

struct FlipSlot {
    tick: AtomicU64,
    addr: AtomicU64,
    kind: AtomicU64,
    ready: AtomicU64,
}

/// Fixed-capacity, wait-free event log for CCM flips and shift marks.
pub struct FlipLog {
    slots: Box<[FlipSlot]>,
    next: AtomicUsize,
}

impl FlipLog {
    pub const DEFAULT_CAPACITY: usize = 4096;

    pub fn new(capacity: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| FlipSlot {
                tick: AtomicU64::new(0),
                addr: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                ready: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlipLog {
            slots,
            next: AtomicUsize::new(0),
        }
    }

    /// Append an event. Wait-free; events past capacity are dropped (and
    /// counted — see [`FlipLog::dropped`]).
    pub fn record(&self, tick: u64, addr: u64, kind: FlipKind) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.slots.get(idx) {
            slot.tick.store(tick, Ordering::Relaxed);
            slot.addr.store(addr, Ordering::Relaxed);
            slot.kind.store(kind.encode(), Ordering::Relaxed);
            slot.ready.store(1, Ordering::Release);
        }
    }

    /// Number of published events (≤ capacity).
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.slots.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events that arrived after the log was full.
    pub fn dropped(&self) -> u64 {
        self.next
            .load(Ordering::Relaxed)
            .saturating_sub(self.slots.len()) as u64
    }

    /// Decode the published prefix (post-run; allocates). Slots still in
    /// flight (claimed but unpublished) are skipped.
    pub fn events(&self) -> Vec<FlipEvent> {
        self.slots[..self.len()]
            .iter()
            .filter(|s| s.ready.load(Ordering::Acquire) == 1)
            .map(|s| FlipEvent {
                tick: s.tick.load(Ordering::Relaxed),
                addr: s.addr.load(Ordering::Relaxed),
                kind: FlipKind::decode(s.kind.load(Ordering::Relaxed)),
            })
            .collect()
    }

    /// Clear the log (between runs on a reused runtime).
    pub fn reset(&self) {
        // Unpublish before releasing the slots so a racing reader never
        // sees a stale pair.
        for s in self.slots.iter() {
            s.ready.store(0, Ordering::Relaxed);
        }
        self.next.store(0, Ordering::Release);
    }
}

impl Default for FlipLog {
    fn default() -> Self {
        FlipLog::new(Self::DEFAULT_CAPACITY)
    }
}

/// One programmed hotspot shift and how the CCM responded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptationLag {
    /// Tick of the shift mark.
    pub shift_tick: u64,
    /// Tick of the first re-protect flip at or after the shift (before
    /// the next shift), if any.
    pub flip_tick: Option<u64>,
    /// `flip_tick - shift_tick`, if the CCM reacted in time.
    pub lag: Option<u64>,
}

/// Pair each shift mark with the first `ToProtect` flip that follows it
/// (strictly before the next shift mark): the **adaptation lag** of the
/// CCM after each programmed hotspot rotation.
///
/// Pure function over a decoded event list — exact in virtual mode, where
/// the log order is deterministic.
pub fn adaptation_lags(events: &[FlipEvent]) -> Vec<AdaptationLag> {
    let mut shifts: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == FlipKind::ShiftMark)
        .map(|e| e.tick)
        .collect();
    shifts.sort_unstable();
    let mut flips: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == FlipKind::ToProtect)
        .map(|e| e.tick)
        .collect();
    flips.sort_unstable();

    shifts
        .iter()
        .enumerate()
        .map(|(i, &shift)| {
            let horizon = shifts.get(i + 1).copied().unwrap_or(u64::MAX);
            let flip_tick = flips.iter().copied().find(|&f| f >= shift && f < horizon);
            AdaptationLag {
                shift_tick: shift,
                flip_tick,
                lag: flip_tick.map(|f| f - shift),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_decodes_in_order() {
        let log = FlipLog::new(8);
        log.record(10, 0xabc, FlipKind::ToProtect);
        log.record(20, 0xdef, FlipKind::ToBypass);
        log.record(15, 0, FlipKind::ShiftMark);
        let ev = log.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(
            ev[0],
            FlipEvent {
                tick: 10,
                addr: 0xabc,
                kind: FlipKind::ToProtect
            }
        );
        assert_eq!(ev[1].kind, FlipKind::ToBypass);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let log = FlipLog::new(2);
        for t in 0..5 {
            log.record(t, 0, FlipKind::ToProtect);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
        log.reset();
        assert!(log.is_empty());
        assert_eq!(log.events().len(), 0);
    }

    #[test]
    fn lag_pairs_shift_with_first_reprotect() {
        let ev = [
            FlipEvent {
                tick: 100,
                addr: 0,
                kind: FlipKind::ShiftMark,
            },
            FlipEvent {
                tick: 90,
                addr: 1,
                kind: FlipKind::ToProtect,
            }, // before shift: ignored
            FlipEvent {
                tick: 130,
                addr: 2,
                kind: FlipKind::ToProtect,
            },
            FlipEvent {
                tick: 150,
                addr: 2,
                kind: FlipKind::ToBypass,
            },
            FlipEvent {
                tick: 200,
                addr: 0,
                kind: FlipKind::ShiftMark,
            },
            FlipEvent {
                tick: 260,
                addr: 3,
                kind: FlipKind::ToProtect,
            },
        ];
        let lags = adaptation_lags(&ev);
        assert_eq!(lags.len(), 2);
        assert_eq!(lags[0].lag, Some(30));
        assert_eq!(lags[1].lag, Some(60));
    }

    #[test]
    fn unanswered_shift_yields_none() {
        let ev = [
            FlipEvent {
                tick: 100,
                addr: 0,
                kind: FlipKind::ShiftMark,
            },
            FlipEvent {
                tick: 500,
                addr: 0,
                kind: FlipKind::ShiftMark,
            },
            // Only flip lands after the *second* shift.
            FlipEvent {
                tick: 510,
                addr: 1,
                kind: FlipKind::ToProtect,
            },
        ];
        let lags = adaptation_lags(&ev);
        assert_eq!(lags[0].lag, None);
        assert_eq!(lags[1].lag, Some(10));
    }

    #[test]
    fn concurrent_writers_never_produce_garbage() {
        let log = std::sync::Arc::new(FlipLog::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let log = log.clone();
                s.spawn(move || {
                    for i in 0..32u64 {
                        log.record(t * 1000 + i, t, FlipKind::ToProtect);
                    }
                });
            }
        });
        let ev = log.events();
        assert_eq!(ev.len(), 64);
        assert_eq!(log.dropped(), 64);
        for e in ev {
            assert!(e.addr < 4);
            assert_eq!(e.kind, FlipKind::ToProtect);
        }
    }
}
