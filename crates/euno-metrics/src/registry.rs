//! The metric registry: per-thread counter shards, global gauges and the
//! flip log, owned one-per-`Runtime`.
//!
//! **Sharding & the single-writer discipline.** Each thread gets its own
//! cache-line-aligned [`ThreadShard`] at registration. Only the owning
//! thread writes its shard, so increments are a relaxed load + store (no
//! `lock`-prefixed RMW on the hot path); the sampler and end-of-run
//! aggregation read the same atomics concurrently and — because every
//! slot is written by exactly one thread and only ever grows — observe a
//! monotone, never-torn value per counter. Cross-counter consistency is
//! *not* promised within a snapshot (a sampler may see a commit before
//! its attempt); windows are therefore reported per-counter.
//!
//! **Rollback.** The warmup harness discards warmup operations by cloning
//! `ThreadStats` around each op and restoring on completion; shards get
//! the symmetric treatment via [`ThreadShard::mark`] /
//! [`ThreadShard::restore`] — a fixed-size copy, no allocation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::counters::{Counter, ExecStages, Gauge};
use crate::flip::{FlipKind, FlipLog};
use crate::hist::LogHistogram;

/// One thread's private slice of the registry. All slots are atomics so
/// the sampler can read live, but the owner updates them single-writer
/// (relaxed load+store) — see the module docs.
#[repr(align(128))]
pub struct ThreadShard {
    counters: [AtomicU64; Counter::COUNT],
    hist_buckets: [AtomicU64; LogHistogram::BUCKETS],
    hist_count: AtomicU64,
    hist_sum: AtomicU64,
    hist_max: AtomicU64,
}

/// Saved shard state for warmup rollback (counters only: the harness
/// never records latency for warmup operations, so the histogram needs no
/// mark).
#[derive(Clone)]
pub struct ShardMark {
    counters: [u64; Counter::COUNT],
}

impl ThreadShard {
    fn new() -> Self {
        ThreadShard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_count: AtomicU64::new(0),
            hist_sum: AtomicU64::new(0),
            hist_max: AtomicU64::new(0),
        }
    }

    /// Owner-thread increment: relaxed load + store, no RMW.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        let cell = &self.counters[c.index()];
        cell.store(
            cell.load(Ordering::Relaxed).wrapping_add(n),
            Ordering::Relaxed,
        );
    }

    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    /// Owner-thread latency record into the shard histogram.
    #[inline]
    pub fn record_latency(&self, value: u64) {
        let b = &self.hist_buckets[LogHistogram::index(value)];
        b.store(b.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.hist_count.store(
            self.hist_count.load(Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        self.hist_sum.store(
            self.hist_sum.load(Ordering::Relaxed).saturating_add(value),
            Ordering::Relaxed,
        );
        if value > self.hist_max.load(Ordering::Relaxed) {
            self.hist_max.store(value, Ordering::Relaxed);
        }
    }

    /// Dense copy of all counters (sampler / aggregation read path).
    pub fn counter_values(&self) -> [u64; Counter::COUNT] {
        std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed))
    }

    /// The executor-stage view of this shard.
    pub fn exec_stages(&self) -> ExecStages {
        ExecStages::from_counters(&self.counter_values())
    }

    /// Save counter state before a warmup op (fixed-size copy, no alloc).
    pub fn mark(&self) -> ShardMark {
        ShardMark {
            counters: self.counter_values(),
        }
    }

    /// Roll counters back to a [`mark`](ThreadShard::mark).
    pub fn restore(&self, mark: &ShardMark) {
        for (cell, &v) in self.counters.iter().zip(mark.counters.iter()) {
            cell.store(v, Ordering::Relaxed);
        }
    }

    fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for b in &self.hist_buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.hist_count.store(0, Ordering::Relaxed);
        self.hist_sum.store(0, Ordering::Relaxed);
        self.hist_max.store(0, Ordering::Relaxed);
    }
}

/// The per-runtime metric registry.
pub struct Registry {
    enabled: AtomicBool,
    shards: Mutex<Vec<Arc<ThreadShard>>>,
    gauges: [AtomicU64; Gauge::COUNT],
    flips: FlipLog,
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(true),
            shards: Mutex::new(Vec::new()),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            flips: FlipLog::default(),
        }
    }

    /// Disable (or re-enable) metering. Threads registered while disabled
    /// get no shard, so every hot-path hook reduces to one branch — the
    /// metrics-off engine_bench row measures exactly this.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Register a new thread. Returns `None` when metering is disabled.
    /// Allocates (thread creation time — never on the op hot path).
    pub fn register_shard(&self) -> Option<Arc<ThreadShard>> {
        if !self.enabled() {
            return None;
        }
        let shard = Arc::new(ThreadShard::new());
        self.shards.lock().unwrap().push(shard.clone());
        Some(shard)
    }

    /// Zero every shard, gauge and the flip log. Called by
    /// `reset_dynamics` so preload traffic never leaks into measured
    /// totals; registered threads keep their shard handles.
    pub fn reset(&self) {
        for s in self.shards.lock().unwrap().iter() {
            s.reset();
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
        self.flips.reset();
    }

    /// Sum one counter over all shards.
    pub fn total(&self, c: Counter) -> u64 {
        self.shards.lock().unwrap().iter().map(|s| s.get(c)).sum()
    }

    /// Dense totals over all shards.
    pub fn totals(&self) -> [u64; Counter::COUNT] {
        let mut out = [0u64; Counter::COUNT];
        for s in self.shards.lock().unwrap().iter() {
            for (acc, cell) in out.iter_mut().zip(s.counter_values().iter()) {
                *acc += cell;
            }
        }
        out
    }

    /// The executor-stage aggregate over all shards.
    pub fn exec_stages(&self) -> ExecStages {
        ExecStages::from_counters(&self.totals())
    }

    pub fn set_gauge(&self, g: Gauge, v: u64) {
        self.gauges[g.index()].store(v, Ordering::Relaxed);
    }

    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.index()].load(Ordering::Relaxed)
    }

    /// Record a CCM flip (called from the CCM with the flipping thread's
    /// clock). Also bumps nothing — counters are the caller's job.
    pub fn record_flip(&self, tick: u64, addr: u64, to_bypass: bool) {
        self.flips.record(
            tick,
            addr,
            if to_bypass {
                FlipKind::ToBypass
            } else {
                FlipKind::ToProtect
            },
        );
    }

    /// Record a programmed hotspot-shift boundary (workload drivers).
    pub fn mark_shift(&self, tick: u64) {
        self.flips.record(tick, 0, FlipKind::ShiftMark);
    }

    pub fn flips(&self) -> &FlipLog {
        &self.flips
    }

    /// Merge all shard histograms into one (end-of-run read).
    pub fn merged_histogram(&self) -> LogHistogram {
        let mut out = LogHistogram::new();
        for s in self.shards.lock().unwrap().iter() {
            let mut buckets = [0u64; LogHistogram::BUCKETS];
            for (b, cell) in buckets.iter_mut().zip(s.hist_buckets.iter()) {
                *b = cell.load(Ordering::Relaxed);
            }
            let mut h = LogHistogram::from_bucket_counts(&buckets);
            // Restore the exact sum/max the shard tracked (from_bucket_counts
            // only approximates them).
            h = h.with_exact(
                s.hist_sum.load(Ordering::Relaxed),
                s.hist_max.load(Ordering::Relaxed),
            );
            out.merge(&h);
        }
        out
    }

    /// Zero-allocation accumulation used by the sampler: sums counters and
    /// histogram buckets over all shards into caller-provided arrays,
    /// copies gauges, and returns the number of published flip events.
    pub fn accumulate_into(
        &self,
        counters: &mut [u64; Counter::COUNT],
        gauges: &mut [u64; Gauge::COUNT],
        hist: &mut [u64; LogHistogram::BUCKETS],
    ) -> u64 {
        counters.fill(0);
        hist.fill(0);
        for s in self.shards.lock().unwrap().iter() {
            for (acc, cell) in counters.iter_mut().zip(s.counters.iter()) {
                *acc += cell.load(Ordering::Relaxed);
            }
            for (acc, cell) in hist.iter_mut().zip(s.hist_buckets.iter()) {
                *acc += cell.load(Ordering::Relaxed);
            }
        }
        for (out, cell) in gauges.iter_mut().zip(self.gauges.iter()) {
            *out = cell.load(Ordering::Relaxed);
        }
        self.flips.len() as u64
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shards = self.shards.lock().unwrap().len();
        write!(
            f,
            "Registry(enabled={}, shards={}, flips={})",
            self.enabled(),
            shards,
            self.flips.len()
        )
    }
}

impl LogHistogram {
    /// Replace the approximated sum/max with exactly-tracked values (used
    /// when rebuilding a shard histogram whose sum/max atomics are known).
    fn with_exact(mut self, sum: u64, max: u64) -> LogHistogram {
        self.set_exact(sum, max);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_add_and_stage_view() {
        let reg = Registry::new();
        let s = reg.register_shard().unwrap();
        s.add(Counter::Attempts, 3);
        s.add(Counter::Commits, 2);
        s.add(Counter::Middles, 1);
        assert_eq!(s.get(Counter::Attempts), 3);
        let stages = s.exec_stages();
        assert_eq!(stages.attempts, 3);
        assert_eq!(stages.commits, 2);
        assert_eq!(stages.middles, 1);
        assert_eq!(reg.total(Counter::Commits), 2);
    }

    #[test]
    fn totals_sum_across_shards() {
        let reg = Registry::new();
        let a = reg.register_shard().unwrap();
        let b = reg.register_shard().unwrap();
        a.add(Counter::Ops, 10);
        b.add(Counter::Ops, 5);
        assert_eq!(reg.total(Counter::Ops), 15);
        assert_eq!(reg.exec_stages().attempts, 0);
        reg.reset();
        assert_eq!(reg.total(Counter::Ops), 0);
        // Handles stay live after reset.
        a.add(Counter::Ops, 1);
        assert_eq!(reg.total(Counter::Ops), 1);
    }

    #[test]
    fn disabled_registry_hands_out_no_shards() {
        let reg = Registry::new();
        reg.set_enabled(false);
        assert!(reg.register_shard().is_none());
        reg.set_enabled(true);
        assert!(reg.register_shard().is_some());
    }

    #[test]
    fn mark_restore_rolls_back_counters() {
        let reg = Registry::new();
        let s = reg.register_shard().unwrap();
        s.add(Counter::Commits, 5);
        let mark = s.mark();
        s.add(Counter::Commits, 7);
        s.add(Counter::Fallbacks, 1);
        s.restore(&mark);
        assert_eq!(s.get(Counter::Commits), 5);
        assert_eq!(s.get(Counter::Fallbacks), 0);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let reg = Registry::new();
        reg.set_gauge(Gauge::EpochRetiredPending, 42);
        reg.set_gauge(Gauge::EpochRetiredPending, 17);
        assert_eq!(reg.gauge(Gauge::EpochRetiredPending), 17);
    }

    #[test]
    fn merged_histogram_keeps_exact_max() {
        let reg = Registry::new();
        let a = reg.register_shard().unwrap();
        let b = reg.register_shard().unwrap();
        a.record_latency(100);
        a.record_latency(1000);
        b.record_latency(999_937);
        let h = reg.merged_histogram();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 999_937);
        assert_eq!(h.quantile(1.0), 999_937);
    }

    #[test]
    fn flip_roundtrip_through_registry() {
        let reg = Registry::new();
        reg.mark_shift(50);
        reg.record_flip(80, 0xbeef, false);
        let lags = crate::adaptation_lags(&reg.flips().events());
        assert_eq!(lags.len(), 1);
        assert_eq!(lags[0].lag, Some(30));
    }
}
