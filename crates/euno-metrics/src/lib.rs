//! Always-on, low-overhead metrics for the Eunomia engine.
//!
//! `euno-metrics` sits at the very bottom of the crate graph (next to
//! `euno-trace`): it depends on nothing and everything above it —
//! executor, version-lock table, epoch collector, CCM — feeds it. The
//! design goals, in priority order:
//!
//! 1. **Schedule neutrality.** Recording a metric charges no virtual
//!    cycles, draws no RNG and takes no lock on the writer path, so a
//!    metered and an unmetered run replay the identical schedule (the
//!    golden-determinism digest pins this).
//! 2. **Near-zero cost when hot.** Counters live in per-thread *shards*
//!    ([`ThreadShard`]): a cache-line-aligned array of `AtomicU64`s with a
//!    single-writer discipline — the owning thread updates with relaxed
//!    load+store (no `lock xadd`), concurrent readers (the sampler) only
//!    ever observe a monotone value.
//! 3. **Zero allocation on the sampling path.** [`TimeSeries`] preallocates
//!    its snapshot ring; `sample()` is a pure copy-and-sum (asserted by a
//!    counting-allocator test).
//!
//! The pieces:
//!
//! - [`Counter`] / [`Gauge`] — the fixed metric vocabulary. Names are
//!   canonical: the run-report executor-stage section and the time-series
//!   exporters all use [`Counter::name`], so there is exactly one spelling
//!   of every metric in the tree.
//! - [`LogHistogram`] — the mergeable √2-bucket histogram (single
//!   implementation; `euno_sim::LatencyHistogram` is an alias of it).
//! - [`Registry`] — owns the shards, the gauges and the [`FlipLog`];
//!   one per [`Runtime`](../euno_htm/struct.Runtime.html).
//! - [`TimeSeries`] / [`sample_due`] — the Δ-tick snapshot ring the run
//!   report serializes as its schema-v3 `timeseries` section.
//! - [`FlipLog`] / [`adaptation_lags`] — timestamped CCM bypass flips and
//!   hotspot-shift marks, from which the *adaptation lag* (flip latency
//!   after a programmed hotspot rotation) is derived.

mod counters;
mod flip;
mod hist;
mod registry;
mod sample;

pub use counters::{Counter, ExecStages, Gauge, ABORTS_HTM, ABORTS_MIDDLE, ABORT_BUCKETS};
pub use flip::{adaptation_lags, AdaptationLag, FlipEvent, FlipKind, FlipLog};
pub use hist::{approx_quantile_from_buckets, LogHistogram};
pub use registry::{Registry, ShardMark, ThreadShard};
pub use sample::{sample_due, Snapshot, TimeSeries, Window};
