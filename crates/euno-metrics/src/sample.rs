//! The Δ-tick sampler: cumulative registry snapshots in a preallocated
//! ring, and the window arithmetic that turns them into curves.
//!
//! **Window semantics.** Every snapshot stores *cumulative* counter
//! totals (plus absolute gauge levels and cumulative histogram buckets).
//! A window between consecutive snapshots is the element-wise difference
//! — because each per-thread slot is single-writer monotone, snapshot
//! values never regress and the sum of all window deltas equals
//! `last − first`: no event is ever double-counted or lost between
//! retained snapshots. Gauges are levels, not counts, so windows report
//! the closing level.
//!
//! **Ring.** The snapshot buffer is preallocated at construction; when
//! full, the oldest snapshot is overwritten (`dropped` counts how many).
//! `sample()` therefore allocates nothing — a counting-allocator test
//! pins this.
//!
//! **Tick units.** Virtual mode samples on the scheduler's virtual clock
//! (Δ in cycles); concurrent mode samples on wall time (Δ in µs). The
//! unit travels with the serialized timeseries so consumers never guess.

use crate::counters::{Counter, Gauge};
use crate::hist::LogHistogram;
use crate::registry::Registry;

/// One cumulative snapshot of the registry.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Virtual cycles or wall µs, depending on the run mode.
    pub tick: u64,
    /// Cumulative counter totals (summed over shards), dense by
    /// [`Counter::index`].
    pub counters: [u64; Counter::COUNT],
    /// Absolute gauge levels at sample time.
    pub gauges: [u64; Gauge::COUNT],
    /// Cumulative latency-histogram buckets (summed over shards).
    pub hist: [u64; LogHistogram::BUCKETS],
    /// Published flip-log length at sample time.
    pub flip_events: u64,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            tick: 0,
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            hist: [0; LogHistogram::BUCKETS],
            flip_events: 0,
        }
    }
}

/// The difference between two consecutive snapshots.
#[derive(Clone, Debug)]
pub struct Window {
    /// Opening / closing ticks.
    pub t0: u64,
    pub t1: u64,
    /// Per-counter event deltas within the window.
    pub counters: [u64; Counter::COUNT],
    /// Gauge levels at the close of the window.
    pub gauges: [u64; Gauge::COUNT],
    /// Histogram bucket deltas within the window.
    pub hist: [u64; LogHistogram::BUCKETS],
    /// Flip events recorded within the window.
    pub flip_events: u64,
}

impl Window {
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Window duration in ticks (≥1 to keep rates finite).
    pub fn span(&self) -> u64 {
        (self.t1 - self.t0).max(1)
    }

    fn between(a: &Snapshot, b: &Snapshot) -> Window {
        Window {
            t0: a.tick,
            t1: b.tick,
            counters: std::array::from_fn(|i| b.counters[i].saturating_sub(a.counters[i])),
            gauges: b.gauges,
            hist: std::array::from_fn(|i| b.hist[i].saturating_sub(a.hist[i])),
            flip_events: b.flip_events.saturating_sub(a.flip_events),
        }
    }
}

/// A fixed-capacity ring of registry snapshots sampled every Δ ticks.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    delta: u64,
    snaps: Vec<Snapshot>,
    /// Index of the oldest retained snapshot.
    head: usize,
    /// Number of retained snapshots (≤ capacity).
    len: usize,
    /// Snapshots overwritten after the ring filled.
    dropped: u64,
    /// Next tick at which a sample is due (see [`sample_due`]).
    next_due: u64,
}

impl TimeSeries {
    pub const DEFAULT_CAPACITY: usize = 256;

    /// `delta` is the sampling period in ticks; `capacity` bounds the ring
    /// (all slots preallocated here, never on the sample path).
    pub fn new(delta: u64, capacity: usize) -> Self {
        let cap = capacity.max(2);
        TimeSeries {
            delta: delta.max(1),
            snaps: vec![Snapshot::default(); cap],
            head: 0,
            len: 0,
            dropped: 0,
            next_due: 0,
        }
    }

    pub fn delta(&self) -> u64 {
        self.delta
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn capacity(&self) -> usize {
        self.snaps.len()
    }

    /// Oldest snapshots overwritten by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Take one snapshot now. Zero allocation: writes into a preallocated
    /// ring slot.
    pub fn sample(&mut self, tick: u64, reg: &Registry) {
        let cap = self.snaps.len();
        let slot = if self.len < cap {
            let i = (self.head + self.len) % cap;
            self.len += 1;
            i
        } else {
            let i = self.head;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
            i
        };
        let snap = &mut self.snaps[slot];
        snap.tick = tick;
        snap.flip_events =
            reg.accumulate_into(&mut snap.counters, &mut snap.gauges, &mut snap.hist);
    }

    /// Retained snapshots, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Snapshot> + '_ {
        let cap = self.snaps.len();
        (0..self.len).map(move |i| &self.snaps[(self.head + i) % cap])
    }

    /// The last `n` retained snapshots, oldest first (failure-dump view).
    pub fn last_n(&self, n: usize) -> impl Iterator<Item = &Snapshot> + '_ {
        let skip = self.len.saturating_sub(n);
        self.iter().skip(skip)
    }

    /// Consecutive-snapshot windows, oldest first (`len - 1` of them).
    pub fn windows(&self) -> impl Iterator<Item = Window> + '_ {
        let cap = self.snaps.len();
        (0..self.len.saturating_sub(1)).map(move |i| {
            let a = &self.snaps[(self.head + i) % cap];
            let b = &self.snaps[(self.head + i + 1) % cap];
            Window::between(a, b)
        })
    }
}

/// Sampling cadence helper: returns `true` (and advances the due tick)
/// when `tick` has reached the next sampling boundary. Call sites keep
/// this O(1) even after long idle gaps.
pub fn sample_due(ts: &mut TimeSeries, tick: u64) -> bool {
    if tick < ts.next_due {
        return false;
    }
    let delta = ts.delta;
    // Jump past any boundaries the caller skipped (idle gap) so a burst
    // of catch-up samples never lands on the same tick.
    let periods = (tick - ts.next_due) / delta + 1;
    ts.next_due += periods * delta;
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_accumulate_and_window() {
        let reg = Registry::new();
        let shard = reg.register_shard().unwrap();
        let mut ts = TimeSeries::new(100, 8);

        shard.add(Counter::Ops, 5);
        ts.sample(100, &reg);
        shard.add(Counter::Ops, 7);
        shard.add(Counter::Commits, 3);
        ts.sample(200, &reg);

        assert_eq!(ts.len(), 2);
        let w: Vec<Window> = ts.windows().collect();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].t0, 100);
        assert_eq!(w[0].t1, 200);
        assert_eq!(w[0].counter(Counter::Ops), 7);
        assert_eq!(w[0].counter(Counter::Commits), 3);
        assert_eq!(w[0].span(), 100);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let reg = Registry::new();
        let shard = reg.register_shard().unwrap();
        let mut ts = TimeSeries::new(1, 4);
        for t in 0..10u64 {
            shard.add(Counter::Ops, 1);
            ts.sample(t, &reg);
        }
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.dropped(), 6);
        let ticks: Vec<u64> = ts.iter().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9]);
        // Windows still sum to last - first over the retained range.
        let total: u64 = ts.windows().map(|w| w.counter(Counter::Ops)).sum();
        let first = ts.iter().next().unwrap().counters[Counter::Ops.index()];
        let last = ts.iter().last().unwrap().counters[Counter::Ops.index()];
        assert_eq!(total, last - first);
    }

    #[test]
    fn due_ticks_advance_past_gaps() {
        let mut ts = TimeSeries::new(100, 4);
        assert!(sample_due(&mut ts, 0));
        assert!(!sample_due(&mut ts, 50));
        assert!(sample_due(&mut ts, 100));
        // Long idle gap: one catch-up sample, then the next boundary is in
        // the future.
        assert!(sample_due(&mut ts, 1000));
        assert!(!sample_due(&mut ts, 1050));
        assert!(sample_due(&mut ts, 1100));
    }

    #[test]
    fn gauges_report_levels_not_deltas() {
        let reg = Registry::new();
        let _shard = reg.register_shard().unwrap();
        let mut ts = TimeSeries::new(10, 4);
        reg.set_gauge(Gauge::EpochRetiredPending, 40);
        ts.sample(10, &reg);
        reg.set_gauge(Gauge::EpochRetiredPending, 25);
        ts.sample(20, &reg);
        let w: Vec<Window> = ts.windows().collect();
        assert_eq!(w[0].gauges[Gauge::EpochRetiredPending.index()], 25);
    }

    #[test]
    fn histogram_windows_carry_bucket_deltas() {
        let reg = Registry::new();
        let shard = reg.register_shard().unwrap();
        let mut ts = TimeSeries::new(10, 4);
        shard.record_latency(100);
        ts.sample(10, &reg);
        shard.record_latency(100);
        shard.record_latency(100_000);
        ts.sample(20, &reg);
        let w: Vec<Window> = ts.windows().collect();
        let in_window: u64 = w[0].hist.iter().sum();
        assert_eq!(in_window, 2);
        assert!(crate::approx_quantile_from_buckets(&w[0].hist, 1.0) >= 65_536);
    }
}
