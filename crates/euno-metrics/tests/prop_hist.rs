//! Seeded property sweep for `LogHistogram` merge/quantile against a
//! sorted-vec model (in-tree property style, per PR 1: deterministic
//! seed loops, no external proptest).

use euno_metrics::LogHistogram;
use euno_rng::{Rng, SmallRng};

/// Exact quantile on the model: value at ceil(q·n)-th sample (1-based).
fn model_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

fn draw_value(rng: &mut SmallRng, shape: u64) -> u64 {
    match shape % 3 {
        // Uniform small.
        0 => rng.gen_range(1u64..10_000),
        // Log-uniform across ~12 decades.
        1 => {
            let exp = rng.gen_range(0u32..40);
            (1u64 << exp) + rng.gen_range(0u64..(1u64 << exp).max(2))
        }
        // Bulk + heavy tail (convoy shape).
        _ => {
            if rng.gen_bool(0.99) {
                rng.gen_range(50u64..200)
            } else {
                rng.gen_range(1_000_000u64..100_000_000)
            }
        }
    }
}

#[test]
fn quantiles_track_sorted_vec_model_within_bucket_resolution() {
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(0x1157 ^ seed);
        let n = rng.gen_range(1usize..3000);
        let mut h = LogHistogram::new();
        let mut model = Vec::with_capacity(n);
        for _ in 0..n {
            let v = draw_value(&mut rng, seed);
            h.record(v);
            model.push(v);
        }
        model.sort_unstable();

        assert_eq!(h.count(), n as u64, "seed {seed}");
        assert_eq!(h.max(), *model.last().unwrap(), "seed {seed}");
        let exact_mean = model.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        assert!(
            (h.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0),
            "seed {seed}"
        );

        // q = 0 is excluded: ceil(0·n) targets rank 0, which the histogram
        // satisfies at the first bucket regardless of contents (floor 1).
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let est = h.quantile(q);
            let exact = model_quantile(&model, q);
            // Log buckets: the estimate is the floor of the bucket holding
            // the exact value (≤ exact, within √2×) — except when the rank
            // lands in the terminal bucket, where the exact observed max is
            // returned instead (≥ exact, still within the bucket's width).
            if est <= exact {
                assert!(
                    exact as f64 / est.max(1) as f64 <= 1.5 + 1e-9,
                    "seed {seed} q={q}: est {est} vs exact {exact} off by >√2"
                );
            } else {
                assert_eq!(
                    est,
                    h.max(),
                    "seed {seed} q={q}: over-estimate {est} is not the max"
                );
                assert!(
                    est as f64 / exact.max(1) as f64 <= 1.5 + 1e-9,
                    "seed {seed} q={q}: terminal est {est} vs exact {exact} off by >√2"
                );
            }
        }
        assert_eq!(h.quantile(1.0), *model.last().unwrap(), "seed {seed}");
    }
}

#[test]
fn merge_of_shards_is_identical_to_one_histogram() {
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(0x3e12_6ed0 ^ seed);
        let shards = rng.gen_range(2usize..8);
        let n = rng.gen_range(0usize..2000);

        let mut whole = LogHistogram::new();
        let mut parts: Vec<LogHistogram> = (0..shards).map(|_| LogHistogram::new()).collect();
        for i in 0..n {
            let v = draw_value(&mut rng, seed);
            whole.record(v);
            parts[i % shards].record(v);
        }

        let mut merged = LogHistogram::new();
        for p in &parts {
            merged.merge(p);
        }

        assert_eq!(merged.count(), whole.count(), "seed {seed}");
        assert_eq!(merged.max(), whole.max(), "seed {seed}");
        assert_eq!(merged.bucket_counts(), whole.bucket_counts(), "seed {seed}");
        assert_eq!(
            merged.nonzero_buckets(),
            whole.nonzero_buckets(),
            "seed {seed}"
        );
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "seed {seed} q={q}");
        }
        assert!((merged.mean() - whole.mean()).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn merge_is_order_insensitive() {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut a = LogHistogram::new();
    let mut b = LogHistogram::new();
    let mut c = LogHistogram::new();
    for _ in 0..500 {
        a.record(rng.gen_range(1u64..1_000_000));
        b.record(rng.gen_range(1u64..100));
        c.record(rng.gen_range(1_000u64..2_000));
    }
    let mut abc = LogHistogram::new();
    abc.merge(&a);
    abc.merge(&b);
    abc.merge(&c);
    let mut cba = LogHistogram::new();
    cba.merge(&c);
    cba.merge(&b);
    cba.merge(&a);
    assert_eq!(abc.bucket_counts(), cba.bucket_counts());
    assert_eq!(abc.quantile(0.99), cba.quantile(0.99));
    assert_eq!(abc.max(), cba.max());
}
