//! Zero-allocation gate for the metrics sampling hot path.
//!
//! The sampler runs *inside* the measured region of every instrumented
//! run, so it must not perturb the engine's own zero-allocation property:
//! after `TimeSeries::new` preallocates the snapshot ring, shard
//! increments, latency records, flip-log appends and `sample()` itself
//! must perform no heap allocation. Same counting-global-allocator
//! harness as `euno-htm/tests/zero_alloc.rs`; single `#[test]` on
//! purpose — the allocation counter is process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use euno_metrics::{Counter, Gauge, Registry, TimeSeries};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Count only the test thread's allocations: the libtest harness keeps a
// main thread alive (slow-test timers, result channels) that can allocate
// mid-window when the machine is loaded, and a process-global count would
// blame the sampler for it. Const-initialized so reading the flag inside
// the allocator never itself allocates TLS storage.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn sampling_hot_path_does_not_allocate() {
    // Setup phase: registry, four shards, the ring — all allocation
    // happens here, before the measured window.
    let reg = Registry::new();
    let shards: Vec<_> = (0..4).map(|_| reg.register_shard().unwrap()).collect();
    let mut ts = TimeSeries::new(10, 128);

    // Warm the ring through a full wrap so overwrite paths are exercised
    // inside the measured window too.
    for (t, shard) in (0..8u64).zip(shards.iter().cycle()) {
        shard.add(Counter::Ops, 1);
        ts.sample(t, &reg);
    }

    COUNTING.with(|c| c.set(true));
    let before = ALLOCS.load(Ordering::Relaxed);

    // Measured window: the full per-op metric surface — counter adds,
    // latency records, gauge stores, flip-log appends, warmup
    // mark/restore and ring samples (enough to wrap the 128-slot ring
    // several times).
    for t in 0..1000u64 {
        let shard = &shards[(t % 4) as usize];
        shard.add(Counter::Attempts, 1);
        shard.add(Counter::Commits, 1);
        shard.add(Counter::Ops, 2);
        shard.record_latency(100 + t % 917);
        let mark = shard.mark();
        shard.add(Counter::Fallbacks, 1);
        shard.restore(&mark);
        reg.set_gauge(Gauge::EpochRetiredPending, t);
        if t % 50 == 0 {
            reg.record_flip(t, 0xabc, t % 100 == 0);
            reg.mark_shift(t);
        }
        ts.sample(t * 10, &reg);
    }

    let during = ALLOCS.load(Ordering::Relaxed) - before;
    COUNTING.with(|c| c.set(false));
    assert_eq!(
        during, 0,
        "metrics sampling hot path allocated {during} times in 1000 samples"
    );

    // Sanity: the window actually exercised what it claims.
    assert!(ts.dropped() > 0, "ring never wrapped");
    assert_eq!(reg.total(Counter::Fallbacks), 0, "restore failed");
    assert_eq!(reg.total(Counter::Ops), 8 + 2000);
    assert!(reg.merged_histogram().count() >= 1000);
}
