//! Sampler correctness under concurrent writers: snapshots never regress
//! (per-counter monotonicity) and windows never double-count (the window
//! deltas telescope exactly to `last − first`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use euno_metrics::{Counter, Gauge, Registry, TimeSeries};

#[test]
fn snapshots_are_monotone_under_concurrent_writers() {
    let reg = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers = 4;

    let expected: u64 = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..writers {
            let reg = reg.clone();
            let stop = stop.clone();
            handles.push(s.spawn(move || {
                let shard = reg.register_shard().unwrap();
                let mut done = 0u64;
                // Hammer a mix of counters and the histogram until told to
                // stop, then a fixed tail so totals are nonzero even if
                // sampling finished first.
                for i in 0..200_000u64 {
                    shard.add(Counter::Ops, 1);
                    shard.add(Counter::Attempts, 2);
                    if i % 3 == 0 {
                        shard.add(Counter::Commits, 1);
                    }
                    shard.record_latency((w as u64 + 1) * 100 + i % 50);
                    done += 1;
                    if stop.load(Ordering::Relaxed) && i >= 1000 {
                        break;
                    }
                }
                done
            }));
        }

        // Sample concurrently with the writers.
        let mut ts = TimeSeries::new(1, 512);
        for tick in 0..400u64 {
            ts.sample(tick, &reg);
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let total_ops: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

        // Final settle sample after all writers joined.
        ts.sample(400, &reg);

        // 1. Monotone: every counter and every histogram bucket is
        //    non-decreasing across snapshots.
        let snaps: Vec<_> = ts.iter().cloned().collect();
        for pair in snaps.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(b.tick > a.tick);
            for c in Counter::ALL {
                assert!(
                    b.counters[c.index()] >= a.counters[c.index()],
                    "counter {} regressed: {} -> {}",
                    c.name(),
                    a.counters[c.index()],
                    b.counters[c.index()]
                );
            }
            for i in 0..a.hist.len() {
                assert!(b.hist[i] >= a.hist[i], "hist bucket {i} regressed");
            }
            assert!(b.flip_events >= a.flip_events);
        }

        // 2. No double counting: window deltas telescope to last − first.
        for c in [Counter::Ops, Counter::Attempts, Counter::Commits] {
            let sum: u64 = ts.windows().map(|w| w.counter(c)).sum();
            let first = snaps.first().unwrap().counters[c.index()];
            let last = snaps.last().unwrap().counters[c.index()];
            assert_eq!(sum, last - first, "windows double-count {}", c.name());
        }
        let hist_sum: u64 = ts.windows().map(|w| w.hist.iter().sum::<u64>()).sum();
        let hist_first: u64 = snaps.first().unwrap().hist.iter().sum();
        let hist_last: u64 = snaps.last().unwrap().hist.iter().sum();
        assert_eq!(hist_sum, hist_last - hist_first);

        total_ops
    });

    // 3. The settle snapshot agrees exactly with what the writers did.
    assert_eq!(reg.total(Counter::Ops), expected);
    assert_eq!(reg.total(Counter::Attempts), expected * 2);
    assert_eq!(reg.merged_histogram().count(), expected);
}

#[test]
fn sampling_while_registering_threads_is_safe() {
    // Shards appear mid-run (threads register as they start); the sampler
    // must pick them up without missing earlier shards' counts.
    let reg = Arc::new(Registry::new());
    let mut ts = TimeSeries::new(1, 64);

    let a = reg.register_shard().unwrap();
    a.add(Counter::Ops, 10);
    ts.sample(0, &reg);

    let b = reg.register_shard().unwrap();
    b.add(Counter::Ops, 5);
    reg.set_gauge(Gauge::EpochRetiredPending, 3);
    ts.sample(1, &reg);

    let snaps: Vec<_> = ts.iter().collect();
    assert_eq!(snaps[0].counters[Counter::Ops.index()], 10);
    assert_eq!(snaps[1].counters[Counter::Ops.index()], 15);
    assert_eq!(snaps[1].gauges[Gauge::EpochRetiredPending.index()], 3);
}
