//! Randomized property tests for the workload generators, driven by
//! seeded `euno-rng` parameter sweeps.

use euno_rng::{Rng, SmallRng};

use euno_workloads::{KeyDistribution, KeySampler, OpMix, OpStream, Preload, WorkloadSpec};

fn random_distribution(rng: &mut SmallRng) -> KeyDistribution {
    match rng.gen_range(0u32..6) {
        0 => KeyDistribution::Uniform,
        1 => KeyDistribution::Zipfian {
            theta: rng.gen::<f64>() * 0.999,
            scramble: false,
        },
        2 => KeyDistribution::Zipfian {
            theta: rng.gen::<f64>() * 0.999,
            scramble: true,
        },
        3 => KeyDistribution::SelfSimilar {
            h: 0.01 + rng.gen::<f64>() * 0.48,
        },
        4 => KeyDistribution::Normal {
            sd_fraction: 0.001 + rng.gen::<f64>() * 0.199,
        },
        _ => KeyDistribution::Poisson {
            lambda: 1.0 + rng.gen::<f64>() * 499.0,
        },
    }
}

/// Every sampler stays inside its key range for any parameters.
#[test]
fn samples_in_range() {
    let mut meta = SmallRng::seed_from_u64(0x5a3);
    for _ in 0..64 {
        let dist = random_distribution(&mut meta);
        let n = meta.gen_range(1u64..100_000);
        let seed = meta.gen::<u64>();
        let s = KeySampler::new(&dist, n);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            assert!(s.sample(&mut rng) < n, "{dist:?} n={n}");
        }
    }
}

/// Samplers are pure: identical seeds give identical streams.
#[test]
fn samplers_deterministic() {
    let mut meta = SmallRng::seed_from_u64(0xde7e);
    for _ in 0..64 {
        let dist = random_distribution(&mut meta);
        let seed = meta.gen::<u64>();
        let s = KeySampler::new(&dist, 10_000);
        let mut a = SmallRng::seed_from_u64(seed);
        let mut b = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b), "{dist:?}");
        }
    }
}

/// Op streams respect the key range and mixes with arbitrary weights.
#[test]
fn op_streams_respect_spec() {
    let mut meta = SmallRng::seed_from_u64(0x09f7);
    for _ in 0..64 {
        let get = meta.gen::<f64>();
        let scan_weight = meta.gen::<f64>() * 0.3;
        let seed = meta.gen::<u64>();
        let thread = meta.gen_range(0u64..32);
        let put = (1.0 - get) * (1.0 - scan_weight);
        let scan = (1.0 - get) * scan_weight;
        let spec = WorkloadSpec {
            key_range: 5_000,
            dist: KeyDistribution::Uniform,
            mix: OpMix {
                get,
                put,
                delete: 0.0,
                scan,
            },
            scan_len: 9,
            preload: Preload::None,
            policy: Default::default(),
        };
        let mut stream = OpStream::new(&spec, thread, seed);
        for _ in 0..300 {
            let op = stream.next_op();
            assert!(op.key() < 5_000);
            if let euno_workloads::Op::Scan { len, .. } = op {
                assert_eq!(len, 9);
            }
        }
    }
}

/// Preload policies generate strictly increasing unique keys in range.
#[test]
fn preload_keys_sorted_unique() {
    let mut meta = SmallRng::seed_from_u64(0x9135);
    for _ in 0..64 {
        let pm = meta.gen_range(0u32..1000);
        let range = meta.gen_range(1u64..50_000);
        for preload in [
            Preload::EvenKeys,
            Preload::FirstN(range / 2),
            Preload::FractionPerMille(pm),
        ] {
            let spec = WorkloadSpec {
                key_range: range,
                dist: KeyDistribution::Uniform,
                mix: OpMix::default_ycsb(),
                scan_len: 4,
                preload,
                policy: Default::default(),
            };
            let keys: Vec<u64> = spec.preload_keys().collect();
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "{preload:?}");
            assert!(keys.iter().all(|&k| k < range), "{preload:?}");
        }
    }
}
