//! Property-based tests for the workload generators.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use euno_workloads::{KeyDistribution, KeySampler, OpMix, OpStream, Preload, WorkloadSpec};

fn any_distribution() -> impl Strategy<Value = KeyDistribution> {
    prop_oneof![
        Just(KeyDistribution::Uniform),
        (0.0f64..0.999).prop_map(|theta| KeyDistribution::Zipfian {
            theta,
            scramble: false
        }),
        (0.0f64..0.999).prop_map(|theta| KeyDistribution::Zipfian {
            theta,
            scramble: true
        }),
        (0.01f64..0.49).prop_map(|h| KeyDistribution::SelfSimilar { h }),
        (0.001f64..0.2).prop_map(|sd| KeyDistribution::Normal { sd_fraction: sd }),
        (1.0f64..500.0).prop_map(|lambda| KeyDistribution::Poisson { lambda }),
    ]
}

proptest! {
    /// Every sampler stays inside its key range for any parameters.
    #[test]
    fn samples_in_range(dist in any_distribution(), n in 1u64..100_000, seed: u64) {
        let s = KeySampler::new(&dist, n);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(s.sample(&mut rng) < n);
        }
    }

    /// Samplers are pure: identical seeds give identical streams.
    #[test]
    fn samplers_deterministic(dist in any_distribution(), seed: u64) {
        let s = KeySampler::new(&dist, 10_000);
        let mut a = SmallRng::seed_from_u64(seed);
        let mut b = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    /// Op streams respect the key range and mixes with arbitrary weights.
    #[test]
    fn op_streams_respect_spec(
        get in 0.0f64..1.0,
        scan_weight in 0.0f64..0.3,
        seed: u64,
        thread in 0u64..32,
    ) {
        let put = (1.0 - get) * (1.0 - scan_weight);
        let scan = (1.0 - get) * scan_weight;
        let spec = WorkloadSpec {
            key_range: 5_000,
            dist: KeyDistribution::Uniform,
            mix: OpMix { get, put, delete: 0.0, scan },
            scan_len: 9,
            preload: Preload::None,
        };
        let mut stream = OpStream::new(&spec, thread, seed);
        for _ in 0..300 {
            let op = stream.next_op();
            prop_assert!(op.key() < 5_000);
            if let euno_workloads::Op::Scan { len, .. } = op {
                prop_assert_eq!(len, 9);
            }
        }
    }

    /// Preload policies generate strictly increasing unique keys in range.
    #[test]
    fn preload_keys_sorted_unique(pm in 0u32..1000, range in 1u64..50_000) {
        for preload in [Preload::EvenKeys, Preload::FirstN(range / 2), Preload::FractionPerMille(pm)] {
            let spec = WorkloadSpec {
                key_range: range,
                dist: KeyDistribution::Uniform,
                mix: OpMix::default_ycsb(),
                scan_len: 4,
                preload,
            };
            let keys: Vec<u64> = spec.preload_keys().collect();
            prop_assert!(keys.windows(2).all(|w| w[0] < w[1]), "{:?}", preload);
            prop_assert!(keys.iter().all(|&k| k < range), "{:?}", preload);
        }
    }
}
