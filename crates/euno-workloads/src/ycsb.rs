//! The six core YCSB workloads as presets, plus the pieces they need
//! beyond the paper's get/put sweep: the *latest* distribution and
//! read-modify-write operations.
//!
//! The paper evaluates with "the Yahoo! Cloud Serving Benchmark" (§5.1)
//! at its default 50/50 mix; a library a downstream user would adopt
//! should speak the whole core suite (Cooper et al., SoCC 2010, Table 1):
//!
//! | workload | mix | distribution |
//! |---|---|---|
//! | A (update heavy) | 50 % read / 50 % update | zipfian |
//! | B (read mostly)  | 95 % read / 5 % update  | zipfian |
//! | C (read only)    | 100 % read              | zipfian |
//! | D (read latest)  | 95 % read / 5 % insert  | latest |
//! | E (short ranges) | 95 % scan / 5 % insert  | zipfian |
//! | F (read-modify-write) | 50 % read / 50 % RMW | zipfian |

use euno_rng::{Rng, SmallRng};

use crate::dist::{KeyDistribution, KeySampler};
use crate::spec::{Op, OpMix, PolicyChoice, Preload, WorkloadSpec};

/// The YCSB core workload identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbWorkload {
    A,
    B,
    C,
    D,
    E,
    F,
}

impl YcsbWorkload {
    pub const ALL: [YcsbWorkload; 6] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "YCSB-A (update heavy)",
            YcsbWorkload::B => "YCSB-B (read mostly)",
            YcsbWorkload::C => "YCSB-C (read only)",
            YcsbWorkload::D => "YCSB-D (read latest)",
            YcsbWorkload::E => "YCSB-E (short ranges)",
            YcsbWorkload::F => "YCSB-F (read-modify-write)",
        }
    }

    /// The preset's base spec over `key_range` keys with skew `theta`
    /// where zipfian applies.
    pub fn spec(self, key_range: u64, theta: f64) -> YcsbSpec {
        let zipf = KeyDistribution::Zipfian {
            theta,
            scramble: false,
        };
        let (mix, dist, rmw) = match self {
            YcsbWorkload::A => (OpMix::get_put(0.5), zipf, false),
            YcsbWorkload::B => (OpMix::get_put(0.95), zipf, false),
            YcsbWorkload::C => (OpMix::get_put(1.0), zipf, false),
            YcsbWorkload::D => (
                OpMix {
                    get: 0.95,
                    put: 0.05,
                    delete: 0.0,
                    scan: 0.0,
                },
                KeyDistribution::Uniform, // shape replaced by Latest below
                false,
            ),
            YcsbWorkload::E => (
                OpMix {
                    get: 0.0,
                    put: 0.05,
                    delete: 0.0,
                    scan: 0.95,
                },
                zipf,
                false,
            ),
            YcsbWorkload::F => (OpMix::get_put(0.5), zipf, true),
        };
        YcsbSpec {
            workload: self,
            base: WorkloadSpec {
                key_range,
                dist,
                mix,
                scan_len: 16,
                preload: Preload::EvenKeys,
                policy: PolicyChoice::default(),
            },
            read_modify_write: rmw,
        }
    }
}

/// A YCSB preset: a base [`WorkloadSpec`] plus the semantics the plain
/// spec cannot express (latest-distribution inserts, RMW).
#[derive(Clone, Debug)]
pub struct YcsbSpec {
    pub workload: YcsbWorkload,
    pub base: WorkloadSpec,
    pub read_modify_write: bool,
}

/// One logical YCSB operation (RMW is a composite the driver executes as
/// get-then-put on the same key).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbOp {
    Simple(Op),
    ReadModifyWrite { key: u64, delta: u64 },
}

/// A per-thread YCSB stream. Implements workload D's *latest*
/// distribution: reads target recently inserted keys (zipfian over
/// recency rank from the insertion frontier), inserts advance the
/// frontier.
pub struct YcsbStream {
    spec: YcsbSpec,
    sampler: KeySampler,
    /// Zipfian over recency ranks, for the latest distribution.
    recency: KeySampler,
    rng: SmallRng,
    /// Next key this thread inserts (thread-striped to stay disjoint).
    insert_cursor: u64,
    stride: u64,
    serial: u64,
    thread: u64,
}

impl YcsbStream {
    pub fn new(spec: &YcsbSpec, thread: u64, threads: u64, seed: u64) -> Self {
        assert!(threads > 0 && thread < threads);
        let base = &spec.base;
        let sampler = base.sampler();
        let recency = KeySampler::new(
            &KeyDistribution::Zipfian {
                theta: 0.99,
                scramble: false,
            },
            (base.key_range / 2).max(2),
        );
        YcsbStream {
            spec: spec.clone(),
            sampler,
            recency,
            rng: SmallRng::seed_from_u64(seed ^ thread.wrapping_mul(0x9E3779B97F4A7C15)),
            // Workload D inserts fresh keys above the preloaded range
            // front; stripe by thread so inserts never collide.
            insert_cursor: base.key_range / 2 + thread,
            stride: threads,
            serial: 0,
            thread,
        }
    }

    /// The highest key this thread has inserted so far (latest frontier).
    fn frontier(&self) -> u64 {
        self.insert_cursor
    }

    pub fn next_op(&mut self) -> YcsbOp {
        self.serial += 1;
        let r: f64 = self.rng.gen();
        let m = &self.spec.base.mix;
        let latest = self.spec.workload == YcsbWorkload::D;
        if r < m.get {
            let key = if latest {
                // Read near this thread's insertion frontier: rank 0 is
                // the newest key, decaying zipfian into the past.
                let rank = self.recency.sample(&mut self.rng);
                self.frontier().saturating_sub(rank * self.stride)
            } else {
                self.sampler.sample(&mut self.rng)
            };
            if self.spec.read_modify_write {
                YcsbOp::ReadModifyWrite {
                    key,
                    delta: self.serial,
                }
            } else {
                YcsbOp::Simple(Op::Get { key })
            }
        } else if r < m.get + m.put {
            if latest {
                let key = self.insert_cursor;
                self.insert_cursor += self.stride;
                YcsbOp::Simple(Op::Put {
                    key,
                    value: (self.thread << 48) | (self.serial & 0xffff_ffff_ffff),
                })
            } else {
                let key = self.sampler.sample(&mut self.rng);
                YcsbOp::Simple(Op::Put {
                    key,
                    value: (self.thread << 48) | (self.serial & 0xffff_ffff_ffff),
                })
            }
        } else if r < m.get + m.put + m.delete {
            YcsbOp::Simple(Op::Delete {
                key: self.sampler.sample(&mut self.rng),
            })
        } else {
            YcsbOp::Simple(Op::Scan {
                from: self.sampler.sample(&mut self.rng),
                // YCSB-E: uniform scan length in 1..=2·scan_len.
                len: 1 + self.rng.gen_range(0..2 * self.spec.base.scan_len.max(1)),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 100_000;

    fn count_kinds(spec: &YcsbSpec, n: usize) -> (usize, usize, usize, usize) {
        let mut s = YcsbStream::new(spec, 0, 4, 9);
        let (mut get, mut put, mut scan, mut rmw) = (0, 0, 0, 0);
        for _ in 0..n {
            match s.next_op() {
                YcsbOp::Simple(Op::Get { .. }) => get += 1,
                YcsbOp::Simple(Op::Put { .. }) => put += 1,
                YcsbOp::Simple(Op::Scan { .. }) => scan += 1,
                YcsbOp::Simple(Op::Delete { .. }) => {}
                YcsbOp::ReadModifyWrite { .. } => rmw += 1,
            }
        }
        (get, put, scan, rmw)
    }

    #[test]
    fn preset_mixes() {
        let n = 20_000;
        let (g, p, _, _) = count_kinds(&YcsbWorkload::A.spec(N, 0.9), n);
        assert!((g as f64 / n as f64 - 0.5).abs() < 0.02);
        assert!((p as f64 / n as f64 - 0.5).abs() < 0.02);

        let (g, p, _, _) = count_kinds(&YcsbWorkload::B.spec(N, 0.9), n);
        assert!((g as f64 / n as f64 - 0.95).abs() < 0.01);
        assert!((p as f64 / n as f64 - 0.05).abs() < 0.01);

        let (g, p, _, _) = count_kinds(&YcsbWorkload::C.spec(N, 0.9), n);
        assert_eq!(g, n);
        assert_eq!(p, 0);

        let (_, _, scan, _) = count_kinds(&YcsbWorkload::E.spec(N, 0.9), n);
        assert!((scan as f64 / n as f64 - 0.95).abs() < 0.01);

        let (g, _, _, rmw) = count_kinds(&YcsbWorkload::F.spec(N, 0.9), n);
        assert_eq!(g, 0, "F's reads are all RMW");
        assert!((rmw as f64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn latest_reads_cluster_at_the_frontier() {
        let spec = YcsbWorkload::D.spec(N, 0.9);
        let mut s = YcsbStream::new(&spec, 1, 4, 3);
        let mut inserts = Vec::new();
        let mut reads = Vec::new();
        for _ in 0..20_000 {
            match s.next_op() {
                YcsbOp::Simple(Op::Put { key, .. }) => inserts.push(key),
                YcsbOp::Simple(Op::Get { key }) => reads.push(key),
                _ => {}
            }
        }
        assert!(!inserts.is_empty());
        // Inserts are strictly increasing and thread-striped.
        assert!(inserts.windows(2).all(|w| w[1] == w[0] + 4));
        assert!(inserts.iter().all(|k| (k - 1) % 4 == 0));
        // Reads skew to recent keys: the median read must sit in the upper
        // half of the inserted range once the frontier has moved.
        let frontier = *inserts.last().unwrap();
        let recent = reads.iter().filter(|&&k| k + (N / 10) >= frontier).count();
        assert!(
            recent as f64 / reads.len() as f64 > 0.5,
            "latest reads must cluster near the frontier"
        );
    }

    #[test]
    fn scan_lengths_vary_in_workload_e() {
        let spec = YcsbWorkload::E.spec(N, 0.9);
        let mut s = YcsbStream::new(&spec, 0, 1, 1);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..2_000 {
            if let YcsbOp::Simple(Op::Scan { len, .. }) = s.next_op() {
                assert!((1..=32).contains(&len));
                lens.insert(len);
            }
        }
        assert!(lens.len() > 10, "scan lengths should vary");
    }

    #[test]
    fn all_presets_have_labels_and_specs() {
        for w in YcsbWorkload::ALL {
            let spec = w.spec(1_000, 0.5);
            assert!(!w.label().is_empty());
            spec.base.mix.validate();
        }
    }
}
