//! Key-distribution samplers for the YCSB-style client (§5.1, §5.5).
//!
//! The paper drives every experiment with skewed key streams:
//!
//! * **Zipfian** with skew coefficient θ (Gray et al.'s generator, the one
//!   YCSB uses): `P(k) ∝ (1/k)^θ`. θ = 0 is uniform; at θ = 0.99 "the
//!   hottest tenth of the values are accessed by 41 % of the requests".
//! * **Self-similar** (80/20 rule): within any sub-range the skew repeats.
//! * **Normal** with mean N/2 and σ = 1 % of the mean.
//! * **Poisson** calibrated so the hottest 10 % of records receive ~70 % of
//!   requests (§5.5 quotes the hot-set fractions rather than λ; we solve
//!   for the matching λ).
//!
//! All samplers draw from a caller-supplied RNG so every thread has a
//! private, deterministic stream (the paper's "intra-thread locality").

use euno_rng::Rng;

/// A key distribution over `0..n`.
#[derive(Clone, Debug)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with skew `theta ∈ [0, 1)`. With `scramble`, ranks are
    /// hashed over the key space (YCSB's "scrambled zipfian"), which keeps
    /// popularity skew but destroys the adjacency of hot keys; the paper's
    /// false-sharing analysis uses the unscrambled form.
    Zipfian { theta: f64, scramble: bool },
    /// Self-similar / hotspot: fraction `h` of the keys receive `1 − h` of
    /// the accesses, recursively (h = 0.2 → the 80/20 rule of §5.5).
    SelfSimilar { h: f64 },
    /// Normal around `n/2` with standard deviation `sd_fraction · n/2`
    /// (§5.5 uses 1 % of the mean).
    Normal { sd_fraction: f64 },
    /// Poisson-shaped hot spot: a Poisson(λ) sample stretched over the key
    /// space so that ±10 %·n/2 around the mode captures ~70 % of requests,
    /// matching §5.5's "10 % hottest records are accessed by 70 % of the
    /// requests".
    Poisson { lambda: f64 },
}

impl KeyDistribution {
    /// The paper's default Poisson calibration: `P(|X−λ| ≤ 0.1λ) ≈ 0.7`
    /// requires `0.1λ ≈ 1.036√λ`, i.e. λ ≈ 107.
    pub fn poisson_paper() -> Self {
        KeyDistribution::Poisson { lambda: 107.4 }
    }

    /// The paper's Normal calibration (σ = 1 % of the mean).
    pub fn normal_paper() -> Self {
        KeyDistribution::Normal { sd_fraction: 0.01 }
    }

    /// The paper's self-similar calibration (80/20).
    pub fn self_similar_paper() -> Self {
        KeyDistribution::SelfSimilar { h: 0.2 }
    }
}

/// A ready-to-sample distribution instance bound to a key-range size.
/// Construction may precompute tables (the Zipfian ζ constant is Θ(n)),
/// so build once per run and share across threads.
#[derive(Clone, Debug)]
pub struct KeySampler {
    n: u64,
    kind: SamplerKind,
}

#[derive(Clone, Debug)]
enum SamplerKind {
    Uniform,
    Zipfian(ZipfianTable),
    SelfSimilar { exponent: f64 },
    Normal { mean: f64, sd: f64 },
    Poisson { lambda: f64 },
}

#[derive(Clone, Debug)]
struct ZipfianTable {
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scramble: bool,
}

impl KeySampler {
    pub fn new(dist: &KeyDistribution, n: u64) -> Self {
        assert!(n > 0, "key range must be non-empty");
        let kind = match *dist {
            KeyDistribution::Uniform => SamplerKind::Uniform,
            KeyDistribution::Zipfian { theta, scramble } => {
                assert!(
                    (0.0..1.0).contains(&theta),
                    "zipfian theta must be in [0, 1), got {theta}"
                );
                if theta == 0.0 {
                    SamplerKind::Uniform
                } else {
                    SamplerKind::Zipfian(ZipfianTable::new(n, theta, scramble))
                }
            }
            KeyDistribution::SelfSimilar { h } => {
                assert!((0.0..0.5).contains(&h) && h > 0.0, "h must be in (0, 0.5)");
                SamplerKind::SelfSimilar {
                    exponent: h.ln() / (1.0 - h).ln(),
                }
            }
            KeyDistribution::Normal { sd_fraction } => {
                let mean = n as f64 / 2.0;
                SamplerKind::Normal {
                    mean,
                    sd: sd_fraction * mean,
                }
            }
            KeyDistribution::Poisson { lambda } => {
                assert!(lambda > 0.0);
                SamplerKind::Poisson { lambda }
            }
        };
        KeySampler { n, kind }
    }

    pub fn key_range(&self) -> u64 {
        self.n
    }

    /// Draw one key in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match &self.kind {
            SamplerKind::Uniform => rng.gen_range(0..self.n),
            SamplerKind::Zipfian(t) => t.sample(self.n, rng),
            SamplerKind::SelfSimilar { exponent } => {
                let u: f64 = rng.gen();
                let k = (self.n as f64 * u.powf(*exponent)) as u64;
                k.min(self.n - 1)
            }
            SamplerKind::Normal { mean, sd } => {
                let z = standard_normal(rng);
                let x = mean + sd * z;
                (x.max(0.0) as u64).min(self.n - 1)
            }
            SamplerKind::Poisson { lambda } => {
                // Stretch the Poisson lattice over the key space, smoothing
                // with a uniform jitter so neighbouring keys (not just
                // lattice points) receive traffic.
                let x = poisson(*lambda, rng) as f64 + rng.gen::<f64>();
                let key = x * self.n as f64 / (2.0 * lambda);
                (key as u64).min(self.n - 1)
            }
        }
    }
}

impl ZipfianTable {
    fn new(n: u64, theta: f64, scramble: bool) -> Self {
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfianTable {
            theta,
            alpha,
            zetan,
            eta,
            scramble,
        }
    }

    fn sample<R: Rng>(&self, n: u64, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            let k = (n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
            k.min(n - 1)
        };
        if self.scramble {
            fnv_hash(rank) % n
        } else {
            rank
        }
    }
}

/// Generalized harmonic number Σ 1/i^θ, computed once per (n, θ).
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// FNV-1a on the rank, YCSB's key scrambler.
fn fnv_hash(mut x: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..8 {
        h ^= x & 0xff;
        h = h.wrapping_mul(0x1000_0000_01b3);
        x >>= 8;
    }
    h
}

/// Box–Muller standard normal deviate.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Poisson sampler: Knuth's product method for small λ, normal
/// approximation (continuity-corrected) for large λ.
fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> u64 {
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = lambda + lambda.sqrt() * standard_normal(rng) + 0.5;
        x.max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euno_rng::SmallRng;

    const N: u64 = 100_000;
    const SAMPLES: usize = 200_000;

    fn histogram(sampler: &KeySampler, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = vec![0u64; sampler.key_range() as usize];
        for _ in 0..SAMPLES {
            h[sampler.sample(&mut rng) as usize] += 1;
        }
        h
    }

    /// Fraction of samples landing in the lowest-`frac` key prefix. For
    /// the *unscrambled* generators the hottest keys are exactly the low
    /// ranks, so this measures the distribution's hot mass without the
    /// upward bias of sorting a sparse empirical histogram.
    fn prefix_fraction(hist: &[u64], frac: f64) -> f64 {
        let hot = (hist.len() as f64 * frac) as usize;
        let hot_sum: u64 = hist[..hot].iter().sum();
        let total: u64 = hist.iter().sum();
        hot_sum as f64 / total as f64
    }

    #[test]
    fn uniform_is_flat() {
        let s = KeySampler::new(&KeyDistribution::Uniform, N);
        let h = histogram(&s, 1);
        let f = prefix_fraction(&h, 0.1);
        assert!((f - 0.1).abs() < 0.01, "uniform hot-10% fraction = {f}");
    }

    #[test]
    fn zipfian_099_hot_mass() {
        // With θ = 0.99 the hot mass of the rank prefix depends on the key
        // range: Σ_{i≤n/10} i^-θ / Σ_{i≤n} i^-θ ≈ 0.83 for n = 10^5 (the
        // paper's "hottest tenth gets 41 %" parenthetical is quoted for its
        // 100 M-key range). We assert the analytic value for our n.
        let s = KeySampler::new(
            &KeyDistribution::Zipfian {
                theta: 0.99,
                scramble: false,
            },
            N,
        );
        let h = histogram(&s, 2);
        let f = prefix_fraction(&h, 0.1);
        let analytic = zeta(N / 10, 0.99) / zeta(N, 0.99);
        assert!(
            (f - analytic).abs() < 0.03,
            "hot-10% fraction = {f}, analytic = {analytic}"
        );
    }

    #[test]
    fn zipfian_skew_increases_with_theta() {
        let mut prev = 0.0;
        for (i, theta) in [0.2, 0.5, 0.8, 0.99].iter().enumerate() {
            let s = KeySampler::new(
                &KeyDistribution::Zipfian {
                    theta: *theta,
                    scramble: false,
                },
                N,
            );
            let f = prefix_fraction(&histogram(&s, 3 + i as u64), 0.01);
            assert!(f > prev, "θ={theta}: hot fraction {f} ≤ previous {prev}");
            prev = f;
        }
    }

    #[test]
    fn zipfian_theta_zero_is_uniform() {
        let s = KeySampler::new(
            &KeyDistribution::Zipfian {
                theta: 0.0,
                scramble: false,
            },
            N,
        );
        let f = prefix_fraction(&histogram(&s, 7), 0.1);
        assert!((f - 0.1).abs() < 0.01);
    }

    #[test]
    fn unscrambled_zipfian_hot_keys_are_small_and_adjacent() {
        let s = KeySampler::new(
            &KeyDistribution::Zipfian {
                theta: 0.9,
                scramble: false,
            },
            N,
        );
        let h = histogram(&s, 4);
        // The very hottest key must be key 0, and the low prefix must carry
        // a large share — this adjacency is what produces false sharing.
        let hottest = h.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(hottest, 0);
        let prefix: u64 = h[..64].iter().sum();
        let total: u64 = h.iter().sum();
        assert!(prefix as f64 / total as f64 > 0.2);
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let s = KeySampler::new(
            &KeyDistribution::Zipfian {
                theta: 0.9,
                scramble: true,
            },
            N,
        );
        let h = histogram(&s, 5);
        let prefix: u64 = h[..64].iter().sum();
        let total: u64 = h.iter().sum();
        assert!(
            (prefix as f64 / total as f64) < 0.05,
            "scrambling must break prefix concentration"
        );
    }

    #[test]
    fn self_similar_obeys_80_20() {
        let s = KeySampler::new(&KeyDistribution::self_similar_paper(), N);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut in_first_fifth = 0usize;
        for _ in 0..SAMPLES {
            if s.sample(&mut rng) < N / 5 {
                in_first_fifth += 1;
            }
        }
        let f = in_first_fifth as f64 / SAMPLES as f64;
        assert!((f - 0.8).abs() < 0.02, "80/20 fraction = {f}");
    }

    #[test]
    fn normal_concentrates_around_mean() {
        let s = KeySampler::new(&KeyDistribution::normal_paper(), N);
        let mut rng = SmallRng::seed_from_u64(8);
        let mean = N as f64 / 2.0;
        let sd = 0.01 * mean;
        let mut within = 0usize;
        for _ in 0..SAMPLES {
            let k = s.sample(&mut rng) as f64;
            if (k - mean).abs() <= 2.0 * sd {
                within += 1;
            }
        }
        let f = within as f64 / SAMPLES as f64;
        assert!((f - 0.954).abs() < 0.02, "±2σ mass = {f}");
    }

    #[test]
    fn poisson_hotspot_calibration() {
        // §5.5: the 10 % hottest records get ~70 % of requests. The hot
        // region of the stretched Poisson is the 10 %-wide window around
        // the mode at n/2.
        let s = KeySampler::new(&KeyDistribution::poisson_paper(), N);
        let h = histogram(&s, 9);
        let (lo, hi) = ((N as usize * 45) / 100, (N as usize * 55) / 100);
        let window: u64 = h[lo..hi].iter().sum();
        let total: u64 = h.iter().sum();
        let f = window as f64 / total as f64;
        assert!((0.62..0.78).contains(&f), "poisson hot-10% = {f}");
    }

    #[test]
    fn samples_always_in_range() {
        for dist in [
            KeyDistribution::Uniform,
            KeyDistribution::Zipfian {
                theta: 0.99,
                scramble: false,
            },
            KeyDistribution::self_similar_paper(),
            KeyDistribution::normal_paper(),
            KeyDistribution::poisson_paper(),
        ] {
            let s = KeySampler::new(&dist, 97); // odd small range
            let mut rng = SmallRng::seed_from_u64(10);
            for _ in 0..10_000 {
                assert!(s.sample(&mut rng) < 97);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = KeySampler::new(
            &KeyDistribution::Zipfian {
                theta: 0.9,
                scramble: false,
            },
            N,
        );
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn small_lambda_poisson_mean() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mean: f64 = (0..50_000)
            .map(|_| poisson(4.0, &mut rng) as f64)
            .sum::<f64>()
            / 50_000.0;
        assert!((mean - 4.0).abs() < 0.1, "Poisson(4) sample mean = {mean}");
    }
}
