//! Workload specification and per-thread operation streams.
//!
//! Mirrors the YCSB client setup of §5.1: a key range, a key distribution,
//! a get/put mix (default 50 %/50 %), optional deletes and range scans,
//! and one private deterministic stream per thread.

use euno_rng::{Rng, SmallRng};

use crate::dist::{KeyDistribution, KeySampler};

/// Operation mix as probabilities (must sum to 1).
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    pub get: f64,
    pub put: f64,
    pub delete: f64,
    pub scan: f64,
}

impl OpMix {
    /// The paper's default: 50 % get / 50 % put.
    pub fn default_ycsb() -> Self {
        OpMix {
            get: 0.5,
            put: 0.5,
            delete: 0.0,
            scan: 0.0,
        }
    }

    /// A get/put-only mix with the given get fraction (§5.4 sweeps
    /// 0 %, 20 %, 50 %, 70 % gets).
    pub fn get_put(get_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&get_fraction));
        OpMix {
            get: get_fraction,
            put: 1.0 - get_fraction,
            delete: 0.0,
            scan: 0.0,
        }
    }

    pub fn validate(&self) {
        let sum = self.get + self.put + self.delete + self.scan;
        assert!((sum - 1.0).abs() < 1e-9, "op mix must sum to 1, got {sum}");
        for p in [self.get, self.put, self.delete, self.scan] {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}

/// One client operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Get { key: u64 },
    Put { key: u64, value: u64 },
    Delete { key: u64 },
    Scan { from: u64, len: usize },
}

impl Op {
    pub fn key(&self) -> u64 {
        match *self {
            Op::Get { key } | Op::Put { key, .. } | Op::Delete { key } => key,
            Op::Scan { from, .. } => from,
        }
    }

    pub fn is_write(&self) -> bool {
        matches!(self, Op::Put { .. } | Op::Delete { .. })
    }
}

/// How the tree is populated before measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preload {
    /// No initial records (insert-only workloads).
    None,
    /// Every even key present — leaves are half full and a Zipfian get has
    /// a 50 % hit rate, exercising both the hit and miss paths (and the
    /// CCM mark-bit filter). The default.
    EvenKeys,
    /// The first `n` keys, contiguous.
    FirstN(u64),
    /// A deterministic pseudo-random fraction (per-mille) of the range.
    FractionPerMille(u32),
}

/// Which retry strategy the transaction executor should run HTM regions
/// under. Pure data — this crate stays dependency-free; mapping a choice
/// to a live `RetryStrategy` object happens in the harness (`euno-sim`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PolicyChoice {
    /// DBX-style per-cause budgets (the default used by every figure).
    #[default]
    Dbx,
    /// Persistent budgets: keep retrying in HTM far longer before taking
    /// the serializing fallback.
    Aggressive,
    /// Runtime controller that widens/narrows the conflict budget from
    /// observed fallback rates.
    Adaptive,
}

impl PolicyChoice {
    pub const ALL: [PolicyChoice; 3] = [
        PolicyChoice::Dbx,
        PolicyChoice::Aggressive,
        PolicyChoice::Adaptive,
    ];

    pub fn label(self) -> &'static str {
        match self {
            PolicyChoice::Dbx => "dbx",
            PolicyChoice::Aggressive => "aggressive",
            PolicyChoice::Adaptive => "adaptive",
        }
    }
}

impl std::str::FromStr for PolicyChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dbx" | "default" | "budget" => Ok(PolicyChoice::Dbx),
            "aggressive" | "persistent" => Ok(PolicyChoice::Aggressive),
            "adaptive" => Ok(PolicyChoice::Adaptive),
            other => Err(format!(
                "unknown retry policy {other:?} (expected dbx|aggressive|adaptive)"
            )),
        }
    }
}

/// Full workload description. Cheap to clone; build one [`KeySampler`]
/// via [`WorkloadSpec::sampler`] and share it.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    pub key_range: u64,
    pub dist: KeyDistribution,
    pub mix: OpMix,
    /// Records returned per scan.
    pub scan_len: usize,
    pub preload: Preload,
    /// Retry strategy the executor runs this workload's regions under.
    pub policy: PolicyChoice,
}

impl WorkloadSpec {
    /// §5.1 defaults scaled to the host (the paper uses a 100 M key range;
    /// see DESIGN.md for the substitution note).
    pub fn paper_default(theta: f64) -> Self {
        WorkloadSpec {
            key_range: 1_000_000,
            dist: KeyDistribution::Zipfian {
                theta,
                scramble: false,
            },
            mix: OpMix::default_ycsb(),
            scan_len: 16,
            preload: Preload::EvenKeys,
            policy: PolicyChoice::default(),
        }
    }

    /// The same spec under a different retry policy.
    pub fn with_policy(mut self, policy: PolicyChoice) -> Self {
        self.policy = policy;
        self
    }

    pub fn sampler(&self) -> KeySampler {
        self.mix.validate();
        KeySampler::new(&self.dist, self.key_range)
    }

    /// The keys present before the measured phase begins, in insertion
    /// order (ascending — building a B+Tree bulk-ish).
    pub fn preload_keys(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        match self.preload {
            Preload::None => Box::new(std::iter::empty()),
            Preload::EvenKeys => Box::new((0..self.key_range / 2).map(|i| i * 2)),
            Preload::FirstN(n) => Box::new(0..n.min(self.key_range)),
            Preload::FractionPerMille(pm) => {
                let pm = pm.min(1000) as u64;
                Box::new(
                    (0..self.key_range)
                        .filter(move |k| (k.wrapping_mul(0x9e3779b97f4a7c15) >> 54) % 1000 < pm),
                )
            }
        }
    }
}

/// A private per-thread operation stream. Deterministic for (spec, seed).
pub struct OpStream {
    sampler: KeySampler,
    mix: OpMix,
    scan_len: usize,
    rng: SmallRng,
    serial: u64,
    thread: u64,
}

impl OpStream {
    pub fn new(spec: &WorkloadSpec, thread: u64, seed: u64) -> Self {
        OpStream {
            sampler: spec.sampler(),
            mix: spec.mix,
            scan_len: spec.scan_len,
            rng: SmallRng::seed_from_u64(seed ^ (thread.wrapping_mul(0xff51_afd7_ed55_8ccd))),
            serial: 0,
            thread,
        }
    }

    /// Generate the next operation.
    pub fn next_op(&mut self) -> Op {
        let key = self.sampler.sample(&mut self.rng);
        let r: f64 = self.rng.gen();
        self.serial += 1;
        let m = &self.mix;
        if r < m.get {
            Op::Get { key }
        } else if r < m.get + m.put {
            // Distinguishable value payload: thread id in the top bits,
            // serial below — lets tests detect lost/mixed updates.
            let value = (self.thread << 48) | (self.serial & 0xffff_ffff_ffff);
            Op::Put { key, value }
        } else if r < m.get + m.put + m.delete {
            Op::Delete { key }
        } else {
            Op::Scan {
                from: key,
                len: self.scan_len,
            }
        }
    }
}

impl Iterator for OpStream {
    type Item = Op;
    fn next(&mut self) -> Option<Op> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::paper_default(0.9)
    }

    #[test]
    fn mix_ratios_hold() {
        let mut s = OpStream::new(
            &WorkloadSpec {
                mix: OpMix {
                    get: 0.2,
                    put: 0.6,
                    delete: 0.1,
                    scan: 0.1,
                },
                ..spec()
            },
            0,
            7,
        );
        let (mut g, mut p, mut d, mut sc) = (0, 0, 0, 0);
        let n = 100_000;
        for _ in 0..n {
            match s.next_op() {
                Op::Get { .. } => g += 1,
                Op::Put { .. } => p += 1,
                Op::Delete { .. } => d += 1,
                Op::Scan { .. } => sc += 1,
            }
        }
        let f = |x: i32| x as f64 / n as f64;
        assert!((f(g) - 0.2).abs() < 0.01);
        assert!((f(p) - 0.6).abs() < 0.01);
        assert!((f(d) - 0.1).abs() < 0.01);
        assert!((f(sc) - 0.1).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_mix_rejected() {
        OpMix {
            get: 0.5,
            put: 0.6,
            delete: 0.0,
            scan: 0.0,
        }
        .validate();
    }

    #[test]
    fn streams_are_deterministic_and_thread_distinct() {
        let a: Vec<Op> = OpStream::new(&spec(), 0, 42).take(100).collect();
        let b: Vec<Op> = OpStream::new(&spec(), 0, 42).take(100).collect();
        let c: Vec<Op> = OpStream::new(&spec(), 1, 42).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn put_values_encode_thread() {
        let mut s = OpStream::new(&spec(), 5, 1);
        for _ in 0..1000 {
            if let Op::Put { value, .. } = s.next_op() {
                assert_eq!(value >> 48, 5);
            }
        }
    }

    #[test]
    fn preload_even_keys() {
        let sp = WorkloadSpec {
            key_range: 10,
            ..spec()
        };
        let keys: Vec<u64> = sp.preload_keys().collect();
        assert_eq!(keys, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn preload_fraction_is_sparse_and_deterministic() {
        let sp = WorkloadSpec {
            key_range: 100_000,
            preload: Preload::FractionPerMille(250),
            ..spec()
        };
        let a: Vec<u64> = sp.preload_keys().collect();
        let b: Vec<u64> = sp.preload_keys().collect();
        assert_eq!(a, b);
        let frac = a.len() as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "fraction = {frac}");
    }

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Get { key: 3 }.key(), 3);
        assert!(Op::Put { key: 1, value: 2 }.is_write());
        assert!(Op::Delete { key: 1 }.is_write());
        assert!(!Op::Scan { from: 0, len: 4 }.is_write());
    }
}
