//! # euno-workloads — YCSB-core-compatible workload generation
//!
//! Key distributions, operation mixes and per-thread streams replicating
//! the workload setup of the Eunomia paper (§5.1, §5.4, §5.5): Zipfian
//! with tunable skew θ, self-similar (80/20), normal (σ = 1 % of mean) and
//! Poisson hot-spot distributions; get/put mixes; deterministic per-thread
//! request streams with intra-thread locality.
//!
//! ```
//! use euno_workloads::{WorkloadSpec, OpStream, Op};
//!
//! let spec = WorkloadSpec::paper_default(0.9); // Zipfian θ = 0.9
//! let mut stream = OpStream::new(&spec, /*thread*/ 0, /*seed*/ 42);
//! match stream.next_op() {
//!     Op::Get { key } | Op::Put { key, .. } => assert!(key < spec.key_range),
//!     _ => {}
//! }
//! ```

pub mod dist;
pub mod spec;
pub mod ycsb;

pub use dist::{KeyDistribution, KeySampler};
pub use spec::{Op, OpMix, OpStream, PolicyChoice, Preload, WorkloadSpec};
pub use ycsb::{YcsbOp, YcsbSpec, YcsbStream, YcsbWorkload};
