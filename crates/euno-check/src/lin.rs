//! Wing–Gong-style linearizability checking against a sequential model.
//!
//! The oracle consumes a history of [`CompletedOp`]s (totally ordered
//! invocation/response tickets) and searches for a legal linearization:
//! a total order of the operations, consistent with real time (an op
//! whose response precedes another's invocation must come first), whose
//! sequential execution on a `BTreeMap` reproduces every observed output.
//!
//! The search is the classic per-thread-queue DFS: because each thread's
//! operations are sequential, only the head of each thread's queue can be
//! linearized next, and only if its invocation precedes every other
//! head's response (interval pruning). Dead-end states are memoized by a
//! pair of incremental XOR hashes — the set of linearized ops and the
//! model contents — so the checker revisits no configuration twice.
//! Histories from 4–8 threads over a few thousand operations check in
//! well under a second; a step budget turns pathological cases into an
//! explicit [`Verdict::Inconclusive`] instead of a hang.
//!
//! ## Non-atomic scans
//!
//! Euno-B+Tree and Masstree scans traverse the leaf chain one locked
//! leaf at a time — the paper's design, and deliberately *not* atomic:
//! records can move under a scan between leaf hops. Demanding a single
//! linearization point for such scans would reject correct executions.
//! The checker therefore classifies each scan: scans whose interval
//! overlaps no other operation are effectively sequential and are checked
//! exactly inside the search; overlapping scans (when the structure
//! declares non-atomic scans) are validated against relaxed guarantees —
//! strictly ascending keys from the requested start, bounded length, and
//! every delivered record traceable to the preload or an actual put that
//! began before the scan returned. Trees whose scan runs in one HTM
//! region (HTM-B+Tree, HTM-Masstree) keep full atomic checking.

use std::collections::{BTreeMap, HashSet};

use euno_htm::{OpKind, OpOutput};

use crate::history::CompletedOp;

/// Outcome of checking one history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// A legal linearization exists (and relaxed scans all validated).
    Linearizable { states_explored: u64 },
    /// No legal linearization, or a malformed/impossible observation.
    Violation { detail: String },
    /// Step budget exhausted before the search concluded.
    Inconclusive { states_explored: u64 },
}

impl Verdict {
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Linearizable { .. })
    }
}

/// Default DFS step budget (candidate applications).
pub const DEFAULT_BUDGET: u64 = 20_000_000;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn record_hash(key: u64, value: u64) -> u64 {
    splitmix64(splitmix64(key) ^ value.wrapping_mul(0xa076_1d64_78bd_642f))
}

/// Sequential model with an incrementally maintained content hash.
struct Model {
    map: BTreeMap<u64, u64>,
    hash: u64,
}

impl Model {
    fn new(preload: &BTreeMap<u64, u64>) -> Self {
        let mut hash = 0;
        for (&k, &v) in preload {
            hash ^= record_hash(k, v);
        }
        Model {
            map: preload.clone(),
            hash,
        }
    }

    fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let prev = self.map.insert(key, value);
        if let Some(p) = prev {
            self.hash ^= record_hash(key, p);
        }
        self.hash ^= record_hash(key, value);
        prev
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        let prev = self.map.remove(&key);
        if let Some(p) = prev {
            self.hash ^= record_hash(key, p);
        }
        prev
    }

    fn restore(&mut self, key: u64, prev: Option<u64>) {
        match prev {
            Some(v) => {
                self.insert(key, v);
            }
            None => {
                self.remove(key);
            }
        }
    }
}

/// Undo record for one applied operation.
enum Undo {
    Pure,
    Restore { key: u64, prev: Option<u64> },
}

/// Apply `op` to the model iff its output matches; return the undo.
fn try_apply(model: &mut Model, op: &CompletedOp) -> Result<Option<Undo>, String> {
    match op.kind {
        OpKind::Get => {
            let expect = model.map.get(&op.key).copied();
            match &op.output {
                OpOutput::Value(v) if *v == expect => Ok(Some(Undo::Pure)),
                OpOutput::Value(_) => Ok(None),
                other => Err(format!("get returned non-value output {other:?}")),
            }
        }
        OpKind::Put => match &op.output {
            OpOutput::Value(observed) => {
                let expect = model.map.get(&op.key).copied();
                if *observed != expect {
                    return Ok(None);
                }
                let prev = model.insert(op.key, op.arg);
                Ok(Some(Undo::Restore { key: op.key, prev }))
            }
            other => Err(format!("put returned non-value output {other:?}")),
        },
        OpKind::Delete => match &op.output {
            OpOutput::Value(observed) => {
                let expect = model.map.get(&op.key).copied();
                if *observed != expect {
                    return Ok(None);
                }
                let prev = model.remove(op.key);
                Ok(Some(Undo::Restore { key: op.key, prev }))
            }
            other => Err(format!("delete returned non-value output {other:?}")),
        },
        OpKind::Scan => match &op.output {
            OpOutput::Scan(out) => {
                let matches = {
                    let mut it = model.map.range(op.key..);
                    let mut ok = true;
                    let mut n = 0usize;
                    for &(k, v) in out {
                        match it.next() {
                            Some((&mk, &mv)) if mk == k && mv == v => n += 1,
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    // A short scan must only stop early because the count
                    // was hit or the keyspace ran out.
                    ok && (n == op.arg as usize || it.next().is_none())
                };
                if matches {
                    Ok(Some(Undo::Pure))
                } else {
                    Ok(None)
                }
            }
            other => Err(format!("scan returned non-scan output {other:?}")),
        },
        OpKind::Maintain => Err("maintain ops must be filtered before the search".into()),
    }
}

fn undo(model: &mut Model, u: Undo) {
    if let Undo::Restore { key, prev } = u {
        model.restore(key, prev);
    }
}

/// Relaxed validation for a non-atomic scan that overlapped other ops.
fn check_relaxed_scan(
    scan: &CompletedOp,
    preload: &BTreeMap<u64, u64>,
    put_index: &HashSet<(u64, u64)>,
    put_earliest_inv: &std::collections::HashMap<(u64, u64), u64>,
) -> Result<(), String> {
    let OpOutput::Scan(out) = &scan.output else {
        return Err(format!("scan returned non-scan output {:?}", scan.output));
    };
    if out.len() > scan.arg as usize {
        return Err(format!(
            "scan delivered {} records, more than the requested {}",
            out.len(),
            scan.arg
        ));
    }
    let mut prev: Option<u64> = None;
    for &(k, v) in out {
        if k < scan.key {
            return Err(format!("scan from {} delivered smaller key {k}", scan.key));
        }
        if let Some(p) = prev {
            if k <= p {
                return Err(format!("scan keys not strictly ascending: {k} after {p}"));
            }
        }
        prev = Some(k);
        let from_preload = preload.get(&k) == Some(&v);
        let from_put = put_index.contains(&(k, v))
            && put_earliest_inv
                .get(&(k, v))
                .is_some_and(|&inv| inv < scan.ret);
        if !from_preload && !from_put {
            return Err(format!(
                "scan delivered ({k}, {v}) which no preload or preceding put produced"
            ));
        }
    }
    Ok(())
}

/// Check `history` (with `preload` as the initial map contents) for
/// linearizability. `atomic_scans` declares whether the structure's scan
/// has a single linearization point; if not, overlapping scans get the
/// relaxed treatment described in the module docs.
pub fn check_history(
    history: &[CompletedOp],
    preload: &BTreeMap<u64, u64>,
    atomic_scans: bool,
    budget: u64,
) -> Verdict {
    // ---- Classify operations. -------------------------------------
    let mut searched: Vec<&CompletedOp> = Vec::with_capacity(history.len());
    let mut relaxed: Vec<&CompletedOp> = Vec::new();

    // Interval index for the overlap test: an op overlaps a scan s iff
    // inv < s.ret && ret > s.inv. Count via two sorted stamp arrays.
    let mut invs: Vec<u64> = history.iter().map(|o| o.inv).collect();
    let mut rets: Vec<u64> = history.iter().map(|o| o.ret).collect();
    invs.sort_unstable();
    rets.sort_unstable();
    let overlaps_someone = |s: &CompletedOp| {
        let started_before_ret = invs.partition_point(|&x| x < s.ret);
        let ended_before_inv = rets.partition_point(|&x| x <= s.inv);
        // Ops with inv < s.ret minus those fully before s, minus s itself.
        started_before_ret - ended_before_inv > 1
    };

    for op in history {
        match op.kind {
            OpKind::Maintain => match &op.output {
                OpOutput::Count(_) => {}
                other => {
                    return Verdict::Violation {
                        detail: format!("maintain returned non-count output {other:?}"),
                    }
                }
            },
            OpKind::Scan if !atomic_scans && overlaps_someone(op) => relaxed.push(op),
            _ => searched.push(op),
        }
    }

    // ---- Relaxed scans. -------------------------------------------
    if !relaxed.is_empty() {
        let mut put_index = HashSet::new();
        let mut put_earliest_inv = std::collections::HashMap::new();
        for op in history {
            if op.kind == OpKind::Put {
                put_index.insert((op.key, op.arg));
                put_earliest_inv
                    .entry((op.key, op.arg))
                    .and_modify(|e: &mut u64| *e = (*e).min(op.inv))
                    .or_insert(op.inv);
            }
        }
        for scan in &relaxed {
            if let Err(detail) = check_relaxed_scan(scan, preload, &put_index, &put_earliest_inv) {
                return Verdict::Violation {
                    detail: format!(
                        "relaxed scan (thread {}, from {}): {detail}",
                        scan.thread, scan.key
                    ),
                };
            }
        }
    }

    // ---- Wing–Gong search over the rest. --------------------------
    let nthreads_max = searched.iter().map(|o| o.thread).max().map_or(0, |t| t + 1);
    let mut queues: Vec<Vec<&CompletedOp>> = vec![Vec::new(); nthreads_max as usize];
    for op in &searched {
        queues[op.thread as usize].push(op);
    }
    for q in &mut queues {
        q.sort_by_key(|o| o.inv);
    }
    queues.retain(|q| !q.is_empty());
    let total: usize = queues.iter().map(Vec::len).sum();

    // Zobrist codes: one per (queue, position).
    let mut op_code: Vec<Vec<u64>> = Vec::with_capacity(queues.len());
    let mut serial = 0u64;
    for q in &queues {
        op_code.push(
            q.iter()
                .map(|_| {
                    serial += 1;
                    splitmix64(serial.wrapping_mul(0xd6e8_feb8_6659_fd93))
                })
                .collect(),
        );
    }

    let mut model = Model::new(preload);
    let mut heads = vec![0usize; queues.len()];
    let mut linset_hash = 0u64;
    let mut linearized = 0usize;
    // Per-depth: next queue index to try. Parallel stack of applications.
    let mut frames: Vec<usize> = vec![0];
    let mut applied: Vec<(usize, Undo)> = Vec::new();
    let mut memo: HashSet<(u64, u64)> = HashSet::new();
    let mut steps = 0u64;

    loop {
        if linearized == total {
            return Verdict::Linearizable {
                states_explored: steps,
            };
        }
        let min_ret = queues
            .iter()
            .zip(&heads)
            .filter_map(|(q, &h)| q.get(h).map(|o| o.ret))
            .min()
            .expect("unfinished search has pending heads");

        let start = *frames.last().expect("frame stack never empties mid-loop");
        let mut descended = false;
        for qi in start..queues.len() {
            let h = heads[qi];
            let Some(op) = queues[qi].get(h) else {
                continue;
            };
            if op.inv > min_ret {
                continue;
            }
            steps += 1;
            if steps > budget {
                return Verdict::Inconclusive {
                    states_explored: steps,
                };
            }
            let applied_op = match try_apply(&mut model, op) {
                Ok(a) => a,
                Err(detail) => return Verdict::Violation { detail },
            };
            let Some(u) = applied_op else { continue };
            let child_linset = linset_hash ^ op_code[qi][h];
            if memo.contains(&(child_linset, model.hash)) {
                undo(&mut model, u);
                continue;
            }
            // Descend.
            *frames.last_mut().unwrap() = qi + 1;
            frames.push(0);
            applied.push((qi, u));
            heads[qi] += 1;
            linset_hash = child_linset;
            linearized += 1;
            descended = true;
            break;
        }
        if descended {
            continue;
        }
        // Dead end: remember, back up.
        memo.insert((linset_hash, model.hash));
        frames.pop();
        if frames.is_empty() {
            let pending: Vec<String> = queues
                .iter()
                .zip(&heads)
                .filter_map(|(q, &h)| q.get(h))
                .map(|o| {
                    format!(
                        "thread {} {:?} key {} arg {} → {:?}",
                        o.thread, o.kind, o.key, o.arg, o.output
                    )
                })
                .collect();
            return Verdict::Violation {
                detail: format!(
                    "no legal linearization ({total} ops, {steps} states explored); \
                     first stuck frontier: [{}]",
                    pending.join("; ")
                ),
            };
        }
        let (qi, u) = applied.pop().expect("applied stack parallels frames");
        heads[qi] -= 1;
        linset_hash ^= op_code[qi][heads[qi]];
        linearized -= 1;
        undo(&mut model, u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(
        thread: u32,
        kind: OpKind,
        key: u64,
        arg: u64,
        inv: u64,
        ret: u64,
        output: OpOutput,
    ) -> CompletedOp {
        CompletedOp {
            thread,
            kind,
            key,
            arg,
            inv,
            ret,
            output,
        }
    }

    #[test]
    fn accepts_a_valid_concurrent_history() {
        // T0: put(1,10) over [0,5]; T1: get(1) over [2,3] may see either
        // None or 10 — both must be accepted.
        let pre = BTreeMap::new();
        for observed in [None, Some(10)] {
            let h = vec![
                op(0, OpKind::Put, 1, 10, 0, 5, OpOutput::Value(None)),
                op(1, OpKind::Get, 1, 0, 2, 3, OpOutput::Value(observed)),
            ];
            assert!(
                check_history(&h, &pre, true, DEFAULT_BUDGET).is_ok(),
                "get observing {observed:?} is legal"
            );
        }
    }

    #[test]
    fn rejects_a_stale_read() {
        // put(1,10) fully completes before the get begins; None is stale.
        let pre = BTreeMap::new();
        let h = vec![
            op(0, OpKind::Put, 1, 10, 0, 1, OpOutput::Value(None)),
            op(1, OpKind::Get, 1, 0, 2, 3, OpOutput::Value(None)),
        ];
        match check_history(&h, &pre, true, DEFAULT_BUDGET) {
            Verdict::Violation { .. } => {}
            v => panic!("stale read accepted: {v:?}"),
        }
    }

    #[test]
    fn rejects_a_lost_update() {
        // Two sequential puts to one key; a later get sees the first value.
        let pre = BTreeMap::new();
        let h = vec![
            op(0, OpKind::Put, 7, 1, 0, 1, OpOutput::Value(None)),
            op(0, OpKind::Put, 7, 2, 2, 3, OpOutput::Value(Some(1))),
            op(1, OpKind::Get, 7, 0, 4, 5, OpOutput::Value(Some(1))),
        ];
        match check_history(&h, &pre, true, DEFAULT_BUDGET) {
            Verdict::Violation { .. } => {}
            v => panic!("lost update accepted: {v:?}"),
        }
    }

    #[test]
    fn rejects_wrong_previous_value_from_delete() {
        let pre = BTreeMap::from([(5, 50)]);
        let h = vec![op(0, OpKind::Delete, 5, 0, 0, 1, OpOutput::Value(None))];
        assert!(!check_history(&h, &pre, true, DEFAULT_BUDGET).is_ok());
        let h = vec![op(0, OpKind::Delete, 5, 0, 0, 1, OpOutput::Value(Some(50)))];
        assert!(check_history(&h, &pre, true, DEFAULT_BUDGET).is_ok());
    }

    #[test]
    fn atomic_scan_must_match_some_instant() {
        let pre = BTreeMap::from([(1, 10), (2, 20)]);
        // put(3,30) concurrent with a scan: [1,2] and [1,2,3] both legal...
        let put = op(0, OpKind::Put, 3, 30, 0, 9, OpOutput::Value(None));
        for (out, legal) in [
            (vec![(1, 10), (2, 20)], true),
            (vec![(1, 10), (2, 20), (3, 30)], true),
            // ...but seeing key 3 without key 2 is no instant at all.
            (vec![(1, 10), (3, 30)], false),
        ] {
            let h = vec![
                put.clone(),
                op(1, OpKind::Scan, 1, 10, 3, 6, OpOutput::Scan(out.clone())),
            ];
            assert_eq!(
                check_history(&h, &pre, true, DEFAULT_BUDGET).is_ok(),
                legal,
                "scan output {out:?}"
            );
        }
    }

    #[test]
    fn relaxed_scan_allows_split_brain_but_not_forgery() {
        let pre = BTreeMap::from([(1, 10), (2, 20)]);
        let put = op(0, OpKind::Put, 3, 30, 0, 9, OpOutput::Value(None));
        // Non-atomic scans may miss intermediate keys while seeing later
        // ones (no single instant) — accepted under relaxed rules.
        let h = vec![
            put.clone(),
            op(
                1,
                OpKind::Scan,
                1,
                10,
                3,
                6,
                OpOutput::Scan(vec![(1, 10), (3, 30)]),
            ),
        ];
        assert!(check_history(&h, &pre, false, DEFAULT_BUDGET).is_ok());
        // But a value nobody ever wrote is still a violation.
        let h = vec![
            put.clone(),
            op(
                1,
                OpKind::Scan,
                1,
                10,
                3,
                6,
                OpOutput::Scan(vec![(1, 10), (3, 99)]),
            ),
        ];
        assert!(!check_history(&h, &pre, false, DEFAULT_BUDGET).is_ok());
        // And so is disorder.
        let h = vec![
            put,
            op(
                1,
                OpKind::Scan,
                1,
                10,
                3,
                6,
                OpOutput::Scan(vec![(2, 20), (1, 10)]),
            ),
        ];
        assert!(!check_history(&h, &pre, false, DEFAULT_BUDGET).is_ok());
    }

    #[test]
    fn nonoverlapping_scan_is_checked_exactly_even_when_relaxed() {
        // The same missing-middle output is a violation when the scan ran
        // in isolation: there is no concurrency to excuse it.
        let pre = BTreeMap::from([(1, 10), (2, 20), (3, 30)]);
        let h = vec![op(
            1,
            OpKind::Scan,
            1,
            10,
            0,
            1,
            OpOutput::Scan(vec![(1, 10), (3, 30)]),
        )];
        assert!(!check_history(&h, &pre, false, DEFAULT_BUDGET).is_ok());
    }

    #[test]
    fn budget_exhaustion_is_inconclusive_not_wrong() {
        let pre = BTreeMap::new();
        let mut h = Vec::new();
        // Many concurrent independent puts: huge interleaving space.
        for t in 0..6u32 {
            for i in 0..4u64 {
                let k = u64::from(t) * 100 + i;
                h.push(op(t, OpKind::Put, k, k, 0, 1_000, OpOutput::Value(None)));
            }
        }
        // Make per-thread stamps distinct and overlapping across threads.
        for (i, o) in h.iter_mut().enumerate() {
            o.inv = i as u64;
            o.ret = 500 + i as u64;
        }
        match check_history(&h, &pre, true, 10) {
            Verdict::Inconclusive { .. } => {}
            v => panic!("expected budget exhaustion, got {v:?}"),
        }
        assert!(check_history(&h, &pre, true, DEFAULT_BUDGET).is_ok());
    }

    #[test]
    fn memoization_handles_wide_histories_quickly() {
        // 4 threads × 500 disjoint-key puts, all pairwise overlapping:
        // naive DFS would be astronomic; memoized interval pruning walks
        // straight through.
        let pre = BTreeMap::new();
        let mut h = Vec::new();
        let mut stamp = 0u64;
        for i in 0..500u64 {
            for t in 0..4u32 {
                let mut o = op(
                    t,
                    OpKind::Put,
                    u64::from(t) * 10_000 + i,
                    i,
                    0,
                    0,
                    OpOutput::Value(None),
                );
                o.inv = stamp;
                o.ret = stamp + 6; // overlaps the other threads' heads
                stamp += 1;
                h.push(o);
            }
        }
        let v = check_history(&h, &pre, true, DEFAULT_BUDGET);
        assert!(v.is_ok(), "{v:?}");
    }
}
