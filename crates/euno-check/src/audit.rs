//! Cross-time structural audits.
//!
//! [`SeqnoWatch`] consumes address-keyed leaf seqno snapshots (from
//! `EunoBTree::leaf_seqnos_plain`) taken before, during, and after a
//! stress run and verifies monotonicity: a leaf's seqno is the version
//! glue between the two-step traversal's upper and lower HTM regions, so
//! any observed decrease means a traversal could validate against a
//! version that never supersedes the one it cached. Arena nodes are only
//! reclaimed when the tree drops, so an address is a stable leaf
//! identity for the whole run — including leaves that merges have
//! unlinked (their final bump must still be visible).

use std::collections::HashMap;

/// Accumulates seqno snapshots and records monotonicity violations.
#[derive(Default)]
pub struct SeqnoWatch {
    high_water: HashMap<usize, u64>,
    violations: Vec<String>,
}

impl SeqnoWatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one snapshot (any subset of leaves; order irrelevant).
    pub fn observe(&mut self, snapshot: &[(usize, u64)]) {
        for &(addr, seq) in snapshot {
            match self.high_water.get_mut(&addr) {
                Some(hw) => {
                    if seq < *hw {
                        self.violations
                            .push(format!("leaf {addr:#x} seqno went backwards: {hw} → {seq}"));
                    } else {
                        *hw = seq;
                    }
                }
                None => {
                    self.high_water.insert(addr, seq);
                }
            }
        }
    }

    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of distinct leaves ever observed.
    pub fn leaves_seen(&self) -> usize {
        self.high_water.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_snapshots_are_clean() {
        let mut w = SeqnoWatch::new();
        w.observe(&[(0x1000, 0), (0x2000, 3)]);
        w.observe(&[(0x1000, 2), (0x2000, 3), (0x3000, 0)]);
        w.observe(&[(0x1000, 2), (0x3000, 5)]);
        assert!(w.violations().is_empty());
        assert_eq!(w.leaves_seen(), 3);
    }

    #[test]
    fn backwards_seqno_is_flagged() {
        let mut w = SeqnoWatch::new();
        w.observe(&[(0x1000, 4)]);
        w.observe(&[(0x1000, 3)]);
        assert_eq!(w.violations().len(), 1);
        assert!(w.violations()[0].contains("seqno went backwards"));
    }
}
