//! Cross-time structural audits.
//!
//! [`SeqnoWatch`] consumes address-keyed leaf seqno snapshots (from
//! `EunoBTree::leaf_seqnos_plain`) taken before, during, and after a
//! stress run and verifies monotonicity: a leaf's seqno is the version
//! glue between the two-step traversal's upper and lower HTM regions, so
//! any observed decrease means a traversal could validate against a
//! version that never supersedes the one it cached.
//!
//! Each snapshot is the *full* live chain. An address identifies one leaf
//! only while it stays on the chain: merged leaves are handed to the
//! epoch collector and their addresses can be reused by later
//! allocations, so an address that disappears from a snapshot and later
//! reappears is treated as a fresh leaf (its baseline resets). A seqno
//! decrease is only a violation when the address was continuously
//! present — which is exactly the case where the memory is guaranteed to
//! still be the same leaf.

use std::collections::{HashMap, HashSet};

/// Accumulates seqno snapshots and records monotonicity violations.
#[derive(Default)]
pub struct SeqnoWatch {
    high_water: HashMap<usize, u64>,
    /// Addresses present in the most recent snapshot.
    live: HashSet<usize>,
    violations: Vec<String>,
}

impl SeqnoWatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one full live-chain snapshot (order irrelevant).
    pub fn observe(&mut self, snapshot: &[(usize, u64)]) {
        let mut next_live = HashSet::with_capacity(snapshot.len());
        for &(addr, seq) in snapshot {
            next_live.insert(addr);
            match self.high_water.get_mut(&addr) {
                Some(hw) if self.live.contains(&addr) => {
                    if seq < *hw {
                        self.violations
                            .push(format!("leaf {addr:#x} seqno went backwards: {hw} → {seq}"));
                    } else {
                        *hw = seq;
                    }
                }
                _ => {
                    // First sighting, or a reappearance after the address
                    // left the chain (reclaimed + reused): new identity.
                    self.high_water.insert(addr, seq);
                }
            }
        }
        self.live = next_live;
    }

    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of distinct leaf sightings ever observed (a reused address
    /// counts once — identities, not allocations).
    pub fn leaves_seen(&self) -> usize {
        self.high_water.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_snapshots_are_clean() {
        let mut w = SeqnoWatch::new();
        w.observe(&[(0x1000, 0), (0x2000, 3)]);
        w.observe(&[(0x1000, 2), (0x2000, 3), (0x3000, 0)]);
        w.observe(&[(0x1000, 2), (0x3000, 5)]);
        assert!(w.violations().is_empty());
        assert_eq!(w.leaves_seen(), 3);
    }

    #[test]
    fn backwards_seqno_is_flagged() {
        let mut w = SeqnoWatch::new();
        w.observe(&[(0x1000, 4)]);
        w.observe(&[(0x1000, 3)]);
        assert_eq!(w.violations().len(), 1);
        assert!(w.violations()[0].contains("seqno went backwards"));
    }

    #[test]
    fn reused_address_resets_its_baseline() {
        // A leaf at 0x2000 reaches seqno 9, is merged away (absent from
        // the next snapshot), and the allocator hands its address to a
        // brand-new leaf starting at seqno 0. Not a violation — but a
        // subsequent decrease on the *new* leaf still is.
        let mut w = SeqnoWatch::new();
        w.observe(&[(0x1000, 1), (0x2000, 9)]);
        w.observe(&[(0x1000, 1)]);
        w.observe(&[(0x1000, 2), (0x2000, 0)]);
        assert!(w.violations().is_empty(), "{:?}", w.violations());
        w.observe(&[(0x1000, 2), (0x2000, 4)]);
        w.observe(&[(0x1000, 2), (0x2000, 3)]);
        assert_eq!(w.violations().len(), 1);
    }
}
