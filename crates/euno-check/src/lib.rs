//! # euno-check — the correctness subsystem
//!
//! Virtual-time runs are deterministic, so the figure pipeline never sees
//! a racy interleaving; real-thread (`Mode::Concurrent`) runs do, and
//! until this crate nothing *checked* them beyond spot assertions. This
//! crate closes that gap:
//!
//! * [`history`] — per-thread invocation/response recording via the
//!   engine's `OpObserver` hook (zero cost when not installed);
//! * [`lin`] — a Wing–Gong-style linearizability oracle with interval
//!   pruning and memoization, plus relaxed validation for the
//!   deliberately non-atomic chained scans;
//! * [`audit`] — cross-time structural checks (leaf seqno monotonicity);
//!   the quiescent-state audit itself lives in `euno-core::inspect`;
//! * [`stress`] — the trait-driven multi-threaded driver tying it all
//!   together, also available as the `stress` binary
//!   (`cargo run -p euno-check --bin stress -- --threads 8 --ops 20000
//!   --seed 1`).

pub mod audit;
pub mod history;
pub mod lin;
pub mod stress;

pub use audit::SeqnoWatch;
pub use history::{new_sink, CompletedOp, HistorySink, Recorder};
pub use lin::{check_history, Verdict, DEFAULT_BUDGET};
pub use stress::{run_all, run_stress, AuditHooks, StressConfig, StressReport};
