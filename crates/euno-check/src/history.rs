//! Operation history capture.
//!
//! Each stress thread installs a [`Recorder`] on its `ThreadCtx`. The
//! recorder stamps every invocation and response with a ticket from one
//! shared atomic counter — a total order on history events that is
//! consistent with real time (the `fetch_add` for a response happens
//! after the operation's last memory effect, the invocation ticket before
//! its first). Completed operations buffer locally (no cross-thread
//! traffic on the hot path beyond the ticket counter) and flush into the
//! shared sink when the recorder drops or the context is torn down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use euno_htm::{OpKind, OpObserver, OpOutput};

/// One completed operation: invocation/response interval plus payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompletedOp {
    pub thread: u32,
    pub kind: OpKind,
    /// Target key (scan: range start).
    pub key: u64,
    /// Second argument (put: value; scan: max count).
    pub arg: u64,
    /// Invocation ticket — drawn before the operation touched the tree.
    pub inv: u64,
    /// Response ticket — drawn after the operation returned.
    pub ret: u64,
    pub output: OpOutput,
}

/// Shared destination for completed operations from all threads.
pub type HistorySink = Arc<Mutex<Vec<CompletedOp>>>;

/// Create an empty sink and the ticket clock that recorders share.
pub fn new_sink() -> (HistorySink, Arc<AtomicU64>) {
    (
        Arc::new(Mutex::new(Vec::new())),
        Arc::new(AtomicU64::new(0)),
    )
}

/// Per-thread [`OpObserver`] that records invocation/response pairs.
pub struct Recorder {
    clock: Arc<AtomicU64>,
    sink: HistorySink,
    /// The op announced by `on_invoke`, awaiting its response.
    pending: Option<(OpKind, u64, u64, u64)>,
    done: Vec<CompletedOp>,
}

impl Recorder {
    pub fn new(clock: Arc<AtomicU64>, sink: HistorySink) -> Self {
        Recorder {
            clock,
            sink,
            pending: None,
            done: Vec::new(),
        }
    }

    /// Push buffered operations into the sink now (also runs on drop).
    pub fn flush(&mut self) {
        if !self.done.is_empty() {
            self.sink.lock().unwrap().append(&mut self.done);
        }
    }
}

impl OpObserver for Recorder {
    fn on_invoke(&mut self, _thread: u32, kind: OpKind, key: u64, arg: u64) {
        debug_assert!(self.pending.is_none(), "nested invocation");
        let inv = self.clock.fetch_add(1, Ordering::AcqRel);
        self.pending = Some((kind, key, arg, inv));
    }

    fn on_response(&mut self, thread: u32, output: OpOutput) {
        let (kind, key, arg, inv) = self
            .pending
            .take()
            .expect("response without a matching invocation");
        let ret = self.clock.fetch_add(1, Ordering::AcqRel);
        self.done.push(CompletedOp {
            thread,
            kind,
            key,
            arg,
            inv,
            ret,
            output,
        });
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_stamps_and_flushes_on_drop() {
        let (sink, clock) = new_sink();
        {
            let mut r = Recorder::new(Arc::clone(&clock), Arc::clone(&sink));
            r.on_invoke(3, OpKind::Put, 10, 99);
            r.on_response(3, OpOutput::Value(None));
            r.on_invoke(3, OpKind::Get, 10, 0);
            r.on_response(3, OpOutput::Value(Some(99)));
            assert!(sink.lock().unwrap().is_empty(), "buffers until drop");
        }
        let h = sink.lock().unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].kind, OpKind::Put);
        assert!(h[0].inv < h[0].ret);
        assert!(
            h[0].ret < h[1].inv,
            "sequential ops have disjoint intervals"
        );
        assert_eq!(h[1].output, OpOutput::Value(Some(99)));
    }

    #[test]
    fn tickets_are_globally_unique_across_threads() {
        let (sink, clock) = new_sink();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let (clock, sink) = (Arc::clone(&clock), Arc::clone(&sink));
                s.spawn(move || {
                    let mut r = Recorder::new(clock, sink);
                    for i in 0..500u64 {
                        r.on_invoke(t, OpKind::Put, i, i);
                        r.on_response(t, OpOutput::Value(None));
                    }
                });
            }
        });
        let h = sink.lock().unwrap();
        assert_eq!(h.len(), 2_000);
        let mut stamps: Vec<u64> = h.iter().flat_map(|o| [o.inv, o.ret]).collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 4_000, "no ticket reuse");
    }
}
