//! Stress-and-check driver: real threads, recorded histories, the
//! linearizability oracle, and structural audits over every tree.
//!
//! ```text
//! stress [--storm] [--churn] [--threads N] [--ops N] [--seed N] [--keys N]
//!        [--scan-len N] [--preload N] [--duration SECS] [--no-maintain]
//!        [--tree SUBSTR] [--trace PATH] [--profile] [--dump-events N]
//!
//! `--storm` starts from the abort-storm preset (8 threads on 8 keys, the
//! schedule that drives the executor onto its middle path); `--churn`
//! starts from the delete-heavy churn preset (continuous merges retiring
//! leaves under live readers); later flags still override individual
//! knobs.
//! ```
//!
//! Exits nonzero on any violation and prints the exact command line that
//! reproduces it, the seqno-watch and quiescent-audit summaries, and the
//! tail of every thread's event ring (the last `--dump-events` events,
//! default 32) so the failing interleaving's final moments are on record.
//!
//! `--trace PATH` additionally exports the first run's rings as a Chrome
//! trace-event file (plus `PATH.folded` flamegraph rollup); `--profile`
//! prints the hot-leaf contention table per tree.

use euno_check::{run_all, StressConfig, Verdict};
use euno_trace::{chrome_trace, folded_rollup};

fn usage() -> ! {
    eprintln!(
        "usage: stress [--storm] [--churn] [--threads N] [--ops N] [--seed N] [--keys N] \
         [--scan-len N] [--preload N] [--duration SECS] [--no-maintain] \
         [--tree SUBSTR] [--trace PATH] [--profile] [--dump-events N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = StressConfig::default();
    let mut filter: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut dump_events: usize = 32;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--storm" => {
                cfg = StressConfig {
                    trace_capacity: cfg.trace_capacity,
                    profile: cfg.profile,
                    ..StressConfig::abort_storm()
                }
            }
            "--churn" => {
                cfg = StressConfig {
                    trace_capacity: cfg.trace_capacity,
                    profile: cfg.profile,
                    ..StressConfig::churn()
                }
            }
            "--threads" => cfg.threads = num(&mut args) as u32,
            "--ops" => cfg.ops_per_thread = num(&mut args),
            "--seed" => cfg.seed = num(&mut args),
            "--keys" => cfg.key_range = num(&mut args).max(1),
            "--scan-len" => cfg.scan_len = num(&mut args),
            "--preload" => cfg.preload = num(&mut args),
            "--duration" => cfg.duration_ms = num(&mut args) * 1_000,
            "--no-maintain" => cfg.maintain_thread = false,
            "--tree" => filter = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--profile" => cfg.profile = true,
            "--dump-events" => dump_events = num(&mut args) as usize,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if trace_path.is_some() || cfg.profile {
        // A failure dump only needs the tail; exporting or profiling
        // wants the whole run, so widen the ring.
        cfg.trace_capacity = cfg.trace_capacity.max(euno_trace::DEFAULT_CAPACITY);
    }

    println!(
        "stress: {} threads × {} ops, seed {}, keys 0..{}, maintain {}",
        cfg.threads,
        cfg.ops_per_thread,
        cfg.seed,
        cfg.key_range,
        if cfg.maintain_thread { "on" } else { "off" }
    );

    let reports = run_all(&cfg, filter.as_deref());
    if reports.is_empty() {
        eprintln!("no tree matches --tree filter");
        std::process::exit(2);
    }

    if let Some(path) = &trace_path {
        let r = &reports[0];
        if let Err(e) = std::fs::write(path, chrome_trace(&r.traces).to_pretty()) {
            eprintln!("FAIL writing {path}: {e}");
            std::process::exit(1);
        }
        let folded = format!("{path}.folded");
        if let Err(e) = std::fs::write(&folded, folded_rollup(&r.traces)) {
            eprintln!("FAIL writing {folded}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path} and {folded} ({} run)", r.tree);
    }

    let mut failed = false;
    for r in &reports {
        let verdict = match &r.verdict {
            Verdict::Linearizable { states_explored } => {
                format!("linearizable ({states_explored} states)")
            }
            Verdict::Inconclusive { states_explored } => {
                format!("INCONCLUSIVE after {states_explored} states (raise budget)")
            }
            Verdict::Violation { detail } => format!("VIOLATION: {detail}"),
        };
        println!(
            "  {:<14} {:>7} ops in {:>5} ms | paths h/m/f {}/{}/{} | lin: {} | invariants: {}",
            r.tree,
            r.history_len,
            r.elapsed_ms,
            r.stages.commits - r.stages.middles - r.stages.fallbacks,
            r.stages.middles,
            r.stages.fallbacks,
            verdict,
            if r.invariant_violations.is_empty() {
                "clean".to_string()
            } else {
                format!("{} VIOLATED", r.invariant_violations.len())
            }
        );
        for v in &r.invariant_violations {
            println!("      invariant: {v}");
        }
        if cfg.profile {
            if let Some(p) = &r.profile {
                for line in p.render(16).lines() {
                    println!("      {line}");
                }
            }
        }
        if !r.passed() {
            failed = true;
            println!(
                "      seqno watch: {} leaves observed, {} violations",
                r.seqno_leaves_seen, r.seqno_violations
            );
            println!("      quiescent audit: {} findings", r.quiescent_findings);
            if !r.traces.is_empty() && dump_events > 0 {
                println!("      last {dump_events} events per thread:");
                for t in &r.traces {
                    println!(
                        "        thread {} ({} events, {} dropped):",
                        t.thread, t.total, t.dropped
                    );
                    let skip = t.events.len().saturating_sub(dump_events);
                    for e in &t.events[skip..] {
                        println!("          {e}");
                    }
                }
            }
            if !r.snapshots.is_empty() {
                // Cumulative counters per snapshot: the deltas between the
                // last rows localize the failure window.
                println!("      last {} metric snapshots:", r.snapshots.len().min(8));
                let skip = r.snapshots.len().saturating_sub(8);
                for s in &r.snapshots[skip..] {
                    use euno_metrics::Counter;
                    println!(
                        "        t={:>9}us ops={} commits={} aborts(htm/mid) \
                         conflict={}/{} fallbacks={} flips={}",
                        s.tick,
                        s.counters[Counter::Ops.index()],
                        s.counters[Counter::Commits.index()],
                        euno_metrics::ABORTS_HTM
                            .iter()
                            .map(|c| s.counters[c.index()])
                            .sum::<u64>(),
                        euno_metrics::ABORTS_MIDDLE
                            .iter()
                            .map(|c| s.counters[c.index()])
                            .sum::<u64>(),
                        s.counters[Counter::Fallbacks.index()],
                        s.flip_events,
                    );
                }
            }
        }
    }

    if failed {
        eprintln!(
            "\nFAILED — reproduce with:\n  cargo run --release -p euno-check --bin stress -- \
             --threads {} --ops {} --seed {} --keys {}{}",
            cfg.threads,
            cfg.ops_per_thread,
            cfg.seed,
            cfg.key_range,
            if cfg.maintain_thread {
                ""
            } else {
                " --no-maintain"
            }
        );
        std::process::exit(1);
    }
    println!("all trees clean");
}
