//! Stress-and-check driver: real threads, recorded histories, the
//! linearizability oracle, and structural audits over every tree.
//!
//! ```text
//! stress [--threads N] [--ops N] [--seed N] [--keys N] [--scan-len N]
//!        [--preload N] [--duration SECS] [--no-maintain] [--tree SUBSTR]
//! ```
//!
//! Exits nonzero on any violation and prints the exact command line that
//! reproduces it.

use euno_check::{run_all, StressConfig, Verdict};

fn usage() -> ! {
    eprintln!(
        "usage: stress [--threads N] [--ops N] [--seed N] [--keys N] \
         [--scan-len N] [--preload N] [--duration SECS] [--no-maintain] \
         [--tree SUBSTR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = StressConfig::default();
    let mut filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--threads" => cfg.threads = num(&mut args) as u32,
            "--ops" => cfg.ops_per_thread = num(&mut args),
            "--seed" => cfg.seed = num(&mut args),
            "--keys" => cfg.key_range = num(&mut args).max(1),
            "--scan-len" => cfg.scan_len = num(&mut args),
            "--preload" => cfg.preload = num(&mut args),
            "--duration" => cfg.duration_ms = num(&mut args) * 1_000,
            "--no-maintain" => cfg.maintain_thread = false,
            "--tree" => filter = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    println!(
        "stress: {} threads × {} ops, seed {}, keys 0..{}, maintain {}",
        cfg.threads,
        cfg.ops_per_thread,
        cfg.seed,
        cfg.key_range,
        if cfg.maintain_thread { "on" } else { "off" }
    );

    let reports = run_all(&cfg, filter.as_deref());
    if reports.is_empty() {
        eprintln!("no tree matches --tree filter");
        std::process::exit(2);
    }

    let mut failed = false;
    for r in &reports {
        let verdict = match &r.verdict {
            Verdict::Linearizable { states_explored } => {
                format!("linearizable ({states_explored} states)")
            }
            Verdict::Inconclusive { states_explored } => {
                format!("INCONCLUSIVE after {states_explored} states (raise budget)")
            }
            Verdict::Violation { detail } => format!("VIOLATION: {detail}"),
        };
        println!(
            "  {:<14} {:>7} ops in {:>5} ms | lin: {} | invariants: {}",
            r.tree,
            r.history_len,
            r.elapsed_ms,
            verdict,
            if r.invariant_violations.is_empty() {
                "clean".to_string()
            } else {
                format!("{} VIOLATED", r.invariant_violations.len())
            }
        );
        for v in &r.invariant_violations {
            println!("      invariant: {v}");
        }
        if !r.passed() {
            failed = true;
        }
    }

    if failed {
        eprintln!(
            "\nFAILED — reproduce with:\n  cargo run --release -p euno-check --bin stress -- \
             --threads {} --ops {} --seed {} --keys {}{}",
            cfg.threads,
            cfg.ops_per_thread,
            cfg.seed,
            cfg.key_range,
            if cfg.maintain_thread {
                ""
            } else {
                " --no-maintain"
            }
        );
        std::process::exit(1);
    }
    println!("all trees clean");
}
