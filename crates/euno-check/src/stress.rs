//! Multi-threaded stress runs with full history capture.
//!
//! The driver is trait-driven: anything implementing `ConcurrentMap`
//! (Euno-B+Tree and all three baselines) gets the same treatment —
//! preload, a mixed get/put/delete/scan workload from real threads with
//! every operation recorded, an optional concurrent maintenance thread,
//! post-quiescence verification reads, then the linearizability oracle
//! plus whatever structural audits the tree exposes via [`AuditHooks`].
//!
//! Every run is reproducible from `(threads, ops, seed)`: per-thread RNG
//! streams derive from the seed, and the report carries everything needed
//! to re-run a failure.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use euno_baselines::{HtmBTree, HtmMasstree, Masstree};
use euno_core::EunoBTreeDefault;
use euno_htm::{ConcurrentMap, OpKind, OpOutput, Runtime, ThreadStats};
use euno_metrics::{sample_due, ExecStages, Snapshot, TimeSeries};
use euno_rng::{Rng, SmallRng};
use euno_trace::{build_profile, LeafProfile, ThreadTrace, TraceBuf};

use crate::audit::SeqnoWatch;
use crate::history::{new_sink, Recorder};
use crate::lin::{check_history, Verdict, DEFAULT_BUDGET};

/// Knobs for one stress run (one tree).
#[derive(Clone, Debug)]
pub struct StressConfig {
    pub threads: u32,
    pub ops_per_thread: u64,
    pub seed: u64,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Max records per worker scan.
    pub scan_len: u64,
    /// Records inserted (keys `0..preload`) before the clock starts.
    pub preload: u64,
    /// Wall-clock cap in milliseconds; 0 = run all ops.
    pub duration_ms: u64,
    /// Run a concurrent maintenance thread alongside the workers.
    pub maintain_thread: bool,
    /// Step budget for the linearizability search.
    pub lin_budget: u64,
    /// Per-thread trace-ring capacity in events. Stress runs keep a small
    /// ring on by default so a linearizability failure can dump the last
    /// events each thread saw; 0 disables tracing entirely.
    pub trace_capacity: usize,
    /// Build a hot-leaf contention profile from the collected traces.
    pub profile: bool,
    /// Operation mix in percent; the remainder up to 100 is scans.
    pub get_pct: u32,
    pub put_pct: u32,
    pub delete_pct: u32,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            threads: 4,
            ops_per_thread: 5_000,
            seed: 1,
            key_range: 512,
            scan_len: 16,
            preload: 256,
            duration_ms: 0,
            maintain_thread: true,
            lin_budget: DEFAULT_BUDGET,
            trace_capacity: 512,
            profile: false,
            get_pct: 40,
            put_pct: 30,
            delete_pct: 15,
        }
    }
}

impl StressConfig {
    /// The abort-storm schedule: a handful of stubborn hot keys hammered
    /// by every worker, so HTM regions abort repeatedly and the executor
    /// escalates onto the footprint-local middle path (§4.3). Used to
    /// check that operations committed under advisory slot locks are
    /// still linearizable against operations on the HTM and fallback
    /// paths.
    pub fn abort_storm() -> Self {
        StressConfig {
            threads: 8,
            ops_per_thread: 2_500,
            key_range: 8,
            preload: 8,
            scan_len: 4,
            ..StressConfig::default()
        }
    }

    /// The churn schedule: delete-heavy traffic over a small key range
    /// with the maintenance thread on, so leaves empty out and merge
    /// continuously — every reader races real retirements and the epoch
    /// collector is exercised under load rather than at quiescence.
    pub fn churn() -> Self {
        StressConfig {
            threads: 6,
            ops_per_thread: 4_000,
            key_range: 256,
            preload: 256,
            maintain_thread: true,
            get_pct: 25,
            put_pct: 25,
            delete_pct: 40,
            ..StressConfig::default()
        }
    }
}

/// A concurrently-sampleable leaf seqno snapshot source.
pub type SeqnoSnapshotFn<'a> = Box<dyn Fn() -> Vec<(usize, u64)> + Sync + 'a>;

/// Structure-specific audits a tree can contribute to the run.
#[derive(Default)]
pub struct AuditHooks<'a> {
    /// Sampled concurrently by a watcher thread; fed to [`SeqnoWatch`].
    pub seqno_snapshot: Option<SeqnoSnapshotFn<'a>>,
    /// Run once at quiescence; returns invariant violations.
    pub quiescent: Option<Box<dyn Fn() -> Vec<String> + 'a>>,
}

/// Outcome of one tree's stress run.
#[derive(Debug)]
pub struct StressReport {
    pub tree: &'static str,
    pub threads: u32,
    pub seed: u64,
    /// Completed client operations in the history (including verification
    /// reads, excluding nothing).
    pub history_len: usize,
    pub verdict: Verdict,
    /// Structural audit findings (empty = clean).
    pub invariant_violations: Vec<String>,
    pub elapsed_ms: u64,
    /// Distinct leaves the seqno watcher observed across its snapshots.
    pub seqno_leaves_seen: usize,
    /// How many of `invariant_violations` came from the seqno watcher.
    pub seqno_violations: usize,
    /// How many of `invariant_violations` came from the quiescent audit.
    pub quiescent_findings: usize,
    /// Per-thread event rings (workers, maintainer, verifier), collected
    /// when `trace_capacity > 0`. On a failure the binary dumps the tail
    /// of each ring next to the reproducing command line.
    pub traces: Vec<ThreadTrace>,
    /// Hot-leaf contention profile, when `StressConfig::profile` is set.
    pub profile: Option<LeafProfile>,
    /// Engine counters merged across every worker thread.
    pub stats: ThreadStats,
    /// Executor stage counts merged across every worker thread — how the
    /// run's commits split across the HTM / middle / fallback paths.
    pub stages: ExecStages,
    /// Tail of the metrics sampler's snapshot ring (wall-µs ticks). On a
    /// linearizability failure the binary dumps these next to the trace
    /// tails: the counter deltas in the last few windows usually say
    /// which path the failing interleaving was on.
    pub snapshots: Vec<Snapshot>,
}

impl StressReport {
    /// A run passes unless the oracle proves a violation or an audit
    /// fails. `Inconclusive` passes (it is surfaced, not hidden).
    pub fn passed(&self) -> bool {
        !matches!(self.verdict, Verdict::Violation { .. }) && self.invariant_violations.is_empty()
    }
}

fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    x = (x ^ (x >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// Stress one tree and check everything. `atomic_scans` declares whether
/// the tree's scan has a single linearization point (see `lin`).
pub fn run_stress(
    tree: &dyn ConcurrentMap,
    rt: &Arc<Runtime>,
    cfg: &StressConfig,
    atomic_scans: bool,
    hooks: AuditHooks<'_>,
) -> StressReport {
    // ---- Preload (before the history clock starts). ---------------
    let mut preload_model = BTreeMap::new();
    {
        let mut ctx = rt.thread(cfg.seed);
        for key in 0..cfg.preload.min(cfg.key_range) {
            let value = key.wrapping_mul(31) + 7;
            tree.put(&mut ctx, key, value);
            preload_model.insert(key, value);
        }
    }

    let (sink, clock) = new_sink();
    let mut seq_watch = SeqnoWatch::new();
    if let Some(f) = &hooks.seqno_snapshot {
        seq_watch.observe(&f());
    }

    let start = Instant::now();
    let deadline = (cfg.duration_ms > 0).then(|| start + Duration::from_millis(cfg.duration_ms));
    let stop = AtomicBool::new(false);
    let mut traces: Vec<ThreadTrace> = Vec::new();
    let mut stats = ThreadStats::default();
    let mut stages = ExecStages::default();
    let mut snapshots: Vec<Snapshot> = Vec::new();

    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for w in 0..cfg.threads {
            let (clock, sink) = (Arc::clone(&clock), Arc::clone(&sink));
            let rt = Arc::clone(rt);
            let cfg = cfg.clone();
            workers.push(s.spawn(move || {
                let mut ctx = rt.thread(cfg.seed ^ u64::from(w));
                ctx.set_op_observer(Box::new(Recorder::new(clock, sink)));
                if cfg.trace_capacity > 0 {
                    ctx.set_tracer(Box::new(TraceBuf::new(ctx.id, cfg.trace_capacity)));
                }
                let mut rng = SmallRng::seed_from_u64(mix64(cfg.seed) ^ mix64(u64::from(w) + 1));
                let mut out = Vec::new();
                for i in 0..cfg.ops_per_thread {
                    if i % 64 == 0 {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                break;
                            }
                        }
                    }
                    let key = rng.gen_range(0..cfg.key_range);
                    let roll = rng.gen_range(0..100u32);
                    if roll < cfg.get_pct {
                        ctx.observe_invoke(OpKind::Get, key, 0);
                        let v = tree.get(&mut ctx, key);
                        ctx.observe_response(OpOutput::Value(v));
                    } else if roll < cfg.get_pct + cfg.put_pct {
                        // Values are unique per (worker, op) and
                        // disjoint from preload values, so every
                        // observed record has one possible writer.
                        let value = (u64::from(w) + 1) << 40 | i;
                        ctx.observe_invoke(OpKind::Put, key, value);
                        let prev = tree.put(&mut ctx, key, value);
                        ctx.observe_response(OpOutput::Value(prev));
                    } else if roll < cfg.get_pct + cfg.put_pct + cfg.delete_pct {
                        ctx.observe_invoke(OpKind::Delete, key, 0);
                        let prev = tree.delete(&mut ctx, key);
                        ctx.observe_response(OpOutput::Value(prev));
                    } else {
                        out.clear();
                        ctx.observe_invoke(OpKind::Scan, key, cfg.scan_len);
                        tree.scan(&mut ctx, key, cfg.scan_len as usize, &mut out);
                        ctx.observe_response(OpOutput::Scan(out.clone()));
                    }
                }
                drop(ctx.take_op_observer()); // flush this thread's ops
                (
                    ctx.take_tracer().map(|b| b.into_thread_trace()),
                    ctx.stats.clone(),
                    ctx.exec_stages(),
                )
            }));
        }

        let maintainer = cfg.maintain_thread.then(|| {
            let (clock, sink) = (Arc::clone(&clock), Arc::clone(&sink));
            let rt = Arc::clone(rt);
            let stop = &stop;
            s.spawn(move || {
                let mut ctx = rt.thread(cfg.seed ^ 0xAAAA);
                ctx.set_op_observer(Box::new(Recorder::new(clock, sink)));
                if cfg.trace_capacity > 0 {
                    ctx.set_tracer(Box::new(TraceBuf::new(ctx.id, cfg.trace_capacity)));
                }
                while !stop.load(Ordering::Relaxed) {
                    ctx.observe_invoke(OpKind::Maintain, 0, 0);
                    let n = tree.maintain(&mut ctx);
                    ctx.observe_response(OpOutput::Count(n));
                    std::thread::sleep(Duration::from_micros(500));
                }
                drop(ctx.take_op_observer());
                ctx.take_tracer().map(|b| b.into_thread_trace())
            })
        });

        let watcher = hooks.seqno_snapshot.as_ref().map(|f| {
            let stop = &stop;
            s.spawn(move || {
                let mut snaps = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    snaps.push(f());
                    std::thread::sleep(Duration::from_millis(1));
                }
                snaps
            })
        });

        // Metrics sampler: snapshot the runtime's registry every
        // millisecond into a small ring. The retained tail goes into the
        // report for the binary's failure dump.
        let sampler = {
            let rt = Arc::clone(rt);
            let stop = &stop;
            s.spawn(move || {
                let mut ts = TimeSeries::new(1_000, 64);
                let t0 = Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    let now = t0.elapsed().as_micros() as u64;
                    if sample_due(&mut ts, now) {
                        rt.publish_epoch_gauges();
                        ts.sample(now, rt.metrics());
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
                rt.publish_epoch_gauges();
                ts.sample(t0.elapsed().as_micros() as u64, rt.metrics());
                ts
            })
        };

        for h in workers {
            let (trace, worker_stats, worker_stages) = h.join().expect("stress worker panicked");
            traces.extend(trace);
            stats.merge(&worker_stats);
            stages.merge(&worker_stages);
        }
        stop.store(true, Ordering::Relaxed);
        if let Some(h) = maintainer {
            traces.extend(h.join().expect("maintenance thread panicked"));
        }
        if let Some(h) = watcher {
            for snap in h.join().expect("seqno watcher panicked") {
                seq_watch.observe(&snap);
            }
        }
        let ts = sampler.join().expect("metrics sampler panicked");
        snapshots = ts.iter().cloned().collect();
    });
    if let Some(f) = &hooks.seqno_snapshot {
        seq_watch.observe(&f());
    }

    // ---- Post-quiescence verification reads, recorded too. --------
    // These are strictly after every worker op, so the oracle is forced
    // to linearize them last: the final tree state is checked against
    // the model for free, and the full scan runs with no concurrency —
    // exact checking even on trees with non-atomic scans.
    {
        let mut ctx = rt.thread(cfg.seed ^ 0xBBBB);
        ctx.set_op_observer(Box::new(Recorder::new(
            Arc::clone(&clock),
            Arc::clone(&sink),
        )));
        if cfg.trace_capacity > 0 {
            ctx.set_tracer(Box::new(TraceBuf::new(ctx.id, cfg.trace_capacity)));
        }
        let mut out = Vec::new();
        ctx.observe_invoke(OpKind::Scan, 0, u64::MAX);
        tree.scan(&mut ctx, 0, usize::MAX, &mut out);
        ctx.observe_response(OpOutput::Scan(out));
        let step = (cfg.key_range / 256).max(1);
        let mut key = 0;
        while key < cfg.key_range {
            ctx.observe_invoke(OpKind::Get, key, 0);
            let v = tree.get(&mut ctx, key);
            ctx.observe_response(OpOutput::Value(v));
            key += step;
        }
        drop(ctx.take_op_observer());
        traces.extend(ctx.take_tracer().map(|b| b.into_thread_trace()));
    }

    let history = std::mem::take(&mut *sink.lock().unwrap());
    let verdict = check_history(&history, &preload_model, atomic_scans, cfg.lin_budget);

    let mut invariant_violations: Vec<String> = seq_watch.violations().to_vec();
    let seqno_violations = invariant_violations.len();
    if let Some(f) = &hooks.quiescent {
        invariant_violations.extend(f());
    }
    let quiescent_findings = invariant_violations.len() - seqno_violations;

    let profile = cfg
        .profile
        .then(|| build_profile(&traces, |addr| rt.object_base_of(addr)));

    StressReport {
        tree: tree.name(),
        threads: cfg.threads,
        seed: cfg.seed,
        history_len: history.len(),
        verdict,
        invariant_violations,
        elapsed_ms: start.elapsed().as_millis() as u64,
        seqno_leaves_seen: seq_watch.leaves_seen(),
        seqno_violations,
        quiescent_findings,
        traces,
        profile,
        stats,
        stages,
        snapshots,
    }
}

/// Stress every tree in the workspace (optionally filtered by a
/// case-insensitive substring of the tree name). Euno-B+Tree additionally
/// gets the structural audits; scan atomicity is declared per tree.
pub fn run_all(cfg: &StressConfig, filter: Option<&str>) -> Vec<StressReport> {
    let wants = |name: &str| {
        filter.is_none_or(|f| name.to_ascii_lowercase().contains(&f.to_ascii_lowercase()))
    };
    let mut reports = Vec::new();

    if wants("Euno-B+Tree") {
        let rt = Runtime::new_concurrent();
        let tree = EunoBTreeDefault::new(Arc::clone(&rt));
        let hooks = AuditHooks {
            seqno_snapshot: Some(Box::new(|| tree.leaf_seqnos_plain())),
            quiescent: Some(Box::new(|| tree.audit_quiescent())),
        };
        reports.push(run_stress(&tree, &rt, cfg, false, hooks));
    }
    if wants("Euno-ReadOpt") {
        let rt = Runtime::new_concurrent();
        let tree =
            EunoBTreeDefault::with_config(Arc::clone(&rt), euno_core::EunoConfig::read_optimized());
        let hooks = AuditHooks {
            seqno_snapshot: Some(Box::new(|| tree.leaf_seqnos_plain())),
            quiescent: Some(Box::new(|| tree.audit_quiescent())),
        };
        reports.push(run_stress(&tree, &rt, cfg, false, hooks));
    }
    if wants("HTM-B+Tree") {
        let rt = Runtime::new_concurrent();
        let tree = HtmBTree::<16>::new(Arc::clone(&rt));
        reports.push(run_stress(&tree, &rt, cfg, true, AuditHooks::default()));
    }
    if wants("Masstree") {
        let rt = Runtime::new_concurrent();
        let tree = Masstree::new(Arc::clone(&rt));
        reports.push(run_stress(&tree, &rt, cfg, false, AuditHooks::default()));
    }
    if wants("HTM-Masstree") {
        let rt = Runtime::new_concurrent();
        let tree = HtmMasstree::new(Arc::clone(&rt));
        reports.push(run_stress(&tree, &rt, cfg, true, AuditHooks::default()));
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_stress_run_is_clean_on_every_tree() {
        let cfg = StressConfig {
            threads: 3,
            ops_per_thread: 400,
            seed: 42,
            key_range: 128,
            preload: 64,
            ..StressConfig::default()
        };
        let reports = run_all(&cfg, None);
        assert_eq!(reports.len(), 5);
        for r in &reports {
            assert!(
                r.passed(),
                "{}: verdict {:?}, invariants {:?}",
                r.tree,
                r.verdict,
                r.invariant_violations
            );
            assert!(matches!(r.verdict, Verdict::Linearizable { .. }), "{r:?}");
            assert!(r.history_len > 0);
        }
    }

    #[test]
    fn abort_storm_is_linearizable_under_real_threads() {
        // The storm preset (shrunk for test time): every worker hammers
        // eight keys from real threads. Whatever mix of HTM, middle-path
        // and fallback commits the timing produces, the recorded history
        // must stay linearizable and the structural audits clean.
        let cfg = StressConfig {
            threads: 4,
            ops_per_thread: 800,
            ..StressConfig::abort_storm()
        };
        let reports = run_all(&cfg, Some("b+tree"));
        assert_eq!(reports.len(), 2, "Euno + HTM B+Trees expected");
        for r in &reports {
            assert!(
                r.passed(),
                "{} under abort storm: verdict {:?}, invariants {:?}",
                r.tree,
                r.verdict,
                r.invariant_violations
            );
        }
    }

    #[test]
    fn churn_is_linearizable_on_both_euno_variants() {
        // The churn preset (shrunk for test time): delete-heavy traffic
        // with the maintenance thread merging continuously, so episode
        // readers (Euno-B+Tree) and episode-free readers (Euno-ReadOpt)
        // both race real leaf retirements. Histories must stay
        // linearizable, the seqno watch clean across address reuse, and
        // the quiescent audit clean after reclamation.
        let cfg = StressConfig {
            threads: 4,
            ops_per_thread: 1_200,
            ..StressConfig::churn()
        };
        let reports = run_all(&cfg, Some("euno"));
        assert_eq!(reports.len(), 2, "both Euno variants expected");
        assert!(reports.iter().any(|r| r.tree == "Euno-ReadOpt"));
        for r in &reports {
            assert!(
                r.passed(),
                "{} under churn: verdict {:?}, invariants {:?}",
                r.tree,
                r.verdict,
                r.invariant_violations
            );
            assert!(matches!(r.verdict, Verdict::Linearizable { .. }), "{r:?}");
        }
    }

    #[test]
    fn virtual_abort_storm_middle_path_history_is_consistent() {
        // Real threads rarely overlap enough in a short test to drive the
        // executor past its retry budget, so the middle path is exercised
        // deterministically in virtual time: eight virtual threads
        // round-robin over eight keys, where overlapping cycle intervals
        // with colliding footprints abort exactly as the simulator's
        // figures do. The recorded history must check out against the
        // oracle, and the merged stats must prove middle-path commits
        // actually happened — on a `three_path()` HTM-B+Tree, which has
        // no CCM serializing hot keys before the executor sees them.
        use euno_htm::ThreadCtx;

        let rt = Runtime::new_virtual();
        let tree = HtmBTree::<16>::new(Arc::clone(&rt)).three_path();
        let mut model = BTreeMap::new();
        {
            let mut ctx = rt.thread(0xCAFE);
            for key in 0..8u64 {
                let value = key.wrapping_mul(31) + 7;
                tree.put(&mut ctx, key, value);
                model.insert(key, value);
            }
        }

        let (sink, clock) = new_sink();
        let mut ctxs: Vec<ThreadCtx> = (0..8u64)
            .map(|w| {
                let mut ctx = rt.thread(w);
                ctx.set_op_observer(Box::new(Recorder::new(
                    Arc::clone(&clock),
                    Arc::clone(&sink),
                )));
                ctx
            })
            .collect();
        let mut rngs: Vec<SmallRng> = (0..8u64)
            .map(|w| SmallRng::seed_from_u64(mix64(0x5708) ^ mix64(w + 1)))
            .collect();

        for round in 0..250u64 {
            for (w, ctx) in ctxs.iter_mut().enumerate() {
                let key = rngs[w].gen_range(0..8u64);
                match rngs[w].gen_range(0..100u32) {
                    0..=39 => {
                        ctx.observe_invoke(OpKind::Get, key, 0);
                        let v = tree.get(ctx, key);
                        ctx.observe_response(OpOutput::Value(v));
                    }
                    40..=79 => {
                        let value = (w as u64 + 1) << 40 | round;
                        ctx.observe_invoke(OpKind::Put, key, value);
                        let prev = tree.put(ctx, key, value);
                        ctx.observe_response(OpOutput::Value(prev));
                    }
                    _ => {
                        ctx.observe_invoke(OpKind::Delete, key, 0);
                        let prev = tree.delete(ctx, key);
                        ctx.observe_response(OpOutput::Value(prev));
                    }
                }
            }
        }

        let mut stats = ThreadStats::default();
        let mut stages = ExecStages::default();
        for mut ctx in ctxs {
            drop(ctx.take_op_observer());
            stats.merge(&ctx.stats);
            stages.merge(&ctx.exec_stages());
        }
        assert!(
            stages.middles > 0,
            "virtual abort storm never escalated onto the middle path \
             (commits {}, aborts {}, fallbacks {})",
            stages.commits,
            stats.aborts.total(),
            stages.fallbacks
        );

        let history = std::mem::take(&mut *sink.lock().unwrap());
        let verdict = check_history(&history, &model, true, DEFAULT_BUDGET);
        assert!(
            matches!(verdict, Verdict::Linearizable { .. }),
            "middle-path history not linearizable: {verdict:?}"
        );
    }

    #[test]
    fn oracle_catches_a_buggy_map_end_to_end() {
        // A map that drops every fourth put must be caught by the oracle
        // via the recorded history — this is the pre-fix failure shape
        // (lost updates) the subsystem exists to flush out.
        struct Lossy {
            inner: EunoBTreeDefault,
            calls: std::sync::atomic::AtomicU64,
        }
        impl ConcurrentMap for Lossy {
            fn get(&self, ctx: &mut euno_htm::ThreadCtx, key: u64) -> Option<u64> {
                self.inner.get(ctx, key)
            }
            fn put(&self, ctx: &mut euno_htm::ThreadCtx, key: u64, value: u64) -> Option<u64> {
                let n = self.calls.fetch_add(1, Ordering::Relaxed);
                if n % 4 == 3 {
                    // Swallow the write but report a plausible answer.
                    self.inner.get(ctx, key)
                } else {
                    self.inner.put(ctx, key, value)
                }
            }
            fn delete(&self, ctx: &mut euno_htm::ThreadCtx, key: u64) -> Option<u64> {
                self.inner.delete(ctx, key)
            }
            fn scan(
                &self,
                ctx: &mut euno_htm::ThreadCtx,
                from: u64,
                count: usize,
                out: &mut Vec<(u64, u64)>,
            ) -> usize {
                self.inner.scan(ctx, from, count, out)
            }
            fn name(&self) -> &'static str {
                "Lossy"
            }
        }
        let rt = Runtime::new_concurrent();
        let tree = Lossy {
            inner: EunoBTreeDefault::new(Arc::clone(&rt)),
            calls: std::sync::atomic::AtomicU64::new(0),
        };
        let cfg = StressConfig {
            threads: 2,
            ops_per_thread: 300,
            seed: 7,
            key_range: 32,
            preload: 16,
            maintain_thread: false,
            profile: true,
            ..StressConfig::default()
        };
        let r = run_stress(&tree, &rt, &cfg, false, AuditHooks::default());
        assert!(
            matches!(r.verdict, Verdict::Violation { .. }),
            "lost updates must be detected: {:?}",
            r.verdict
        );
        // The failure dump has material to work with: every thread kept
        // its event ring, and the profile resolved engine addresses to
        // registered leaves.
        assert!(r.traces.len() >= 3, "workers + verifier rings expected");
        assert!(r.traces.iter().all(|t| t.total > 0));
        let p = r.profile.expect("profile requested");
        assert!(p.events_seen > 0);
    }
}
