//! Property-based tests: the Euno-B+Tree is an ordered map — equivalent
//! to `BTreeMap` under arbitrary operation sequences, across its
//! configuration variants and leaf geometries.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use euno_core::{EunoBTree, EunoConfig};
use euno_htm::{ConcurrentMap, Runtime};

#[derive(Clone, Debug)]
enum Op {
    Put(u64, u64),
    Get(u64),
    Del(u64),
    Scan(u64, usize),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..key_space, 0u64..1_000_000).prop_map(|(k, v)| Op::Put(k, v)),
        2 => (0..key_space).prop_map(Op::Get),
        2 => (0..key_space).prop_map(Op::Del),
        1 => (0..key_space, 1usize..20).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

fn check_against_model<const S: usize, const K: usize>(
    cfg: EunoConfig,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let rt = Runtime::new_virtual();
    let tree: EunoBTree<S, K> = EunoBTree::with_config(Arc::clone(&rt), cfg);
    let mut ctx = rt.thread(1);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Put(k, v) => {
                prop_assert_eq!(tree.put(&mut ctx, k, v), model.insert(k, v), "put {}", k)
            }
            Op::Get(k) => {
                prop_assert_eq!(tree.get(&mut ctx, k), model.get(&k).copied(), "get {}", k)
            }
            Op::Del(k) => {
                prop_assert_eq!(tree.delete(&mut ctx, k), model.remove(&k), "del {}", k)
            }
            Op::Scan(k, n) => {
                let mut got = Vec::new();
                tree.scan(&mut ctx, k, n, &mut got);
                let expect: Vec<(u64, u64)> =
                    model.range(k..).take(n).map(|(&k, &v)| (k, v)).collect();
                prop_assert_eq!(got, expect, "scan {}", k);
            }
        }
    }
    // Terminal audit.
    let audit = tree.collect_all_plain();
    let expect: Vec<(u64, u64)> = model.into_iter().collect();
    prop_assert_eq!(audit, expect);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Default geometry, full config.
    #[test]
    fn full_config_matches_model(ops in prop::collection::vec(op_strategy(128), 1..400)) {
        check_against_model::<4, 4>(EunoConfig::full(), &ops)?;
    }

    /// Unpartitioned +SplitHTM variant.
    #[test]
    fn split_only_matches_model(ops in prop::collection::vec(op_strategy(128), 1..400)) {
        check_against_model::<1, 16>(EunoConfig::split_htm_only(), &ops)?;
    }

    /// CCM without adaptive.
    #[test]
    fn ccm_markbits_matches_model(ops in prop::collection::vec(op_strategy(128), 1..400)) {
        check_against_model::<4, 4>(EunoConfig::ccm_markbits(), &ops)?;
    }

    /// An unusual leaf geometry (2 segments × 8 slots).
    #[test]
    fn alternate_geometry_matches_model(ops in prop::collection::vec(op_strategy(96), 1..300)) {
        check_against_model::<2, 8>(EunoConfig::full(), &ops)?;
    }

    /// Dense keyspaces force constant splitting and reorganization.
    #[test]
    fn dense_keyspace_splits_are_sound(ops in prop::collection::vec(op_strategy(24), 1..500)) {
        check_against_model::<4, 4>(EunoConfig::full(), &ops)?;
    }

    /// Interleaving maintenance sweeps with random operations never
    /// changes the map's contents.
    #[test]
    fn maintenance_preserves_the_model(
        ops in prop::collection::vec(op_strategy(160), 1..400),
        maintain_every in 10usize..60,
    ) {
        let rt = Runtime::new_virtual();
        let tree: EunoBTree<4, 4> = EunoBTree::with_config(
            Arc::clone(&rt),
            EunoConfig::full(),
        );
        let mut ctx = rt.thread(1);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Put(k, v) => {
                    prop_assert_eq!(tree.put(&mut ctx, k, v), model.insert(k, v))
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&mut ctx, k), model.get(&k).copied())
                }
                Op::Del(k) => {
                    prop_assert_eq!(tree.delete(&mut ctx, k), model.remove(&k))
                }
                Op::Scan(k, n) => {
                    let mut got = Vec::new();
                    tree.scan(&mut ctx, k, n, &mut got);
                    let expect: Vec<(u64, u64)> =
                        model.range(k..).take(n).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(got, expect);
                }
            }
            if i % maintain_every == maintain_every - 1 {
                tree.maintain(&mut ctx);
            }
        }
        tree.maintain(&mut ctx);
        let audit = tree.collect_all_plain();
        prop_assert_eq!(audit, model.into_iter().collect::<Vec<_>>());
    }
}
