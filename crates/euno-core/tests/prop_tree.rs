//! Randomized property tests: the Euno-B+Tree is an ordered map —
//! equivalent to `BTreeMap` under arbitrary operation sequences, across
//! its configuration variants and leaf geometries. Operation sequences
//! are drawn from seeded `euno-rng` streams, so every run replays the
//! same deterministic sample.

use std::collections::BTreeMap;
use std::sync::Arc;

use euno_core::{EunoBTree, EunoConfig};
use euno_htm::{ConcurrentMap, Runtime};
use euno_rng::{Rng, SmallRng};

#[derive(Clone, Debug)]
enum Op {
    Put(u64, u64),
    Get(u64),
    Del(u64),
    Scan(u64, usize),
}

fn random_op(rng: &mut SmallRng, key_space: u64) -> Op {
    // Weights match the old proptest strategy: 4 put / 2 get / 2 del / 1 scan.
    match rng.gen_range(0u32..9) {
        0..=3 => Op::Put(rng.gen_range(0..key_space), rng.gen_range(0u64..1_000_000)),
        4..=5 => Op::Get(rng.gen_range(0..key_space)),
        6..=7 => Op::Del(rng.gen_range(0..key_space)),
        _ => Op::Scan(rng.gen_range(0..key_space), rng.gen_range(1usize..20)),
    }
}

fn random_ops(rng: &mut SmallRng, key_space: u64, max_len: usize) -> Vec<Op> {
    let n = rng.gen_range(1usize..max_len);
    (0..n).map(|_| random_op(rng, key_space)).collect()
}

fn check_against_model<const S: usize, const K: usize>(cfg: EunoConfig, ops: &[Op]) {
    let rt = Runtime::new_virtual();
    let tree: EunoBTree<S, K> = EunoBTree::with_config(Arc::clone(&rt), cfg);
    let mut ctx = rt.thread(1);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Put(k, v) => {
                assert_eq!(tree.put(&mut ctx, k, v), model.insert(k, v), "put {k}")
            }
            Op::Get(k) => {
                assert_eq!(tree.get(&mut ctx, k), model.get(&k).copied(), "get {k}")
            }
            Op::Del(k) => {
                assert_eq!(tree.delete(&mut ctx, k), model.remove(&k), "del {k}")
            }
            Op::Scan(k, n) => {
                let mut got = Vec::new();
                tree.scan(&mut ctx, k, n, &mut got);
                let expect: Vec<(u64, u64)> =
                    model.range(k..).take(n).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(got, expect, "scan {k}");
            }
        }
    }
    // Terminal audit.
    let audit = tree.collect_all_plain();
    let expect: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(audit, expect);
}

const CASES: usize = 48;

/// Default geometry, full config.
#[test]
fn full_config_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0xf411);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 128, 400);
        check_against_model::<4, 4>(EunoConfig::full(), &ops);
    }
}

/// Unpartitioned +SplitHTM variant.
#[test]
fn split_only_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0x5911);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 128, 400);
        check_against_model::<1, 16>(EunoConfig::split_htm_only(), &ops);
    }
}

/// CCM without adaptive.
#[test]
fn ccm_markbits_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0xcc3b);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 128, 400);
        check_against_model::<4, 4>(EunoConfig::ccm_markbits(), &ops);
    }
}

/// An unusual leaf geometry (2 segments × 8 slots).
#[test]
fn alternate_geometry_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0xa17);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 96, 300);
        check_against_model::<2, 8>(EunoConfig::full(), &ops);
    }
}

/// Dense keyspaces force constant splitting and reorganization.
#[test]
fn dense_keyspace_splits_are_sound() {
    let mut rng = SmallRng::seed_from_u64(0xde45e);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 24, 500);
        check_against_model::<4, 4>(EunoConfig::full(), &ops);
    }
}

/// Interleaving maintenance sweeps with random operations never changes
/// the map's contents.
#[test]
fn maintenance_preserves_the_model() {
    let mut rng = SmallRng::seed_from_u64(0x3a14);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 160, 400);
        let maintain_every = rng.gen_range(10usize..60);
        let rt = Runtime::new_virtual();
        let tree: EunoBTree<4, 4> = EunoBTree::with_config(Arc::clone(&rt), EunoConfig::full());
        let mut ctx = rt.thread(1);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Put(k, v) => assert_eq!(tree.put(&mut ctx, k, v), model.insert(k, v)),
                Op::Get(k) => assert_eq!(tree.get(&mut ctx, k), model.get(&k).copied()),
                Op::Del(k) => assert_eq!(tree.delete(&mut ctx, k), model.remove(&k)),
                Op::Scan(k, n) => {
                    let mut got = Vec::new();
                    tree.scan(&mut ctx, k, n, &mut got);
                    let expect: Vec<(u64, u64)> =
                        model.range(k..).take(n).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, expect);
                }
            }
            if i % maintain_every == maintain_every - 1 {
                tree.maintain(&mut ctx);
            }
        }
        tree.maintain(&mut ctx);
        let audit = tree.collect_all_plain();
        assert_eq!(audit, model.into_iter().collect::<Vec<_>>());
    }
}
