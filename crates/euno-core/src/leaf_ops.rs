//! Intra-leaf operations: scattered-leaf search, the randomized write
//! scheduler, and leaf reorganization (Algorithm 3).
//!
//! Inserts use the randomized **write scheduler** over the leaf's segments
//! (Algorithm 3); overflowing leaves first *reorganize* — merge into the
//! transient sorted buffer (the paper's *reserved keys*), drop tombstones,
//! and deal the records round-robin back over the segments so key-adjacent
//! records stay on different cache lines — and split only when genuinely
//! full (the split itself lives in [`crate::structural`]).

use euno_htm::{EventKind, Tx, TxCell, TxResult, TOMBSTONE};
use euno_rng::Rng;

use crate::node::EunoLeaf;
use crate::probe;
use crate::tree::{EunoBTree, Lower, Req};

impl<const SEGS: usize, const K: usize> EunoBTree<SEGS, K> {
    /// Locate `key`'s value cell: compare each segment's first/last
    /// element, binary-searching only segments whose range brackets the
    /// key (the paper's scattered-leaf search).
    fn leaf_find<'t>(
        &self,
        tx: &mut Tx<'_>,
        leaf: &'t EunoLeaf<SEGS, K>,
        key: u64,
    ) -> TxResult<Option<&'t TxCell<u64>>> {
        for seg in &leaf.segs {
            if let Some(i) = seg.find(tx, key)? {
                return Ok(Some(seg.val_cell(i)));
            }
        }
        Ok(None)
    }

    pub(crate) fn lower_body(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
        req: Req,
        key: u64,
        newval: u64,
        have_split_lock: bool,
    ) -> TxResult<Lower> {
        let found = self.leaf_find(tx, leaf, key)?;
        match req {
            Req::Get => Ok(Lower::Done(match found {
                Some(vc) => {
                    let v = tx.read(vc)?;
                    (v != TOMBSTONE).then_some(v)
                }
                None => None,
            })),
            Req::Delete => {
                if let Some(vc) = found {
                    let old = tx.read(vc)?;
                    if old != TOMBSTONE {
                        tx.write(vc, TOMBSTONE)?;
                        return Ok(Lower::Done(Some(old)));
                    }
                }
                Ok(Lower::Done(None))
            }
            Req::Put => {
                if let Some(vc) = found {
                    let old = tx.read(vc)?;
                    tx.write(vc, newval)?;
                    return Ok(Lower::Done((old != TOMBSTONE).then_some(old)));
                }
                self.insert_record(tx, leaf, key, newval, have_split_lock)
            }
        }
    }

    /// Algorithm 3: write-scheduler dispatch, reorganization, split.
    fn insert_record(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
        key: u64,
        newval: u64,
        have_split_lock: bool,
    ) -> TxResult<Lower> {
        // 1. Randomized dispatch to a non-full segment (lines 60-66). The
        //    scheduler never repeats the previous index (line 60).
        let mut idx = if SEGS == 1 {
            0
        } else {
            tx.ctx().rng().gen_range(0..SEGS)
        };
        let mut tries = 0;
        loop {
            if !leaf.segs[idx].is_full_tx(tx)? {
                leaf.segs[idx].insert(tx, key, newval)?;
                return Ok(Lower::Done(None));
            }
            if SEGS == 1 || tries >= self.cfg.scheduler_retries {
                break;
            }
            let prev = idx;
            while idx == prev && SEGS > 1 {
                idx = tx.ctx().rng().gen_range(0..SEGS);
            }
            tries += 1;
        }

        // 2. Retries exhausted: the leaf is near-full or unevenly loaded
        //    (lines 67-86). Reorganizing or splitting rewrites shared
        //    state, so demand the advisory split lock first when the node
        //    may genuinely be full (the serialized fallback path is already
        //    exclusive).
        let occupied = leaf.occupied_tx(tx)?;
        if occupied >= Self::capacity() && !have_split_lock && !tx.is_fallback() {
            return Ok(Lower::NeedSplitLock);
        }

        // moveToReserved: merge every segment into the (transient) sorted
        // buffer, compacting tombstones — the deferred deletion cleanup of
        // §4.2.4 happens here too.
        let records = self.collect_all(tx, leaf)?;

        if records.len() < Self::capacity() {
            // 2a. Sufficient room after reorganization (lines 67-74): deal
            //     the sorted records round-robin over the segments so
            //     key-adjacent records land on different cache lines, then
            //     place the new key in the emptiest segment.
            //
            // Bump the version before any record moves, as on the split
            // and merge paths: records hop between segments here, so an
            // episode-free reader searching segment by segment could miss
            // a key that moved from a not-yet-searched segment into an
            // already-searched one unless the bump is published first.
            probe::mark("reorg:seqno");
            let seq = tx.read(&leaf.seqno)?;
            tx.write(&leaf.seqno, seq + 1)?;
            probe::mark("reorg:records");
            self.redistribute(tx, leaf, &records)?;
            tx.ctx().trace(EventKind::Reorg {
                leaf: leaf as *const EunoLeaf<SEGS, K> as u64,
            });
            let seg = self.emptiest_segment(tx, leaf)?;
            leaf.segs[seg].insert(tx, key, newval)?;
            Ok(Lower::Done(None))
        } else {
            // 2b. Really full: sort, split, reorganize (lines 75-86).
            debug_assert!(have_split_lock || tx.is_fallback());
            let target = self.split_leaf(tx, leaf, &records, key)?;
            let seg = self.emptiest_segment(tx, target)?;
            target.segs[seg].insert(tx, key, newval)?;
            Ok(Lower::Done(None))
        }
    }

    /// Index of the segment with the fewest records (guaranteed non-full
    /// after a reorganization left total occupancy below capacity).
    pub(crate) fn emptiest_segment(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
    ) -> TxResult<usize> {
        let mut best = 0;
        let mut best_cnt = usize::MAX;
        for (i, seg) in leaf.segs.iter().enumerate() {
            let c = seg.count_tx(tx)?;
            if c < best_cnt {
                best = i;
                best_cnt = c;
            }
        }
        debug_assert!(best_cnt < K, "no free slot after reorganization");
        Ok(best)
    }

    /// Deal `records` (sorted) round-robin across the segments: segment
    /// `i` receives records `i, i+SEGS, i+2·SEGS, …` — each segment stays
    /// sorted while adjacent keys land in different segments (and lines).
    pub(crate) fn redistribute(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
        records: &[(u64, u64)],
    ) -> TxResult<()> {
        debug_assert!(records.len() <= Self::capacity());
        let mut part = Vec::with_capacity(records.len().div_ceil(SEGS));
        for (i, seg) in leaf.segs.iter().enumerate() {
            part.clear();
            part.extend(records.iter().copied().skip(i).step_by(SEGS));
            seg.write_all(tx, &part)?;
        }
        Ok(())
    }

    /// `moveToReserved`: drain every segment into one sorted transient
    /// buffer, dropping tombstones. The buffer is the paper's *reserved
    /// keys* — allocated for the reorganization and released right after
    /// (its footprint is charged to the §5.7 transient accounting).
    fn collect_all(&self, tx: &mut Tx<'_>, leaf: &EunoLeaf<SEGS, K>) -> TxResult<Vec<(u64, u64)>> {
        let mut records = Vec::with_capacity(Self::capacity());
        for seg in &leaf.segs {
            seg.drain_into(tx, &mut records)?;
        }
        records.retain(|&(_, v)| v != TOMBSTONE);
        records.sort_unstable_by_key(|&(k, _)| k);
        // Merge-sort cost beyond the per-cell charges.
        tx.charge(self.rt.cost.alu * records.len() as u64);
        let bytes = records.capacity() * 16;
        self.reserved_bytes.allocated(bytes);
        self.reserved_bytes.freed(bytes);
        Ok(records)
    }

    /// Read every record sorted, tombstones dropped, WITHOUT draining the
    /// segments — the read-only counterpart of [`Self::collect_all`] used
    /// by scans.
    pub(crate) fn peek_all(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
    ) -> TxResult<Vec<(u64, u64)>> {
        let mut records = Vec::with_capacity(Self::capacity());
        for seg in &leaf.segs {
            seg.read_into(tx, &mut records)?;
        }
        records.retain(|&(_, v)| v != TOMBSTONE);
        records.sort_unstable_by_key(|&(k, _)| k);
        tx.charge(self.rt.cost.alu * records.len() as u64);
        let bytes = records.capacity() * 16;
        self.reserved_bytes.allocated(bytes);
        self.reserved_bytes.freed(bytes);
        Ok(records)
    }
}
