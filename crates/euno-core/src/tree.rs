//! Euno-B+Tree: the Eunomia design pattern applied to a B+Tree (§4).
//!
//! Every point operation is a **two-step transactional traversal**
//! (Algorithm 2):
//!
//! 1. an *upper* HTM region descends the index and reads the target leaf's
//!    `seqno` into a local;
//! 2. the conflict-control stage (outside any region) takes the key's CCM
//!    lock bit, consults the mark bit, and pre-acquires the split lock for
//!    inserts into near-full leaves;
//! 3. a *lower* HTM region re-reads `seqno` — if unchanged, the leaf
//!    pointer is still the right one and the operation completes locally;
//!    if changed, a concurrent split moved records and the operation
//!    retries from the root (the rare case).
//!
//! Inserts use the randomized **write scheduler** over the leaf's segments
//! (Algorithm 3); overflowing leaves first *reorganize* — merge into the
//! transient sorted buffer (the paper's *reserved keys*), drop tombstones,
//! and deal the records round-robin back over the segments so key-adjacent
//! records stay on different cache lines — and split only when genuinely
//! full, in the *sorting-split-reorganizing* style of §4.2.3. Splits
//! propagate upward through parent pointers, all inside the lower region
//! so index edits stay atomic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::Rng;

use euno_htm::{
    ConcurrentMap, MemoryReport, RetryPolicy, Runtime, ThreadCtx, TransientBytes, Tx, TxResult,
    TxCell, TxWord, KEY_SENTINEL, TOMBSTONE,
};

use crate::ccm::Ccm;
use crate::config::EunoConfig;
use crate::node::{EunoInternal, EunoLeaf, NodeArenas, NodeRef, INTERNAL_FANOUT};

/// The Euno-B+Tree. `SEGS` segments of `K` slots per leaf
/// (fanout = `SEGS·K`; the paper's default geometry is 16 with partitioned
/// leaves — `EunoBTree<4, 4>`; `EunoBTree<1, 16>` is the unpartitioned
/// `+Split HTM` ablation variant).
pub struct EunoBTree<const SEGS: usize = 4, const K: usize = 4> {
    rt: Arc<Runtime>,
    cfg: EunoConfig,
    policy: RetryPolicy,
    pub(crate) ctrl: Box<euno_htm::ControlBlock>,
    arenas: NodeArenas<SEGS, K>,
    reserved_bytes: TransientBytes,
    deletes: AtomicU64,
}

/// What the lower region concluded.
enum Lower {
    Done(Option<u64>),
    /// `seqno` changed: the leaf split concurrently; retry from the root.
    Inconsistent,
    /// The insert needs a split but the split lock is not held; retry the
    /// operation acquiring it up front.
    NeedSplitLock,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Req {
    Get,
    Put,
    Delete,
}

impl<const SEGS: usize, const K: usize> EunoBTree<SEGS, K> {
    pub fn new(rt: Arc<Runtime>) -> Self {
        Self::with_config(rt, EunoConfig::default())
    }

    pub fn with_config(rt: Arc<Runtime>, cfg: EunoConfig) -> Self {
        let arenas: NodeArenas<SEGS, K> = NodeArenas::new();
        let first = arenas.leaves.alloc(EunoLeaf::empty());
        first.register(&rt);
        let ctrl = euno_htm::ControlBlock::new(NodeRef::of_leaf(first).to_word());
        rt.register_value(&*ctrl, euno_htm::LineClass::Structure);
        EunoBTree {
            rt,
            cfg,
            policy: RetryPolicy::default(),
            ctrl,
            arenas,
            reserved_bytes: TransientBytes::new(),
            deletes: AtomicU64::new(0),
        }
    }

    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    pub fn config(&self) -> &EunoConfig {
        &self.cfg
    }

    const fn ccm_bits() -> u32 {
        EunoLeaf::<SEGS, K>::ccm_bits()
    }

    pub(crate) const fn capacity() -> usize {
        EunoLeaf::<SEGS, K>::capacity()
    }

    // ================= upper region =================

    /// Root-to-leaf descent inside the upper HTM region.
    fn descend<'t>(&'t self, tx: &mut Tx<'_>, key: u64) -> TxResult<&'t EunoLeaf<SEGS, K>> {
        let mut cur = NodeRef::from_word(tx.read(&self.ctrl.root)?);
        while !cur.is_leaf() {
            let node: &EunoInternal = unsafe { cur.as_internal() };
            let cnt = tx.read(&node.count)? as usize;
            let (mut lo, mut hi) = (0usize, cnt);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if tx.read(&node.keys[mid])? <= key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            cur = if lo == 0 {
                NodeRef::from_word(tx.read(&node.child0)?)
            } else {
                NodeRef::from_word(tx.read(&node.children[lo - 1])?)
            };
        }
        Ok(unsafe { cur.as_leaf::<SEGS, K>() })
    }

    /// Algorithm 2 lines 23-28: find the leaf, read its version.
    fn upper_region(
        &self,
        ctx: &mut ThreadCtx,
        key: u64,
    ) -> (&EunoLeaf<SEGS, K>, u64, u32) {
        let out = ctx.htm_execute(&self.ctrl.fallback, &self.policy, |tx| {
            tx.set_op_key(key);
            let leaf = self.descend(tx, key)?;
            let seq = tx.read(&leaf.seqno)?;
            Ok((NodeRef::of_leaf(leaf).to_word(), seq))
        });
        let (bits, seq) = out.value;
        let leaf = unsafe { NodeRef::from_word(bits).as_leaf::<SEGS, K>() };
        (leaf, seq, out.conflict_aborts)
    }

    // ================= lower region =================

    /// Locate `key`'s value cell: compare each segment's first/last
    /// element, binary-searching only segments whose range brackets the
    /// key (the paper's scattered-leaf search).
    fn leaf_find<'t>(
        &self,
        tx: &mut Tx<'_>,
        leaf: &'t EunoLeaf<SEGS, K>,
        key: u64,
    ) -> TxResult<Option<&'t TxCell<u64>>> {
        for seg in &leaf.segs {
            if let Some(i) = seg.find(tx, key)? {
                return Ok(Some(seg.val_cell(i)));
            }
        }
        Ok(None)
    }

    fn lower_body(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
        req: Req,
        key: u64,
        newval: u64,
        have_split_lock: bool,
    ) -> TxResult<Lower> {
        let found = self.leaf_find(tx, leaf, key)?;
        match req {
            Req::Get => Ok(Lower::Done(match found {
                Some(vc) => {
                    let v = tx.read(vc)?;
                    (v != TOMBSTONE).then_some(v)
                }
                None => None,
            })),
            Req::Delete => {
                if let Some(vc) = found {
                    let old = tx.read(vc)?;
                    if old != TOMBSTONE {
                        tx.write(vc, TOMBSTONE)?;
                        return Ok(Lower::Done(Some(old)));
                    }
                }
                Ok(Lower::Done(None))
            }
            Req::Put => {
                if let Some(vc) = found {
                    let old = tx.read(vc)?;
                    tx.write(vc, newval)?;
                    return Ok(Lower::Done((old != TOMBSTONE).then_some(old)));
                }
                self.insert_record(tx, leaf, key, newval, have_split_lock)
            }
        }
    }

    /// Algorithm 3: write-scheduler dispatch, reorganization, split.
    fn insert_record(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
        key: u64,
        newval: u64,
        have_split_lock: bool,
    ) -> TxResult<Lower> {
        // 1. Randomized dispatch to a non-full segment (lines 60-66). The
        //    scheduler never repeats the previous index (line 60).
        let mut idx = if SEGS == 1 {
            0
        } else {
            tx.ctx().rng().gen_range(0..SEGS)
        };
        let mut tries = 0;
        loop {
            if !leaf.segs[idx].is_full_tx(tx)? {
                leaf.segs[idx].insert(tx, key, newval)?;
                return Ok(Lower::Done(None));
            }
            if SEGS == 1 || tries >= self.cfg.scheduler_retries {
                break;
            }
            let prev = idx;
            while idx == prev && SEGS > 1 {
                idx = tx.ctx().rng().gen_range(0..SEGS);
            }
            tries += 1;
        }

        // 2. Retries exhausted: the leaf is near-full or unevenly loaded
        //    (lines 67-86). Reorganizing or splitting rewrites shared
        //    state, so demand the advisory split lock first when the node
        //    may genuinely be full (the serialized fallback path is already
        //    exclusive).
        let occupied = leaf.occupied_tx(tx)?;
        if occupied >= Self::capacity() && !have_split_lock && !tx.is_fallback() {
            return Ok(Lower::NeedSplitLock);
        }

        // moveToReserved: merge every segment into the (transient) sorted
        // buffer, compacting tombstones — the deferred deletion cleanup of
        // §4.2.4 happens here too.
        let records = self.collect_all(tx, leaf)?;

        if records.len() < Self::capacity() {
            // 2a. Sufficient room after reorganization (lines 67-74): deal
            //     the sorted records round-robin over the segments so
            //     key-adjacent records land on different cache lines, then
            //     place the new key in the emptiest segment.
            self.redistribute(tx, leaf, &records)?;
            let seg = self.emptiest_segment(tx, leaf)?;
            leaf.segs[seg].insert(tx, key, newval)?;
            Ok(Lower::Done(None))
        } else {
            // 2b. Really full: sort, split, reorganize (lines 75-86).
            debug_assert!(have_split_lock || tx.is_fallback());
            let target = self.split_leaf(tx, leaf, &records, key)?;
            let seg = self.emptiest_segment(tx, target)?;
            target.segs[seg].insert(tx, key, newval)?;
            Ok(Lower::Done(None))
        }
    }

    /// Index of the segment with the fewest records (guaranteed non-full
    /// after a reorganization left total occupancy below capacity).
    fn emptiest_segment(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
    ) -> TxResult<usize> {
        let mut best = 0;
        let mut best_cnt = usize::MAX;
        for (i, seg) in leaf.segs.iter().enumerate() {
            let c = seg.count_tx(tx)?;
            if c < best_cnt {
                best = i;
                best_cnt = c;
            }
        }
        debug_assert!(best_cnt < K, "no free slot after reorganization");
        Ok(best)
    }

    /// Deal `records` (sorted) round-robin across the segments: segment
    /// `i` receives records `i, i+SEGS, i+2·SEGS, …` — each segment stays
    /// sorted while adjacent keys land in different segments (and lines).
    fn redistribute(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
        records: &[(u64, u64)],
    ) -> TxResult<()> {
        debug_assert!(records.len() <= Self::capacity());
        let mut part = Vec::with_capacity(records.len().div_ceil(SEGS));
        for (i, seg) in leaf.segs.iter().enumerate() {
            part.clear();
            part.extend(records.iter().copied().skip(i).step_by(SEGS));
            seg.write_all(tx, &part)?;
        }
        Ok(())
    }

    /// `moveToReserved`: drain every segment into one sorted transient
    /// buffer, dropping tombstones. The buffer is the paper's *reserved
    /// keys* — allocated for the reorganization and released right after
    /// (its footprint is charged to the §5.7 transient accounting).
    fn collect_all(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
    ) -> TxResult<Vec<(u64, u64)>> {
        let mut records = Vec::with_capacity(Self::capacity());
        for seg in &leaf.segs {
            seg.drain_into(tx, &mut records)?;
        }
        records.retain(|&(_, v)| v != TOMBSTONE);
        records.sort_unstable_by_key(|&(k, _)| k);
        // Merge-sort cost beyond the per-cell charges.
        tx.charge(self.rt.cost.alu * records.len() as u64);
        let bytes = records.capacity() * 16;
        self.reserved_bytes.allocated(bytes);
        self.reserved_bytes.freed(bytes);
        Ok(records)
    }

    /// Read every record sorted, tombstones dropped, WITHOUT draining the
    /// segments — the read-only counterpart of [`Self::collect_all`] used
    /// by scans.
    fn peek_all(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
    ) -> TxResult<Vec<(u64, u64)>> {
        let mut records = Vec::with_capacity(Self::capacity());
        for seg in &leaf.segs {
            seg.read_into(tx, &mut records)?;
        }
        records.retain(|&(_, v)| v != TOMBSTONE);
        records.sort_unstable_by_key(|&(k, _)| k);
        tx.charge(self.rt.cost.alu * records.len() as u64);
        let bytes = records.capacity() * 16;
        self.reserved_bytes.allocated(bytes);
        self.reserved_bytes.freed(bytes);
        Ok(records)
    }

    /// §4.2.3: sort → split → reorganize. `records` holds the full sorted
    /// contents (already drained from the segments); each half is dealt
    /// round-robin back over its node's segments, so both nodes keep the
    /// scattered placement with evenly distributed free slots. Returns the
    /// half that should receive `key`.
    fn split_leaf<'t>(
        &'t self,
        tx: &mut Tx<'_>,
        leaf: &'t EunoLeaf<SEGS, K>,
        records: &[(u64, u64)],
        key: u64,
    ) -> TxResult<&'t EunoLeaf<SEGS, K>> {
        let right: &'t EunoLeaf<SEGS, K> = self.arenas.leaves.alloc(EunoLeaf::empty());
        right.register(&self.rt);
        let mid = records.len() / 2;
        let sep = records[mid].0;

        self.redistribute(tx, leaf, &records[..mid])?;
        self.redistribute(tx, right, &records[mid..])?;

        // Fresh exact mark bits for the unpublished right node; the left
        // node keeps its (superset) bits. The pending key the caller will
        // insert after the split must be included when it lands right of
        // the separator — its CCM-stage mark was set on the *old* leaf.
        let mut marks = 0u64;
        for &(k, _) in &records[mid..] {
            marks |= 1 << Ccm::slot(k, Self::ccm_bits());
        }
        if key >= sep {
            marks |= 1 << Ccm::slot(key, Self::ccm_bits());
        }
        right.ccm.install_marks_prepublication(marks);
        // The right node inherits the old leaf's heat: it was just split,
        // so it starts protected and must earn its bypass.
        right.ccm.protect_prepublication();
        tx.charge(self.rt.cost.alu * (records.len() - mid) as u64);

        let old_next = tx.read(&leaf.next)?;
        tx.write(&right.next, old_next)?;
        tx.write(&leaf.next, NodeRef::of_leaf(right).to_word())?;
        let parent = tx.read(&leaf.parent)?;
        tx.write(&right.parent, parent)?;
        // Bump the version: concurrent two-step traversals holding this
        // leaf's pointer must retry from the root (Algorithm 3 line 80).
        let seq = tx.read(&leaf.seqno)?;
        tx.write(&leaf.seqno, seq + 1)?;

        self.insert_into_parent(
            tx,
            NodeRef::of_leaf(leaf),
            sep,
            NodeRef::of_leaf(right),
        )?;
        Ok(if key < sep { leaf } else { right })
    }

    /// Propagate `(sep, right)` upward from `child`, splitting full
    /// internal nodes and maintaining parent pointers (lines 84-86).
    fn insert_into_parent(
        &self,
        tx: &mut Tx<'_>,
        mut child: NodeRef,
        mut sep: u64,
        mut right: NodeRef,
    ) -> TxResult<()> {
        loop {
            let parent_bits = tx.read(unsafe { child.parent_cell::<SEGS, K>() })?;
            if parent_bits == 0 {
                // `child` was the root: grow the tree.
                let new_root = self.arenas.internals.alloc(EunoInternal::empty());
                new_root.register(&self.rt);
                let nr = NodeRef::of_internal(new_root);
                tx.write(&new_root.child0, child.to_word())?;
                tx.write(&new_root.keys[0], sep)?;
                tx.write(&new_root.children[0], right.to_word())?;
                tx.write(&new_root.count, 1)?;
                tx.write(unsafe { child.parent_cell::<SEGS, K>() }, nr.to_word())?;
                tx.write(unsafe { right.parent_cell::<SEGS, K>() }, nr.to_word())?;
                tx.write(&self.ctrl.root, nr.to_word())?;
                return Ok(());
            }
            let parent: &EunoInternal = unsafe { NodeRef::from_word(parent_bits).as_internal() };
            let cnt = tx.read(&parent.count)? as usize;
            if cnt < INTERNAL_FANOUT {
                self.internal_insert_at(tx, parent, cnt, sep, right)?;
                tx.write(unsafe { right.parent_cell::<SEGS, K>() }, parent_bits)?;
                return Ok(());
            }

            // Split the full internal node.
            let new_int = self.arenas.internals.alloc(EunoInternal::empty());
            new_int.register(&self.rt);
            let new_ref = NodeRef::of_internal(new_int);
            let mid = INTERNAL_FANOUT / 2;
            let promoted = tx.read(&parent.keys[mid])?;
            let mid_child = NodeRef::from_word(tx.read(&parent.children[mid])?);
            tx.write(&new_int.child0, mid_child.to_word())?;
            tx.write(
                unsafe { mid_child.parent_cell::<SEGS, K>() },
                new_ref.to_word(),
            )?;
            for i in mid + 1..INTERNAL_FANOUT {
                let k = tx.read(&parent.keys[i])?;
                let c = NodeRef::from_word(tx.read(&parent.children[i])?);
                tx.write(&new_int.keys[i - mid - 1], k)?;
                tx.write(&new_int.children[i - mid - 1], c.to_word())?;
                tx.write(unsafe { c.parent_cell::<SEGS, K>() }, new_ref.to_word())?;
            }
            tx.write(&new_int.count, (INTERNAL_FANOUT - mid - 1) as u64)?;
            tx.write(&parent.count, mid as u64)?;
            let old_grandparent = tx.read(&parent.parent)?;
            tx.write(&new_int.parent, old_grandparent)?;

            // Insert the pending (sep, right) into the proper half.
            let (target, target_bits) = if sep < promoted {
                (parent, parent_bits)
            } else {
                (new_int, new_ref.to_word())
            };
            let tcnt = tx.read(&target.count)? as usize;
            self.internal_insert_at(tx, target, tcnt, sep, right)?;
            tx.write(unsafe { right.parent_cell::<SEGS, K>() }, target_bits)?;

            sep = promoted;
            right = new_ref;
            child = NodeRef::from_word(parent_bits);
        }
    }

    fn internal_insert_at(
        &self,
        tx: &mut Tx<'_>,
        node: &EunoInternal,
        cnt: usize,
        sep: u64,
        right: NodeRef,
    ) -> TxResult<()> {
        debug_assert!(cnt < INTERNAL_FANOUT);
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if tx.read(&node.keys[mid])? < sep {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut i = cnt;
        while i > lo {
            let k = tx.read(&node.keys[i - 1])?;
            let c = tx.read(&node.children[i - 1])?;
            tx.write(&node.keys[i], k)?;
            tx.write(&node.children[i], c)?;
            i -= 1;
        }
        tx.write(&node.keys[lo], sep)?;
        tx.write(&node.children[lo], right.to_word())?;
        tx.write(&node.count, (cnt + 1) as u64)?;
        Ok(())
    }

    // ================= the two-step operation driver =================

    /// Algorithm 2: the traversal shared by get, put and delete.
    fn traverse(&self, ctx: &mut ThreadCtx, req: Req, key: u64, newval: u64) -> Option<u64> {
        let mut force_split_lock = false;
        loop {
            // Step 1: upper region.
            let (leaf, seqno, upper_conflicts) = self.upper_region(ctx, key);

            // Step 2: conflict control (outside any region).
            let ccm_configured = self.cfg.ccm_lock_bits || self.cfg.ccm_mark_bits;
            let ccm_active = ccm_configured
                && !(self.cfg.adaptive && leaf.ccm.bypassed(ctx));
            let slot = Ccm::slot(key, Self::ccm_bits());
            ctx.charge(self.rt.cost.alu * 3); // hash computation
            let mut slot_locked = false;
            if ccm_active && self.cfg.ccm_lock_bits {
                leaf.ccm.lock_slot(ctx, slot);
                slot_locked = true;
            }
            let mut split_locked = false;
            let mut fast_miss = false;
            if self.cfg.ccm_mark_bits {
                match req {
                    Req::Put => {
                        // Claim existence (line 38). This runs even when
                        // the leaf is adaptively bypassed: the mark vector
                        // must stay a superset of the live keys or gets
                        // would miss real records once protection
                        // re-engages.
                        let existed = leaf.ccm.set_mark(ctx, slot);
                        // Pre-lock if an insert may split (lines 39-40).
                        if ccm_active
                            && !existed
                            && leaf.occupied_direct(ctx) + self.cfg.near_full_slack
                                >= Self::capacity()
                        {
                            leaf.split_lock.acquire(ctx);
                            split_locked = true;
                        }
                    }
                    // Definite miss: never enter the leaf (line 35).
                    Req::Get | Req::Delete => {
                        if ccm_active && !leaf.ccm.marked(ctx, slot) {
                            fast_miss = true;
                        }
                    }
                }
            }
            if force_split_lock && req == Req::Put && !split_locked {
                leaf.split_lock.acquire(ctx);
                split_locked = true;
            }

            // Step 3: lower region.
            let (outcome, lower_conflicts) = if fast_miss {
                (Lower::Done(None), 0)
            } else {
                let out = ctx.htm_execute(&self.ctrl.fallback, &self.policy, |tx| {
                    tx.set_op_key(key);
                    if slot_locked {
                        // Same-record contenders queue on the CCM lock bit
                        // (§4.1): this attempt's true conflicts are
                        // serialized away, so the storm model must not
                        // re-manufacture them.
                        tx.mark_serialized();
                    }
                    if tx.read(&leaf.seqno)? != seqno {
                        return Ok(Lower::Inconsistent);
                    }
                    self.lower_body(tx, leaf, req, key, newval, split_locked)
                });
                (out.value, out.conflict_aborts)
            };

            if split_locked {
                leaf.split_lock.release(ctx);
            }
            if slot_locked {
                leaf.ccm.unlock_slot(ctx, slot);
            }
            if self.cfg.adaptive {
                leaf.ccm.record_outcome(
                    ctx,
                    upper_conflicts + lower_conflicts,
                    self.cfg.adaptive_window,
                    self.cfg.adaptive_conflict_rate,
                );
            }

            match outcome {
                Lower::Done(v) => {
                    if req == Req::Delete && v.is_some() {
                        let n = self.deletes.fetch_add(1, Ordering::Relaxed) + 1;
                        // §4.2.4: re-balance once deletions cross the
                        // threshold (0 disables the automatic trigger).
                        let thr = self.cfg.rebalance_delete_threshold;
                        if thr > 0 && n % thr == 0 {
                            self.maintain(ctx);
                        }
                    }
                    return v;
                }
                Lower::Inconsistent => continue,
                Lower::NeedSplitLock => {
                    force_split_lock = true;
                    continue;
                }
            }
        }
    }

    /// Number of logical deletions performed (deferred-rebalance trigger
    /// observability; compaction happens lazily at reorganization).
    pub fn delete_count(&self) -> u64 {
        self.deletes.load(Ordering::Relaxed)
    }

    // ----- crate-internal accessors for the rebalance module -----

    pub(crate) fn root_bits(&self) -> u64 {
        self.ctrl.root.load_plain()
    }

    pub(crate) fn arenas(&self) -> &NodeArenas<SEGS, K> {
        &self.arenas
    }

    pub(crate) fn fallback_cell(&self) -> &TxCell<u64> {
        &self.ctrl.fallback
    }

    pub(crate) fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    pub(crate) fn peek_all_for_merge(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
    ) -> TxResult<Vec<(u64, u64)>> {
        self.peek_all(tx, leaf)
    }

    /// Append `leaf`'s raw records (including tombstones) to `out`.
    pub(crate) fn peek_all_into(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
        out: &mut Vec<(u64, u64)>,
    ) -> TxResult<()> {
        for seg in &leaf.segs {
            seg.read_into(tx, out)?;
        }
        Ok(())
    }

    pub(crate) fn redistribute_for_merge(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
        records: &[(u64, u64)],
    ) -> TxResult<()> {
        self.redistribute(tx, leaf, records)
    }

    pub(crate) fn clear_segments(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
    ) -> TxResult<()> {
        let mut sink = Vec::new();
        for seg in &leaf.segs {
            sink.clear();
            seg.drain_into(tx, &mut sink)?;
        }
        Ok(())
    }

    /// Number of leaves currently linked into the chain (uninstrumented
    /// diagnostic).
    pub fn leaf_count_plain(&self) -> usize {
        let mut cur = NodeRef::from_word(self.root_bits());
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        let mut n = 0;
        while !cur.is_null() {
            n += 1;
            cur = NodeRef::from_word(unsafe { cur.as_leaf::<SEGS, K>() }.next.load_plain());
        }
        n
    }

    /// Uninstrumented whole-tree audit: every live record in key order.
    /// Test/diagnostic helper — not concurrency safe.
    pub fn collect_all_plain(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cur = NodeRef::from_word(self.ctrl.root.load_plain());
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        while !cur.is_null() {
            let leaf = unsafe { cur.as_leaf::<SEGS, K>() };
            let mut recs = Vec::new();
            for seg in &leaf.segs {
                for i in 0..seg.count_plain() {
                    recs.push((seg.key_cell(i).load_plain(), seg.val_cell(i).load_plain()));
                }
            }
            recs.sort_unstable_by_key(|&(k, _)| k);
            out.extend(recs.into_iter().filter(|&(_, v)| v != TOMBSTONE));
            cur = NodeRef::from_word(leaf.next.load_plain());
        }
        out
    }
}

impl<const SEGS: usize, const K: usize> ConcurrentMap for EunoBTree<SEGS, K> {
    fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        self.traverse(ctx, Req::Get, key, 0)
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Option<u64> {
        assert!(key < KEY_SENTINEL && value != TOMBSTONE);
        self.traverse(ctx, Req::Put, key, value)
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        self.traverse(ctx, Req::Delete, key, 0)
    }

    fn scan(
        &self,
        ctx: &mut ThreadCtx,
        from: u64,
        count: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        let mut collected = 0usize;
        let mut cursor = from;
        // Locate the first leaf.
        let (mut leaf, mut seqno, _) = self.upper_region(ctx, cursor);
        loop {
            // §4.2.4: lock the leaf, merge segments into the sorted
            // reserved area, read an ordered run.
            leaf.split_lock.acquire(ctx);
            let out_piece = ctx.htm_execute(&self.ctrl.fallback, &self.policy, |tx| {
                tx.set_op_key(cursor);
                if tx.read(&leaf.seqno)? != seqno {
                    return Ok(None);
                }
                // §4.2.4: gather the leaf's records into the transient
                // sorted buffer (a merge over the per-segment sorted runs).
                let part: Vec<(u64, u64)> = self
                    .peek_all(tx, leaf)?
                    .into_iter()
                    .filter(|&(k, _)| k >= cursor)
                    .collect();
                let next = NodeRef::from_word(tx.read(&leaf.next)?);
                let next_seq = if next.is_null() {
                    0
                } else {
                    tx.read(&unsafe { next.as_leaf::<SEGS, K>() }.seqno)?
                };
                Ok(Some((part, next, next_seq)))
            });
            leaf.split_lock.release(ctx);

            match out_piece.value {
                None => {
                    // Version changed: re-find the leaf for the cursor.
                    let (l, s, _) = self.upper_region(ctx, cursor);
                    leaf = l;
                    seqno = s;
                }
                Some((part, next, next_seq)) => {
                    for (k, v) in part {
                        if collected == count {
                            return collected;
                        }
                        out.push((k, v));
                        collected += 1;
                        cursor = k.saturating_add(1);
                    }
                    if collected == count || next.is_null() {
                        return collected;
                    }
                    leaf = unsafe { next.as_leaf::<SEGS, K>() };
                    seqno = next_seq;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "Euno-B+Tree"
    }

    fn memory(&self) -> MemoryReport {
        let leaf_sz = std::mem::size_of::<EunoLeaf<SEGS, K>>();
        let live_leaves = self.arenas.leaves.live_bytes() / leaf_sz.max(1);
        let ccm_bytes = live_leaves * Ccm::bytes();
        MemoryReport {
            structural_bytes: self.arenas.leaves.live_bytes() - ccm_bytes
                + self.arenas.internals.live_bytes(),
            ccm_bytes,
            reserved_live_bytes: self.reserved_bytes.live(),
            // Transient sort buffers: allocated per reorganization/scan,
            // freed immediately (§4.1 "the memory space is freed after the
            // process") — peak is the figure §5.7 cares about.
            reserved_peak_bytes: self.reserved_bytes.peak(),
            reserved_cumulative_bytes: self.reserved_bytes.cumulative(),
        }
    }
}

/// The paper's default geometry: 4 segments × 4 slots (fanout 16).
pub type EunoBTreeDefault = EunoBTree<4, 4>;
/// The `+Split HTM` ablation variant: one conventional sorted leaf.
pub type EunoBTreeUnpartitioned = EunoBTree<1, 16>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tree() -> (Arc<Runtime>, EunoBTreeDefault, ThreadCtx) {
        let rt = Runtime::new_virtual();
        let t = EunoBTree::new(Arc::clone(&rt));
        let ctx = rt.thread(1);
        (rt, t, ctx)
    }

    #[test]
    fn put_get_update_roundtrip() {
        let (_rt, t, mut ctx) = tree();
        assert_eq!(t.get(&mut ctx, 5), None);
        assert_eq!(t.put(&mut ctx, 5, 50), None);
        assert_eq!(t.get(&mut ctx, 5), Some(50));
        assert_eq!(t.put(&mut ctx, 5, 51), Some(50));
        assert_eq!(t.get(&mut ctx, 5), Some(51));
    }

    #[test]
    fn mark_bits_short_circuit_definite_misses() {
        let (_rt, t, mut ctx) = tree();
        t.put(&mut ctx, 1, 10);
        let leaf_bits = t.ctrl.root.load_plain();
        let leaf = unsafe { NodeRef::from_word(leaf_bits).as_leaf::<4, 4>() };
        // The CCM only filters while the leaf is protected (a calm fresh
        // leaf bypasses it by default).
        leaf.ccm.protect_prepublication();
        // A key hashing to an unmarked slot must be answered without
        // entering the lower region: count commits before/after.
        let commits_before = ctx.stats.commits;
        let mut probe = 1000u64;
        while leaf.ccm.marks_plain() & (1 << Ccm::slot(probe, 32)) != 0 {
            probe += 1;
        }
        assert_eq!(t.get(&mut ctx, probe), None);
        // Only the upper region committed (1 commit, not 2).
        assert_eq!(ctx.stats.commits - commits_before, 1);
    }

    #[test]
    fn fills_one_leaf_then_splits() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..100u64 {
            assert_eq!(t.put(&mut ctx, k, k * 2), None, "insert {k}");
        }
        for k in 0..100u64 {
            assert_eq!(t.get(&mut ctx, k), Some(k * 2), "get {k}");
        }
        // Leaves split: root must now be internal.
        assert!(!NodeRef::from_word(t.ctrl.root.load_plain()).is_leaf());
    }

    #[test]
    fn large_ascending_and_descending_inserts() {
        for descending in [false, true] {
            let (_rt, t, mut ctx) = tree();
            let n = 3_000u64;
            if descending {
                for k in (0..n).rev() {
                    t.put(&mut ctx, k, k + 7);
                }
            } else {
                for k in 0..n {
                    t.put(&mut ctx, k, k + 7);
                }
            }
            for k in 0..n {
                assert_eq!(t.get(&mut ctx, k), Some(k + 7), "key {k} desc={descending}");
            }
            let all = t.collect_all_plain();
            assert_eq!(all.len(), n as usize);
            assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "leaf chain sorted");
        }
    }

    #[test]
    fn random_inserts_match_model() {
        let (_rt, t, mut ctx) = tree();
        let mut model = BTreeMap::new();
        let mut state = 0x243F6A8885A308D3u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..30_000 {
            let key = rnd() % 800;
            match rnd() % 10 {
                0..=4 => {
                    let v = rnd() % 1_000_000;
                    assert_eq!(t.put(&mut ctx, key, v), model.insert(key, v), "put {key}");
                }
                5..=6 => {
                    assert_eq!(t.delete(&mut ctx, key), model.remove(&key), "del {key}");
                }
                _ => {
                    assert_eq!(t.get(&mut ctx, key), model.get(&key).copied(), "get {key}");
                }
            }
        }
        let all = t.collect_all_plain();
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn delete_then_reinsert_and_compaction() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..16u64 {
            t.put(&mut ctx, k, k);
        }
        for k in 0..8u64 {
            assert_eq!(t.delete(&mut ctx, k), Some(k));
        }
        assert_eq!(t.delete_count(), 8);
        // Tombstones freed at reorganization: inserting more keys must not
        // grow the tree unnecessarily.
        for k in 100..108u64 {
            assert_eq!(t.put(&mut ctx, k, k), None);
        }
        for k in 0..8u64 {
            assert_eq!(t.get(&mut ctx, k), None);
        }
        for k in 8..16u64 {
            assert_eq!(t.get(&mut ctx, k), Some(k));
        }
    }

    #[test]
    fn scan_is_sorted_and_skips_tombstones() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..500u64 {
            t.put(&mut ctx, k, k * 3);
        }
        t.delete(&mut ctx, 120);
        t.delete(&mut ctx, 121);
        let mut out = Vec::new();
        let n = t.scan(&mut ctx, 118, 6, &mut out);
        assert_eq!(n, 6);
        let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![118, 119, 122, 123, 124, 125]);
        assert!(out.iter().all(|(k, v)| *v == k * 3));
    }

    #[test]
    fn scan_whole_tree_matches_collect() {
        let (_rt, t, mut ctx) = tree();
        for k in (0..400u64).rev() {
            t.put(&mut ctx, k, k);
        }
        let mut out = Vec::new();
        let n = t.scan(&mut ctx, 0, usize::MAX, &mut out);
        assert_eq!(n, 400);
        assert_eq!(out, t.collect_all_plain());
    }

    #[test]
    fn unpartitioned_variant_works() {
        let rt = Runtime::new_virtual();
        let t: EunoBTreeUnpartitioned =
            EunoBTree::with_config(Arc::clone(&rt), EunoConfig::split_htm_only());
        let mut ctx = rt.thread(3);
        for k in 0..2_000u64 {
            t.put(&mut ctx, k * 3 % 2_000, k);
        }
        for k in 0..2_000u64 {
            assert!(t.get(&mut ctx, k).is_some(), "key {k}");
        }
    }

    #[test]
    fn all_ablation_configs_are_correct() {
        for cfg in [
            EunoConfig::part_leaf(),
            EunoConfig::ccm_lockbits(),
            EunoConfig::ccm_markbits(),
            EunoConfig::full(),
        ] {
            let rt = Runtime::new_virtual();
            let t: EunoBTreeDefault = EunoBTree::with_config(Arc::clone(&rt), cfg.clone());
            let mut ctx = rt.thread(5);
            let mut model = BTreeMap::new();
            let mut state = 11_400_714_819_323_198_485u64;
            let mut rnd = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 11
            };
            for _ in 0..4_000 {
                let key = rnd() % 300;
                if rnd() % 2 == 0 {
                    let v = rnd() % 9_999;
                    assert_eq!(t.put(&mut ctx, key, v), model.insert(key, v));
                } else {
                    assert_eq!(t.get(&mut ctx, key), model.get(&key).copied());
                }
            }
            assert_eq!(
                t.collect_all_plain(),
                model.into_iter().collect::<Vec<_>>(),
                "config {cfg:?}"
            );
        }
    }

    #[test]
    fn adaptive_bypass_lifecycle() {
        let (_rt, t, mut ctx) = tree();
        t.put(&mut ctx, 1, 1);
        let leaf = unsafe { NodeRef::from_word(t.ctrl.root.load_plain()).as_leaf::<4, 4>() };
        // Fresh leaves start bypassed (no contention history)…
        assert!(leaf.ccm.bypass_plain());
        // …split-born nodes start protected…
        for k in 0..100u64 {
            t.put(&mut ctx, k, k);
        }
        // …and a calm window re-enables the bypass on a protected leaf.
        leaf.ccm.protect_prepublication();
        assert!(!leaf.ccm.bypass_plain());
        for _ in 0..t.config().adaptive_window + 1 {
            t.get(&mut ctx, 1);
        }
        assert!(leaf.ccm.bypass_plain(), "calm leaf must bypass CCM");
        assert_eq!(t.get(&mut ctx, 1), Some(1));
        assert_eq!(t.get(&mut ctx, 999_999), None);
    }

    #[test]
    fn concurrent_threads_no_lost_updates() {
        let rt = Runtime::new_concurrent();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let per = 400u64;
        let threads = 4u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = &t;
                let mut ctx = rt.thread(tid);
                s.spawn(move || {
                    for i in 0..per {
                        let key = tid * per + i;
                        t.put(&mut ctx, key, key + 1);
                    }
                });
            }
        });
        let mut ctx = rt.thread(99);
        for key in 0..threads * per {
            assert_eq!(t.get(&mut ctx, key), Some(key + 1), "key {key}");
        }
        let all = t.collect_all_plain();
        assert_eq!(all.len(), (threads * per) as usize);
    }

    #[test]
    fn concurrent_same_hot_keys_converge() {
        let rt = Runtime::new_concurrent();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                let mut ctx = rt.thread(tid);
                s.spawn(move || {
                    for i in 0..600u64 {
                        t.put(&mut ctx, i % 8, tid * 10_000 + i);
                    }
                });
            }
        });
        // Every hot key must hold one of the written values.
        let mut ctx = rt.thread(99);
        for k in 0..8u64 {
            let v = t.get(&mut ctx, k).expect("hot key present");
            assert!(v % 10_000 < 600);
        }
    }

    #[test]
    fn interleaved_scans_and_inserts_never_overflow_reserved() {
        // Regression: a scan used to cache oversize merges (> fanout) into
        // the reserved buffer, letting the next reorganization overflow
        // its capacity. Dense inserts interleaved with scans hit exactly
        // that pattern; debug assertions in write_sorted catch overflow.
        let (_rt, t, mut ctx) = tree();
        let mut expect = std::collections::BTreeMap::new();
        for k in 0..600u64 {
            t.put(&mut ctx, k % 97, k);
            expect.insert(k % 97, k);
            if k % 10 == 7 {
                let mut out = Vec::new();
                t.scan(&mut ctx, 0, usize::MAX, &mut out);
                let want: Vec<(u64, u64)> = expect.iter().map(|(&a, &b)| (a, b)).collect();
                assert_eq!(out, want, "after {k} ops");
            }
        }
        assert_eq!(
            t.collect_all_plain(),
            expect.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn memory_report_accounts_ccm_and_reserved() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..2_000u64 {
            t.put(&mut ctx, k, k);
        }
        let m = t.memory();
        assert!(m.structural_bytes > 0);
        assert!(m.ccm_bytes > 0, "CCM bytes counted");
        assert!(m.reserved_peak_bytes > 0, "splits allocate reserved bufs");
        assert!(
            m.ccm_bytes < m.structural_bytes / 4,
            "CCM overhead stays small: {} vs {}",
            m.ccm_bytes,
            m.structural_bytes
        );
    }
}
