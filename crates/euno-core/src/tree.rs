//! Euno-B+Tree: the Eunomia design pattern applied to a B+Tree (§4).
//!
//! This module is the façade: the struct, its constructors, the
//! [`ConcurrentMap`] surface, and the crate-internal accessors the
//! [`crate::rebalance`] module builds on. The operation machinery lives in
//! sibling modules, one per concern:
//!
//! * [`crate::traverse`] — the two-step transactional traversal
//!   (Algorithm 2): upper region, conflict-control stage, lower region;
//! * [`crate::leaf_ops`] — intra-leaf reads and the randomized write
//!   scheduler with reorganization (Algorithm 3);
//! * [`crate::structural`] — leaf splits and their upward propagation
//!   through the index (§4.2.3);
//! * [`crate::scan`] — range scans over the leaf chain (§4.2.4).
//!
//! Retry policy is pluggable: the tree holds an `Arc<dyn RetryStrategy>`
//! consulted by the layered executor for every HTM region it starts, so
//! the same structure runs under DBX-style budgets, persistent retry, or
//! an adaptive controller without recompiling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use euno_htm::{
    BitLockVector, ConcurrentMap, Footprint, MemoryReport, RetryPolicy, RetryStrategy, Runtime,
    ThreadCtx, TransientBytes, Tx, TxCell, TxResult, TxWord, KEY_SENTINEL, TOMBSTONE,
};

use crate::ccm::Ccm;
use crate::config::EunoConfig;
use crate::node::{EunoLeaf, NodeArenas, NodeRef};

/// The Euno-B+Tree. `SEGS` segments of `K` slots per leaf
/// (fanout = `SEGS·K`; the paper's default geometry is 16 with partitioned
/// leaves — `EunoBTree<4, 4>`; `EunoBTree<1, 16>` is the unpartitioned
/// `+Split HTM` ablation variant).
pub struct EunoBTree<const SEGS: usize = 4, const K: usize = 4> {
    pub(crate) rt: Arc<Runtime>,
    pub(crate) cfg: EunoConfig,
    pub(crate) strategy: Arc<dyn RetryStrategy>,
    pub(crate) ctrl: Box<euno_htm::ControlBlock>,
    pub(crate) arenas: NodeArenas<SEGS, K>,
    pub(crate) reserved_bytes: TransientBytes,
    pub(crate) deletes: AtomicU64,
    /// Tree-global advisory slots for the executor's middle path: a point
    /// operation that exhausts its speculative budget re-runs while
    /// holding its key's slot here, serializing only same-slot contenders
    /// instead of the whole tree.
    pub(crate) middle: BitLockVector,
}

/// What the lower region concluded.
pub(crate) enum Lower {
    Done(Option<u64>),
    /// `seqno` changed: the leaf split concurrently; retry from the root.
    Inconsistent,
    /// The insert needs a split but the split lock is not held; retry the
    /// operation acquiring it up front.
    NeedSplitLock,
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Req {
    Get,
    Put,
    Delete,
}

impl<const SEGS: usize, const K: usize> EunoBTree<SEGS, K> {
    pub fn new(rt: Arc<Runtime>) -> Self {
        Self::with_config(rt, EunoConfig::default())
    }

    pub fn with_config(rt: Arc<Runtime>, cfg: EunoConfig) -> Self {
        Self::with_config_and_strategy(rt, cfg, Arc::new(RetryPolicy::default()))
    }

    /// Default configuration, custom retry strategy.
    pub fn with_strategy(rt: Arc<Runtime>, strategy: Arc<dyn RetryStrategy>) -> Self {
        Self::with_config_and_strategy(rt, EunoConfig::default(), strategy)
    }

    pub fn with_config_and_strategy(
        rt: Arc<Runtime>,
        cfg: EunoConfig,
        strategy: Arc<dyn RetryStrategy>,
    ) -> Self {
        let arenas: NodeArenas<SEGS, K> = NodeArenas::new();
        let first = arenas.leaves.alloc(EunoLeaf::empty());
        first.register(&rt);
        let ctrl = euno_htm::ControlBlock::new(NodeRef::of_leaf(first).to_word());
        rt.register_value(&*ctrl, euno_htm::LineClass::Structure);
        EunoBTree {
            rt,
            cfg,
            strategy,
            ctrl,
            arenas,
            reserved_bytes: TransientBytes::new(),
            deletes: AtomicU64::new(0),
            middle: BitLockVector::new(Self::MIDDLE_SLOTS),
        }
    }

    /// Middle-path advisory slots per tree. One lock word: coarse enough
    /// to stay cheap, fine enough that a single hot key serializes only
    /// its own contenders.
    pub(crate) const MIDDLE_SLOTS: usize = 64;

    /// The middle-path footprint of a point operation on `key`.
    pub(crate) fn middle_footprint(&self, key: u64) -> Footprint<'_> {
        Footprint::new(&self.middle, &[Ccm::slot(key, Self::MIDDLE_SLOTS as u32)])
    }

    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    pub fn config(&self) -> &EunoConfig {
        &self.cfg
    }

    pub(crate) const fn ccm_bits() -> u32 {
        EunoLeaf::<SEGS, K>::ccm_bits()
    }

    pub(crate) const fn capacity() -> usize {
        EunoLeaf::<SEGS, K>::capacity()
    }

    /// Number of logical deletions performed (deferred-rebalance trigger
    /// observability; compaction happens lazily at reorganization).
    pub fn delete_count(&self) -> u64 {
        self.deletes.load(Ordering::Relaxed)
    }

    // ----- crate-internal accessors for the rebalance module -----

    pub(crate) fn root_bits(&self) -> u64 {
        self.ctrl.root.load_plain()
    }

    pub(crate) fn arenas(&self) -> &NodeArenas<SEGS, K> {
        &self.arenas
    }

    pub(crate) fn fallback_cell(&self) -> &TxCell<u64> {
        &self.ctrl.fallback
    }

    /// The retry strategy every HTM region of this tree runs under.
    pub fn strategy(&self) -> &dyn RetryStrategy {
        &*self.strategy
    }

    pub(crate) fn peek_all_for_merge(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
    ) -> TxResult<Vec<(u64, u64)>> {
        self.peek_all(tx, leaf)
    }

    /// Append `leaf`'s raw records (including tombstones) to `out`.
    pub(crate) fn peek_all_into(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
        out: &mut Vec<(u64, u64)>,
    ) -> TxResult<()> {
        for seg in &leaf.segs {
            seg.read_into(tx, out)?;
        }
        Ok(())
    }

    pub(crate) fn redistribute_for_merge(
        &self,
        tx: &mut Tx<'_>,
        leaf: &EunoLeaf<SEGS, K>,
        records: &[(u64, u64)],
    ) -> TxResult<()> {
        self.redistribute(tx, leaf, records)
    }

    pub(crate) fn clear_segments(&self, tx: &mut Tx<'_>, leaf: &EunoLeaf<SEGS, K>) -> TxResult<()> {
        let mut sink = Vec::new();
        for seg in &leaf.segs {
            sink.clear();
            seg.drain_into(tx, &mut sink)?;
        }
        Ok(())
    }

    /// Number of leaves currently linked into the chain (uninstrumented
    /// diagnostic).
    pub fn leaf_count_plain(&self) -> usize {
        // Pin: concurrent maintenance retires merged-away leaves to the
        // epoch collector; the chain hop through one must stay readable.
        let _pin = self.rt.epoch().pin_scoped();
        let mut cur = NodeRef::from_word(self.root_bits());
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        let mut n = 0;
        while !cur.is_null() {
            n += 1;
            cur = NodeRef::from_word(unsafe { cur.as_leaf::<SEGS, K>() }.next.load_plain());
        }
        n
    }

    /// Uninstrumented whole-tree audit: every live record in key order.
    /// Test/diagnostic helper — not concurrency safe.
    pub fn collect_all_plain(&self) -> Vec<(u64, u64)> {
        let _pin = self.rt.epoch().pin_scoped();
        let mut out = Vec::new();
        let mut cur = NodeRef::from_word(self.ctrl.root.load_plain());
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        while !cur.is_null() {
            let leaf = unsafe { cur.as_leaf::<SEGS, K>() };
            let mut recs = Vec::new();
            for seg in &leaf.segs {
                for i in 0..seg.count_plain() {
                    recs.push((seg.key_cell(i).load_plain(), seg.val_cell(i).load_plain()));
                }
            }
            recs.sort_unstable_by_key(|&(k, _)| k);
            out.extend(recs.into_iter().filter(|&(_, v)| v != TOMBSTONE));
            cur = NodeRef::from_word(leaf.next.load_plain());
        }
        out
    }
}

impl<const SEGS: usize, const K: usize> ConcurrentMap for EunoBTree<SEGS, K> {
    fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        if self.cfg.read_opt {
            self.get_read_opt(ctx, key)
        } else {
            self.traverse(ctx, Req::Get, key, 0)
        }
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Option<u64> {
        assert!(key < KEY_SENTINEL && value != TOMBSTONE);
        self.traverse(ctx, Req::Put, key, value)
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        self.traverse(ctx, Req::Delete, key, 0)
    }

    fn scan(
        &self,
        ctx: &mut ThreadCtx,
        from: u64,
        count: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        if self.cfg.read_opt {
            self.scan_read_opt(ctx, from, count, out)
        } else {
            self.scan_chain(ctx, from, count, out)
        }
    }

    fn maintain(&self, ctx: &mut ThreadCtx) -> u64 {
        // The inherent method (crate::rebalance) takes precedence in
        // method resolution, so this is not a recursive call.
        self.maintain(ctx) as u64
    }

    fn name(&self) -> &'static str {
        if self.cfg.read_opt {
            "Euno-ReadOpt"
        } else {
            "Euno-B+Tree"
        }
    }

    fn memory(&self) -> MemoryReport {
        let leaf_sz = std::mem::size_of::<EunoLeaf<SEGS, K>>();
        let live_leaves = self.arenas.leaves.live_bytes() / leaf_sz.max(1);
        let ccm_bytes = live_leaves * Ccm::bytes();
        MemoryReport {
            structural_bytes: self.arenas.leaves.live_bytes() - ccm_bytes
                + self.arenas.internals.live_bytes(),
            ccm_bytes,
            reserved_live_bytes: self.reserved_bytes.live(),
            // Transient sort buffers: allocated per reorganization/scan,
            // freed immediately (§4.1 "the memory space is freed after the
            // process") — peak is the figure §5.7 cares about.
            reserved_peak_bytes: self.reserved_bytes.peak(),
            reserved_cumulative_bytes: self.reserved_bytes.cumulative(),
            retired_pending_bytes: self.arenas.leaves.retired_pending_bytes()
                + self.arenas.internals.retired_pending_bytes(),
            reclaimed_bytes: self.arenas.leaves.reclaimed_bytes()
                + self.arenas.internals.reclaimed_bytes(),
        }
    }
}

/// The paper's default geometry: 4 segments × 4 slots (fanout 16).
pub type EunoBTreeDefault = EunoBTree<4, 4>;
/// The `+Split HTM` ablation variant: one conventional sorted leaf.
pub type EunoBTreeUnpartitioned = EunoBTree<1, 16>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tree() -> (Arc<Runtime>, EunoBTreeDefault, ThreadCtx) {
        let rt = Runtime::new_virtual();
        let t = EunoBTree::new(Arc::clone(&rt));
        let ctx = rt.thread(1);
        (rt, t, ctx)
    }

    #[test]
    fn put_get_update_roundtrip() {
        let (_rt, t, mut ctx) = tree();
        assert_eq!(t.get(&mut ctx, 5), None);
        assert_eq!(t.put(&mut ctx, 5, 50), None);
        assert_eq!(t.get(&mut ctx, 5), Some(50));
        assert_eq!(t.put(&mut ctx, 5, 51), Some(50));
        assert_eq!(t.get(&mut ctx, 5), Some(51));
    }

    #[test]
    fn mark_bits_short_circuit_definite_misses() {
        let (_rt, t, mut ctx) = tree();
        t.put(&mut ctx, 1, 10);
        let leaf_bits = t.ctrl.root.load_plain();
        let leaf = unsafe { NodeRef::from_word(leaf_bits).as_leaf::<4, 4>() };
        // The CCM only filters while the leaf is protected (a calm fresh
        // leaf bypasses it by default).
        leaf.ccm.protect_prepublication();
        // A key hashing to an unmarked slot must be answered without
        // entering the lower region: count commits before/after.
        let commits_before = ctx.metric(euno_htm::euno_metrics::Counter::Commits);
        let mut probe = 1000u64;
        while leaf.ccm.marks_plain() & (1 << Ccm::slot(probe, 32)) != 0 {
            probe += 1;
        }
        assert_eq!(t.get(&mut ctx, probe), None);
        // Only the upper region committed (1 commit, not 2).
        assert_eq!(
            ctx.metric(euno_htm::euno_metrics::Counter::Commits) - commits_before,
            1
        );
    }

    #[test]
    fn fills_one_leaf_then_splits() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..100u64 {
            assert_eq!(t.put(&mut ctx, k, k * 2), None, "insert {k}");
        }
        for k in 0..100u64 {
            assert_eq!(t.get(&mut ctx, k), Some(k * 2), "get {k}");
        }
        // Leaves split: root must now be internal.
        assert!(!NodeRef::from_word(t.ctrl.root.load_plain()).is_leaf());
    }

    #[test]
    fn large_ascending_and_descending_inserts() {
        for descending in [false, true] {
            let (_rt, t, mut ctx) = tree();
            let n = 3_000u64;
            if descending {
                for k in (0..n).rev() {
                    t.put(&mut ctx, k, k + 7);
                }
            } else {
                for k in 0..n {
                    t.put(&mut ctx, k, k + 7);
                }
            }
            for k in 0..n {
                assert_eq!(t.get(&mut ctx, k), Some(k + 7), "key {k} desc={descending}");
            }
            let all = t.collect_all_plain();
            assert_eq!(all.len(), n as usize);
            assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "leaf chain sorted");
        }
    }

    #[test]
    fn random_inserts_match_model() {
        let (_rt, t, mut ctx) = tree();
        let mut model = BTreeMap::new();
        let mut state = 0x243F6A8885A308D3u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..30_000 {
            let key = rnd() % 800;
            match rnd() % 10 {
                0..=4 => {
                    let v = rnd() % 1_000_000;
                    assert_eq!(t.put(&mut ctx, key, v), model.insert(key, v), "put {key}");
                }
                5..=6 => {
                    assert_eq!(t.delete(&mut ctx, key), model.remove(&key), "del {key}");
                }
                _ => {
                    assert_eq!(t.get(&mut ctx, key), model.get(&key).copied(), "get {key}");
                }
            }
        }
        let all = t.collect_all_plain();
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn delete_then_reinsert_and_compaction() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..16u64 {
            t.put(&mut ctx, k, k);
        }
        for k in 0..8u64 {
            assert_eq!(t.delete(&mut ctx, k), Some(k));
        }
        assert_eq!(t.delete_count(), 8);
        // Tombstones freed at reorganization: inserting more keys must not
        // grow the tree unnecessarily.
        for k in 100..108u64 {
            assert_eq!(t.put(&mut ctx, k, k), None);
        }
        for k in 0..8u64 {
            assert_eq!(t.get(&mut ctx, k), None);
        }
        for k in 8..16u64 {
            assert_eq!(t.get(&mut ctx, k), Some(k));
        }
    }

    #[test]
    fn scan_is_sorted_and_skips_tombstones() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..500u64 {
            t.put(&mut ctx, k, k * 3);
        }
        t.delete(&mut ctx, 120);
        t.delete(&mut ctx, 121);
        let mut out = Vec::new();
        let n = t.scan(&mut ctx, 118, 6, &mut out);
        assert_eq!(n, 6);
        let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![118, 119, 122, 123, 124, 125]);
        assert!(out.iter().all(|(k, v)| *v == k * 3));
    }

    #[test]
    fn scan_whole_tree_matches_collect() {
        let (_rt, t, mut ctx) = tree();
        for k in (0..400u64).rev() {
            t.put(&mut ctx, k, k);
        }
        let mut out = Vec::new();
        let n = t.scan(&mut ctx, 0, usize::MAX, &mut out);
        assert_eq!(n, 400);
        assert_eq!(out, t.collect_all_plain());
    }

    #[test]
    fn unpartitioned_variant_works() {
        let rt = Runtime::new_virtual();
        let t: EunoBTreeUnpartitioned =
            EunoBTree::with_config(Arc::clone(&rt), EunoConfig::split_htm_only());
        let mut ctx = rt.thread(3);
        for k in 0..2_000u64 {
            t.put(&mut ctx, k * 3 % 2_000, k);
        }
        for k in 0..2_000u64 {
            assert!(t.get(&mut ctx, k).is_some(), "key {k}");
        }
    }

    #[test]
    fn all_ablation_configs_are_correct() {
        for cfg in [
            EunoConfig::part_leaf(),
            EunoConfig::ccm_lockbits(),
            EunoConfig::ccm_markbits(),
            EunoConfig::full(),
        ] {
            let rt = Runtime::new_virtual();
            let t: EunoBTreeDefault = EunoBTree::with_config(Arc::clone(&rt), cfg.clone());
            let mut ctx = rt.thread(5);
            let mut model = BTreeMap::new();
            let mut state = 11_400_714_819_323_198_485u64;
            let mut rnd = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 11
            };
            for _ in 0..4_000 {
                let key = rnd() % 300;
                if rnd() % 2 == 0 {
                    let v = rnd() % 9_999;
                    assert_eq!(t.put(&mut ctx, key, v), model.insert(key, v));
                } else {
                    assert_eq!(t.get(&mut ctx, key), model.get(&key).copied());
                }
            }
            assert_eq!(
                t.collect_all_plain(),
                model.into_iter().collect::<Vec<_>>(),
                "config {cfg:?}"
            );
        }
    }

    #[test]
    fn adaptive_bypass_lifecycle() {
        let (_rt, t, mut ctx) = tree();
        t.put(&mut ctx, 1, 1);
        let leaf = unsafe { NodeRef::from_word(t.ctrl.root.load_plain()).as_leaf::<4, 4>() };
        // Fresh leaves start bypassed (no contention history)…
        assert!(leaf.ccm.bypass_plain());
        // …split-born nodes start protected…
        for k in 0..100u64 {
            t.put(&mut ctx, k, k);
        }
        // …and a calm window re-enables the bypass on a protected leaf.
        leaf.ccm.protect_prepublication();
        assert!(!leaf.ccm.bypass_plain());
        for _ in 0..t.config().adaptive_window + 1 {
            t.get(&mut ctx, 1);
        }
        assert!(leaf.ccm.bypass_plain(), "calm leaf must bypass CCM");
        assert_eq!(t.get(&mut ctx, 1), Some(1));
        assert_eq!(t.get(&mut ctx, 999_999), None);
    }

    #[test]
    fn custom_strategy_is_honored_per_tree() {
        // A tree built with the aggressive strategy keeps answering
        // correctly and reports the strategy it was given.
        let rt = Runtime::new_virtual();
        let t: EunoBTreeDefault = EunoBTree::with_strategy(
            Arc::clone(&rt),
            Arc::new(euno_htm::AggressivePolicy::default()),
        );
        assert_eq!(t.strategy().name(), "aggressive");
        let mut ctx = rt.thread(7);
        for k in 0..300u64 {
            t.put(&mut ctx, k, k + 1);
        }
        for k in 0..300u64 {
            assert_eq!(t.get(&mut ctx, k), Some(k + 1));
        }
    }

    #[test]
    fn concurrent_threads_no_lost_updates() {
        let rt = Runtime::new_concurrent();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let per = 400u64;
        let threads = 4u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = &t;
                let mut ctx = rt.thread(tid);
                s.spawn(move || {
                    for i in 0..per {
                        let key = tid * per + i;
                        t.put(&mut ctx, key, key + 1);
                    }
                });
            }
        });
        let mut ctx = rt.thread(99);
        for key in 0..threads * per {
            assert_eq!(t.get(&mut ctx, key), Some(key + 1), "key {key}");
        }
        let all = t.collect_all_plain();
        assert_eq!(all.len(), (threads * per) as usize);
    }

    #[test]
    fn concurrent_same_hot_keys_converge() {
        let rt = Runtime::new_concurrent();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                let mut ctx = rt.thread(tid);
                s.spawn(move || {
                    for i in 0..600u64 {
                        t.put(&mut ctx, i % 8, tid * 10_000 + i);
                    }
                });
            }
        });
        // Every hot key must hold one of the written values.
        let mut ctx = rt.thread(99);
        for k in 0..8u64 {
            let v = t.get(&mut ctx, k).expect("hot key present");
            assert!(v % 10_000 < 600);
        }
    }

    #[test]
    fn interleaved_scans_and_inserts_never_overflow_reserved() {
        // Regression: a scan used to cache oversize merges (> fanout) into
        // the reserved buffer, letting the next reorganization overflow
        // its capacity. Dense inserts interleaved with scans hit exactly
        // that pattern; debug assertions in write_sorted catch overflow.
        let (_rt, t, mut ctx) = tree();
        let mut expect = std::collections::BTreeMap::new();
        for k in 0..600u64 {
            t.put(&mut ctx, k % 97, k);
            expect.insert(k % 97, k);
            if k % 10 == 7 {
                let mut out = Vec::new();
                t.scan(&mut ctx, 0, usize::MAX, &mut out);
                let want: Vec<(u64, u64)> = expect.iter().map(|(&a, &b)| (a, b)).collect();
                assert_eq!(out, want, "after {k} ops");
            }
        }
        assert_eq!(
            t.collect_all_plain(),
            expect.into_iter().collect::<Vec<_>>()
        );
    }

    fn read_opt_tree() -> (Arc<Runtime>, EunoBTreeDefault, ThreadCtx) {
        let rt = Runtime::new_virtual();
        let t = EunoBTree::with_config(Arc::clone(&rt), EunoConfig::read_optimized());
        let ctx = rt.thread(1);
        (rt, t, ctx)
    }

    #[test]
    fn read_opt_matches_model_under_mixed_ops() {
        let (_rt, t, mut ctx) = read_opt_tree();
        assert_eq!(t.name(), "Euno-ReadOpt");
        let mut model = BTreeMap::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20_000 {
            let key = rnd() % 600;
            match rnd() % 10 {
                0..=3 => {
                    let v = rnd() % 1_000_000;
                    assert_eq!(t.put(&mut ctx, key, v), model.insert(key, v), "put {key}");
                }
                4..=5 => {
                    assert_eq!(t.delete(&mut ctx, key), model.remove(&key), "del {key}");
                }
                _ => {
                    assert_eq!(t.get(&mut ctx, key), model.get(&key).copied(), "get {key}");
                }
            }
        }
        assert_eq!(t.collect_all_plain(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn read_opt_scan_agrees_with_episode_scan() {
        let (_rt, t, mut ctx) = read_opt_tree();
        for k in (0..1_200u64).rev() {
            t.put(&mut ctx, k * 2, k);
        }
        t.delete(&mut ctx, 100);
        t.delete(&mut ctx, 102);
        for (from, count) in [(0u64, usize::MAX), (95, 10), (2_398, 10), (5_000, 3)] {
            let mut opt = Vec::new();
            let n_opt = t.scan_read_opt(&mut ctx, from, count, &mut opt);
            let mut epi = Vec::new();
            let n_epi = t.scan_chain(&mut ctx, from, count, &mut epi);
            assert_eq!(n_opt, n_epi, "from={from} count={count}");
            assert_eq!(opt, epi, "from={from} count={count}");
            assert!(opt.windows(2).all(|w| w[0].0 < w[1].0));
        }
        let mut out = Vec::new();
        assert_eq!(t.scan(&mut ctx, u64::MAX, 10, &mut out), 0);
    }

    #[test]
    fn read_opt_gets_survive_concurrent_writers() {
        // Episode-free readers race writers that split leaves and move
        // records: every get must return a value some put wrote for that
        // key (or miss while the key is genuinely absent).
        let rt = Runtime::new_concurrent();
        let t: EunoBTreeDefault =
            EunoBTree::with_config(Arc::clone(&rt), EunoConfig::read_optimized());
        {
            let mut ctx = rt.thread(0);
            for k in 0..2_000u64 {
                t.put(&mut ctx, k, k + 1);
            }
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let (t, stop) = (&t, &stop);
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    let mut ctx = rt.thread(10 + w);
                    let mut i = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        // Updates keep the value recognizable; fresh keys
                        // force splits under the readers.
                        t.put(&mut ctx, i % 2_000, (i % 2_000) + 1);
                        t.put(&mut ctx, 10_000 + (i * 7 + w) % 4_000, 1);
                        i += 1;
                    }
                });
            }
            for r in 0..2u64 {
                let t = &t;
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    let mut ctx = rt.thread(20 + r);
                    for i in 0..30_000u64 {
                        let k = (i * 31 + r) % 2_000;
                        assert_eq!(t.get(&mut ctx, k), Some(k + 1), "stable key {k}");
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(80));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }

    #[test]
    fn read_opt_scans_survive_churn_and_merges() {
        // Scans race a delete-heavy mutator plus maintenance merges that
        // retire leaves mid-walk: output must stay strictly ascending and
        // every stable key must keep appearing.
        let rt = Runtime::new_concurrent();
        let t: EunoBTreeDefault =
            EunoBTree::with_config(Arc::clone(&rt), EunoConfig::read_optimized());
        {
            let mut ctx = rt.thread(0);
            for k in 0..3_000u64 {
                t.put(&mut ctx, k, k);
            }
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            {
                let (t, stop) = (&t, &stop);
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    let mut ctx = rt.thread(10);
                    let mut i = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        // Churn odd keys only: evens are the stable floor.
                        let k = 1 + 2 * (i % 1_500);
                        if i.is_multiple_of(3) {
                            t.put(&mut ctx, k, k);
                        } else {
                            t.delete(&mut ctx, k);
                        }
                        if i % 512 == 511 {
                            t.maintain(&mut ctx);
                        }
                        i += 1;
                    }
                });
            }
            for r in 0..2u64 {
                let t = &t;
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    let mut ctx = rt.thread(20 + r);
                    let mut out = Vec::new();
                    for i in 0..300u64 {
                        out.clear();
                        let from = (i * 53) % 2_500;
                        let n = t.scan(&mut ctx, from, 64, &mut out);
                        assert_eq!(n, out.len());
                        assert!(
                            out.windows(2).all(|w| w[0].0 < w[1].0),
                            "read-opt scan must stay strictly ascending"
                        );
                        assert!(out.iter().all(|&(k, _)| k >= from));
                        // Every even key in the delivered range must be
                        // present (they are never touched).
                        if let (Some(&(lo, _)), Some(&(hi, _))) = (out.first(), out.last()) {
                            let evens: Vec<u64> =
                                out.iter().map(|&(k, _)| k).filter(|k| k % 2 == 0).collect();
                            let want: Vec<u64> = (lo..=hi).filter(|k| k % 2 == 0).collect();
                            assert_eq!(evens, want, "stable keys missing from [{lo}, {hi}]");
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(80));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let mut ctx = rt.thread(99);
        for k in (0..3_000u64).step_by(2) {
            assert_eq!(t.get(&mut ctx, k), Some(k), "stable key {k}");
        }
    }

    #[test]
    fn memory_report_accounts_ccm_and_reserved() {
        let (_rt, t, mut ctx) = tree();
        for k in 0..2_000u64 {
            t.put(&mut ctx, k, k);
        }
        let m = t.memory();
        assert!(m.structural_bytes > 0);
        assert!(m.ccm_bytes > 0, "CCM bytes counted");
        assert!(m.reserved_peak_bytes > 0, "splits allocate reserved bufs");
        assert!(
            m.ccm_bytes < m.structural_bytes / 4,
            "CCM overhead stays small: {} vs {}",
            m.ccm_bytes,
            m.structural_bytes
        );
    }
}
