//! Deferred re-balancing (§4.2.4).
//!
//! Deletions tombstone records in place; tombstones are compacted at the
//! next reorganization, but a delete-heavy phase can still strand many
//! underfull leaves. Following the paper ("instead of re-balancing the
//! tree on every deletion instantly, we do the re-balance when the number
//! of delete operations exceeds a threshold", citing Sen & Tarjan's
//! *deletion without rebalancing*), [`EunoBTree::maintain`] sweeps the
//! leaf chain and merges adjacent underfull siblings:
//!
//! * both leaves' split locks are taken (in chain order — deadlock-free
//!   against splits, which take a single lock);
//! * the merge itself runs in one HTM region: re-verify adjacency, deal
//!   the combined records round-robin over the left leaf's segments,
//!   unlink the right leaf and drop its separator from the shared parent;
//! * both leaves' `seqno`s are bumped (before any record moves) so
//!   two-step traversals and episode-free readers holding either pointer
//!   retry from the root, and the right node is retired to the epoch
//!   collector (freed after a two-epoch grace period, once no pinned
//!   thread can still hold a reference).
//!
//! Like Sen-Tarjan, interior nodes are allowed to go underfull — only
//! their entries are removed, never cascaded. Merges are restricted to
//! siblings sharing a parent where the right leaf is not the parent's
//! leftmost child; boundary pairs are simply skipped (they become
//! mergeable after their parents themselves drain).

use euno_htm::{EventKind, TxWord, TOMBSTONE};

use crate::node::{EunoLeaf, NodeRef};
use crate::probe;
use crate::tree::EunoBTree;

impl<const SEGS: usize, const K: usize> EunoBTree<SEGS, K> {
    /// Sweep the leaf chain once, merging adjacent underfull siblings.
    /// Returns the number of merges performed. Safe to run concurrently
    /// with normal operations.
    pub fn maintain(&self, ctx: &mut euno_htm::ThreadCtx) -> usize {
        // Pin before the chain walk: merged-away leaves freed by the epoch
        // collector must stay readable until this sweep lets go.
        ctx.epoch_enter();
        let mut merges = 0;
        // Leftmost leaf via an uninstrumented walk (the maintenance thread
        // races ops; all pointers stay valid under the pin).
        let mut cur = NodeRef::from_word(self.root_bits());
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        loop {
            let leaf = unsafe { cur.as_leaf::<SEGS, K>() };
            let next = NodeRef::from_word(leaf.next.load_plain());
            if next.is_null() {
                break;
            }
            if self.try_merge(ctx, leaf, unsafe { next.as_leaf::<SEGS, K>() }) {
                merges += 1;
                // Stay on `leaf`: it may now be mergeable with its new
                // successor too.
                continue;
            }
            cur = next;
        }
        ctx.trace(EventKind::Maintain {
            merges: merges as u64,
        });
        ctx.epoch_exit();
        merges
    }

    /// Attempt to merge `right` into `left`. Returns whether it happened.
    fn try_merge(
        &self,
        ctx: &mut euno_htm::ThreadCtx,
        left: &EunoLeaf<SEGS, K>,
        right: &EunoLeaf<SEGS, K>,
    ) -> bool {
        // Note: slot occupancy counts tombstones, so it cannot serve as a
        // pre-filter after a deletion wave — the transactional path below
        // counts live records exactly. Only skip the obviously hopeless
        // case of two brim-full leaves.
        if left.occupied_direct(ctx) + right.occupied_direct(ctx) == 2 * Self::capacity() {
            return false;
        }
        left.split_lock.acquire(ctx);
        right.split_lock.acquire(ctx);

        let merged = self.merge_locked(ctx, left, right);

        right.split_lock.release(ctx);
        left.split_lock.release(ctx);
        if merged {
            // Hand the unlinked right leaf to the epoch collector: freed
            // only after every thread pinned at (or before) the current
            // epoch — including plain chain walkers under `pin_scoped` —
            // has moved on. The caller (maintain) holds the pin that
            // covers the unlink above.
            debug_assert!(ctx.epoch_pinned(), "merge retirement needs a pin");
            self.arenas()
                .leaves
                .retire(self.rt.epoch(), right as *const EunoLeaf<SEGS, K>);
            ctx.trace(EventKind::Merge {
                left: left as *const EunoLeaf<SEGS, K> as u64,
                right: right as *const EunoLeaf<SEGS, K> as u64,
            });
        }
        merged
    }

    fn merge_locked(
        &self,
        ctx: &mut euno_htm::ThreadCtx,
        left: &EunoLeaf<SEGS, K>,
        right: &EunoLeaf<SEGS, K>,
    ) -> bool {
        // Union the mark bits BEFORE the merge becomes visible: a get for
        // an adopted key must never find the left leaf unmarked. Marks are
        // a monotone superset, so setting them early is safe even if the
        // merge is abandoned (just extra false positives).
        let right_marks = right.ccm.marks_plain();
        left.ccm.or_marks(ctx, right_marks);
        let out = ctx.htm_execute(self.fallback_cell(), self.strategy(), |tx| {
            // Both split locks are held: contending structural ops queue.
            tx.mark_serialized();
            // Re-verify adjacency under transactional protection.
            if NodeRef::from_word(tx.read(&left.next)?) != NodeRef::of_leaf(right) {
                return Ok(false);
            }
            // Both leaves must share a parent, and the right leaf must
            // have a separator entry (not be a leftmost child).
            let parent_bits = tx.read(&left.parent)?;
            if parent_bits == 0 || parent_bits != tx.read(&right.parent)? {
                return Ok(false);
            }
            let parent = unsafe { NodeRef::from_word(parent_bits).as_internal() };
            let pcnt = tx.read(&parent.count)? as usize;
            let mut slot = None;
            let mut left_linked =
                NodeRef::from_word(tx.read(&parent.child0)?) == NodeRef::of_leaf(left);
            for j in 0..pcnt {
                let child = NodeRef::from_word(tx.read(&parent.children[j])?);
                if child == NodeRef::of_leaf(right) {
                    slot = Some(j);
                }
                if child == NodeRef::of_leaf(left) {
                    left_linked = true;
                }
            }
            // The left leaf must itself still be reachable from the
            // parent: a racing merge may have unlinked it after our chain
            // walk found it (its `next` still points into the live chain,
            // so the adjacency check alone cannot tell). Merging into an
            // unlinked leaf would silently drop every adopted record.
            if !left_linked {
                return Ok(false);
            }
            let Some(j) = slot else {
                return Ok(false); // right is the parent's child0
            };

            // Gather both leaves' live records; verify they fit.
            let mut records = self.peek_all_for_merge(tx, left)?;
            self.peek_all_into(tx, right, &mut records)?;
            records.retain(|&(_, v)| v != TOMBSTONE);
            records.sort_unstable_by_key(|&(k, _)| k);
            if records.len() > Self::capacity() - Self::capacity() / 4 {
                return Ok(false);
            }

            // Invalidate two-step traversals (and plain chain walkers)
            // holding either leaf BEFORE any structural edit. Writes
            // become visible in program order on the fallback path and in
            // buffer order at commit, so the seqno bumps must be first: a
            // walker that hops through the right leaf after the unlink
            // must already see the bumped seqno, or it would trust a leaf
            // whose records have moved left — and the left leaf's own
            // records hop between segments in the redistribute below, so
            // readers holding it need invalidating too.
            probe::mark("merge:seqno");
            let rseq = tx.read(&right.seqno)?;
            tx.write(&right.seqno, rseq + 1)?;
            let lseq = tx.read(&left.seqno)?;
            tx.write(&left.seqno, lseq + 1)?;

            // Deal into the left leaf; empty the right one.
            probe::mark("merge:records");
            self.redistribute_for_merge(tx, left, &records)?;
            self.clear_segments(tx, right)?;

            // Unlink and drop the separator entry.
            let rnext = tx.read(&right.next)?;
            tx.write(&left.next, rnext)?;
            let mut i = j;
            while i + 1 < pcnt {
                let k = tx.read(&parent.keys[i + 1])?;
                let c = tx.read(&parent.children[i + 1])?;
                tx.write(&parent.keys[i], k)?;
                tx.write(&parent.children[i], c)?;
                i += 1;
            }
            tx.write(&parent.count, (pcnt - 1) as u64)?;

            Ok(true)
        });
        out.value
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use euno_htm::{ConcurrentMap, Runtime, TxWord};

    use crate::tree::EunoBTreeDefault;

    #[test]
    fn maintain_merges_after_mass_deletion() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..2_000u64 {
            t.put(&mut ctx, k, k);
        }
        let leaves_before = t.leaf_count_plain();
        // Delete 90 % of the records.
        for k in 0..2_000u64 {
            if k % 10 != 0 {
                t.delete(&mut ctx, k);
            }
        }
        let merges = t.maintain(&mut ctx);
        assert!(merges > 0, "mass deletion must produce mergeable leaves");
        let leaves_after = t.leaf_count_plain();
        assert!(
            leaves_after < leaves_before / 2,
            "leaf count must shrink: {leaves_before} → {leaves_after}"
        );
        // Correctness preserved.
        for k in 0..2_000u64 {
            let expect = (k % 10 == 0).then_some(k);
            assert_eq!(t.get(&mut ctx, k), expect, "key {k}");
        }
        let audit = t.collect_all_plain();
        assert_eq!(audit.len(), 200);
        assert!(audit.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "probes are debug-only")]
    fn merge_bumps_seqnos_before_records_move() {
        use crate::probe;
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..400u64 {
            t.put(&mut ctx, k, k);
        }
        for k in 0..400u64 {
            if k % 10 != 0 {
                t.delete(&mut ctx, k);
            }
        }
        probe::take();
        assert!(t.maintain(&mut ctx) > 0);
        let trace = probe::take();
        let mut seqno_seen = false;
        let mut merges = 0;
        for &m in &trace {
            if m == "merge:seqno" {
                seqno_seen = true;
            } else if m == "merge:records" {
                assert!(seqno_seen, "records moved before the bump: {trace:?}");
                merges += 1;
                seqno_seen = false;
            }
        }
        assert!(merges > 0, "maintain performed no probed merges: {trace:?}");
    }

    #[test]
    fn merge_retirement_reclaims_leaf_bytes() {
        // The unlinked right leaf must flow through the epoch collector:
        // pending bytes rise at the merge, and a quiescent drain frees
        // them — live bytes fall by exactly what was retired.
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..2_000u64 {
            t.put(&mut ctx, k, k);
        }
        for k in 0..2_000u64 {
            if k % 10 != 0 {
                t.delete(&mut ctx, k);
            }
        }
        let live_before = t.memory().structural_bytes;
        let merges = t.maintain(&mut ctx);
        assert!(merges > 0);
        let m = t.memory();
        assert!(
            m.retired_pending_bytes > 0 || m.reclaimed_bytes > 0,
            "merges must retire real bytes: {m:?}"
        );
        // Quiescent: every participant is unpinned, so two collection
        // passes (advance + free) drain everything still pending.
        rt.epoch().collect();
        rt.epoch().collect();
        let after = t.memory();
        assert_eq!(after.retired_pending_bytes, 0, "drain leaves nothing");
        assert!(after.reclaimed_bytes > 0, "retired leaves actually freed");
        assert!(
            after.structural_bytes < live_before,
            "live bytes fall after merges: {live_before} → {}",
            after.structural_bytes
        );
        // The map still answers correctly off the compacted tree.
        for k in (0..2_000u64).step_by(10) {
            assert_eq!(t.get(&mut ctx, k), Some(k));
        }
    }

    #[test]
    fn maintain_is_a_noop_on_full_tree() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..2_000u64 {
            t.put(&mut ctx, k, k);
        }
        let before = t.leaf_count_plain();
        assert_eq!(t.maintain(&mut ctx), 0);
        assert_eq!(t.leaf_count_plain(), before);
    }

    #[test]
    fn operations_after_merge_match_model() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        let mut model = BTreeMap::new();
        for k in 0..800u64 {
            t.put(&mut ctx, k, k);
            model.insert(k, k);
        }
        for k in 0..800u64 {
            if k % 4 != 0 {
                t.delete(&mut ctx, k);
                model.remove(&k);
            }
        }
        t.maintain(&mut ctx);
        // Keep mutating after the merge: inserts land in merged leaves.
        let mut state = 0xABCD_EF01u64;
        for _ in 0..5_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 900;
            match state % 3 {
                0 => {
                    let v = state >> 8;
                    assert_eq!(t.put(&mut ctx, key, v), model.insert(key, v));
                }
                1 => assert_eq!(t.delete(&mut ctx, key), model.remove(&key)),
                _ => assert_eq!(t.get(&mut ctx, key), model.get(&key).copied()),
            }
        }
        assert_eq!(t.collect_all_plain(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn merge_refuses_unlinked_left() {
        // Regression: maintain's chain walk is uninstrumented, so a racing
        // merge can unlink a leaf between the walk finding it and try_merge
        // locking it — the dead leaf's `next` still points into the live
        // chain, so the in-transaction adjacency re-check passes. Pre-fix,
        // merging into the dead leaf moved the successor's records into an
        // unreachable node, silently dropping them. Reproduce the race
        // deterministically: merge A←B (unlinking B), then ask for B←C.
        use crate::node::NodeRef;
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..200u64 {
            t.put(&mut ctx, k, k);
        }
        for k in 0..200u64 {
            if k % 20 != 0 {
                t.delete(&mut ctx, k);
            }
        }
        let expected = t.collect_all_plain();
        assert_eq!(expected.len(), 10);
        // Three adjacent leaves under the (single) internal root.
        let mut cur = NodeRef::from_word(t.root_bits());
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        let a = unsafe { cur.as_leaf::<4, 4>() };
        let b = unsafe { NodeRef::from_word(a.next.load_plain()).as_leaf::<4, 4>() };
        let c = unsafe { NodeRef::from_word(b.next.load_plain()).as_leaf::<4, 4>() };
        assert_eq!(a.parent.load_plain(), b.parent.load_plain());
        assert_eq!(b.parent.load_plain(), c.parent.load_plain());

        // Calling try_merge directly stands in for maintain's inner loop,
        // so hold the epoch pin maintain would hold around it.
        ctx.epoch_enter();
        assert!(t.try_merge(&mut ctx, a, b), "setup merge must succeed");
        // B is now unlinked, but B.next still points at C and B.parent is
        // stale-valid: exactly what the racing walker would hold.
        assert!(
            !t.try_merge(&mut ctx, b, c),
            "must refuse to merge into an unlinked leaf"
        );
        ctx.epoch_exit();
        assert_eq!(
            t.collect_all_plain(),
            expected,
            "no records may vanish from the live chain"
        );
        for &(k, v) in &expected {
            assert_eq!(t.get(&mut ctx, k), Some(v), "key {k}");
        }
    }

    #[test]
    fn concurrent_maintainers_do_not_lose_keys() {
        // Two maintenance threads sweep the same delete-heavy chain while a
        // mutator inserts fresh keys: every merge decision races another
        // walker's stale leaf pointers. No key may vanish.
        let rt = Runtime::new_concurrent();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        {
            let mut ctx = rt.thread(0);
            for k in 0..3_000u64 {
                t.put(&mut ctx, k, k);
            }
            for k in 0..3_000u64 {
                if k % 10 != 0 {
                    t.delete(&mut ctx, k);
                }
            }
        }
        std::thread::scope(|s| {
            for m in 0..2u64 {
                let t = &t;
                let mut ctx = rt.thread(50 + m);
                s.spawn(move || {
                    for _ in 0..4 {
                        t.maintain(&mut ctx);
                    }
                });
            }
            {
                let t = &t;
                let mut ctx = rt.thread(60);
                s.spawn(move || {
                    for i in 0..600u64 {
                        let key = 100_000 + i;
                        t.put(&mut ctx, key, key);
                    }
                });
            }
        });
        let mut ctx = rt.thread(70);
        for k in (0..3_000u64).step_by(10) {
            assert_eq!(t.get(&mut ctx, k), Some(k), "surviving preload {k}");
        }
        for i in 0..600u64 {
            let key = 100_000 + i;
            assert_eq!(t.get(&mut ctx, key), Some(key), "fresh {key}");
        }
        let audit = t.collect_all_plain();
        assert_eq!(audit.len(), 300 + 600);
        assert!(audit.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn concurrent_maintain_with_live_traffic() {
        let rt = Runtime::new_concurrent();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        {
            let mut ctx = rt.thread(0);
            for k in 0..1_500u64 {
                t.put(&mut ctx, k, k);
            }
            for k in 0..1_500u64 {
                if k % 8 != 0 {
                    t.delete(&mut ctx, k);
                }
            }
        }
        std::thread::scope(|s| {
            // One maintenance thread merging while three mutators run.
            {
                let t = &t;
                let mut ctx = rt.thread(100);
                s.spawn(move || {
                    for _ in 0..3 {
                        t.maintain(&mut ctx);
                    }
                });
            }
            for tid in 1..4u64 {
                let t = &t;
                let mut ctx = rt.thread(100 + tid);
                s.spawn(move || {
                    for i in 0..400u64 {
                        let key = (tid * 10_000) + i;
                        t.put(&mut ctx, key, key);
                        assert_eq!(t.get(&mut ctx, key), Some(key));
                    }
                });
            }
        });
        let mut ctx = rt.thread(200);
        // Every surviving preloaded key and every new key is present.
        for k in (0..1_500u64).step_by(8) {
            assert_eq!(t.get(&mut ctx, k), Some(k), "preloaded {k}");
        }
        for tid in 1..4u64 {
            for i in 0..400u64 {
                let key = tid * 10_000 + i;
                assert_eq!(t.get(&mut ctx, key), Some(key), "new {key}");
            }
        }
        let audit = t.collect_all_plain();
        assert!(audit.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
