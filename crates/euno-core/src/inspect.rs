//! Tree introspection: structural statistics for experiments and
//! diagnostics (uninstrumented; intended for quiesced trees).

use crate::node::{EunoLeaf, NodeRef};
use crate::tree::EunoBTree;
use euno_htm::{TxWord, TOMBSTONE};

/// A structural snapshot of an [`EunoBTree`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Interior levels above the leaf layer.
    pub depth: usize,
    pub leaves: usize,
    pub internals: usize,
    /// Live (non-tombstoned) records.
    pub live_records: usize,
    /// Tombstoned slots awaiting compaction.
    pub tombstones: usize,
    /// Occupied slots ÷ total slots across all leaves.
    pub leaf_fill: f64,
    /// Fraction of leaves currently in adaptive bypass.
    pub bypassed_fraction: f64,
    /// Histogram of live records per leaf, bucketed by occupancy quarter
    /// (0–25 %, 25–50 %, 50–75 %, 75–100 %).
    pub occupancy_quarters: [usize; 4],
}

impl<const SEGS: usize, const K: usize> EunoBTree<SEGS, K> {
    /// Walk the whole structure and summarize it. Not concurrency-safe in
    /// the linearizable sense (counts may be slightly stale under traffic)
    /// but never unsound — pointers stay valid under deferred reclamation.
    pub fn stats(&self) -> TreeStats {
        let mut s = TreeStats::default();

        // Depth + internal count via a queue walk from the root.
        let root = NodeRef::from_word(self.root_bits());
        let mut frontier = vec![root];
        while let Some(&first) = frontier.first() {
            if first.is_leaf() {
                break;
            }
            s.depth += 1;
            let mut next = Vec::with_capacity(frontier.len() * 8);
            for nref in frontier {
                let node = unsafe { nref.as_internal() };
                s.internals += 1;
                let cnt = node.count.load_plain() as usize;
                next.push(NodeRef::from_word(node.child0.load_plain()));
                for j in 0..cnt {
                    next.push(NodeRef::from_word(node.children[j].load_plain()));
                }
            }
            frontier = next;
        }

        // Leaf layer via the chain.
        let mut cur = root;
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        let capacity = EunoLeaf::<SEGS, K>::capacity();
        let mut occupied_total = 0usize;
        let mut bypassed = 0usize;
        while !cur.is_null() {
            let leaf = unsafe { cur.as_leaf::<SEGS, K>() };
            s.leaves += 1;
            if leaf.ccm.bypass_plain() {
                bypassed += 1;
            }
            let mut live = 0usize;
            let mut occupied = 0usize;
            for seg in &leaf.segs {
                let cnt = seg.count_plain();
                occupied += cnt;
                for i in 0..cnt {
                    if seg.val_cell(i).load_plain() != TOMBSTONE {
                        live += 1;
                    }
                }
            }
            occupied_total += occupied;
            s.live_records += live;
            s.tombstones += occupied - live;
            let quarter = ((4 * live) / capacity.max(1)).min(3);
            s.occupancy_quarters[quarter] += 1;
            cur = NodeRef::from_word(leaf.next.load_plain());
        }
        if s.leaves > 0 {
            s.leaf_fill = occupied_total as f64 / (s.leaves * capacity) as f64;
            s.bypassed_fraction = bypassed as f64 / s.leaves as f64;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use euno_htm::{ConcurrentMap, Runtime};

    use crate::tree::EunoBTreeDefault;

    #[test]
    fn stats_on_empty_tree() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let s = t.stats();
        assert_eq!(s.depth, 0);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.internals, 0);
        assert_eq!(s.live_records, 0);
    }

    #[test]
    fn stats_track_growth_and_deletion() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..3_000u64 {
            t.put(&mut ctx, k, k);
        }
        let s = t.stats();
        assert_eq!(s.live_records, 3_000);
        assert_eq!(s.tombstones, 0);
        assert!(s.depth >= 2, "3000 records at fanout 16 need depth ≥ 2");
        assert!(s.leaves >= 3_000 / 16);
        assert_eq!(s.leaves, t.leaf_count_plain());
        assert!(s.leaf_fill > 0.3 && s.leaf_fill <= 1.0);
        let total_q: usize = s.occupancy_quarters.iter().sum();
        assert_eq!(total_q, s.leaves);

        // Deletions become tombstones until compaction.
        for k in 0..1_000u64 {
            t.delete(&mut ctx, k);
        }
        let s = t.stats();
        assert_eq!(s.live_records, 2_000);
        assert_eq!(s.tombstones, 1_000);

        // A maintenance sweep compacts and merges.
        t.maintain(&mut ctx);
        let s2 = t.stats();
        assert_eq!(s2.live_records, 2_000);
        assert!(s2.tombstones < 1_000);
        assert!(s2.leaves <= s.leaves);
    }

    #[test]
    fn bypass_fraction_reflects_adaptive_state() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..500u64 {
            t.put(&mut ctx, k, k);
        }
        let s = t.stats();
        // Split-born leaves start protected; single-threaded calm traffic
        // hasn't flipped most of them yet, but the field must be a valid
        // fraction consistent with the leaf count.
        assert!((0.0..=1.0).contains(&s.bypassed_fraction));
    }
}
