//! Tree introspection: structural statistics for experiments and
//! diagnostics (uninstrumented; intended for quiesced trees).

use crate::ccm::Ccm;
use crate::node::{EunoLeaf, NodeRef, INTERNAL_FANOUT};
use crate::tree::EunoBTree;
use euno_htm::{TxWord, TOMBSTONE};

/// Stop collecting violations past this many — one is already a failed
/// audit, and a structurally broken big tree could otherwise flood.
const MAX_VIOLATIONS: usize = 64;

/// A structural snapshot of an [`EunoBTree`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Interior levels above the leaf layer.
    pub depth: usize,
    pub leaves: usize,
    pub internals: usize,
    /// Live (non-tombstoned) records.
    pub live_records: usize,
    /// Tombstoned slots awaiting compaction.
    pub tombstones: usize,
    /// Occupied slots ÷ total slots across all leaves.
    pub leaf_fill: f64,
    /// Fraction of leaves currently in adaptive bypass.
    pub bypassed_fraction: f64,
    /// Histogram of live records per leaf, bucketed by occupancy quarter
    /// (0–25 %, 25–50 %, 50–75 %, 75–100 %).
    pub occupancy_quarters: [usize; 4],
}

impl<const SEGS: usize, const K: usize> EunoBTree<SEGS, K> {
    /// Walk the whole structure and summarize it. Not concurrency-safe in
    /// the linearizable sense (counts may be slightly stale under traffic)
    /// but never unsound — the walk holds an epoch pin, so nodes a
    /// concurrent merge retires stay readable until it finishes.
    pub fn stats(&self) -> TreeStats {
        let _pin = self.rt.epoch().pin_scoped();
        let mut s = TreeStats::default();

        // Depth + internal count via a queue walk from the root.
        let root = NodeRef::from_word(self.root_bits());
        let mut frontier = vec![root];
        while let Some(&first) = frontier.first() {
            if first.is_leaf() {
                break;
            }
            s.depth += 1;
            let mut next = Vec::with_capacity(frontier.len() * 8);
            for nref in frontier {
                let node = unsafe { nref.as_internal() };
                s.internals += 1;
                let cnt = node.count.load_plain() as usize;
                next.push(NodeRef::from_word(node.child0.load_plain()));
                for j in 0..cnt {
                    next.push(NodeRef::from_word(node.children[j].load_plain()));
                }
            }
            frontier = next;
        }

        // Leaf layer via the chain.
        let mut cur = root;
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        let capacity = EunoLeaf::<SEGS, K>::capacity();
        let mut occupied_total = 0usize;
        let mut bypassed = 0usize;
        while !cur.is_null() {
            let leaf = unsafe { cur.as_leaf::<SEGS, K>() };
            s.leaves += 1;
            if leaf.ccm.bypass_plain() {
                bypassed += 1;
            }
            let mut live = 0usize;
            let mut occupied = 0usize;
            for seg in &leaf.segs {
                let cnt = seg.count_plain();
                occupied += cnt;
                for i in 0..cnt {
                    if seg.val_cell(i).load_plain() != TOMBSTONE {
                        live += 1;
                    }
                }
            }
            occupied_total += occupied;
            s.live_records += live;
            s.tombstones += occupied - live;
            let quarter = ((4 * live) / capacity.max(1)).min(3);
            s.occupancy_quarters[quarter] += 1;
            cur = NodeRef::from_word(leaf.next.load_plain());
        }
        if s.leaves > 0 {
            s.leaf_fill = occupied_total as f64 / (s.leaves * capacity) as f64;
            s.bypassed_fraction = bypassed as f64 / s.leaves as f64;
        }
        s
    }

    /// Per-leaf `(address, seqno)` snapshot of the live chain, taken under
    /// an epoch pin so concurrently retired leaves stay readable. An
    /// address identifies one leaf only while it stays on the chain:
    /// merged leaves are reclaimed after a grace period and the allocator
    /// may reuse their addresses, so consumers comparing snapshots must
    /// treat an address that left the chain and came back as a fresh
    /// identity (see `euno-check`'s `SeqnoWatch`).
    pub fn leaf_seqnos_plain(&self) -> Vec<(usize, u64)> {
        let _pin = self.rt.epoch().pin_scoped();
        let mut out = Vec::new();
        let mut cur = NodeRef::from_word(self.root_bits());
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        while !cur.is_null() {
            let leaf = unsafe { cur.as_leaf::<SEGS, K>() };
            out.push((leaf as *const _ as usize, leaf.seqno.load_plain()));
            cur = NodeRef::from_word(leaf.next.load_plain());
        }
        out
    }

    /// Plain (uninstrumented) root-to-leaf descent, mirroring
    /// `traverse::descend`'s separator arithmetic.
    fn plain_descend(&self, key: u64) -> NodeRef {
        let mut cur = NodeRef::from_word(self.root_bits());
        while !cur.is_leaf() {
            let node = unsafe { cur.as_internal() };
            let cnt = (node.count.load_plain() as usize).min(INTERNAL_FANOUT);
            let mut lo = 0usize;
            let mut hi = cnt;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if node.keys[mid].load_plain() <= key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let next = if lo == 0 {
                node.child0.load_plain()
            } else {
                node.children[lo - 1].load_plain()
            };
            cur = NodeRef::from_word(next);
        }
        cur
    }

    /// Live `(key, value)` records of one leaf, sorted, via plain loads.
    fn leaf_live_plain(leaf: &EunoLeaf<SEGS, K>) -> Vec<(u64, u64)> {
        let mut recs = Vec::new();
        for seg in &leaf.segs {
            let cnt = seg.count_plain();
            for i in 0..cnt {
                let v = seg.val_cell(i).load_plain();
                if v != TOMBSTONE {
                    recs.push((seg.key_cell(i).load_plain(), v));
                }
            }
        }
        recs.sort_unstable_by_key(|&(k, _)| k);
        recs
    }

    /// Audit the structural invariants of a **quiescent** tree (no
    /// concurrent operations in flight). Returns human-readable violation
    /// descriptions; an empty vector is a clean bill of health. Checked:
    ///
    /// * no lock is left held: fallback word, root lock, every leaf's
    ///   split lock, every CCM lock-bit vector;
    /// * the index-reachable leaf sequence (in-order walk) is exactly the
    ///   `next`-chain sequence, with no cycle;
    /// * every node's children point back at it (`parent` consistency)
    ///   and the root's parent is null;
    /// * separator keys within each internal node are strictly ascending;
    /// * live keys are strictly ascending along the whole chain (no
    ///   duplicates within or across leaves);
    /// * if mark bits are enabled, each leaf's CCM marks are a superset of
    ///   its live keys' slots (a get must never miss a present key);
    /// * a root descent for every live key lands on the leaf that holds it
    ///   (separator arithmetic agrees with record placement).
    pub fn audit_quiescent(&self) -> Vec<String> {
        let _pin = self.rt.epoch().pin_scoped();
        let mut viol = Vec::new();
        macro_rules! report {
            ($($arg:tt)*) => {
                if viol.len() < MAX_VIOLATIONS {
                    viol.push(format!($($arg)*));
                } else {
                    return viol;
                }
            };
        }
        let root = NodeRef::from_word(self.root_bits());

        if self.fallback_cell().load_plain() != 0 {
            report!("fallback lock held at quiescence");
        }
        if self.ctrl.root_lock.is_locked_plain() {
            report!("root lock held at quiescence");
        }
        if unsafe { root.parent_cell::<SEGS, K>() }.load_plain() != 0 {
            report!("root has a non-null parent pointer");
        }

        // In-order walk of the index. Children pop in left-to-right order.
        let mut index_leaves: Vec<NodeRef> = Vec::new();
        let mut stack = vec![root];
        while let Some(nref) = stack.pop() {
            if nref.is_null() {
                report!("null child reachable from the index");
                continue;
            }
            if nref.is_leaf() {
                index_leaves.push(nref);
                continue;
            }
            let node = unsafe { nref.as_internal() };
            let cnt = node.count.load_plain() as usize;
            if cnt > INTERNAL_FANOUT {
                report!("internal {:#x} count {cnt} exceeds fanout", nref.to_word());
                continue;
            }
            for j in 1..cnt {
                let (a, b) = (node.keys[j - 1].load_plain(), node.keys[j].load_plain());
                if a >= b {
                    report!(
                        "internal {:#x} separators not ascending at {j}: {a} ≥ {b}",
                        nref.to_word()
                    );
                }
            }
            let me = NodeRef::of_internal(node).to_word();
            let mut kids = vec![NodeRef::from_word(node.child0.load_plain())];
            for j in 0..cnt {
                kids.push(NodeRef::from_word(node.children[j].load_plain()));
            }
            for &kid in &kids {
                if kid.is_null() {
                    report!("internal {:#x} has a null child", me);
                    continue;
                }
                let back = unsafe { kid.parent_cell::<SEGS, K>() }.load_plain();
                if back != me {
                    report!(
                        "child {:#x} of internal {:#x} has parent {:#x}",
                        kid.to_word(),
                        me,
                        back
                    );
                }
            }
            for &kid in kids.iter().rev() {
                if !kid.is_null() {
                    stack.push(kid);
                }
            }
        }

        // Leaf chain, with cycle detection bounded by the index count.
        let mut chain_leaves: Vec<NodeRef> = Vec::new();
        let mut cur = root;
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        while !cur.is_null() {
            if chain_leaves.len() > index_leaves.len() {
                report!("leaf chain longer than the index: cycle or leaked leaf");
                break;
            }
            chain_leaves.push(cur);
            cur = NodeRef::from_word(unsafe { cur.as_leaf::<SEGS, K>() }.next.load_plain());
        }
        if chain_leaves != index_leaves {
            report!(
                "index-reachable leaves ≠ chain sequence ({} vs {} leaves)",
                index_leaves.len(),
                chain_leaves.len()
            );
        }

        // Per-leaf content invariants along the chain.
        let mut prev_key: Option<u64> = None;
        for &lref in &chain_leaves {
            let leaf = unsafe { lref.as_leaf::<SEGS, K>() };
            let addr = lref.to_word();
            if leaf.split_lock.is_locked_plain() {
                report!("leaf {addr:#x} split lock held at quiescence");
            }
            if leaf.ccm.locks_plain() != 0 {
                report!(
                    "leaf {addr:#x} CCM lock bits {:#b} held at quiescence",
                    leaf.ccm.locks_plain()
                );
            }
            let recs = Self::leaf_live_plain(leaf);
            for w in recs.windows(2) {
                if w[0].0 >= w[1].0 {
                    report!(
                        "leaf {addr:#x} keys not strictly ascending: {} ≥ {}",
                        w[0].0,
                        w[1].0
                    );
                }
            }
            let marks = leaf.ccm.marks_plain();
            for &(k, _) in &recs {
                if let Some(p) = prev_key {
                    if k <= p {
                        report!("chain order violated: key {k} after {p}");
                    }
                }
                prev_key = Some(k);
                if self.cfg.ccm_mark_bits {
                    let slot = Ccm::slot(k, Self::ccm_bits());
                    if marks & (1u64 << slot) == 0 {
                        report!("leaf {addr:#x} mark bits miss live key {k} (slot {slot})");
                    }
                }
                let found = self.plain_descend(k);
                if found != lref {
                    report!(
                        "descent for key {k} lands on leaf {:#x}, but it lives in {addr:#x}",
                        found.to_word()
                    );
                }
            }
            if viol.len() >= MAX_VIOLATIONS {
                return viol;
            }
        }
        viol
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use euno_htm::{ConcurrentMap, Runtime};

    use crate::tree::EunoBTreeDefault;

    #[test]
    fn stats_on_empty_tree() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let s = t.stats();
        assert_eq!(s.depth, 0);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.internals, 0);
        assert_eq!(s.live_records, 0);
    }

    #[test]
    fn stats_track_growth_and_deletion() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..3_000u64 {
            t.put(&mut ctx, k, k);
        }
        let s = t.stats();
        assert_eq!(s.live_records, 3_000);
        assert_eq!(s.tombstones, 0);
        assert!(s.depth >= 2, "3000 records at fanout 16 need depth ≥ 2");
        assert!(s.leaves >= 3_000 / 16);
        assert_eq!(s.leaves, t.leaf_count_plain());
        assert!(s.leaf_fill > 0.3 && s.leaf_fill <= 1.0);
        let total_q: usize = s.occupancy_quarters.iter().sum();
        assert_eq!(total_q, s.leaves);

        // Deletions become tombstones until compaction.
        for k in 0..1_000u64 {
            t.delete(&mut ctx, k);
        }
        let s = t.stats();
        assert_eq!(s.live_records, 2_000);
        assert_eq!(s.tombstones, 1_000);

        // A maintenance sweep compacts and merges.
        t.maintain(&mut ctx);
        let s2 = t.stats();
        assert_eq!(s2.live_records, 2_000);
        assert!(s2.tombstones < 1_000);
        assert!(s2.leaves <= s.leaves);
    }

    #[test]
    fn audit_clean_after_churn_and_maintain() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..2_000u64 {
            t.put(&mut ctx, k * 3, k);
        }
        for k in 0..2_000u64 {
            if k % 3 != 0 {
                t.delete(&mut ctx, k * 3);
            }
        }
        t.maintain(&mut ctx);
        let mut out = Vec::new();
        t.scan(&mut ctx, 0, 100, &mut out);
        assert_eq!(t.audit_quiescent(), Vec::<String>::new());
        let seqnos = t.leaf_seqnos_plain();
        assert_eq!(seqnos.len(), t.leaf_count_plain());
    }

    #[test]
    fn audit_flags_forged_violations() {
        use crate::node::NodeRef;
        use euno_htm::TxWord;
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..200u64 {
            t.put(&mut ctx, k, k);
        }
        assert!(t.audit_quiescent().is_empty());

        // A leaked split lock is reported.
        let mut cur = NodeRef::from_word(t.root_bits());
        while !cur.is_leaf() {
            cur = NodeRef::from_word(unsafe { cur.as_internal() }.child0.load_plain());
        }
        let leaf = unsafe { cur.as_leaf::<4, 4>() };
        leaf.split_lock.acquire(&mut ctx);
        let viol = t.audit_quiescent();
        assert!(
            viol.iter().any(|v| v.contains("split lock held")),
            "{viol:?}"
        );
        leaf.split_lock.release(&mut ctx);

        // Dropping a mark bit under a live key breaks the superset rule.
        let saved = leaf.ccm.marks_plain();
        leaf.ccm.install_marks_prepublication(0);
        let viol = t.audit_quiescent();
        assert!(
            viol.iter().any(|v| v.contains("mark bits miss live key")),
            "{viol:?}"
        );
        leaf.ccm.install_marks_prepublication(saved);

        // Unlinking a leaf from the chain desynchronizes it from the index.
        let saved_next = leaf.next.load_plain();
        let skip = unsafe { NodeRef::from_word(saved_next).as_leaf::<4, 4>() };
        leaf.next.store_plain(skip.next.load_plain());
        let viol = t.audit_quiescent();
        assert!(
            viol.iter().any(|v| v.contains("chain sequence")),
            "{viol:?}"
        );
        leaf.next.store_plain(saved_next);
        assert!(t.audit_quiescent().is_empty());
    }

    #[test]
    fn bypass_fraction_reflects_adaptive_state() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..500u64 {
            t.put(&mut ctx, k, k);
        }
        let s = t.stats();
        // Split-born leaves start protected; single-threaded calm traffic
        // hasn't flipped most of them yet, but the field must be a valid
        // fraction consistent with the leaf count.
        assert!((0.0..=1.0).contains(&s.bypassed_fraction));
    }
}
