//! Debug-only ordering probes.
//!
//! The seqno-publication discipline (bump the version *before* any record
//! movement or unlink becomes reachable) is unobservable in a
//! single-threaded test: by the time the structural operation returns,
//! both orderings produce identical state. These probes make the write
//! order itself assertable — structural code drops named marks at the
//! bump and at the first record movement, and regression tests check the
//! sequence. Everything compiles away in release builds, so the probes
//! cost nothing on benchmark paths.

#[cfg(debug_assertions)]
mod imp {
    use std::cell::RefCell;

    thread_local! {
        static MARKS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    pub fn mark(tag: &'static str) {
        MARKS.with(|m| m.borrow_mut().push(tag));
    }

    pub fn take() -> Vec<&'static str> {
        MARKS.with(|m| std::mem::take(&mut *m.borrow_mut()))
    }
}

#[cfg(debug_assertions)]
pub use imp::{mark, take};

#[cfg(not(debug_assertions))]
#[inline(always)]
pub fn mark(_tag: &'static str) {}

#[cfg(not(debug_assertions))]
pub fn take() -> Vec<&'static str> {
    Vec::new()
}

/// Index of `tag`'s first occurrence in a probe trace, panicking with a
/// readable message when absent (test helper).
pub fn index_of(trace: &[&'static str], tag: &str) -> usize {
    trace
        .iter()
        .position(|&t| t == tag)
        .unwrap_or_else(|| panic!("probe mark {tag:?} missing from trace {trace:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "probes are debug-only")]
    fn marks_record_in_order_and_drain() {
        take(); // isolate from marks left by other code on this thread
        mark("a");
        mark("b");
        let t = take();
        assert_eq!(t, vec!["a", "b"]);
        assert_eq!(index_of(&t, "b"), 1);
        assert!(take().is_empty(), "take drains");
    }
}
