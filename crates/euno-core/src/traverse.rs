//! The two-step transactional traversal (Algorithm 2).
//!
//! Every point operation runs as:
//!
//! 1. an *upper* HTM region descends the index and reads the target leaf's
//!    `seqno` into a local;
//! 2. the conflict-control stage (outside any region) takes the key's CCM
//!    lock bit, consults the mark bit, and pre-acquires the split lock for
//!    inserts into near-full leaves;
//! 3. a *lower* HTM region re-reads `seqno` — if unchanged, the leaf
//!    pointer is still the right one and the operation completes locally;
//!    if changed, a concurrent split moved records and the operation
//!    retries from the root (the rare case).
//!
//! Both regions run on the layered executor in `euno_htm::exec` under the
//! tree's [`RetryStrategy`](euno_htm::RetryStrategy); this module owns no
//! retry loop of its own.

use std::sync::atomic::Ordering;

use euno_htm::{ThreadCtx, Tx, TxResult, TxWord, TOMBSTONE};

use crate::ccm::Ccm;
use crate::node::{EunoInternal, EunoLeaf, NodeRef, INTERNAL_FANOUT};
use crate::tree::{EunoBTree, Lower, Req};

impl<const SEGS: usize, const K: usize> EunoBTree<SEGS, K> {
    /// Root-to-leaf descent inside the upper HTM region.
    fn descend<'t>(&'t self, tx: &mut Tx<'_>, key: u64) -> TxResult<&'t EunoLeaf<SEGS, K>> {
        let mut cur = NodeRef::from_word(tx.read(&self.ctrl.root)?);
        while !cur.is_leaf() {
            let node: &EunoInternal = unsafe { cur.as_internal() };
            let cnt = tx.read(&node.count)? as usize;
            let (mut lo, mut hi) = (0usize, cnt);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if tx.read(&node.keys[mid])? <= key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            cur = if lo == 0 {
                NodeRef::from_word(tx.read(&node.child0)?)
            } else {
                NodeRef::from_word(tx.read(&node.children[lo - 1])?)
            };
        }
        Ok(unsafe { cur.as_leaf::<SEGS, K>() })
    }

    /// Algorithm 2 lines 23-28: find the leaf, read its version.
    pub(crate) fn upper_region(
        &self,
        ctx: &mut ThreadCtx,
        key: u64,
    ) -> (&EunoLeaf<SEGS, K>, u64, u32) {
        let fp = self.cfg.middle_path.then(|| self.middle_footprint(key));
        let out = ctx.htm_execute_with(&self.ctrl.fallback, self.strategy(), fp.as_ref(), |tx| {
            tx.set_op_key(key);
            let leaf = self.descend(tx, key)?;
            let seq = tx.read(&leaf.seqno)?;
            Ok((NodeRef::of_leaf(leaf).to_word(), seq))
        });
        let (bits, seq) = out.value;
        let leaf = unsafe { NodeRef::from_word(bits).as_leaf::<SEGS, K>() };
        (leaf, seq, out.conflict_aborts)
    }

    /// Algorithm 2: the traversal shared by get, put and delete.
    pub(crate) fn traverse(
        &self,
        ctx: &mut ThreadCtx,
        req: Req,
        key: u64,
        newval: u64,
    ) -> Option<u64> {
        // Pin for the whole operation: the leaf pointer handed from the
        // upper to the lower region must survive a concurrent merge's
        // retirement (the epoch collector frees it only after this pin —
        // which predates the unlink — is released).
        ctx.epoch_enter();
        let out = self.traverse_pinned(ctx, req, key, newval);
        ctx.epoch_exit();
        out
    }

    fn traverse_pinned(&self, ctx: &mut ThreadCtx, req: Req, key: u64, newval: u64) -> Option<u64> {
        let mut force_split_lock = false;
        loop {
            // Step 1: upper region.
            let (leaf, seqno, upper_conflicts) = self.upper_region(ctx, key);

            // Step 2: conflict control (outside any region).
            let ccm_configured = self.cfg.ccm_lock_bits || self.cfg.ccm_mark_bits;
            let ccm_active = ccm_configured && !(self.cfg.adaptive && leaf.ccm.bypassed(ctx));
            let slot = Ccm::slot(key, Self::ccm_bits());
            ctx.charge(self.rt.cost.alu * 3); // hash computation
            let mut slot_locked = false;
            if ccm_active && self.cfg.ccm_lock_bits {
                leaf.ccm.lock_slot(ctx, slot);
                slot_locked = true;
            }
            let mut split_locked = false;
            let mut fast_miss = false;
            if self.cfg.ccm_mark_bits {
                match req {
                    Req::Put => {
                        // Claim existence (line 38). This runs even when
                        // the leaf is adaptively bypassed: the mark vector
                        // must stay a superset of the live keys or gets
                        // would miss real records once protection
                        // re-engages.
                        let existed = leaf.ccm.set_mark(ctx, slot);
                        // Pre-lock if an insert may split (lines 39-40).
                        if ccm_active
                            && !existed
                            && leaf.occupied_direct(ctx) + self.cfg.near_full_slack
                                >= Self::capacity()
                        {
                            leaf.split_lock.acquire(ctx);
                            split_locked = true;
                        }
                    }
                    // Definite miss: never enter the leaf (line 35).
                    Req::Get | Req::Delete => {
                        if ccm_active && !leaf.ccm.marked(ctx, slot) {
                            fast_miss = true;
                        }
                    }
                }
            }
            if force_split_lock && req == Req::Put && !split_locked {
                leaf.split_lock.acquire(ctx);
                split_locked = true;
            }

            // Step 3: lower region.
            let (outcome, lower_conflicts) = if fast_miss {
                (Lower::Done(None), 0)
            } else {
                // Middle-path footprint: the tree-global slot table, not
                // the CCM (whose slot bit may already be held from step 2
                // — re-acquiring it here would self-deadlock).
                let fp = self.cfg.middle_path.then(|| self.middle_footprint(key));
                let out =
                    ctx.htm_execute_with(&self.ctrl.fallback, self.strategy(), fp.as_ref(), |tx| {
                        tx.set_op_key(key);
                        if slot_locked {
                            // Same-record contenders queue on the CCM lock bit
                            // (§4.1): this attempt's true conflicts are
                            // serialized away, so the storm model must not
                            // re-manufacture them.
                            tx.mark_serialized();
                        }
                        if tx.read(&leaf.seqno)? != seqno {
                            return Ok(Lower::Inconsistent);
                        }
                        self.lower_body(tx, leaf, req, key, newval, split_locked)
                    });
                (out.value, out.conflict_aborts)
            };

            if split_locked {
                leaf.split_lock.release(ctx);
            }
            if slot_locked {
                leaf.ccm.unlock_slot(ctx, slot);
            }
            if self.cfg.adaptive {
                leaf.ccm.record_outcome(
                    ctx,
                    upper_conflicts + lower_conflicts,
                    self.cfg.adaptive_window,
                    self.cfg.adaptive_conflict_rate,
                );
            }

            match outcome {
                Lower::Done(v) => {
                    if req == Req::Delete && v.is_some() {
                        let n = self.deletes.fetch_add(1, Ordering::Relaxed) + 1;
                        // §4.2.4: re-balance once deletions cross the
                        // threshold (0 disables the automatic trigger).
                        let thr = self.cfg.rebalance_delete_threshold;
                        if thr > 0 && n.is_multiple_of(thr) {
                            self.maintain(ctx);
                        }
                    }
                    return v;
                }
                Lower::Inconsistent => continue,
                Lower::NeedSplitLock => {
                    force_split_lock = true;
                    continue;
                }
            }
        }
    }

    /// Direct-load root-to-leaf descent for the episode-free read path.
    /// Returns `None` on any implausible intermediate state (null child
    /// words from a half-applied commit, runaway depth) — the caller's
    /// optimistic retry loop re-descends. Every child word is stored
    /// word-atomically by writers, so a sampled pointer is always either
    /// the old or the new node, and retired nodes stay readable under the
    /// caller's epoch pin; validation afterwards decides whether the
    /// descent was consistent.
    pub(crate) fn descend_direct<'t>(
        &'t self,
        ctx: &mut ThreadCtx,
        key: u64,
    ) -> Option<&'t EunoLeaf<SEGS, K>> {
        let mut cur = NodeRef::from_word(self.ctrl.root.load_direct(ctx));
        let mut depth = 0;
        while !cur.is_leaf() {
            if cur.is_null() {
                return None;
            }
            depth += 1;
            if depth > 64 {
                return None;
            }
            let node: &EunoInternal = unsafe { cur.as_internal() };
            // Clamp: a stale count paired with a newer key array (or vice
            // versa) must degrade to a wrong-leaf descent caught by
            // validation, never an out-of-bounds index.
            let cnt = (node.count.load_direct(ctx) as usize).min(INTERNAL_FANOUT);
            let (mut lo, mut hi) = (0usize, cnt);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if node.keys[mid].load_direct(ctx) <= key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            cur = if lo == 0 {
                NodeRef::from_word(node.child0.load_direct(ctx))
            } else {
                NodeRef::from_word(node.children[lo - 1].load_direct(ctx))
            };
        }
        (cur.0 & !1 != 0).then(|| unsafe { cur.as_leaf::<SEGS, K>() })
    }

    /// Episode-free point lookup (the `read_opt` path): optimistic
    /// descent with direct loads under an epoch pin, bracketed by the
    /// leaf's `seqno` — read it, search the segments, re-read it — and
    /// closed out by the engine-level snapshot check (NOrec seqlock plus
    /// the fallback cell in concurrent mode, window overlap in virtual
    /// mode). Any change retries from the root; the seqno-bump-first
    /// discipline on splits, merges and reorganizations guarantees a
    /// reader that saw moving records also sees a changed seqno.
    pub(crate) fn get_read_opt(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.epoch_enter();
        let out = ctx.optimistic_execute(
            Some(key),
            |overlap| overlap.is_some(),
            |ctx| {
                let snap = ctx.optimistic_snapshot();
                let leaf = self.descend_direct(ctx, key)?;
                let s1 = leaf.seqno.load_direct(ctx);
                let mut found = None;
                for seg in &leaf.segs {
                    if let Some(v) = seg.find_direct(ctx, key) {
                        found = Some(v);
                        break;
                    }
                }
                if leaf.seqno.load_direct(ctx) != s1
                    || !ctx.optimistic_validate(self.fallback_cell(), snap)
                {
                    return None;
                }
                Some(found.filter(|&v| v != TOMBSTONE))
            },
        );
        ctx.epoch_exit();
        out
    }
}
