//! # euno-core — Euno-B+Tree
//!
//! The primary contribution of *Eunomia: Scaling Concurrent Search Trees
//! under Contention Using HTM* (Wang et al., PPoPP 2017), implemented over
//! the `euno-htm` engine:
//!
//! * split HTM regions glued by per-leaf version numbers ([`tree`]),
//! * scattered (segmented) leaves with a randomized write scheduler
//!   ([`segment`]) and sorted *reserved keys* buffers ([`node`]),
//! * a conflict-control module of mark/lock bit vectors ([`ccm`]),
//! * per-leaf adaptive contention control ([`ccm`], [`config`]).
//!
//! ```
//! use euno_htm::{Runtime, ConcurrentMap};
//! use euno_core::EunoBTreeDefault;
//! use std::sync::Arc;
//!
//! let rt = Runtime::new_virtual();
//! let tree = EunoBTreeDefault::new(Arc::clone(&rt));
//! let mut ctx = rt.thread(0);
//! tree.put(&mut ctx, 42, 4200);
//! assert_eq!(tree.get(&mut ctx, 42), Some(4200));
//! ```

pub mod ccm;
pub mod config;
pub mod inspect;
pub mod leaf_ops;
pub mod node;
pub mod probe;
pub mod rebalance;
pub mod scan;
pub mod segment;
pub mod structural;
pub mod traverse;
pub mod tree;

pub use ccm::Ccm;
pub use config::EunoConfig;
pub use inspect::TreeStats;
pub use node::{EunoInternal, EunoLeaf, NodeRef, INTERNAL_FANOUT};
pub use segment::Segment;
pub use tree::{EunoBTree, EunoBTreeDefault, EunoBTreeUnpartitioned};
