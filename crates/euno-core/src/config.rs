//! Euno-B+Tree configuration knobs.
//!
//! Each flag corresponds to one bar of the paper's design-choice ablation
//! (Figure 13): splitting the HTM region is inherent to this tree (the
//! `+Split HTM` variant is this tree with everything else off and a single
//! segment per leaf), and `ccm_lock_bits` / `ccm_mark_bits` / `adaptive`
//! toggle the remaining increments.

/// Runtime feature flags and thresholds for [`EunoBTree`](crate::EunoBTree).
#[derive(Clone, Debug)]
pub struct EunoConfig {
    /// Enable the CCM's per-slot advisory lock bits (serialize same-record
    /// requests before they enter the lower HTM region).
    pub ccm_lock_bits: bool,
    /// Enable the CCM's mark bits (Bloom-style existence filter that turns
    /// definite misses around before they touch the leaf).
    pub ccm_mark_bits: bool,
    /// Enable per-leaf adaptive contention control: bypass the CCM and the
    /// split-lock pre-acquisition while the observed conflict rate is low.
    pub adaptive: bool,
    /// A leaf counts as "near full" (Algorithm 2 line 39) when its live
    /// records ≥ capacity − `near_full_slack`.
    pub near_full_slack: usize,
    /// Write-scheduler retries before reorganizing (Algorithm 3 line 61).
    pub scheduler_retries: u32,
    /// Adaptive detector: operations per decision window.
    pub adaptive_window: u64,
    /// Adaptive detector: bypass while `conflicts / ops` in the last
    /// window stayed at or below this rate.
    pub adaptive_conflict_rate: f64,
    /// Run a deferred re-balance sweep (§4.2.4) every this many deletions;
    /// 0 disables the automatic trigger (call
    /// [`EunoBTree::maintain`](crate::EunoBTree::maintain) manually).
    pub rebalance_delete_threshold: u64,
    /// Enable the three-path executor's footprint-local middle path: a
    /// region that exhausts its speculative budget retries while holding
    /// the advisory slots for its key before escalating to the global
    /// fallback lock. Off reproduces the classic two-path executor.
    pub middle_path: bool,
    /// Serve gets and scans on the episode-free optimistic read path:
    /// descend with direct loads under an epoch pin, validate via the
    /// per-leaf `seqno` (plus the NOrec seqlock and the fallback cell in
    /// concurrent mode), retry from the root on any change. Writes keep
    /// the two-step transactional traversal. Off (the default) reproduces
    /// the paper's all-episode system.
    pub read_opt: bool,
}

impl Default for EunoConfig {
    fn default() -> Self {
        EunoConfig {
            ccm_lock_bits: true,
            ccm_mark_bits: true,
            adaptive: true,
            near_full_slack: 4,
            scheduler_retries: 3,
            adaptive_window: 32,
            adaptive_conflict_rate: 0.05,
            rebalance_delete_threshold: 100_000,
            middle_path: true,
            read_opt: false,
        }
    }
}

impl EunoConfig {
    /// The classic two-path executor (HTM → global fallback), for the
    /// three-path ablation. All other features keep their defaults.
    pub fn two_path(mut self) -> Self {
        self.middle_path = false;
        self
    }

    /// The full system with the episode-free optimistic read path on
    /// (`Euno-ReadOpt` in the benchmark tables).
    pub fn read_optimized() -> Self {
        EunoConfig {
            read_opt: true,
            ..Default::default()
        }
    }
}

impl EunoConfig {
    /// Figure 13 `+Split HTM`: region splitting only (use with one segment
    /// per leaf, e.g. `EunoBTree::<1, 16>`).
    pub fn split_htm_only() -> Self {
        EunoConfig {
            ccm_lock_bits: false,
            ccm_mark_bits: false,
            adaptive: false,
            ..Default::default()
        }
    }

    /// Figure 13 `+Part Leaf`: region splitting + partitioned leaves
    /// (use with the default `EunoBTree::<4, 4>`).
    pub fn part_leaf() -> Self {
        Self::split_htm_only()
    }

    /// Figure 13 `+CCM lockbits`.
    pub fn ccm_lockbits() -> Self {
        EunoConfig {
            ccm_lock_bits: true,
            ccm_mark_bits: false,
            adaptive: false,
            ..Default::default()
        }
    }

    /// Figure 13 `+CCM markbits`.
    pub fn ccm_markbits() -> Self {
        EunoConfig {
            ccm_lock_bits: true,
            ccm_mark_bits: true,
            adaptive: false,
            ..Default::default()
        }
    }

    /// Figure 13 `+Adaptive` — the full system (also [`Default`]).
    pub fn full() -> Self {
        EunoConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_ladder_is_monotone() {
        let steps = [
            EunoConfig::split_htm_only(),
            EunoConfig::ccm_lockbits(),
            EunoConfig::ccm_markbits(),
            EunoConfig::full(),
        ];
        let score =
            |c: &EunoConfig| c.ccm_lock_bits as u32 + c.ccm_mark_bits as u32 + c.adaptive as u32;
        for w in steps.windows(2) {
            assert!(score(&w[0]) < score(&w[1]));
        }
    }

    #[test]
    fn default_enables_everything() {
        let c = EunoConfig::default();
        assert!(c.ccm_lock_bits && c.ccm_mark_bits && c.adaptive);
        assert!(c.adaptive_window > 0);
        assert!(!c.read_opt, "the paper's system is all-episode by default");
    }

    #[test]
    fn read_optimized_keeps_the_full_write_path() {
        let c = EunoConfig::read_optimized();
        assert!(c.read_opt);
        assert!(
            c.ccm_lock_bits && c.ccm_mark_bits && c.adaptive && c.middle_path,
            "read_opt changes only the read path"
        );
    }
}
