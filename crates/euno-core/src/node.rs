//! Euno-B+Tree node types: scattered leaves (Figure 4) and internal index
//! nodes with parent links.
//!
//! Layout is cache-line-deliberate:
//!
//! * the leaf header (`seqno`, `next`, `parent`) has its own line — it is
//!   read inside HTM regions, so nothing that gets CAS'd from outside
//!   regions may share it;
//! * the split lock has its own line — its acquisition invalidates a line,
//!   which must not be one transactions read;
//! * each segment is line-aligned with keys and values on separate lines
//!   (see [`Segment`]);
//! * the CCM is one separate line (see [`Ccm`]).
//!
//! Records live **scattered across the segments at all times** — a
//! reorganization or split deals the sorted record set round-robin over
//! the segments, so keys that are adjacent in key order live in different
//! segments and therefore on different cache lines. This placement is
//! what keeps a hot run of Zipfian keys from re-concentrating on one line
//! after the leaf reorganizes (the *reserved keys* sort buffer of §4.1 is
//! transient scratch, tracked for the §5.7 memory analysis but never the
//! steady-state home of records).

use euno_htm::{
    AdvisoryLock, Arena, LineClass, Runtime, Tx, TxCell, TxResult, TxWord, KEY_SENTINEL,
};

use crate::ccm::Ccm;
use crate::segment::Segment;

/// Internal-node fanout (the paper sets node fanout to 16, §5.7).
pub const INTERNAL_FANOUT: usize = 16;

/// A scattered leaf: header, split lock, `SEGS` segments of `K` slots, and
/// the conflict-control module.
#[repr(C, align(64))]
pub struct EunoLeaf<const SEGS: usize, const K: usize> {
    /// Version number tracking splits (the consistency glue between the
    /// upper and lower HTM regions, §4.1/Figure 4).
    pub seqno: TxCell<u64>,
    /// Next-leaf chain for range scans (NodeRef bits).
    pub next: TxCell<u64>,
    /// Parent internal node (NodeRef bits; 0 at the root).
    pub parent: TxCell<u64>,
    _pad0: [u64; 5],
    /// Serializes splits and scans on this leaf (own cache line).
    pub split_lock: AdvisoryLock,
    _pad1: [u64; 7],
    pub segs: [Segment<K>; SEGS],
    pub ccm: Ccm,
}

impl<const SEGS: usize, const K: usize> EunoLeaf<SEGS, K> {
    pub fn empty() -> Self {
        assert!(SEGS >= 1 && K >= 2, "need at least one segment of ≥2 slots");
        assert!(
            2 * SEGS * K <= 64,
            "CCM bit vectors are single words: 2·fanout ≤ 64"
        );
        EunoLeaf {
            seqno: TxCell::new(0),
            next: TxCell::new(0),
            parent: TxCell::new(0),
            _pad0: [0; 5],
            split_lock: AdvisoryLock::new(),
            _pad1: [0; 7],
            segs: std::array::from_fn(|_| Segment::empty()),
            ccm: Ccm::new(),
        }
    }

    /// Total record slots (the paper's leaf fanout).
    pub const fn capacity() -> usize {
        SEGS * K
    }

    /// CCM bit-vector length: 2 × fanout (§4.1).
    pub const fn ccm_bits() -> u32 {
        (2 * SEGS * K) as u32
    }

    /// Occupied slots across all segments (transactional).
    pub fn occupied_tx(&self, tx: &mut Tx<'_>) -> TxResult<usize> {
        let mut n = 0;
        for s in &self.segs {
            n += s.count_tx(tx)?;
        }
        Ok(n)
    }

    /// Approximate occupancy from outside any region (the Algorithm 2
    /// line 39 `isNearFull` check happens before the lower region).
    pub fn occupied_direct(&self, ctx: &mut euno_htm::ThreadCtx) -> usize {
        let mut n = 0;
        for s in &self.segs {
            n += s.count_plain();
            ctx.charge(ctx.runtime().cost.access_hit);
        }
        n
    }

    pub fn register(&self, rt: &Runtime) {
        let base = self as *const Self as usize;
        let segs_off = std::mem::offset_of!(Self, segs);
        let ccm_off = std::mem::offset_of!(Self, ccm);
        // Whole-leaf range for the contention profiler: address-carrying
        // trace events (conflict lines, lock cells, CCM words) inside the
        // leaf attribute to this base.
        rt.register_object(base, std::mem::size_of::<Self>());
        // Header + split-lock lines.
        rt.register_region(base, segs_off, LineClass::Metadata);
        // Segments: record storage (their count words live amid the
        // records deliberately — per-segment metadata is the point).
        rt.register_region(base + segs_off, ccm_off - segs_off, LineClass::Record);
        // CCM line.
        rt.register_region(
            base + ccm_off,
            std::mem::size_of::<Ccm>(),
            LineClass::Metadata,
        );
    }
}

/// Internal index node with parent link.
#[repr(C, align(64))]
pub struct EunoInternal {
    pub count: TxCell<u64>,
    pub child0: TxCell<u64>,
    pub parent: TxCell<u64>,
    _pad: [u64; 5],
    pub keys: [TxCell<u64>; INTERNAL_FANOUT],
    pub children: [TxCell<u64>; INTERNAL_FANOUT],
}

impl EunoInternal {
    pub fn empty() -> Self {
        EunoInternal {
            count: TxCell::new(0),
            child0: TxCell::new(0),
            parent: TxCell::new(0),
            _pad: [0; 5],
            keys: std::array::from_fn(|_| TxCell::new(KEY_SENTINEL)),
            children: std::array::from_fn(|_| TxCell::new(0)),
        }
    }

    pub fn register(&self, rt: &Runtime) {
        rt.register_value(self, LineClass::Structure);
    }
}

/// Tagged node pointer: bit 0 set ⇒ leaf.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeRef(pub u64);

impl NodeRef {
    pub const NULL: NodeRef = NodeRef(0);

    pub fn of_leaf<const S: usize, const K: usize>(l: &EunoLeaf<S, K>) -> Self {
        NodeRef(l as *const EunoLeaf<S, K> as u64 | 1)
    }

    pub fn of_internal(i: &EunoInternal) -> Self {
        NodeRef(i as *const EunoInternal as u64)
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn is_leaf(self) -> bool {
        self.0 & 1 == 1
    }

    /// # Safety
    /// Must originate from [`NodeRef::of_leaf`] on an arena node that
    /// outlives `'a` (trees reclaim nodes only at drop).
    #[inline]
    pub unsafe fn as_leaf<'a, const S: usize, const K: usize>(self) -> &'a EunoLeaf<S, K> {
        debug_assert!(self.is_leaf() && !self.is_null());
        &*((self.0 & !1) as *const EunoLeaf<S, K>)
    }

    /// # Safety
    /// As [`NodeRef::as_leaf`], for internal nodes.
    #[inline]
    pub unsafe fn as_internal<'a>(self) -> &'a EunoInternal {
        debug_assert!(!self.is_leaf() && !self.is_null());
        &*(self.0 as *const EunoInternal)
    }

    /// The node's parent-pointer cell, whatever its kind.
    ///
    /// # Safety
    /// As [`NodeRef::as_leaf`].
    pub unsafe fn parent_cell<'a, const S: usize, const K: usize>(self) -> &'a TxCell<u64> {
        if self.is_leaf() {
            &self.as_leaf::<S, K>().parent
        } else {
            &self.as_internal().parent
        }
    }
}

impl TxWord for NodeRef {
    fn to_word(self) -> u64 {
        self.0
    }
    fn from_word(w: u64) -> Self {
        NodeRef(w)
    }
}

/// Arenas owning all of a tree's allocations.
pub struct NodeArenas<const S: usize, const K: usize> {
    pub leaves: Arena<EunoLeaf<S, K>>,
    pub internals: Arena<EunoInternal>,
}

impl<const S: usize, const K: usize> NodeArenas<S, K> {
    pub fn new() -> Self {
        NodeArenas {
            leaves: Arena::new(),
            internals: Arena::new(),
        }
    }
}

impl<const S: usize, const K: usize> Default for NodeArenas<S, K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euno_htm::LineId;

    type Leaf44 = EunoLeaf<4, 4>;

    #[test]
    fn leaf_line_discipline() {
        let l: Box<Leaf44> = Box::new(EunoLeaf::empty());
        let header = LineId::of_ptr(&l.seqno as *const _);
        let lock_line = LineId::of_addr(&l.split_lock as *const _ as usize);
        let seg0k = l.segs[0].key_cell(0).line();
        let seg0v = l.segs[0].val_cell(0).line();
        let seg1k = l.segs[1].key_cell(0).line();
        let ccm = LineId::of_addr(&l.ccm as *const _ as usize);
        // All regions on distinct lines.
        let set: std::collections::HashSet<_> = [header, lock_line, seg0k, seg0v, seg1k, ccm]
            .into_iter()
            .collect();
        assert_eq!(
            set.len(),
            6,
            "header/lock/segment-keys/segment-vals/ccm must not share lines"
        );
    }

    #[test]
    fn capacity_and_bits() {
        assert_eq!(Leaf44::capacity(), 16);
        assert_eq!(Leaf44::ccm_bits(), 32);
        assert_eq!(EunoLeaf::<1, 16>::capacity(), 16);
        assert_eq!(EunoLeaf::<2, 8>::ccm_bits(), 32);
    }

    #[test]
    fn noderef_round_trips() {
        let l: Box<Leaf44> = Box::new(EunoLeaf::empty());
        let i: Box<EunoInternal> = Box::new(EunoInternal::empty());
        let lr = NodeRef::of_leaf(&*l);
        let ir = NodeRef::of_internal(&i);
        assert!(lr.is_leaf() && !ir.is_leaf());
        assert!(std::ptr::eq(unsafe { lr.as_leaf::<4, 4>() }, &*l));
        assert!(std::ptr::eq(unsafe { ir.as_internal() }, &*i));
        let pl = unsafe { lr.parent_cell::<4, 4>() };
        assert!(std::ptr::eq(pl, &l.parent));
        let pi = unsafe { ir.parent_cell::<4, 4>() };
        assert!(std::ptr::eq(pi, &i.parent));
    }

    #[test]
    #[should_panic(expected = "2·fanout ≤ 64")]
    fn oversized_ccm_rejected() {
        let _l: EunoLeaf<8, 8> = EunoLeaf::empty();
    }
}
