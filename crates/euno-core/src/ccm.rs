//! The conflict-control module (CCM): mark bits, lock bits and the
//! adaptive contention detector (§4.1, Figure 5).
//!
//! One CCM sits "above" each leaf node, on its own cache line so its CAS
//! traffic never invalidates lines the HTM regions read. A request hashes
//! its key to one of `2 × fanout` slots:
//!
//! * the slot's **lock bit** is a fine-grained advisory lock taken
//!   *outside* the HTM region, serializing concurrent requests to the same
//!   record (and to hash-colliding records) so true conflicts never meet
//!   inside a transaction;
//! * the slot's **mark bit** says "a key hashing here may exist" — a
//!   Bloom-filter-style filter that sends definite misses home without
//!   touching the leaf.
//!
//! The same line hosts the **adaptive contention detector** (§4.1): a
//! windowed conflict counter that flips a per-leaf `bypass` flag when the
//! leaf has been calm, letting requests skip the CCM entirely under low
//! contention (Figure 13's `+Adaptive` bar).
//!
//! Mark bits here are *monotone within a leaf's lifetime*: deletion does
//! not clear them (the paper clears; doing so can manufacture false
//! negatives for hash-colliding live keys, which would be a correctness
//! bug — see DESIGN.md). A split gives the new right node a freshly
//! computed vector, so staleness decays at reorganization.

use euno_htm::runtime::lock_key_for_bit;
use euno_htm::{acquire_mask_blocking, release_mask, EventKind, SlotLocks, ThreadCtx, TxCell};

/// Per-leaf conflict-control module. Fits one cache line.
///
/// The adaptive detector's counters are **monotone**: `ops` and
/// `conflicts` only ever grow, and a window is the span between two
/// multiples of the configured window size. The previous design reset
/// both counters at each window boundary, which raced in concurrent
/// mode — two threads crossing the boundary together could each
/// read-then-reset, losing conflicts and double-deciding `bypass`.
/// With monotone counters the closer is unique (exactly one
/// `fetch_add` returns the crossing value) and claims the window by
/// CAS on `epoch`; nothing is ever reset, so no increment can be lost.
#[repr(C, align(64))]
pub struct Ccm {
    /// Existence filter: bit per slot.
    marks: TxCell<u64>,
    /// Fine-grained advisory locks: bit per slot.
    locks: TxCell<u64>,
    /// Adaptive detector: operations seen (monotone).
    ops: TxCell<u64>,
    /// Adaptive detector: conflict aborts seen (monotone).
    conflicts: TxCell<u64>,
    /// Snapshot of `conflicts` at the last window close; the next close
    /// decides on the delta.
    window_base: TxCell<u64>,
    /// Closed-window counter; bumped by CAS by the unique closer.
    epoch: TxCell<u64>,
    /// 1 ⇒ requests may bypass the CCM and leaf-lock pre-acquisition.
    bypass: TxCell<u64>,
    _pad: [u64; 1],
}

impl Ccm {
    /// A fresh module. `bypass` starts true: an untouched leaf has no
    /// contention history, and the detector re-protects it on the very
    /// first conflict it observes (split-born nodes, which were hot a
    /// moment ago, are explicitly protected by the split path instead).
    pub fn new() -> Self {
        Ccm {
            marks: TxCell::new(0),
            locks: TxCell::new(0),
            ops: TxCell::new(0),
            conflicts: TxCell::new(0),
            window_base: TxCell::new(0),
            epoch: TxCell::new(0),
            bypass: TxCell::new(1),
            _pad: [0; 1],
        }
    }

    /// Force the protected state (used for nodes born from a split of a
    /// contended leaf, before publication).
    pub fn protect_prepublication(&self) {
        self.bypass.store_plain(0);
    }

    /// Hash a key to a slot in `0..nbits` (Figure 5's hash function).
    #[inline]
    pub fn slot(key: u64, nbits: u32) -> u32 {
        debug_assert!(nbits > 0 && nbits <= 64);
        euno_htm::slot_for_key(key, nbits)
    }

    // ----- lock bits -----

    /// Acquire the slot's lock bit (Algorithm 2 lines 30-31): spin-CAS in
    /// concurrent mode, virtual-wait in virtual mode.
    pub fn lock_slot(&self, ctx: &mut ThreadCtx, slot: u32) {
        // The shared spin/acquire core: test-and-test-and-set with bounded
        // exponential backoff in concurrent mode (the lock bits share one
        // word — and one line — with 63 other locks, so a convoying
        // fetch_or loop here would starve every operation on the leaf,
        // not just this slot), virtual-wait in virtual mode.
        let key = lock_key_for_bit(self.locks.raw_addr(), slot);
        let waited = acquire_mask_blocking(ctx, &self.locks, 1u64 << slot, key);
        ctx.trace(EventKind::LockAcquire {
            addr: self.locks.raw_addr() as u64,
            wait_cycles: waited,
        });
    }

    pub fn unlock_slot(&self, ctx: &mut ThreadCtx, slot: u32) {
        let key = lock_key_for_bit(self.locks.raw_addr(), slot);
        release_mask(ctx, &self.locks, 1u64 << slot, key);
        ctx.trace(EventKind::LockRelease {
            addr: self.locks.raw_addr() as u64,
        });
    }

    // ----- mark bits -----

    /// Algorithm 2 line 32: does a key hashing to `slot` possibly exist?
    pub fn marked(&self, ctx: &mut ThreadCtx, slot: u32) -> bool {
        self.marks.load_direct(ctx) & (1 << slot) != 0
    }

    /// Algorithm 2 line 38: claim the slot's existence bit; returns the
    /// previous state.
    pub fn set_mark(&self, ctx: &mut ThreadCtx, slot: u32) -> bool {
        self.marks.fetch_or_direct(ctx, 1 << slot) & (1 << slot) != 0
    }

    /// Install a freshly computed mark vector. Only safe before the owning
    /// leaf is published (split construction) — hence plain store.
    pub fn install_marks_prepublication(&self, bits: u64) {
        self.marks.store_plain(bits);
    }

    /// OR a whole mark vector in (leaf merges adopt the right sibling's
    /// marks — monotone, so concurrent readers stay conservative).
    pub fn or_marks(&self, ctx: &mut ThreadCtx, bits: u64) {
        if bits != 0 {
            self.marks.fetch_or_direct(ctx, bits);
        }
    }

    pub fn marks_plain(&self) -> u64 {
        self.marks.load_plain()
    }

    pub fn locks_plain(&self) -> u64 {
        self.locks.load_plain()
    }

    // ----- adaptive contention detector -----

    /// Should this request bypass the CCM? (§4.1 "Adaptive concurrency
    /// control": per-leaf decision.)
    pub fn bypassed(&self, ctx: &mut ThreadCtx) -> bool {
        self.bypass.load_direct(ctx) != 0
    }

    /// Feed the detector with one finished operation and the number of
    /// conflict aborts its lower region suffered. Every
    /// `window` operations the bypass flag is re-decided: calm window ⇒
    /// bypass on, contended window ⇒ bypass off.
    ///
    /// Concurrency-safe: `ops`/`conflicts` are monotone, the thread whose
    /// `fetch_add` crosses the window boundary is the unique closer, and
    /// it claims the close by CAS on `epoch` — no counter is ever reset,
    /// so concurrent recorders can neither lose conflicts nor decide the
    /// same window twice.
    pub fn record_outcome(&self, ctx: &mut ThreadCtx, conflicts: u32, window: u64, max_rate: f64) {
        if conflicts > 0 {
            self.conflicts.fetch_add_direct(ctx, conflicts as u64);
            // React immediately to contention: a bypassed leaf that starts
            // aborting re-enables its CCM without waiting out the window.
            if self.bypass.load_direct(ctx) != 0 {
                self.bypass.store_direct(ctx, 0);
                ctx.metric_flip(self as *const Self as u64, false);
                ctx.trace(EventKind::CcmFlip {
                    addr: self as *const Self as u64,
                    bypass: false,
                });
            }
        }
        let ops = self.ops.fetch_add_direct(ctx, 1) + 1;
        if !ops.is_multiple_of(window) {
            return;
        }
        // Unique closer for this window (exactly one fetch_add returns the
        // crossing value): claim it by CAS on the epoch word. Closers of
        // *consecutive* windows can race on the word, so retry until our
        // claim lands — each closer bumps the epoch exactly once.
        let mut epoch = self.epoch.load_direct(ctx);
        while !self.epoch.cas_direct(ctx, epoch, epoch + 1) {
            epoch = self.epoch.load_direct(ctx);
        }
        let confl = self.conflicts.load_direct(ctx);
        let in_window = confl.saturating_sub(self.window_base.load_direct(ctx));
        // Conflicts recorded between our loads land in the next window's
        // delta instead of vanishing.
        self.window_base.store_direct(ctx, confl);
        let calm = (in_window as f64) <= max_rate * (window as f64);
        if self.bypass.load_direct(ctx) != u64::from(calm) {
            self.bypass.store_direct(ctx, u64::from(calm));
            ctx.metric_flip(self as *const Self as u64, calm);
            ctx.trace(EventKind::CcmFlip {
                addr: self as *const Self as u64,
                bypass: calm,
            });
        }
    }

    /// Closed adaptive windows so far (diagnostics; exact even under
    /// concurrent recording).
    pub fn epoch_plain(&self) -> u64 {
        self.epoch.load_plain()
    }

    /// Conflict aborts fed to the detector over the module's lifetime
    /// (monotone; diagnostics).
    pub fn conflicts_plain(&self) -> u64 {
        self.conflicts.load_plain()
    }

    pub fn bypass_plain(&self) -> bool {
        self.bypass.load_plain() != 0
    }

    /// Bytes of CCM state per leaf (for the §5.7 accounting): the mark and
    /// lock vectors (the detector words are counted too — they live here).
    pub const fn bytes() -> usize {
        std::mem::size_of::<Ccm>()
    }
}

impl Default for Ccm {
    fn default() -> Self {
        Self::new()
    }
}

/// The CCM's lock bits double as a middle-path footprint provider: a
/// [`Footprint`](euno_htm::Footprint) over a leaf's CCM lets the executor
/// retry a hot region while holding exactly the slots it touches.
impl SlotLocks for Ccm {
    fn acquire_slot(&self, ctx: &mut ThreadCtx, slot: u32) {
        self.lock_slot(ctx, slot);
    }

    fn release_slot(&self, ctx: &mut ThreadCtx, slot: u32) {
        self.unlock_slot(ctx, slot);
    }
}

// Small helper used by lock_slot: expose the raw address for virtual-lock
// key derivation without leaking the pointer type.
trait RawAddr {
    fn raw_addr(&self) -> usize;
}
impl RawAddr for TxCell<u64> {
    fn raw_addr(&self) -> usize {
        self as *const TxCell<u64> as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euno_htm::Runtime;

    #[test]
    fn ccm_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<Ccm>(), 64);
        assert_eq!(std::mem::align_of::<Ccm>(), 64);
    }

    #[test]
    fn slot_hash_spreads_and_bounds() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000u64 {
            let s = Ccm::slot(k, 32);
            assert!(s < 32);
            seen.insert(s);
        }
        assert_eq!(seen.len(), 32, "all slots reachable");
        // Adjacent keys should usually land on different slots (the hash
        // must decorrelate the Zipfian hot prefix).
        let same = (1..100u64)
            .filter(|&k| Ccm::slot(k, 32) == Ccm::slot(k - 1, 32))
            .count();
        assert!(same < 15, "{same} adjacent collisions out of 99");
    }

    #[test]
    fn mark_bits_set_and_query() {
        let rt = Runtime::new_virtual();
        let mut ctx = rt.thread(0);
        let ccm = Ccm::new();
        assert!(!ccm.marked(&mut ctx, 5));
        assert!(!ccm.set_mark(&mut ctx, 5), "first set: previously clear");
        assert!(ccm.marked(&mut ctx, 5));
        assert!(ccm.set_mark(&mut ctx, 5), "second set: previously set");
        assert!(!ccm.marked(&mut ctx, 6));
    }

    #[test]
    fn lock_bits_serialize_same_slot_in_virtual_time() {
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(0);
        let mut b = rt.thread(1);
        let ccm = Ccm::new();
        ccm.lock_slot(&mut a, 7);
        a.charge(5_000);
        ccm.unlock_slot(&mut a, 7);
        // Same slot: b is delayed past a's release.
        ccm.lock_slot(&mut b, 7);
        assert!(b.clock >= 5_000);
        ccm.unlock_slot(&mut b, 7);
        // Different slot: free immediately.
        let mut c = rt.thread(2);
        ccm.lock_slot(&mut c, 8);
        assert!(c.clock < 5_000);
        ccm.unlock_slot(&mut c, 8);
    }

    #[test]
    fn lock_bits_mutual_exclusion_concurrent() {
        let rt = Runtime::new_concurrent();
        let ccm = Ccm::new();
        let shared = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let mut ctx = rt.thread(t);
                let (ccm, shared) = (&ccm, &shared);
                s.spawn(move || {
                    for _ in 0..300 {
                        ccm.lock_slot(&mut ctx, 3);
                        let v = shared.load(std::sync::atomic::Ordering::Relaxed);
                        shared.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        ccm.unlock_slot(&mut ctx, 3);
                    }
                });
            }
        });
        assert_eq!(shared.load(std::sync::atomic::Ordering::Relaxed), 1200);
        assert_eq!(ccm.locks_plain(), 0);
    }

    #[test]
    fn adaptive_window_rolls_over_atomically_concurrent() {
        // Regression: the reset-based window let two threads crossing the
        // boundary together both read-then-reset `ops`/`conflicts`, losing
        // conflicts and double-deciding `bypass`. With monotone counters
        // and the epoch CAS, every conflict is counted and every window is
        // closed exactly once.
        let rt = Runtime::new_concurrent();
        let ccm = Ccm::new();
        let (threads, per_thread, window) = (4u64, 4_000u64, 64u64);
        std::thread::scope(|s| {
            for t in 0..threads {
                let mut ctx = rt.thread(t);
                let ccm = &ccm;
                s.spawn(move || {
                    for i in 0..per_thread {
                        // Every op reports one conflict: the leaf must
                        // never be judged calm.
                        ccm.record_outcome(&mut ctx, 1, window, 0.05);
                        std::hint::black_box(i);
                    }
                });
            }
        });
        let total = threads * per_thread;
        assert_eq!(
            ccm.conflicts_plain(),
            total,
            "no conflict may be lost at window rollover"
        );
        assert_eq!(
            ccm.epoch_plain(),
            total / window,
            "each window must be decided exactly once"
        );
        assert!(!ccm.bypass_plain(), "an all-conflict leaf stays protected");
    }

    #[test]
    fn adaptive_bypasses_after_calm_window_and_reverts_on_conflict() {
        let rt = Runtime::new_virtual();
        let mut ctx = rt.thread(0);
        let ccm = Ccm::new();
        let (window, rate) = (16, 0.05);
        assert!(ccm.bypassed(&mut ctx), "fresh leaf starts bypassed");
        ccm.protect_prepublication();
        assert!(!ccm.bypassed(&mut ctx), "split-born leaf starts protected");
        for _ in 0..16 {
            ccm.record_outcome(&mut ctx, 0, window, rate);
        }
        assert!(ccm.bypassed(&mut ctx), "calm window enables bypass");
        // A conflict immediately re-protects the leaf.
        ccm.record_outcome(&mut ctx, 2, window, rate);
        assert!(!ccm.bypassed(&mut ctx));
        // A contended window keeps it protected.
        for _ in 0..16 {
            ccm.record_outcome(&mut ctx, 1, window, rate);
        }
        assert!(!ccm.bypassed(&mut ctx));
    }

    #[test]
    fn prepublication_mark_install() {
        let ccm = Ccm::new();
        ccm.install_marks_prepublication(0b1010);
        assert_eq!(ccm.marks_plain(), 0b1010);
    }
}
