//! Structural modifications: leaf splits and their upward propagation
//! (§4.2.3, Algorithm 3 lines 75-86).
//!
//! Splits run in the *sorting-split-reorganizing* style: the caller has
//! already drained the leaf into the sorted reserved buffer; each half is
//! dealt round-robin back over its node's segments so both nodes keep the
//! scattered placement with evenly distributed free slots. Splits
//! propagate upward through parent pointers, all inside the lower region
//! so index edits stay atomic.

use crate::ccm::Ccm;
use crate::node::{EunoInternal, EunoLeaf, NodeRef, INTERNAL_FANOUT};
use crate::probe;
use crate::tree::EunoBTree;
use euno_htm::{EventKind, Tx, TxResult, TxWord};

impl<const SEGS: usize, const K: usize> EunoBTree<SEGS, K> {
    /// §4.2.3: sort → split → reorganize. `records` holds the full sorted
    /// contents (already drained from the segments); each half is dealt
    /// round-robin back over its node's segments, so both nodes keep the
    /// scattered placement with evenly distributed free slots. Returns the
    /// half that should receive `key`.
    pub(crate) fn split_leaf<'t>(
        &'t self,
        tx: &mut Tx<'_>,
        leaf: &'t EunoLeaf<SEGS, K>,
        records: &[(u64, u64)],
        key: u64,
    ) -> TxResult<&'t EunoLeaf<SEGS, K>> {
        let right: &'t EunoLeaf<SEGS, K> = self.arenas.leaves.alloc(EunoLeaf::empty());
        right.register(&self.rt);
        let mid = records.len() / 2;
        let sep = records[mid].0;

        // Invalidate concurrent readers of this leaf BEFORE any record
        // moves (Algorithm 3 line 80, same discipline as the merge path):
        // writes become visible in program order on the fallback path, so
        // an episode-free reader — or a plain chain walker — that samples
        // the leaf mid-split must already see the bumped seqno, or it
        // would trust a record set whose upper half has moved right.
        probe::mark("split:seqno");
        let seq = tx.read(&leaf.seqno)?;
        tx.write(&leaf.seqno, seq + 1)?;

        probe::mark("split:records");
        self.redistribute(tx, leaf, &records[..mid])?;
        self.redistribute(tx, right, &records[mid..])?;

        // Fresh exact mark bits for the unpublished right node; the left
        // node keeps its (superset) bits. The pending key the caller will
        // insert after the split must be included when it lands right of
        // the separator — its CCM-stage mark was set on the *old* leaf.
        let mut marks = 0u64;
        for &(k, _) in &records[mid..] {
            marks |= 1 << Ccm::slot(k, Self::ccm_bits());
        }
        if key >= sep {
            marks |= 1 << Ccm::slot(key, Self::ccm_bits());
        }
        right.ccm.install_marks_prepublication(marks);
        // The right node inherits the old leaf's heat: it was just split,
        // so it starts protected and must earn its bypass.
        right.ccm.protect_prepublication();
        tx.charge(self.rt.cost.alu * (records.len() - mid) as u64);

        let old_next = tx.read(&leaf.next)?;
        tx.write(&right.next, old_next)?;
        tx.write(&leaf.next, NodeRef::of_leaf(right).to_word())?;
        let parent = tx.read(&leaf.parent)?;
        tx.write(&right.parent, parent)?;

        self.insert_into_parent(tx, NodeRef::of_leaf(leaf), sep, NodeRef::of_leaf(right))?;
        tx.ctx().trace(EventKind::Split {
            left: leaf as *const EunoLeaf<SEGS, K> as u64,
            right: right as *const EunoLeaf<SEGS, K> as u64,
        });
        Ok(if key < sep { leaf } else { right })
    }

    /// Propagate `(sep, right)` upward from `child`, splitting full
    /// internal nodes and maintaining parent pointers (lines 84-86).
    fn insert_into_parent(
        &self,
        tx: &mut Tx<'_>,
        mut child: NodeRef,
        mut sep: u64,
        mut right: NodeRef,
    ) -> TxResult<()> {
        loop {
            let parent_bits = tx.read(unsafe { child.parent_cell::<SEGS, K>() })?;
            if parent_bits == 0 {
                // `child` was the root: grow the tree.
                let new_root = self.arenas.internals.alloc(EunoInternal::empty());
                new_root.register(&self.rt);
                let nr = NodeRef::of_internal(new_root);
                tx.write(&new_root.child0, child.to_word())?;
                tx.write(&new_root.keys[0], sep)?;
                tx.write(&new_root.children[0], right.to_word())?;
                tx.write(&new_root.count, 1)?;
                tx.write(unsafe { child.parent_cell::<SEGS, K>() }, nr.to_word())?;
                tx.write(unsafe { right.parent_cell::<SEGS, K>() }, nr.to_word())?;
                tx.write(&self.ctrl.root, nr.to_word())?;
                return Ok(());
            }
            let parent: &EunoInternal = unsafe { NodeRef::from_word(parent_bits).as_internal() };
            let cnt = tx.read(&parent.count)? as usize;
            if cnt < INTERNAL_FANOUT {
                self.internal_insert_at(tx, parent, cnt, sep, right)?;
                tx.write(unsafe { right.parent_cell::<SEGS, K>() }, parent_bits)?;
                return Ok(());
            }

            // Split the full internal node.
            let new_int = self.arenas.internals.alloc(EunoInternal::empty());
            new_int.register(&self.rt);
            let new_ref = NodeRef::of_internal(new_int);
            let mid = INTERNAL_FANOUT / 2;
            let promoted = tx.read(&parent.keys[mid])?;
            let mid_child = NodeRef::from_word(tx.read(&parent.children[mid])?);
            tx.write(&new_int.child0, mid_child.to_word())?;
            tx.write(
                unsafe { mid_child.parent_cell::<SEGS, K>() },
                new_ref.to_word(),
            )?;
            for i in mid + 1..INTERNAL_FANOUT {
                let k = tx.read(&parent.keys[i])?;
                let c = NodeRef::from_word(tx.read(&parent.children[i])?);
                tx.write(&new_int.keys[i - mid - 1], k)?;
                tx.write(&new_int.children[i - mid - 1], c.to_word())?;
                tx.write(unsafe { c.parent_cell::<SEGS, K>() }, new_ref.to_word())?;
            }
            tx.write(&new_int.count, (INTERNAL_FANOUT - mid - 1) as u64)?;
            tx.write(&parent.count, mid as u64)?;
            let old_grandparent = tx.read(&parent.parent)?;
            tx.write(&new_int.parent, old_grandparent)?;

            // Insert the pending (sep, right) into the proper half.
            let (target, target_bits) = if sep < promoted {
                (parent, parent_bits)
            } else {
                (new_int, new_ref.to_word())
            };
            let tcnt = tx.read(&target.count)? as usize;
            self.internal_insert_at(tx, target, tcnt, sep, right)?;
            tx.write(unsafe { right.parent_cell::<SEGS, K>() }, target_bits)?;

            sep = promoted;
            right = new_ref;
            child = NodeRef::from_word(parent_bits);
        }
    }

    fn internal_insert_at(
        &self,
        tx: &mut Tx<'_>,
        node: &EunoInternal,
        cnt: usize,
        sep: u64,
        right: NodeRef,
    ) -> TxResult<()> {
        debug_assert!(cnt < INTERNAL_FANOUT);
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if tx.read(&node.keys[mid])? < sep {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut i = cnt;
        while i > lo {
            let k = tx.read(&node.keys[i - 1])?;
            let c = tx.read(&node.children[i - 1])?;
            tx.write(&node.keys[i], k)?;
            tx.write(&node.children[i], c)?;
            i -= 1;
        }
        tx.write(&node.keys[lo], sep)?;
        tx.write(&node.children[lo], right.to_word())?;
        tx.write(&node.count, (cnt + 1) as u64)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use euno_htm::{ConcurrentMap, Runtime};

    use crate::probe;
    use crate::tree::EunoBTreeDefault;

    /// The ordering invariant the probes exist for: within the marks of
    /// one structural family, no `*:records` may appear before a
    /// `*:seqno` has (attempts that abort between the two marks leave a
    /// lone `seqno`, which is fine — the regression being guarded
    /// against, bumping after the records move, puts `records` first).
    fn assert_seqno_first(trace: &[&'static str], family: &str) {
        let seq_tag = format!("{family}:seqno");
        let rec_tag = format!("{family}:records");
        let mut seqno_seen = false;
        let mut records = 0;
        for &m in trace {
            if m == seq_tag {
                seqno_seen = true;
            } else if m == rec_tag {
                assert!(
                    seqno_seen,
                    "{rec_tag} published before any {seq_tag}: {trace:?}"
                );
                records += 1;
                seqno_seen = false;
            }
        }
        assert!(records > 0, "workload never exercised {family}: {trace:?}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "probes are debug-only")]
    fn split_bumps_seqno_before_records_move() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        probe::take();
        for k in 0..200u64 {
            t.put(&mut ctx, k, k);
        }
        let trace = probe::take();
        assert_seqno_first(&trace, "split");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "probes are debug-only")]
    fn reorg_bumps_seqno_before_records_move() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        // Fill one leaf, tombstone half, insert again: the overflow path
        // finds enough garbage to reorganize in place instead of split.
        for k in 0..16u64 {
            t.put(&mut ctx, k, k);
        }
        for k in 0..8u64 {
            t.delete(&mut ctx, k);
        }
        probe::take();
        t.put(&mut ctx, 100, 100);
        let trace = probe::take();
        assert_seqno_first(&trace, "reorg");
    }
}
