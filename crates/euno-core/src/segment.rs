//! Leaf segments: the partitioned record storage of §4.1 (Figure 4).
//!
//! A Euno leaf splits its slots into `SEGS` segments of `K` slots. Keys
//! are sorted *within* a segment, unordered *across* segments; each
//! segment has its own occupancy metadata. Two layout decisions carry the
//! design's conflict behaviour:
//!
//! * every segment is a separate line-aligned block, so concurrent inserts
//!   dispatched to different segments touch disjoint cache lines;
//! * within a segment, the key area (with the count) and the value area
//!   live on *different* lines, so a search — which reads keys only —
//!   never collides with a concurrent value update. Under a hot Zipfian
//!   mix of gets and updates this is what keeps the lower HTM region's
//!   read set out of the write stream.

use euno_htm::{ThreadCtx, Tx, TxCell, TxResult, KEY_SENTINEL};

/// Key half of a segment: occupancy count + sorted keys, own line(s).
#[repr(C, align(64))]
struct SegKeys<const K: usize> {
    count: TxCell<u64>,
    keys: [TxCell<u64>; K],
}

/// Value half of a segment: parallel to the keys, own line(s).
#[repr(C, align(64))]
struct SegVals<const K: usize> {
    vals: [TxCell<u64>; K],
}

/// One line-aligned segment.
#[repr(C, align(64))]
pub struct Segment<const K: usize> {
    k: SegKeys<K>,
    v: SegVals<K>,
}

impl<const K: usize> Segment<K> {
    pub fn empty() -> Self {
        Segment {
            k: SegKeys {
                count: TxCell::new(0),
                keys: std::array::from_fn(|_| TxCell::new(KEY_SENTINEL)),
            },
            v: SegVals {
                vals: std::array::from_fn(|_| TxCell::new(0)),
            },
        }
    }

    #[inline]
    pub fn count_tx(&self, tx: &mut Tx<'_>) -> TxResult<usize> {
        Ok(tx.read(&self.k.count)? as usize)
    }

    /// Uninstrumented count (assertions, plain traversal).
    pub fn count_plain(&self) -> usize {
        self.k.count.load_plain() as usize
    }

    pub fn is_full_tx(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        Ok(self.count_tx(tx)? == K)
    }

    pub fn key_cell(&self, i: usize) -> &TxCell<u64> {
        &self.k.keys[i]
    }

    pub fn val_cell(&self, i: usize) -> &TxCell<u64> {
        &self.v.vals[i]
    }

    /// Search for `key`. The paper's fast path: compare against the
    /// segment's first and last element (keys are sorted within the
    /// segment), then binary-search only if the key is inside the range.
    pub fn find(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<usize>> {
        let cnt = self.count_tx(tx)?;
        if cnt == 0 {
            return Ok(None);
        }
        let first = tx.read(&self.k.keys[0])?;
        if key < first {
            return Ok(None);
        }
        let last = tx.read(&self.k.keys[cnt - 1])?;
        if key > last {
            return Ok(None);
        }
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if tx.read(&self.k.keys[mid])? < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < cnt && tx.read(&self.k.keys[lo])? == key {
            Ok(Some(lo))
        } else {
            Ok(None)
        }
    }

    /// Insert `key → val` keeping the segment sorted. Caller guarantees
    /// the key is absent from the whole leaf and the segment is not full.
    /// Shifts at most `K − 1` slots — all within this segment's lines, so
    /// the data movement never interferes with other segments.
    pub fn insert(&self, tx: &mut Tx<'_>, key: u64, val: u64) -> TxResult<()> {
        let cnt = self.count_tx(tx)?;
        debug_assert!(cnt < K, "insert into full segment");
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if tx.read(&self.k.keys[mid])? < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut i = cnt;
        while i > lo {
            let k = tx.read(&self.k.keys[i - 1])?;
            let v = tx.read(&self.v.vals[i - 1])?;
            tx.write(&self.k.keys[i], k)?;
            tx.write(&self.v.vals[i], v)?;
            i -= 1;
        }
        tx.write(&self.k.keys[lo], key)?;
        tx.write(&self.v.vals[lo], val)?;
        tx.write(&self.k.count, (cnt + 1) as u64)?;
        Ok(())
    }

    /// Read this segment's records into `out` (transactionally).
    pub fn read_into(&self, tx: &mut Tx<'_>, out: &mut Vec<(u64, u64)>) -> TxResult<()> {
        let cnt = self.count_tx(tx)?;
        for i in 0..cnt {
            let k = tx.read(&self.k.keys[i])?;
            let v = tx.read(&self.v.vals[i])?;
            out.push((k, v));
        }
        Ok(())
    }

    /// Drain this segment's records into `out` and reset the count — the
    /// per-segment half of `moveToReserved`.
    pub fn drain_into(&self, tx: &mut Tx<'_>, out: &mut Vec<(u64, u64)>) -> TxResult<()> {
        self.read_into(tx, out)?;
        if self.count_tx(tx)? > 0 {
            tx.write(&self.k.count, 0)?;
        }
        Ok(())
    }

    /// Episode-free search for `key`, returning its value. Direct loads
    /// only: the caller validates the whole read (leaf `seqno`, seqlock,
    /// fallback cell) afterwards and retries on any change, so this scan
    /// tolerates — but must not crash on — torn intermediate states. The
    /// count is clamped to `K` because a torn read may observe a transient
    /// out-of-range value.
    pub fn find_direct(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let cnt = (self.k.count.load_direct(ctx) as usize).min(K);
        if cnt == 0 {
            return None;
        }
        if key < self.k.keys[0].load_direct(ctx) || key > self.k.keys[cnt - 1].load_direct(ctx) {
            return None;
        }
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.k.keys[mid].load_direct(ctx) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < cnt && self.k.keys[lo].load_direct(ctx) == key {
            Some(self.v.vals[lo].load_direct(ctx))
        } else {
            None
        }
    }

    /// Episode-free bulk read into `out`; same validation contract as
    /// [`Segment::find_direct`]. Sentinel keys from torn states are
    /// filtered by the caller.
    pub fn read_into_direct(&self, ctx: &mut ThreadCtx, out: &mut Vec<(u64, u64)>) {
        let cnt = (self.k.count.load_direct(ctx) as usize).min(K);
        for i in 0..cnt {
            let k = self.k.keys[i].load_direct(ctx);
            let v = self.v.vals[i].load_direct(ctx);
            out.push((k, v));
        }
    }

    /// Replace this segment's contents with `records` (sorted by key).
    pub fn write_all(&self, tx: &mut Tx<'_>, records: &[(u64, u64)]) -> TxResult<()> {
        debug_assert!(records.len() <= K);
        debug_assert!(records.windows(2).all(|w| w[0].0 < w[1].0));
        for (i, &(k, v)) in records.iter().enumerate() {
            tx.write(&self.k.keys[i], k)?;
            tx.write(&self.v.vals[i], v)?;
        }
        tx.write(&self.k.count, records.len() as u64)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euno_htm::{LineId, RetryPolicy, Runtime, ThreadCtx};

    fn with_tx<R>(f: impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        let rt = Runtime::new_virtual();
        let mut ctx: ThreadCtx = rt.thread(0);
        let fb = TxCell::new(0u64);
        ctx.htm_execute(&fb, &RetryPolicy::default(), f).value
    }

    #[test]
    fn segment_geometry_separates_keys_and_values() {
        assert_eq!(std::mem::align_of::<Segment<4>>(), 64);
        assert_eq!(std::mem::size_of::<Segment<4>>(), 128);
        let seg: Segment<4> = Segment::empty();
        // The search path (count + keys) and the update path (vals) must
        // fault on different lines.
        let key_line = seg.key_cell(0).line();
        let val_line = seg.val_cell(0).line();
        assert_ne!(key_line, val_line, "keys and values must not share a line");
        assert_eq!(
            LineId::of_ptr(&seg.k.count as *const _),
            key_line,
            "count lives with the keys"
        );
        // Segments in an array start on distinct lines.
        let arr: [Segment<4>; 2] = [Segment::empty(), Segment::empty()];
        assert_ne!(arr[0].key_cell(0).line(), arr[1].key_cell(0).line());
        assert_ne!(arr[0].val_cell(0).line(), arr[1].val_cell(0).line());
    }

    #[test]
    fn insert_keeps_sorted_and_find_works() {
        let seg: Segment<4> = Segment::empty();
        with_tx(|tx| {
            seg.insert(tx, 30, 300)?;
            seg.insert(tx, 10, 100)?;
            seg.insert(tx, 20, 200)?;
            assert_eq!(seg.find(tx, 10)?, Some(0));
            assert_eq!(seg.find(tx, 20)?, Some(1));
            assert_eq!(seg.find(tx, 30)?, Some(2));
            assert_eq!(seg.find(tx, 15)?, None);
            assert_eq!(seg.find(tx, 5)?, None, "below first: fast reject");
            assert_eq!(seg.find(tx, 99)?, None, "above last: fast reject");
            assert_eq!(tx.read(seg.key_cell(0))?, 10);
            assert_eq!(tx.read(seg.key_cell(1))?, 20);
            assert_eq!(tx.read(seg.key_cell(2))?, 30);
            Ok(())
        });
    }

    #[test]
    fn drain_empties_and_returns_pairs() {
        let seg: Segment<4> = Segment::empty();
        let got = with_tx(|tx| {
            seg.insert(tx, 2, 20)?;
            seg.insert(tx, 1, 10)?;
            let mut out = Vec::new();
            seg.drain_into(tx, &mut out)?;
            assert_eq!(seg.count_tx(tx)?, 0);
            Ok(out)
        });
        assert_eq!(got, vec![(1, 10), (2, 20)]);
        assert_eq!(seg.count_plain(), 0);
    }

    #[test]
    fn write_all_replaces_contents() {
        let seg: Segment<4> = Segment::empty();
        with_tx(|tx| {
            seg.insert(tx, 9, 90)?;
            seg.write_all(tx, &[(1, 10), (5, 50), (7, 70)])?;
            assert_eq!(seg.count_tx(tx)?, 3);
            assert_eq!(seg.find(tx, 9)?, None);
            assert_eq!(seg.find(tx, 5)?, Some(1));
            let mut out = Vec::new();
            seg.read_into(tx, &mut out)?;
            assert_eq!(out, vec![(1, 10), (5, 50), (7, 70)]);
            Ok(())
        });
    }

    #[test]
    fn direct_reads_agree_with_transactional_state() {
        let rt = Runtime::new_virtual();
        let mut ctx: ThreadCtx = rt.thread(0);
        let fb = TxCell::new(0u64);
        let seg: Segment<4> = Segment::empty();
        ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
            seg.insert(tx, 30, 300)?;
            seg.insert(tx, 10, 100)?;
            seg.insert(tx, 20, 200)?;
            Ok(())
        });
        assert_eq!(seg.find_direct(&mut ctx, 10), Some(100));
        assert_eq!(seg.find_direct(&mut ctx, 20), Some(200));
        assert_eq!(seg.find_direct(&mut ctx, 30), Some(300));
        assert_eq!(seg.find_direct(&mut ctx, 15), None);
        assert_eq!(seg.find_direct(&mut ctx, 5), None);
        assert_eq!(seg.find_direct(&mut ctx, 99), None);
        let mut out = Vec::new();
        seg.read_into_direct(&mut ctx, &mut out);
        assert_eq!(out, vec![(10, 100), (20, 200), (30, 300)]);
        // A torn out-of-range count is clamped, never read past K.
        seg.k.count.store_plain(77);
        let mut out = Vec::new();
        seg.read_into_direct(&mut ctx, &mut out);
        assert_eq!(out.len(), 4, "count clamped to K");
        seg.k.count.store_plain(3);
    }

    #[test]
    fn fills_to_capacity() {
        let seg: Segment<4> = Segment::empty();
        with_tx(|tx| {
            for k in [4u64, 3, 2, 1] {
                assert!(!seg.is_full_tx(tx)?);
                seg.insert(tx, k, k)?;
            }
            assert!(seg.is_full_tx(tx)?);
            for k in 1..=4u64 {
                assert!(seg.find(tx, k)?.is_some());
            }
            Ok(())
        });
    }
}
