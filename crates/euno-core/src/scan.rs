//! Range scans over the leaf chain (§4.2.4).
//!
//! A scan locks each leaf in turn, merges its segments into the sorted
//! reserved area inside an HTM region, emits the ordered run, and hops to
//! the next leaf via the chain pointer — re-finding the cursor's leaf from
//! the root whenever a concurrent split invalidates the cached `seqno`.

use euno_htm::{ThreadCtx, TxWord, KEY_SENTINEL, TOMBSTONE};

use crate::node::NodeRef;
use crate::tree::EunoBTree;

impl<const SEGS: usize, const K: usize> EunoBTree<SEGS, K> {
    /// Walk the leaf chain from the leaf covering `from`, appending up to
    /// `count` live records to `out`. Returns the number collected.
    pub(crate) fn scan_chain(
        &self,
        ctx: &mut ThreadCtx,
        from: u64,
        count: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        // Pin across the whole walk: chain pointers cached between
        // episodes must survive concurrent merge retirements.
        ctx.epoch_enter();
        let n = self.scan_chain_pinned(ctx, from, count, out);
        ctx.epoch_exit();
        n
    }

    fn scan_chain_pinned(
        &self,
        ctx: &mut ThreadCtx,
        from: u64,
        count: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        let mut collected = 0usize;
        let mut cursor = from;
        // Locate the first leaf.
        let (mut leaf, mut seqno, _) = self.upper_region(ctx, cursor);
        loop {
            // §4.2.4: lock the leaf, merge segments into the sorted
            // reserved area, read an ordered run.
            leaf.split_lock.acquire(ctx);
            let out_piece = ctx.htm_execute(&self.ctrl.fallback, self.strategy(), |tx| {
                tx.set_op_key(cursor);
                if tx.read(&leaf.seqno)? != seqno {
                    return Ok(None);
                }
                // §4.2.4: gather the leaf's records into the transient
                // sorted buffer (a merge over the per-segment sorted runs).
                let part: Vec<(u64, u64)> = self
                    .peek_all(tx, leaf)?
                    .into_iter()
                    .filter(|&(k, _)| k >= cursor)
                    .collect();
                let next = NodeRef::from_word(tx.read(&leaf.next)?);
                let next_seq = if next.is_null() {
                    0
                } else {
                    tx.read(&unsafe { next.as_leaf::<SEGS, K>() }.seqno)?
                };
                Ok(Some((part, next, next_seq)))
            });
            leaf.split_lock.release(ctx);

            match out_piece.value {
                None => {
                    // Version changed: re-find the leaf for the cursor.
                    let (l, s, _) = self.upper_region(ctx, cursor);
                    leaf = l;
                    seqno = s;
                }
                Some((part, next, next_seq)) => {
                    for (k, v) in part {
                        if collected == count {
                            return collected;
                        }
                        out.push((k, v));
                        collected += 1;
                        // Advance past the delivered key. At the top of
                        // the keyspace there is no "past": a saturating
                        // add would pin the cursor on the delivered key,
                        // and any retry or revisit (seqno mismatch, a
                        // chain hop into a leaf whose records moved left)
                        // would deliver it again — or loop forever. The
                        // keyspace is exhausted; stop here.
                        match k.checked_add(1) {
                            Some(c) => cursor = c,
                            None => return collected,
                        }
                    }
                    if collected == count || next.is_null() {
                        return collected;
                    }
                    leaf = unsafe { next.as_leaf::<SEGS, K>() };
                    seqno = next_seq;
                }
            }
        }
    }

    /// Episode-free bounded scan (the `read_opt` path). Each optimistic
    /// section re-descends to the cursor's leaf with direct loads, walks
    /// the chain to the first leaf holding records ≥ cursor, reads one
    /// leaf's worth into a scratch batch, and validates the whole section
    /// (leaf `seqno` bracket + engine snapshot) before the batch is
    /// emitted. A failed validation discards the batch and re-descends —
    /// nothing reaches `out` unvalidated, so retries never duplicate.
    pub(crate) fn scan_read_opt(
        &self,
        ctx: &mut ThreadCtx,
        from: u64,
        count: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        if count == 0 {
            return 0;
        }
        ctx.epoch_enter();
        let mut collected = 0usize;
        let mut cursor = from;
        let mut scratch: Vec<(u64, u64)> = Vec::with_capacity(Self::capacity());
        loop {
            // `true` ⇒ chain exhausted past the cursor; otherwise scratch
            // holds one validated, sorted, non-empty batch.
            let exhausted = ctx.optimistic_execute(
                Some(cursor),
                |overlap| overlap.is_some(),
                |ctx| {
                    let snap = ctx.optimistic_snapshot();
                    let mut leaf = self.descend_direct(ctx, cursor)?;
                    let mut hops = 0;
                    loop {
                        let s1 = leaf.seqno.load_direct(ctx);
                        scratch.clear();
                        for seg in &leaf.segs {
                            seg.read_into_direct(ctx, &mut scratch);
                        }
                        scratch
                            .retain(|&(k, v)| k >= cursor && k != KEY_SENTINEL && v != TOMBSTONE);
                        let next = NodeRef::from_word(leaf.next.load_direct(ctx));
                        if leaf.seqno.load_direct(ctx) != s1
                            || !ctx.optimistic_validate(self.fallback_cell(), snap)
                        {
                            return None;
                        }
                        if !scratch.is_empty() {
                            scratch.sort_unstable_by_key(|&(k, _)| k);
                            return Some(false);
                        }
                        if next.is_null() {
                            return Some(true);
                        }
                        hops += 1;
                        if hops > 64 {
                            // Suspiciously long empty run — likely a stale
                            // chain; re-descend rather than walk garbage.
                            return None;
                        }
                        leaf = unsafe { next.as_leaf::<SEGS, K>() };
                    }
                },
            );
            if exhausted {
                break;
            }
            for &(k, v) in scratch.iter() {
                if collected == count {
                    ctx.epoch_exit();
                    return collected;
                }
                out.push((k, v));
                collected += 1;
                // Advance past the delivered key; at the top of the
                // keyspace there is nothing left to deliver (see
                // scan_chain's cursor note).
                match k.checked_add(1) {
                    Some(c) => cursor = c,
                    None => {
                        ctx.epoch_exit();
                        return collected;
                    }
                }
            }
            if collected == count {
                break;
            }
        }
        ctx.epoch_exit();
        collected
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use euno_htm::{ConcurrentMap, Runtime, TxWord};

    use crate::node::NodeRef;
    use crate::tree::EunoBTreeDefault;

    #[test]
    fn cursor_guarantees_progress_at_top_of_keyspace() {
        // Regression for the saturating_add cursor: a record at u64::MAX
        // (forged here — the public API caps keys below the sentinel, but
        // corrupted input must degrade to a bounded scan, not a livelock)
        // pinned the cursor, so any revisit of a leaf after the top key
        // was delivered re-delivered it forever. Simulate the adversarial
        // revisit by making the leaf its own chain successor: pre-fix the
        // scan loops re-delivering u64::MAX; post-fix it terminates after
        // delivering each record exactly once.
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        t.put(&mut ctx, 10, 100);
        let leaf = unsafe { NodeRef::from_word(t.root_bits()).as_leaf::<4, 4>() };
        // Forge a record at the top of the keyspace and a self-loop hop.
        ctx.htm_execute(t.fallback_cell(), t.strategy(), |tx| {
            leaf.segs[1].insert(tx, u64::MAX, 7)?;
            Ok(())
        });
        leaf.next.store_plain(NodeRef::of_leaf(leaf).to_word());
        let mut out = Vec::new();
        let n = t.scan_chain(&mut ctx, 0, usize::MAX, &mut out);
        assert_eq!(n, 2, "each record delivered exactly once: {out:?}");
        assert_eq!(out, vec![(10, 100), (u64::MAX, 7)]);
        // Un-forge the chain so drop-time audits see a sane tree.
        leaf.next.store_plain(0);
    }

    #[test]
    fn scan_from_top_of_keyspace_is_empty() {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let mut ctx = rt.thread(1);
        for k in 0..200u64 {
            t.put(&mut ctx, k, k);
        }
        let mut out = Vec::new();
        assert_eq!(t.scan(&mut ctx, u64::MAX, 10, &mut out), 0);
        assert!(out.is_empty());
        // The topmost insertable key is still delivered, once.
        t.put(&mut ctx, u64::MAX - 1, 42);
        assert_eq!(t.scan(&mut ctx, u64::MAX - 1, 10, &mut out), 1);
        assert_eq!(out, vec![(u64::MAX - 1, 42)]);
    }

    #[test]
    fn split_during_scan_stays_sorted_and_duplicate_free() {
        // Concurrent splits force the seqno-mismatch retry path mid-scan;
        // the cursor must make every emitted run strictly ascending (no
        // re-delivery after a re-find) with values from the writers' set.
        let rt = Runtime::new_concurrent();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        {
            let mut ctx = rt.thread(0);
            for k in (0..4_000u64).step_by(4) {
                t.put(&mut ctx, k, k);
            }
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let (t, stop) = (&t, &stop);
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    let mut ctx = rt.thread(10 + w);
                    let mut k = w + 1;
                    // Dense inserts into the gaps keep splitting leaves
                    // under the scanners.
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        t.put(&mut ctx, k % 4_000, k);
                        k += if k % 4 == 3 { 2 } else { 1 };
                    }
                });
            }
            for r in 0..2u64 {
                let t = &t;
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    let mut ctx = rt.thread(20 + r);
                    let mut out = Vec::new();
                    for i in 0..200u64 {
                        out.clear();
                        let from = (i * 37) % 3_000;
                        let n = t.scan(&mut ctx, from, 64, &mut out);
                        assert_eq!(n, out.len());
                        assert!(
                            out.windows(2).all(|w| w[0].0 < w[1].0),
                            "scan output must be strictly ascending"
                        );
                        assert!(out.iter().all(|&(k, _)| k >= from));
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}
