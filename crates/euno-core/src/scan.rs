//! Range scans over the leaf chain (§4.2.4).
//!
//! A scan locks each leaf in turn, merges its segments into the sorted
//! reserved area inside an HTM region, emits the ordered run, and hops to
//! the next leaf via the chain pointer — re-finding the cursor's leaf from
//! the root whenever a concurrent split invalidates the cached `seqno`.

use euno_htm::{ThreadCtx, TxWord};

use crate::node::NodeRef;
use crate::tree::EunoBTree;

impl<const SEGS: usize, const K: usize> EunoBTree<SEGS, K> {
    /// Walk the leaf chain from the leaf covering `from`, appending up to
    /// `count` live records to `out`. Returns the number collected.
    pub(crate) fn scan_chain(
        &self,
        ctx: &mut ThreadCtx,
        from: u64,
        count: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize {
        let mut collected = 0usize;
        let mut cursor = from;
        // Locate the first leaf.
        let (mut leaf, mut seqno, _) = self.upper_region(ctx, cursor);
        loop {
            // §4.2.4: lock the leaf, merge segments into the sorted
            // reserved area, read an ordered run.
            leaf.split_lock.acquire(ctx);
            let out_piece = ctx.htm_execute(&self.ctrl.fallback, self.strategy(), |tx| {
                tx.set_op_key(cursor);
                if tx.read(&leaf.seqno)? != seqno {
                    return Ok(None);
                }
                // §4.2.4: gather the leaf's records into the transient
                // sorted buffer (a merge over the per-segment sorted runs).
                let part: Vec<(u64, u64)> = self
                    .peek_all(tx, leaf)?
                    .into_iter()
                    .filter(|&(k, _)| k >= cursor)
                    .collect();
                let next = NodeRef::from_word(tx.read(&leaf.next)?);
                let next_seq = if next.is_null() {
                    0
                } else {
                    tx.read(&unsafe { next.as_leaf::<SEGS, K>() }.seqno)?
                };
                Ok(Some((part, next, next_seq)))
            });
            leaf.split_lock.release(ctx);

            match out_piece.value {
                None => {
                    // Version changed: re-find the leaf for the cursor.
                    let (l, s, _) = self.upper_region(ctx, cursor);
                    leaf = l;
                    seqno = s;
                }
                Some((part, next, next_seq)) => {
                    for (k, v) in part {
                        if collected == count {
                            return collected;
                        }
                        out.push((k, v));
                        collected += 1;
                        cursor = k.saturating_add(1);
                    }
                    if collected == count || next.is_null() {
                        return collected;
                    }
                    leaf = unsafe { next.as_leaf::<SEGS, K>() };
                    seqno = next_seq;
                }
            }
        }
    }
}
