//! Read-mostly snapshot registries for line classes and object ranges.
//!
//! Both registries share an access pattern the engine's hot path cares
//! about: trees register regions in bursts (build, preload, node splits)
//! and the engine looks them up constantly (conflict classification,
//! trace attribution). The old implementations guarded a per-line
//! `HashMap` and a sorted `Vec` with `RwLock`s, so every lookup paid a
//! lock acquisition even though the data is effectively immutable between
//! bursts.
//!
//! [`SnapshotVec`] replaces the locks with an atomic-pointer-swapped
//! immutable snapshot: writers mutate a master copy under a mutex and
//! set a dirty flag; the next reader republishes (clone + pointer swap)
//! once, and every reader after that binary-searches the snapshot with
//! no lock at all. Retired snapshots are kept until the registry drops —
//! a reader may still hold a reference into one — which leaks at most
//! one superseded vector per registration *burst*, not per registration.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::line::{LineClass, LineId, LineSet};

struct Master<T> {
    items: Vec<T>,
    /// Superseded snapshots. Readers may still hold references into
    /// them, so they are only freed when the registry itself drops.
    retired: Vec<*mut Vec<T>>,
}

// Safety: the raw pointers in `retired` are uniquely owned boxed vectors
// (shared only as immutable snapshots), so the container is as Send/Sync
// as the element type.
unsafe impl<T: Send> Send for Master<T> {}
unsafe impl<T: Send + Sync> Sync for Master<T> {}

/// A sorted vector with lock-free reads and lazily republished writes.
pub(crate) struct SnapshotVec<T: Clone> {
    snap: AtomicPtr<Vec<T>>,
    dirty: AtomicBool,
    master: Mutex<Master<T>>,
}

impl<T: Clone> SnapshotVec<T> {
    pub(crate) fn new() -> Self {
        SnapshotVec {
            snap: AtomicPtr::new(Box::into_raw(Box::new(Vec::new()))),
            dirty: AtomicBool::new(false),
            master: Mutex::new(Master {
                items: Vec::new(),
                retired: Vec::new(),
            }),
        }
    }

    /// Mutate the master copy under the lock. Readers observe the change
    /// on their next [`SnapshotVec::read`] via the dirty flag.
    pub(crate) fn update(&self, f: impl FnOnce(&mut Vec<T>)) {
        let mut m = self.master.lock().unwrap();
        f(&mut m.items);
        self.dirty.store(true, Ordering::Release);
    }

    /// Read the master copy under the lock (cold observability paths).
    pub(crate) fn with_master<R>(&self, f: impl FnOnce(&[T]) -> R) -> R {
        f(&self.master.lock().unwrap().items)
    }

    /// Current snapshot. Lock-free unless a registration happened since
    /// the last read, which triggers one clone-and-swap under the lock.
    #[inline]
    pub(crate) fn read(&self) -> &[T] {
        if self.dirty.load(Ordering::Acquire) {
            self.publish();
        }
        // Safety: snapshot vectors are retired, never freed, until `self`
        // drops, so the borrow is valid for the lifetime of `&self`.
        unsafe { &*self.snap.load(Ordering::Acquire) }
    }

    #[cold]
    fn publish(&self) {
        let mut m = self.master.lock().unwrap();
        // Re-check under the lock: a concurrent reader may have already
        // republished while we waited.
        if !self.dirty.load(Ordering::Acquire) {
            return;
        }
        let fresh = Box::into_raw(Box::new(m.items.clone()));
        let old = self.snap.swap(fresh, Ordering::AcqRel);
        m.retired.push(old);
        self.dirty.store(false, Ordering::Release);
    }
}

impl<T: Clone> Drop for SnapshotVec<T> {
    fn drop(&mut self) {
        let m = self.master.get_mut().unwrap();
        for p in m.retired.drain(..) {
            drop(unsafe { Box::from_raw(p) });
        }
        drop(unsafe { Box::from_raw(*self.snap.get_mut()) });
    }
}

/// One registered line range: `[start, end)` with its class, plus the
/// registration sequence number and the *original* range start it was
/// registered with. The latter two give every registered line a
/// deterministic rank (see [`ClassRegistry::rank_of`]) that survives
/// trim-insert splitting.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ClassRange {
    start: u64,
    end: u64,
    class: LineClass,
    reg_id: u64,
    orig_start: u64,
}

/// A line's deterministic identity: `(registration sequence number,
/// offset within the registered range)`. Registration order and in-node
/// offsets are functions of the program's deterministic behaviour, not of
/// where the allocator placed a node — so ordering lines by rank is
/// stable across heap layouts, ASLR, and allocation-pattern changes,
/// where ordering by raw line id (address) is not. Unregistered lines
/// fall back to address order in the `u64::MAX` bucket.
pub(crate) type LineRank = (u64, u64);

/// Line-class registry: sorted, non-overlapping `[start, end)` line
/// ranges, newest registration winning on overlap — range-compressed
/// compared to the old per-line hash map (one entry per allocation
/// instead of one per 64-byte line).
pub(crate) struct ClassRegistry {
    ranges: SnapshotVec<ClassRange>,
    next_reg_id: AtomicU64,
}

impl ClassRegistry {
    pub(crate) fn new() -> Self {
        ClassRegistry {
            ranges: SnapshotVec::new(),
            next_reg_id: AtomicU64::new(0),
        }
    }

    /// Tag lines `[first, last]` with `class`, splitting or replacing any
    /// previously registered overlapping ranges (trim-insert). Survivors
    /// of a split keep their original registration id and base, so their
    /// lines' ranks don't shift.
    pub(crate) fn register(&self, first: u64, last: u64, class: LineClass) {
        let (s, e) = (first, last + 1);
        let reg_id = self.next_reg_id.fetch_add(1, Ordering::Relaxed);
        let fresh = ClassRange {
            start: s,
            end: e,
            class,
            reg_id,
            orig_start: s,
        };
        self.ranges.update(|v| {
            // First range ending after `s` — the earliest possible overlap.
            let i = v.partition_point(|r| r.end <= s);
            let mut j = i;
            let mut left = None;
            let mut right = None;
            while j < v.len() && v[j].start < e {
                if v[j].start < s {
                    left = Some(ClassRange { end: s, ..v[j] });
                }
                if v[j].end > e {
                    right = Some(ClassRange { start: e, ..v[j] });
                }
                j += 1;
            }
            let repl = left.into_iter().chain(std::iter::once(fresh)).chain(right);
            v.splice(i..j, repl);
        });
    }

    #[inline]
    fn lookup(snap: &[ClassRange], line: LineId) -> Option<&ClassRange> {
        let i = snap.partition_point(|r| r.start <= line.0);
        if i > 0 {
            let r = &snap[i - 1];
            if line.0 < r.end {
                return Some(r);
            }
        }
        None
    }

    #[inline]
    pub(crate) fn class_of(&self, line: LineId) -> LineClass {
        Self::lookup(self.ranges.read(), line).map_or(LineClass::Unknown, |r| r.class)
    }

    /// Deterministic rank of a line (see [`LineRank`]).
    #[inline]
    pub(crate) fn rank_of(&self, line: LineId) -> LineRank {
        match Self::lookup(self.ranges.read(), line) {
            Some(r) => (r.reg_id, line.0 - r.orig_start),
            None => (u64::MAX, line.0),
        }
    }

    /// The common line of `a` and `b` with the smallest [`LineRank`], if
    /// the sets intersect. This is the engine's canonical "which line do I
    /// report for this conflict" rule: unlike *smallest line id* (heap
    /// address order — sensitive to allocator placement), the answer is a
    /// deterministic function of the simulated schedule.
    pub(crate) fn best_common_line(&self, a: &LineSet, b: &LineSet) -> Option<LineId> {
        let snap = self.ranges.read();
        let mut best: Option<(LineRank, LineId)> = None;
        for line in a.common_iter(b) {
            let rank = match Self::lookup(snap, line) {
                Some(r) => (r.reg_id, line.0 - r.orig_start),
                None => (u64::MAX, line.0),
            };
            if best.is_none_or(|(r, _)| rank < r) {
                best = Some((rank, line));
            }
        }
        best.map(|(_, line)| line)
    }

    /// Number of distinct registered lines (ranges are non-overlapping,
    /// so widths sum exactly).
    pub(crate) fn registered_lines(&self) -> usize {
        self.ranges
            .with_master(|v| v.iter().map(|r| (r.end - r.start) as usize).sum())
    }
}

/// Object registry for trace attribution: `(base, len)` pairs sorted by
/// base. Re-registering an exact base replaces the entry (reused
/// allocation), including shrinking its length.
pub(crate) struct ObjectRegistry {
    objects: SnapshotVec<(u64, u64)>,
}

impl ObjectRegistry {
    pub(crate) fn new() -> Self {
        ObjectRegistry {
            objects: SnapshotVec::new(),
        }
    }

    pub(crate) fn register(&self, base: u64, len: u64) {
        self.objects
            .update(|v| match v.binary_search_by_key(&base, |&(b, _)| b) {
                Ok(i) => v[i] = (base, len),
                Err(i) => v.insert(i, (base, len)),
            });
    }

    /// Base address of the registered object containing `addr`, if any.
    pub(crate) fn base_of(&self, addr: u64) -> Option<u64> {
        let snap = self.objects.read();
        let i = match snap.binary_search_by_key(&addr, |&(b, _)| b) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let (base, len) = snap[i];
        (addr < base + len).then_some(base)
    }

    pub(crate) fn len(&self) -> usize {
        self.objects.with_master(|v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_see_prior_updates() {
        let s: SnapshotVec<u64> = SnapshotVec::new();
        assert!(s.read().is_empty());
        s.update(|v| v.push(3));
        assert_eq!(s.read(), &[3]);
        // A second read without intervening updates takes the lock-free
        // path and sees the same snapshot.
        assert_eq!(s.read(), &[3]);
        s.update(|v| v.push(9));
        assert_eq!(s.read(), &[3, 9]);
    }

    #[test]
    fn class_trim_insert_splits_overlaps() {
        let reg = ClassRegistry::new();
        reg.register(10, 19, LineClass::Record);
        // Overwrite the middle: the Record range must split around it.
        reg.register(14, 15, LineClass::Metadata);
        assert_eq!(reg.class_of(LineId(10)), LineClass::Record);
        assert_eq!(reg.class_of(LineId(13)), LineClass::Record);
        assert_eq!(reg.class_of(LineId(14)), LineClass::Metadata);
        assert_eq!(reg.class_of(LineId(15)), LineClass::Metadata);
        assert_eq!(reg.class_of(LineId(16)), LineClass::Record);
        assert_eq!(reg.class_of(LineId(19)), LineClass::Record);
        assert_eq!(reg.class_of(LineId(20)), LineClass::Unknown);
        assert_eq!(reg.class_of(LineId(9)), LineClass::Unknown);
        assert_eq!(reg.registered_lines(), 10);

        // Overwrite spanning several existing ranges collapses them.
        reg.register(12, 17, LineClass::Structure);
        assert_eq!(reg.class_of(LineId(11)), LineClass::Record);
        assert_eq!(reg.class_of(LineId(12)), LineClass::Structure);
        assert_eq!(reg.class_of(LineId(17)), LineClass::Structure);
        assert_eq!(reg.class_of(LineId(18)), LineClass::Record);
        assert_eq!(reg.registered_lines(), 10);
    }

    #[test]
    fn class_exact_overwrite_and_disjoint_ranges() {
        let reg = ClassRegistry::new();
        reg.register(5, 7, LineClass::Metadata);
        reg.register(5, 7, LineClass::Record); // same range, new class
        assert_eq!(reg.class_of(LineId(5)), LineClass::Record);
        assert_eq!(reg.class_of(LineId(7)), LineClass::Record);
        assert_eq!(reg.registered_lines(), 3);
        reg.register(100, 100, LineClass::Structure);
        assert_eq!(reg.class_of(LineId(100)), LineClass::Structure);
        assert_eq!(reg.registered_lines(), 4);
    }

    #[test]
    fn object_boundary_addresses() {
        let reg = ObjectRegistry::new();
        reg.register(0x1000, 256);
        reg.register(0x2000, 64);
        // First and last byte of each range resolve; one past does not.
        assert_eq!(reg.base_of(0x1000), Some(0x1000));
        assert_eq!(reg.base_of(0x10ff), Some(0x1000));
        assert_eq!(reg.base_of(0x1100), None);
        assert_eq!(reg.base_of(0x0fff), None);
        assert_eq!(reg.base_of(0x2000), Some(0x2000));
        assert_eq!(reg.base_of(0x203f), Some(0x2000));
        assert_eq!(reg.base_of(0x2040), None);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn object_reregistration_shrinks() {
        let reg = ObjectRegistry::new();
        reg.register(0x1000, 256);
        assert_eq!(reg.base_of(0x10ff), Some(0x1000));
        // Reused allocation: same base, smaller object. The old tail must
        // stop resolving even though an older snapshot said otherwise.
        reg.register(0x1000, 64);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.base_of(0x103f), Some(0x1000));
        assert_eq!(reg.base_of(0x1040), None);
        assert_eq!(reg.base_of(0x10ff), None);
    }

    #[test]
    fn concurrent_register_and_classify() {
        // Hammer registrations from one thread while another classifies;
        // every lookup must see either Unknown or a class registered for
        // that exact line — never torn or stale-beyond-retirement data.
        let reg = std::sync::Arc::new(ClassRegistry::new());
        let w = {
            let reg = std::sync::Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    let class = if i % 2 == 0 {
                        LineClass::Record
                    } else {
                        LineClass::Metadata
                    };
                    reg.register(i % 64, i % 64, class);
                }
            })
        };
        for _ in 0..10_000 {
            let c = reg.class_of(LineId(7));
            assert!(
                matches!(
                    c,
                    LineClass::Unknown | LineClass::Record | LineClass::Metadata
                ),
                "unexpected class {c:?}"
            );
        }
        w.join().unwrap();
        // After the writer finishes, line 7 was last registered on
        // iteration 967 (odd → Metadata).
        assert_eq!(reg.class_of(LineId(7)), LineClass::Metadata);
    }
}
