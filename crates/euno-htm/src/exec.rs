//! The layered transaction executor: retry *policy* split from episode
//! *mechanism*.
//!
//! [`ctx`](crate::ctx) owns the mechanism — episodes, footprints, commit
//! and the fallback lock. This module owns everything above it, decomposed
//! into the five stages every HTM region goes through:
//!
//! 1. **attempt** — open an episode, subscribe to the fallback lock, run
//!    the body, try to commit;
//! 2. **classify** — on abort: account the wasted cycles (with the eager
//!    conflict-detection refund), charge the abort penalty, bump the
//!    per-cause tallies;
//! 3. **decide** — ask the [`RetryStrategy`] whether to retry, retry with
//!    backoff, or give up;
//! 4. **backoff** — charge the exponential backoff between retries;
//! 5. **fallback** — serialize on the lock and run the body directly.
//!
//! A region traverses up to three paths (§4.2.1 extended with Brown's
//! HTM-template middle path): plain speculation ([`Path::Htm`]); after the
//! speculative budgets are exhausted, a *footprint-local* middle path
//! ([`Path::Middle`]) that re-runs the HTM episode while holding the
//! region's declared advisory slot locks ([`Footprint`]), so only
//! same-slot contenders wait while the rest of the tree keeps
//! speculating; and only after repeated middle-path failure the global
//! serialized fallback ([`Path::Fallback`]). Regions that declare no
//! footprint skip the middle path entirely — byte-for-byte the classic
//! two-path behaviour. What the split buys is the two seams:
//!
//! * [`RetryStrategy`] makes the decide stage pluggable — the DBX-style
//!   per-cause budgets ([`RetryPolicy`] itself implements the trait), an
//!   [`AggressivePolicy`] that almost never falls back, and an
//!   [`AdaptiveBudget`] that resizes the conflict budget from the observed
//!   fallback rate.
//! * [`ExecObserver`] makes the accounting pluggable — the default hooks
//!   maintain the existing [`ThreadStats`] counters (figures 2 and 9 are
//!   derived from them), and instrumentation can layer on top without
//!   touching the executor.

use std::sync::atomic::{AtomicI32, AtomicU32, Ordering};

use euno_trace::{codes, EventKind};

use crate::abort::{AbortCause, ConflictInfo, TxResult};
use crate::ctx::{trace_abort_code, EpisodeKind, ThreadCtx, Tx};
use crate::lock::Footprint;
use crate::policy::{RetryCounts, RetryPolicy};
use crate::runtime::Mode;
use crate::stats::ThreadStats;
use crate::word::TxCell;

/// Which of the three execution paths ultimately completed a region.
/// Ordered by escalation: `Htm < Middle < Fallback`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Path {
    /// Plain speculation: an HTM episode with no locks held.
    Htm,
    /// The footprint-local middle path: an HTM episode committed while
    /// holding the region's advisory slot locks, serializing only
    /// same-slot contenders.
    Middle,
    /// The global serialized fallback (lock held, direct writes).
    Fallback,
}

impl Path {
    /// Short stable label (reports, figures).
    pub fn label(self) -> &'static str {
        match self {
            Path::Htm => "htm",
            Path::Middle => "middle",
            Path::Fallback => "fallback",
        }
    }
}

/// Result of executing one HTM region to completion.
#[derive(Debug)]
pub struct ExecOutcome<R> {
    pub value: R,
    /// Transaction attempts made (≥1).
    pub attempts: u32,
    /// Attempts that aborted due to a footprint conflict.
    pub conflict_aborts: u32,
    /// The path the region ultimately completed on.
    pub path: Path,
}

impl<R> ExecOutcome<R> {
    /// Whether the region ultimately ran on the serialized fallback path.
    pub fn used_fallback(&self) -> bool {
        self.path == Path::Fallback
    }
}

/// Verdict of the decide stage after a classified abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Try the region again, optionally after exponential backoff.
    Retry { backoff: bool },
    /// Escalate to the footprint-local middle path: retry speculatively
    /// while holding the region's advisory slot locks. Regions without a
    /// declared footprint treat this as [`Decision::Fallback`].
    Middle,
    /// Give up on speculation and take the serialized fallback path.
    Fallback,
}

/// The decide stage: given the per-cause abort tallies of the current
/// region and the cause that just fired, choose what to do next.
///
/// Strategies are shared across threads (trees hold them behind an `Arc`),
/// so any adaptivity must go through interior mutability.
pub trait RetryStrategy: Send + Sync {
    /// Short stable name (CLI flags, figure labels).
    fn name(&self) -> &'static str;

    /// Called after every abort, *after* `counts` was bumped with `cause`.
    fn decide(&self, counts: &RetryCounts, cause: AbortCause) -> Decision;

    /// Post-region feedback for adaptive strategies: total attempts made
    /// and the path the region ended on.
    fn observe_region(&self, _attempts: u32, _path: Path) {}
}

/// The DBX-style per-cause budgets are themselves a strategy — every
/// pre-existing call site that passed `&RetryPolicy` keeps working. The
/// escalation schedule is the same for all budget-based strategies:
/// speculate while no per-cause budget is exhausted, then grant
/// `middle_retries` footprint-locked attempts, then serialize.
impl RetryStrategy for RetryPolicy {
    fn name(&self) -> &'static str {
        "budget"
    }

    fn decide(&self, counts: &RetryCounts, _cause: AbortCause) -> Decision {
        if !self.exhausted(counts) {
            Decision::Retry {
                backoff: self.backoff,
            }
        } else if counts.middle < self.middle_retries {
            Decision::Middle
        } else {
            Decision::Fallback
        }
    }
}

/// The paper's default configuration (§4.2.1): DBX per-cause budgets with
/// exponential backoff. Identical to `RetryPolicy::default()`, named so a
/// workload spec can ask for it.
#[derive(Clone, Debug, Default)]
pub struct DbxPolicy {
    pub budgets: RetryPolicy,
}

impl RetryStrategy for DbxPolicy {
    fn name(&self) -> &'static str {
        "dbx"
    }

    fn decide(&self, counts: &RetryCounts, cause: AbortCause) -> Decision {
        self.budgets.decide(counts, cause)
    }
}

/// Retry hard, fall back almost never (`RetryPolicy::persistent()`): used
/// to isolate abort behaviour in the analysis experiments.
#[derive(Clone, Debug)]
pub struct AggressivePolicy {
    pub budgets: RetryPolicy,
}

impl Default for AggressivePolicy {
    fn default() -> Self {
        AggressivePolicy {
            budgets: RetryPolicy::persistent(),
        }
    }
}

impl RetryStrategy for AggressivePolicy {
    fn name(&self) -> &'static str {
        "aggressive"
    }

    fn decide(&self, counts: &RetryCounts, cause: AbortCause) -> Decision {
        self.budgets.decide(counts, cause)
    }
}

/// Widest the adaptive conflict budget is allowed to grow.
const ADAPTIVE_MAX_CONFLICT_BUDGET: u32 = 64;

/// Average attempts per region above which a window counts as *deep*:
/// regions are spending their whole retry budget even when they
/// eventually commit, so the budget should shrink.
const ADAPTIVE_DEEP_ATTEMPTS: u32 = 6;

/// Average attempts per region below which a window counts as *shallow*
/// enough to justify growing the budget.
const ADAPTIVE_SHALLOW_ATTEMPTS: u32 = 2;

/// An adaptive wrapper around the base budgets: the conflict budget is
/// scaled by powers of two from the recent fallback rate. When regions
/// keep exhausting their retries anyway (high fallback rate), retrying is
/// wasted work — shrink the budget and serialize sooner. When fallbacks
/// are rare, speculation is winning — let regions retry longer before
/// giving up. Non-conflict budgets (capacity, explicit, …) are not
/// adapted: their aborts are deterministic in the footprint, so more
/// retries cannot help.
#[derive(Debug)]
pub struct AdaptiveBudget {
    base: RetryPolicy,
    /// Regions per adaptation window.
    window: u32,
    /// Right-shift applied to the base conflict budget (negative =
    /// left-shift, i.e. a larger budget).
    scale: AtomicI32,
    regions: AtomicU32,
    fallbacks: AtomicU32,
    /// Attempts summed over the current window — the budget must respond
    /// to attempt *depth*, not just the fallback rate: a window can be
    /// fallback-free while every region still burns its full budget.
    attempts_acc: AtomicU32,
}

impl AdaptiveBudget {
    pub fn new(base: RetryPolicy) -> Self {
        AdaptiveBudget {
            base,
            window: 128,
            scale: AtomicI32::new(0),
            regions: AtomicU32::new(0),
            fallbacks: AtomicU32::new(0),
            attempts_acc: AtomicU32::new(0),
        }
    }

    /// Override the adaptation window (regions between re-evaluations).
    pub fn with_window(mut self, window: u32) -> Self {
        assert!(window > 0, "adaptation window must be positive");
        self.window = window;
        self
    }

    /// The conflict budget currently in force.
    pub fn conflict_budget(&self) -> u32 {
        let s = self.scale.load(Ordering::Relaxed);
        let base = self.base.conflict_retries.max(1);
        if s >= 0 {
            (base >> s.min(31)).max(1)
        } else {
            (base << (-s).min(8) as u32).min(ADAPTIVE_MAX_CONFLICT_BUDGET)
        }
    }
}

impl Default for AdaptiveBudget {
    fn default() -> Self {
        AdaptiveBudget::new(RetryPolicy::default())
    }
}

impl RetryStrategy for AdaptiveBudget {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn decide(&self, counts: &RetryCounts, cause: AbortCause) -> Decision {
        let mut budgets = self.base.clone();
        budgets.conflict_retries = self.conflict_budget();
        budgets.decide(counts, cause)
    }

    fn observe_region(&self, attempts: u32, path: Path) {
        if path == Path::Fallback {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        self.attempts_acc.fetch_add(attempts, Ordering::Relaxed);
        let n = self.regions.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.window) {
            return;
        }
        // Window boundary: re-evaluate. The counters are only
        // approximately windowed under real concurrency, which is fine —
        // the controller needs a trend, not an exact rate.
        let fb = self.fallbacks.swap(0, Ordering::Relaxed);
        let tries = self.attempts_acc.swap(0, Ordering::Relaxed);
        let scale = self.scale.load(Ordering::Relaxed);
        // Attempt depth, not just fallback rate: a window whose regions
        // average many attempts is burning its budget even when the
        // regions eventually commit or resolve on the middle path.
        let deep = tries > self.window.saturating_mul(ADAPTIVE_DEEP_ATTEMPTS);
        let shallow = tries <= self.window.saturating_mul(ADAPTIVE_SHALLOW_ATTEMPTS);
        let next = if fb * 4 > self.window || deep {
            // >25 % of regions serialized, or budget-deep retrying:
            // retries are being wasted.
            (scale + 1).min(3)
        } else if fb * 20 < self.window && shallow {
            // <5 % fallbacks and shallow regions: speculation wins,
            // grant a bigger budget.
            (scale - 1).max(-2)
        } else {
            scale
        };
        self.scale.store(next, Ordering::Relaxed);
    }
}

/// Hooks called at each executor stage transition. The default methods
/// maintain the [`ThreadStats`] *cycle and abort-cause* accounting; the
/// stage **counts** themselves (attempts, commits, middles, fallbacks,
/// backoffs) are maintained by the executor directly on the thread's
/// `euno-metrics` shard, so they are correct regardless of which observer
/// is installed. An observer that overrides a cycle hook and still wants
/// the figures to work must keep those updates.
pub trait ExecObserver {
    /// A transaction attempt is about to run (episode already open).
    fn on_attempt(&mut self, _stats: &mut ThreadStats) {}

    /// An attempt aborted; `wasted_cycles` includes the abort penalty and
    /// is net of the eager-detection refund.
    fn on_abort(&mut self, stats: &mut ThreadStats, cause: AbortCause, wasted_cycles: u64) {
        stats.cycles_wasted += wasted_cycles;
        stats.aborts.record(cause);
    }

    /// The decide stage asked for backoff before the next attempt.
    fn on_backoff(&mut self, stats: &mut ThreadStats, cycles: u64) {
        stats.cycles_wasted += cycles;
        stats.cycles_backoff += cycles;
    }

    /// The thread waited `cycles` on the fallback lock — either waiting it
    /// out before a speculative attempt or acquiring it for a serialized
    /// run. Brown's HTM-template analysis (and §4.2.1 here) makes this the
    /// single most diagnostic stage count: fallback convoys live in it.
    fn on_fallback_wait(&mut self, stats: &mut ThreadStats, cycles: u64) {
        stats.cycles_fallback_wait += cycles;
    }

    /// A middle-path attempt is about to run: the region's footprint slot
    /// locks were just acquired (the episode is not yet open).
    fn on_middle_attempt(&mut self, _stats: &mut ThreadStats) {}

    /// The thread waited `cycles` acquiring a middle-path footprint's
    /// slot locks.
    fn on_middle_wait(&mut self, stats: &mut ThreadStats, cycles: u64) {
        stats.cycles_middle_wait += cycles;
    }

    /// An attempt committed; `attempts` counts all tries including this
    /// one, and `path` says whether it was a plain ([`Path::Htm`]) or
    /// footprint-locked ([`Path::Middle`]) commit.
    fn on_commit(&mut self, _stats: &mut ThreadStats, _attempts: u32, _path: Path) {}

    /// The region completed on the serialized fallback path.
    fn on_fallback(&mut self, _stats: &mut ThreadStats) {}
}

/// The default observer: exactly the default cycle/abort accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsObserver;

impl ExecObserver for StatsObserver {}

/// One region execution in flight: the stage composition over a fallback
/// cell, a retry strategy and an observer. [`ThreadCtx::htm_execute`] is
/// the everyday entry point; build an `Executor` directly to attach a
/// custom observer.
pub struct Executor<'e> {
    fb: &'e TxCell<u64>,
    strategy: &'e dyn RetryStrategy,
    observer: &'e mut dyn ExecObserver,
    footprint: Option<&'e Footprint<'e>>,
    attempt_start: u64,
}

impl<'e> Executor<'e> {
    pub fn new(
        fb: &'e TxCell<u64>,
        strategy: &'e dyn RetryStrategy,
        observer: &'e mut dyn ExecObserver,
    ) -> Self {
        Executor {
            fb,
            strategy,
            observer,
            footprint: None,
            attempt_start: 0,
        }
    }

    /// Declare the region's middle-path footprint: the advisory slots a
    /// [`Decision::Middle`] attempt locks (in sorted order) before
    /// speculating. Without one, `Decision::Middle` escalates straight to
    /// the global fallback.
    pub fn with_footprint(mut self, footprint: &'e Footprint<'e>) -> Self {
        self.footprint = Some(footprint);
        self
    }

    /// Drive `body` through the stage pipeline to completion.
    pub fn run<R>(
        &mut self,
        ctx: &mut ThreadCtx,
        mut body: impl FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> ExecOutcome<R> {
        let mut counts = RetryCounts::default();
        let mut attempts = 0u32;
        let mut conflict_aborts = 0u32;
        let mut on_middle = false;
        // Metric accumulators: plain locals, flushed to the thread's shard
        // in one pass at episode completion (ThreadCtx::metric_episode) so
        // the retry loop itself never touches the shard atomics.
        let mut middle_attempts = 0u32;
        let mut backoffs = 0u32;
        let mut ab_htm = [0u32; euno_metrics::ABORT_BUCKETS];
        let mut ab_mid = [0u32; euno_metrics::ABORT_BUCKETS];

        loop {
            attempts += 1;
            // Middle path: take the footprint's slot locks *outside* the
            // episode (sorted order — deadlock-free), so only same-slot
            // contenders serialize behind us while disjoint regions keep
            // speculating.
            let holding = if on_middle {
                let fp = self.footprint.expect("middle path requires a footprint");
                let wait_before = ctx.stats.cycles_lock_wait;
                fp.acquire_all(ctx);
                let waited = ctx.stats.cycles_lock_wait - wait_before;
                self.observer.on_middle_attempt(&mut ctx.stats);
                middle_attempts += 1;
                if waited > 0 {
                    self.observer.on_middle_wait(&mut ctx.stats, waited);
                    ctx.trace(EventKind::MiddleWait { cycles: waited });
                }
                Some(fp)
            } else {
                None
            };
            match self.attempt_dispatch(ctx, &mut body, on_middle) {
                Ok(v) => {
                    // The episode is closed (committed): slot lock words
                    // may be touched directly again.
                    if let Some(fp) = holding {
                        fp.release_all(ctx);
                    }
                    let path = if on_middle { Path::Middle } else { Path::Htm };
                    self.observer.on_commit(&mut ctx.stats, attempts, path);
                    ctx.metric_commit_episode(
                        on_middle,
                        attempts,
                        middle_attempts,
                        backoffs,
                        &ab_htm,
                        &ab_mid,
                    );
                    self.strategy.observe_region(attempts, path);
                    return ExecOutcome {
                        value: v,
                        attempts,
                        conflict_aborts,
                        path,
                    };
                }
                Err(cause) => {
                    // classify() closes the aborted episode; only then is
                    // it legal to release the slot locks (direct access).
                    let wasted = self.classify(ctx, cause, &mut counts, &mut conflict_aborts);
                    if let Some(fp) = holding {
                        fp.release_all(ctx);
                    }
                    self.observer.on_abort(&mut ctx.stats, cause, wasted);
                    let bucket = crate::ctx::abort_bucket(&cause);
                    if on_middle {
                        ab_mid[bucket] += 1;
                    } else {
                        ab_htm[bucket] += 1;
                    }
                    match self.strategy.decide(&counts, cause) {
                        Decision::Retry { backoff: true } => {
                            backoffs += 1;
                            self.backoff(ctx, &counts)
                        }
                        Decision::Retry { backoff: false } => {}
                        Decision::Middle => {
                            counts.middle += 1;
                            if self.footprint.is_some() {
                                on_middle = true;
                            } else {
                                // No declared footprint: nothing for the
                                // middle path to lock — escalate straight
                                // to the global fallback (the classic
                                // two-path behaviour).
                                break;
                            }
                        }
                        Decision::Fallback => break,
                    }
                }
            }
        }

        ctx.metric_episode(attempts, middle_attempts, backoffs, &ab_htm, &ab_mid);
        let value = self.fallback(ctx, &mut body);
        self.observer.on_fallback(&mut ctx.stats);
        ctx.metric_add(euno_metrics::Counter::Fallbacks, 1);
        self.strategy.observe_region(attempts, Path::Fallback);
        ExecOutcome {
            value,
            attempts,
            conflict_aborts,
            path: Path::Fallback,
        }
    }

    /// Stage 1 dispatch: route the speculative try to the software episode
    /// engine or, when the runtime was built on the RTM backend and the
    /// CPU supports it, to a genuine hardware transaction. Middle-path
    /// tries also elide under RTM — the advisory slot locks are taken
    /// outside the transaction, so only same-slot contenders serialize.
    fn attempt_dispatch<R>(
        &mut self,
        ctx: &mut ThreadCtx,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
        serialized: bool,
    ) -> Result<R, AbortCause> {
        #[cfg(all(feature = "hw-rtm", target_arch = "x86_64"))]
        if ctx.runtime().rtm_active() {
            return self.attempt_hw(ctx, body);
        }
        self.attempt(ctx, body, serialized)
    }

    /// Stage 1, hardware flavour: run the body inside a real RTM
    /// transaction with the fallback lock subscribed (classic lock
    /// elision). No software episode is opened — conflict detection,
    /// buffering and rollback are the silicon's job; `ThreadCtx::hw_txn`
    /// makes `tx_read`/`tx_write` degrade to plain loads and stores.
    ///
    /// A body `Err` cannot return normally (the transaction's writes must
    /// be rolled back), so it aborts with code 0x01; the fallback
    /// subscription aborts with 0xff. Control for either lands back at
    /// `xbegin` with the status word, which is translated to the engine's
    /// [`AbortCause`] taxonomy.
    #[cfg(all(feature = "hw-rtm", target_arch = "x86_64"))]
    fn attempt_hw<R>(
        &mut self,
        ctx: &mut ThreadCtx,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> Result<R, AbortCause> {
        use crate::hw;
        let wait_before = ctx.stats.cycles_lock_wait;
        ctx.fb_wait_free(self.fb);
        let waited = ctx.stats.cycles_lock_wait - wait_before;
        if waited > 0 {
            self.observer.on_fallback_wait(&mut ctx.stats, waited);
            ctx.trace(EventKind::FallbackWait { cycles: waited });
        }
        self.attempt_start = ctx.clock;
        self.observer.on_attempt(&mut ctx.stats);
        let st = unsafe { hw::xbegin() };
        if st == hw::XBEGIN_STARTED {
            // Subscribe: the lock word joins the read set, so a concurrent
            // fallback acquisition aborts us; if already held, bail now.
            if self.fb.raw().load(Ordering::Relaxed) != 0 {
                unsafe { hw::xabort_ff() };
            }
            // Speculative — rolled back with everything else on abort.
            ctx.hw_txn = true;
            ctx.hw_wrote = false;
            match body(&mut Tx { ctx }) {
                Ok(v) => {
                    if ctx.hw_wrote {
                        // Writing commit: advance the TL2 clock *inside*
                        // the transaction, so the bump publishes
                        // atomically with the write set and episode-free
                        // optimistic readers (`optimistic_validate`:
                        // `seq == snap`) abort instead of accepting a
                        // snapshot this commit landed in the middle of.
                        // The seq word joins the hardware conflict set —
                        // one extra line, the price of making elided
                        // writers visible to snapshot validation.
                        let seq = &ctx.runtime().seq;
                        let s = seq.load(Ordering::Relaxed);
                        seq.store(s + 1, Ordering::Relaxed);
                    }
                    unsafe { hw::xend() };
                    ctx.hw_txn = false;
                    ctx.hw_wrote = false;
                    return Ok(v);
                }
                Err(_) => {
                    unsafe { hw::xabort_01() };
                    // Unreachable inside a transaction; defensive exit for
                    // the no-RTM-in-flight case (xabort is a no-op there).
                    ctx.hw_txn = false;
                    ctx.hw_wrote = false;
                    return Err(AbortCause::Explicit(1));
                }
            }
        }
        ctx.hw_txn = false;
        ctx.hw_wrote = false;
        Err(Self::hw_abort_cause(st))
    }

    /// Translate an RTM status word into the engine's abort taxonomy.
    #[cfg(all(feature = "hw-rtm", target_arch = "x86_64"))]
    fn hw_abort_cause(st: u32) -> AbortCause {
        use crate::hw::status;
        use crate::line::LineId;
        if st & status::EXPLICIT != 0 {
            match status::xabort_code(st) {
                0xff => AbortCause::FallbackLocked,
                code => AbortCause::Explicit(code),
            }
        } else if st & status::CAPACITY != 0 {
            AbortCause::Capacity
        } else if st & status::CONFLICT != 0 {
            // Hardware says only *that* a line collided, not which one.
            AbortCause::Conflict(ConflictInfo {
                line: LineId(0),
                kind: crate::abort::ConflictKind::Unclassified,
                other_thread: None,
            })
        } else {
            AbortCause::Spurious
        }
    }

    /// Stage 1: one speculative try — wait out the fallback lock, open an
    /// HtmTx episode, subscribe to the lock word, run the body, commit.
    /// A middle-path try (`serialized`) additionally declares its
    /// same-slot contenders lock-serialized, which disables the abort
    /// storm extrapolation (the locks invalidate its independence
    /// assumption) while keeping the deterministic overlap check.
    fn attempt<R>(
        &mut self,
        ctx: &mut ThreadCtx,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
        serialized: bool,
    ) -> Result<R, AbortCause> {
        let wait_before = ctx.stats.cycles_lock_wait;
        ctx.fb_wait_free(self.fb);
        let waited = ctx.stats.cycles_lock_wait - wait_before;
        if waited > 0 {
            self.observer.on_fallback_wait(&mut ctx.stats, waited);
            ctx.trace(EventKind::FallbackWait { cycles: waited });
        }
        self.attempt_start = ctx.clock;
        let xbegin = ctx.runtime().cost.xbegin;
        ctx.charge(xbegin);
        ctx.episode_begin(EpisodeKind::HtmTx);
        if serialized {
            ctx.set_serialized();
        }
        self.observer.on_attempt(&mut ctx.stats);
        ctx.fb_subscribe(self.fb)?;
        let v = body(&mut Tx { ctx })?;
        let xend = ctx.runtime().cost.xend;
        ctx.charge(xend);
        ctx.htm_commit()?;
        Ok(v)
    }

    /// Stage 2: abort bookkeeping — keep the attempt's speculative writes
    /// hot, close the episode, account wasted cycles (TSX detects
    /// conflicts eagerly: refund half the attempt so retry density matches
    /// mid-flight death), charge the abort penalty, tally the cause.
    /// Returns the wasted cycles for the observer.
    fn classify(
        &mut self,
        ctx: &mut ThreadCtx,
        cause: AbortCause,
        counts: &mut RetryCounts,
        conflict_aborts: &mut u32,
    ) -> u64 {
        let (code, line_addr) = trace_abort_code(&cause);
        ctx.trace(EventKind::EpisodeAbort {
            kind: codes::EP_HTM_TX,
            cause: code,
            line_addr,
        });
        ctx.note_attempt_writes();
        ctx.episode_abort();
        let mut wasted_attempt = ctx.clock - self.attempt_start;
        if matches!(cause, AbortCause::Conflict(_)) && ctx.mode() == Mode::Virtual {
            let refund = wasted_attempt / 2;
            ctx.clock -= refund;
            wasted_attempt -= refund;
        }
        let penalty = ctx.runtime().cost.abort_penalty;
        ctx.charge(penalty);
        if matches!(cause, AbortCause::Conflict(_)) {
            *conflict_aborts += 1;
        }
        counts.bump(cause);
        wasted_attempt + penalty
    }

    /// Stage 4: exponential backoff between retries.
    fn backoff(&mut self, ctx: &mut ThreadCtx, counts: &RetryCounts) {
        let b = ctx.runtime().cost.backoff(counts.total_attempted());
        ctx.charge(b);
        self.observer.on_backoff(&mut ctx.stats, b);
        ctx.trace(EventKind::Backoff { cycles: b });
    }

    /// Stage 5: serialize on the fallback lock and run the body directly.
    fn fallback<R>(
        &mut self,
        ctx: &mut ThreadCtx,
        body: &mut impl FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> R {
        let wait_before = ctx.stats.cycles_lock_wait;
        ctx.fb_acquire(self.fb);
        let waited = ctx.stats.cycles_lock_wait - wait_before;
        if waited > 0 {
            self.observer.on_fallback_wait(&mut ctx.stats, waited);
            ctx.trace(EventKind::FallbackWait { cycles: waited });
        }
        ctx.episode_begin(EpisodeKind::Fallback);
        ctx.fallback_mark(self.fb);
        let mut tries = 0;
        let value = loop {
            match body(&mut Tx { ctx }) {
                Ok(v) => break v,
                Err(e) => {
                    tries += 1;
                    assert!(
                        tries < 16,
                        "region body keeps failing on the serialized fallback path: {e:?}"
                    );
                }
            }
        };
        ctx.fallback_publish();
        ctx.fb_release(self.fb);
        value
    }
}

impl ThreadCtx {
    /// Execute `body` as an HTM region under `strategy` with a global-lock
    /// fallback (§2.1, §4.2.1).
    ///
    /// `body` may run many times: transactionally (reads validated, writes
    /// buffered) and, after retry exhaustion, once more on the serialized
    /// fallback path where reads/writes are direct. Bodies therefore must
    /// be idempotent up to their tx reads/writes and must not return
    /// `Err` on the fallback path.
    pub fn htm_execute<R>(
        &mut self,
        fb: &TxCell<u64>,
        strategy: &dyn RetryStrategy,
        body: impl FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> ExecOutcome<R> {
        self.htm_execute_with(fb, strategy, None, body)
    }

    /// [`htm_execute`](ThreadCtx::htm_execute) with a declared middle-path
    /// footprint: after the speculative budgets are exhausted the region
    /// retries while holding `footprint`'s advisory slot locks
    /// ([`Path::Middle`]) before escalating to the global fallback. With
    /// `None` the middle path is skipped (two-path behaviour).
    pub fn htm_execute_with<R>(
        &mut self,
        fb: &TxCell<u64>,
        strategy: &dyn RetryStrategy,
        footprint: Option<&Footprint<'_>>,
        body: impl FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> ExecOutcome<R> {
        let mut observer = StatsObserver;
        let mut ex = Executor::new(fb, strategy, &mut observer);
        if let Some(fp) = footprint {
            ex = ex.with_footprint(fp);
        }
        ex.run(self, body)
    }

    /// Run one optimistic-read section (Masstree-style before/after
    /// validation) to completion: open an `OptimisticRead` episode, run
    /// `body`, close the episode, and retry — counting
    /// `optimistic_retries` and charging one backoff quantum — until
    /// `body` succeeds and `invalidated` clears the episode's overlap.
    ///
    /// `body` returns `None` when its own validation (version words,
    /// B-link fences) failed; `invalidated` judges the engine-level
    /// overlap that virtual mode reports on episode end.
    pub fn optimistic_execute<R>(
        &mut self,
        op_key: Option<u64>,
        mut invalidated: impl FnMut(Option<ConflictInfo>) -> bool,
        mut body: impl FnMut(&mut ThreadCtx) -> Option<R>,
    ) -> R {
        loop {
            self.episode_begin(EpisodeKind::OptimisticRead);
            if let Some(key) = op_key {
                self.set_op_key(key);
            }
            let attempt = body(self);
            let overlap = self.episode_end_optimistic();
            match attempt {
                Some(v) if !invalidated(overlap) => return v,
                _ => {
                    self.stats.optimistic_retries += 1;
                    self.trace(EventKind::ReadRetry {
                        key: op_key.unwrap_or(0),
                    });
                    let b = self.runtime().cost.backoff_base;
                    self.charge(b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use std::sync::Arc;

    fn vctx() -> (Arc<Runtime>, ThreadCtx) {
        let rt = Runtime::new_virtual();
        let ctx = rt.thread(1);
        (rt, ctx)
    }

    #[test]
    fn tx_read_write_commit_applies_buffer() {
        let (_rt, mut ctx) = vctx();
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(5u64);
        let out = ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)?;
            // Not yet visible outside the buffer...
            Ok(v)
        });
        assert_eq!(out.value, 5);
        assert_eq!(out.path, Path::Htm);
        assert_eq!(out.attempts, 1);
        assert_eq!(cell.load_plain(), 6);
        assert_eq!(ctx.exec_stages().commits, 1);
    }

    #[test]
    fn read_your_own_writes() {
        let (_rt, mut ctx) = vctx();
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(1u64);
        ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
            tx.write(&cell, 10)?;
            assert_eq!(tx.read(&cell)?, 10);
            tx.write(&cell, 20)?;
            assert_eq!(tx.read(&cell)?, 20);
            Ok(())
        });
        assert_eq!(cell.load_plain(), 20);
    }

    #[test]
    fn overlapping_footprints_conflict_in_virtual_time() {
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(1);
        let mut b = rt.thread(2);
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let policy = RetryPolicy::default();

        // Thread A commits a write covering virtual interval [0, ~small).
        a.htm_execute(&fb, &policy, |tx| tx.write(&cell, 1));
        // Thread B starts at virtual time 0 too (fresh clock) and touches
        // the same line → must suffer at least one conflict abort.
        let out = b.htm_execute(&fb, &policy, |tx| {
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)
        });
        assert!(
            out.attempts > 1 || out.path != Path::Htm,
            "expected a conflict abort, got {out:?}"
        );
        assert!(b.stats.aborts.total() >= 1);
        assert_eq!(cell.load_plain(), 2);
    }

    #[test]
    fn disjoint_lines_do_not_conflict() {
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(1);
        let mut b = rt.thread(2);
        let fb = TxCell::new(0u64);
        // Line-aligned allocations: two distinct 64-byte-aligned boxes can
        // never share a cache line (unaligned small boxes can, depending on
        // allocator state).
        #[repr(align(64))]
        struct Padded(TxCell<u64>);
        let x = Box::new(Padded(TxCell::new(0u64)));
        let y = Box::new(Padded(TxCell::new(0u64)));
        assert_ne!(x.0.line(), y.0.line());
        let policy = RetryPolicy::default();
        a.htm_execute(&fb, &policy, |tx| tx.write(&x.0, 1));
        let out = b.htm_execute(&fb, &policy, |tx| tx.write(&y.0, 1));
        assert_eq!(out.attempts, 1);
        assert_eq!(b.stats.aborts.total(), 0);
    }

    #[test]
    fn capacity_abort_falls_back() {
        let rt = Runtime::new(
            Mode::Virtual,
            crate::cost::CostModel {
                write_capacity_lines: 2,
                ..Default::default()
            },
        );
        let mut ctx = rt.thread(1);
        let fb = TxCell::new(0u64);
        let cells: Vec<Box<TxCell<u64>>> = (0..64).map(|_| Box::new(TxCell::new(0u64))).collect();
        let distinct: std::collections::HashSet<_> = cells.iter().map(|c| c.line()).collect();
        assert!(distinct.len() > 2);
        let out = ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
            for c in &cells {
                tx.write(c, 7)?;
            }
            Ok(())
        });
        assert!(out.used_fallback(), "capacity overflow must reach fallback");
        assert!(ctx.stats.aborts.capacity >= 1);
        // Fallback applied the writes directly.
        assert!(cells.iter().all(|c| c.load_plain() == 7));
    }

    #[test]
    fn explicit_abort_reaches_fallback() {
        let (_rt, mut ctx) = vctx();
        let fb = TxCell::new(0u64);
        let mut first = true;
        let out = ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
            if !tx.is_fallback() && first {
                first = false;
                return tx.explicit_abort(9);
            }
            Ok(42)
        });
        assert_eq!(out.value, 42);
        assert_eq!(ctx.stats.aborts.explicit, 1);
    }

    #[test]
    fn clock_advances_with_charges() {
        let (_rt, mut ctx) = vctx();
        let before = ctx.clock;
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| tx.write(&cell, 1));
        assert!(ctx.clock > before);
        assert!(ctx.stats.mem_accesses > 0);
    }

    #[test]
    fn concurrent_mode_commits_and_validates() {
        let rt = Runtime::new_concurrent();
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let n = 4u64;
        let iters = 200u64;
        std::thread::scope(|s| {
            for t in 0..n {
                let mut ctx = rt.thread(t);
                let (fb, cell) = (&fb, &cell);
                s.spawn(move || {
                    for _ in 0..iters {
                        ctx.htm_execute(fb, &RetryPolicy::default(), |tx| {
                            let v = tx.read(cell)?;
                            tx.write(cell, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(
            cell.load_plain(),
            n * iters,
            "increments must not be lost under real concurrency"
        );
    }

    #[test]
    fn fallback_serializes_and_still_updates() {
        // Force every transaction to abort via a zero-retry policy and an
        // always-explicit body on the HTM path.
        let (_rt, mut ctx) = vctx();
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let policy = RetryPolicy {
            conflict_retries: 0,
            capacity_retries: 0,
            explicit_retries: 0,
            spurious_retries: 0,
            fallback_lock_retries: 0,
            middle_retries: 0,
            backoff: false,
        };
        let out = ctx.htm_execute(&fb, &policy, |tx| {
            if tx.is_fallback() {
                let v = tx.read(&cell)?;
                tx.write(&cell, v + 1)?;
                Ok(())
            } else {
                tx.explicit_abort(1)
            }
        });
        assert!(out.used_fallback());
        assert_eq!(cell.load_plain(), 1);
        assert_eq!(ctx.exec_stages().fallbacks, 1);
        assert_eq!(fb.load_plain(), 0, "fallback lock must be released");
    }

    // ----- strategy-layer behaviour -----

    #[test]
    fn strategies_expose_stable_names() {
        assert_eq!(RetryPolicy::default().name(), "budget");
        assert_eq!(DbxPolicy::default().name(), "dbx");
        assert_eq!(AggressivePolicy::default().name(), "aggressive");
        assert_eq!(AdaptiveBudget::default().name(), "adaptive");
    }

    #[test]
    fn aggressive_strategy_retries_where_default_escalates() {
        // Bump a cause tally past the default budget but inside the
        // persistent one: the two strategies must disagree. Exhausting
        // the speculative budget now escalates to the middle path first;
        // only a region that also burns its middle grants serializes.
        let mut counts = RetryCounts::default();
        let cause = AbortCause::Spurious;
        for _ in 0..RetryPolicy::default().spurious_retries + 1 {
            counts.bump(cause);
        }
        assert_eq!(
            RetryPolicy::default().decide(&counts, cause),
            Decision::Middle
        );
        assert_eq!(
            AggressivePolicy::default().decide(&counts, cause),
            Decision::Retry { backoff: true }
        );
        // Past the middle grants too: serialize.
        counts.middle = RetryPolicy::default().middle_retries;
        assert_eq!(
            RetryPolicy::default().decide(&counts, cause),
            Decision::Fallback
        );
        // `two_path()` disables the middle path entirely.
        assert_eq!(
            RetryPolicy::default().two_path().decide(
                &RetryCounts {
                    middle: 0,
                    ..counts
                },
                cause
            ),
            Decision::Fallback
        );
    }

    #[test]
    fn adaptive_budget_shrinks_under_fallback_storms() {
        let strat = AdaptiveBudget::default().with_window(16);
        let initial = strat.conflict_budget();
        // A full window of fallbacks: the budget must shrink.
        for _ in 0..16 {
            strat.observe_region(11, Path::Fallback);
        }
        assert!(strat.conflict_budget() < initial);
        // Windows of clean commits: the budget recovers and then grows.
        for _ in 0..64 {
            strat.observe_region(1, Path::Htm);
        }
        assert!(strat.conflict_budget() > initial);
        assert!(strat.conflict_budget() <= ADAPTIVE_MAX_CONFLICT_BUDGET);
    }

    /// Satellite regression: `observe_region` must respond to attempt
    /// *depth*, not just the fallback flag. A window whose regions all
    /// commit — but only after burning their whole retry budget — used to
    /// read as "0 % fallbacks, grow the budget"; it must shrink it.
    #[test]
    fn adaptive_budget_shrinks_on_deep_but_clean_windows() {
        let strat = AdaptiveBudget::default().with_window(16);
        let initial = strat.conflict_budget();
        for _ in 0..16 {
            strat.observe_region(10, Path::Htm); // deep, yet no fallback
        }
        assert!(
            strat.conflict_budget() < initial,
            "budget-deep windows must shrink the budget even without fallbacks"
        );
        // Middle-path commits count toward depth the same way.
        let strat = AdaptiveBudget::default().with_window(16);
        for _ in 0..16 {
            strat.observe_region(10, Path::Middle);
        }
        assert!(strat.conflict_budget() < initial);
    }

    #[test]
    fn adaptive_budget_is_selectable_at_the_executor_seam() {
        let (_rt, mut ctx) = vctx();
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(3u64);
        let strat = AdaptiveBudget::default();
        let out = ctx.htm_execute(&fb, &strat, |tx| {
            let v = tx.read(&cell)?;
            tx.write(&cell, v * 2)?;
            Ok(v)
        });
        assert_eq!(out.value, 3);
        assert_eq!(cell.load_plain(), 6);
    }

    #[test]
    fn custom_observer_sees_stage_transitions() {
        #[derive(Default)]
        struct Recorder {
            attempts: u32,
            aborts: u32,
            commits: u32,
            fallbacks: u32,
        }
        impl ExecObserver for Recorder {
            fn on_attempt(&mut self, _stats: &mut ThreadStats) {
                self.attempts += 1;
            }
            fn on_abort(&mut self, stats: &mut ThreadStats, cause: AbortCause, wasted: u64) {
                self.aborts += 1;
                stats.cycles_wasted += wasted;
                stats.aborts.record(cause);
            }
            fn on_commit(&mut self, _stats: &mut ThreadStats, _attempts: u32, _path: Path) {
                self.commits += 1;
            }
            fn on_fallback(&mut self, _stats: &mut ThreadStats) {
                self.fallbacks += 1;
            }
        }

        let (_rt, mut ctx) = vctx();
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let mut rec = Recorder::default();
        let policy = RetryPolicy::default();
        let mut first = true;
        let out = Executor::new(&fb, &policy, &mut rec).run(&mut ctx, |tx| {
            if first {
                first = false;
                return tx.explicit_abort(2);
            }
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)
        });
        // Explicit aborts have no budget: one abort, then fallback.
        assert!(out.used_fallback());
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.aborts, 1);
        assert_eq!(rec.commits, 0);
        assert_eq!(rec.fallbacks, 1);
        assert_eq!(ctx.exec_stages().attempts, 1);
        assert_eq!(ctx.exec_stages().fallbacks, 1);
    }

    #[test]
    fn stage_counters_track_backoff_and_fallback_wait() {
        // Conflicting threads: the loser retries with exponential backoff,
        // and the backoff stage counters must record it.
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(1);
        let mut b = rt.thread(2);
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let policy = RetryPolicy::default();
        a.htm_execute(&fb, &policy, |tx| tx.write(&cell, 1));
        b.htm_execute(&fb, &policy, |tx| {
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)
        });
        assert!(
            b.exec_stages().backoffs >= 1,
            "conflict retries must back off"
        );
        assert!(b.stats.cycles_backoff > 0);
        assert!(b.stats.cycles_backoff <= b.stats.cycles_wasted);

        // A fallback run holds the lock in virtual time; the next region
        // on the same lock waits it out, and that wait is attributed to
        // the fallback-wait stage.
        let rt = Runtime::new_virtual();
        let mut holder = rt.thread(3);
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let serialize = RetryPolicy {
            conflict_retries: 0,
            capacity_retries: 0,
            explicit_retries: 0,
            spurious_retries: 0,
            fallback_lock_retries: 0,
            middle_retries: 0,
            backoff: false,
        };
        holder.htm_execute(&fb, &serialize, |tx| {
            if tx.is_fallback() {
                let v = tx.read(&cell)?;
                tx.write(&cell, v + 1)
            } else {
                tx.explicit_abort(1)
            }
        });
        let mut waiter = rt.thread(4);
        waiter.htm_execute(&fb, &RetryPolicy::default(), |tx| tx.read(&cell));
        assert!(
            waiter.stats.cycles_fallback_wait > 0,
            "waiting out the fallback lock must be attributed to the stage"
        );
        assert!(waiter.stats.cycles_fallback_wait <= waiter.stats.cycles_lock_wait);
    }

    /// Satellite audit of the split accounting contract: the default
    /// [`StatsObserver`] hooks maintain exactly the *cycle and abort-cause*
    /// side of [`ThreadStats`] (stage counts live on the metrics shard and
    /// are the executor's job — see the test below), and each cycle hook
    /// adds its contribution exactly once.
    #[test]
    fn stats_observer_covers_cycle_accounting_exactly_once() {
        let mut stats = ThreadStats::default();
        let mut obs = StatsObserver;

        obs.on_attempt(&mut stats);
        obs.on_abort(&mut stats, AbortCause::Spurious, 7);
        assert_eq!(stats.aborts.total(), 1);
        assert_eq!(stats.cycles_wasted, 7);

        obs.on_backoff(&mut stats, 5);
        assert_eq!(stats.cycles_backoff, 5);
        assert_eq!(stats.cycles_wasted, 12, "backoff also counts as waste");

        obs.on_fallback_wait(&mut stats, 9);
        assert_eq!(stats.cycles_fallback_wait, 9);

        obs.on_middle_attempt(&mut stats);
        obs.on_middle_wait(&mut stats, 4);
        assert_eq!(stats.cycles_middle_wait, 4);

        obs.on_commit(&mut stats, 3, Path::Htm);
        obs.on_fallback(&mut stats);

        // Second round: each cycle hook must add exactly one more unit —
        // none double-counts.
        obs.on_abort(&mut stats, AbortCause::Capacity, 1);
        obs.on_backoff(&mut stats, 1);
        obs.on_fallback_wait(&mut stats, 1);
        obs.on_middle_wait(&mut stats, 1);
        assert_eq!(stats.aborts.total(), 2);
        assert_eq!(stats.cycles_backoff, 6);
        assert_eq!(stats.cycles_fallback_wait, 10);
        assert_eq!(stats.cycles_middle_wait, 5);
        assert_eq!(stats.cycles_wasted, 14);
    }

    /// The stage counts the report is built from are maintained by the
    /// executor on the thread's metrics shard — exactly once per stage
    /// transition, including the per-path commit and abort breakdowns.
    #[test]
    fn executor_maintains_shard_stage_counters_exactly_once() {
        use euno_metrics::Counter as C;
        let (_rt, mut ctx) = vctx();
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let mut first = true;
        let out = ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
            if !tx.is_fallback() && first {
                first = false;
                return tx.explicit_abort(1);
            }
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)
        });
        // Explicit aborts have no default budget: one attempt, one
        // explicit abort, then the fallback completes the region.
        assert!(out.used_fallback());
        assert_eq!(ctx.metric(C::Attempts), 1);
        assert_eq!(ctx.metric(C::AbortsHtmExplicit), 1);
        assert_eq!(ctx.metric(C::Fallbacks), 1);
        assert_eq!(ctx.metric(C::Commits), 0);

        // A clean commit lands in the total, the per-path and the
        // per-backend counter exactly once.
        let out = ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)
        });
        assert_eq!(out.path, Path::Htm);
        assert_eq!(ctx.metric(C::Commits), 1);
        assert_eq!(ctx.metric(C::CommitsHtm), 1);
        assert_eq!(ctx.metric(C::CommitsVirtual), 1);
        assert_eq!(ctx.metric(C::CommitsStm), 0);
        assert_eq!(ctx.metric(C::Middles), 0);
        assert_eq!(ctx.metric(C::Attempts), 2);
    }

    /// The executor's trace stream must pair every `EpisodeBegin` with a
    /// commit or an abort, and record the abort's cause taxonomy.
    #[test]
    fn executor_emits_paired_episode_events() {
        let (_rt, mut ctx) = vctx();
        ctx.set_tracer(Box::new(euno_trace::TraceBuf::with_default_capacity(
            ctx.id,
        )));
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let mut first = true;
        let out = ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
            if !tx.is_fallback() && first {
                first = false;
                return tx.explicit_abort(3);
            }
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)
        });
        assert!(out.used_fallback());

        let trace = ctx.take_tracer().unwrap().into_thread_trace();
        let mut begins = 0u32;
        let mut ends = 0u32;
        let mut explicit_aborts = 0u32;
        let mut fallback_commits = 0u32;
        for ev in &trace.events {
            match ev.kind {
                EventKind::EpisodeBegin { .. } => begins += 1,
                EventKind::EpisodeCommit { kind } => {
                    ends += 1;
                    if kind == codes::EP_FALLBACK {
                        fallback_commits += 1;
                    }
                }
                EventKind::EpisodeAbort { cause, .. } => {
                    ends += 1;
                    if cause == codes::AB_EXPLICIT {
                        explicit_aborts += 1;
                    }
                }
                _ => {}
            }
        }
        assert_eq!(begins, 2, "one HTM attempt + one fallback episode");
        assert_eq!(begins, ends, "every begin pairs with a commit or abort");
        assert_eq!(explicit_aborts, 1);
        assert_eq!(fallback_commits, 1);
        // The fallback path also records its lock acquire/release.
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::LockAcquire { .. })));
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::LockRelease { .. })));
    }

    // ----- middle-path behaviour -----

    use crate::lock::BitLockVector;

    /// Escalates to the middle path on the first abort and serializes
    /// after two middle grants — a compressed schedule for unit tests.
    struct EscalateFast;
    impl RetryStrategy for EscalateFast {
        fn name(&self) -> &'static str {
            "escalate-fast"
        }
        fn decide(&self, counts: &RetryCounts, _cause: AbortCause) -> Decision {
            if counts.middle < 2 {
                Decision::Middle
            } else {
                Decision::Fallback
            }
        }
    }

    #[test]
    fn middle_path_commits_with_footprint_locked() {
        let (_rt, mut ctx) = vctx();
        ctx.set_tracer(Box::new(euno_trace::TraceBuf::with_default_capacity(
            ctx.id,
        )));
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let locks = BitLockVector::new(64);
        let fp = Footprint::new(&locks, &[7, 3]);
        let mut first = true;
        let out = ctx.htm_execute_with(&fb, &EscalateFast, Some(&fp), |tx| {
            if first {
                first = false;
                return tx.explicit_abort(1);
            }
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)
        });
        assert_eq!(out.path, Path::Middle);
        assert_eq!(out.attempts, 2);
        assert!(!out.used_fallback());
        assert_eq!(cell.load_plain(), 1);
        assert_eq!(ctx.exec_stages().commits, 1);
        assert_eq!(ctx.exec_stages().middles, 1);
        assert_eq!(ctx.exec_stages().middle_attempts, 1);
        assert_eq!(ctx.exec_stages().fallbacks, 0);
        assert_eq!(fb.load_plain(), 0, "global fallback lock never taken");
        // Both slot locks were released after the commit.
        assert!(!locks.is_locked(&mut ctx, 3));
        assert!(!locks.is_locked(&mut ctx, 7));
        // The slot acquisitions were traced in sorted order.
        let trace = ctx.take_tracer().unwrap().into_thread_trace();
        let acquires: Vec<u64> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::LockAcquire { addr, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(acquires.len(), 2, "one acquire per footprint slot");
    }

    #[test]
    fn middle_decision_without_footprint_is_two_path() {
        // A region that never declared a footprint treats Decision::Middle
        // as Decision::Fallback — byte-for-byte the classic escalation.
        let (_rt, mut ctx) = vctx();
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let mut first = true;
        let out = ctx.htm_execute(&fb, &EscalateFast, |tx| {
            if !tx.is_fallback() && first {
                first = false;
                return tx.explicit_abort(1);
            }
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)
        });
        assert_eq!(out.path, Path::Fallback);
        assert_eq!(ctx.exec_stages().middle_attempts, 0);
        assert_eq!(ctx.exec_stages().middles, 0);
        assert_eq!(ctx.exec_stages().fallbacks, 1);
        assert_eq!(cell.load_plain(), 1);
    }

    #[test]
    fn middle_path_exhaustion_escalates_to_fallback() {
        // A body that aborts on every speculative attempt (middle ones
        // included) must burn the middle grants and still complete on the
        // serialized fallback, releasing every slot lock on the way.
        let (_rt, mut ctx) = vctx();
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let locks = BitLockVector::new(64);
        let fp = Footprint::new(&locks, &[11]);
        let out = ctx.htm_execute_with(&fb, &EscalateFast, Some(&fp), |tx| {
            if tx.is_fallback() {
                let v = tx.read(&cell)?;
                tx.write(&cell, v + 1)
            } else {
                tx.explicit_abort(1)
            }
        });
        assert_eq!(out.path, Path::Fallback);
        assert_eq!(out.attempts, 3, "1 htm + 2 middle grants");
        assert_eq!(ctx.exec_stages().middle_attempts, 2);
        assert_eq!(ctx.exec_stages().middles, 0, "no middle attempt committed");
        assert_eq!(ctx.exec_stages().fallbacks, 1);
        assert_eq!(cell.load_plain(), 1);
        assert!(!locks.is_locked(&mut ctx, 11), "aborts must release slots");
        assert_eq!(fb.load_plain(), 0);
    }

    #[test]
    fn middle_path_waits_out_contended_slots_in_virtual_time() {
        // Thread A commits a middle-path region over slot 5; thread B (at
        // virtual time 0) then takes the same slot — the virtual lock
        // model must charge B the wait and attribute it to the middle
        // stage counters.
        let rt = Runtime::new_virtual();
        let locks = BitLockVector::new(64);
        let fb = TxCell::new(0u64);
        let cell_a = TxCell::new(0u64);
        let cell_b = TxCell::new(0u64);
        let fp = Footprint::new(&locks, &[5]);

        let run = |ctx: &mut ThreadCtx, cell: &TxCell<u64>| {
            let mut first = true;
            ctx.htm_execute_with(&fb, &EscalateFast, Some(&fp), |tx| {
                if first {
                    first = false;
                    return tx.explicit_abort(1);
                }
                tx.write(cell, 1)
            })
        };

        let mut a = rt.thread(1);
        let out_a = run(&mut a, &cell_a);
        assert_eq!(out_a.path, Path::Middle);
        assert_eq!(a.stats.cycles_middle_wait, 0, "slot was uncontended");

        let mut b = rt.thread(2);
        let out_b = run(&mut b, &cell_b);
        assert_eq!(out_b.path, Path::Middle);
        assert!(
            b.stats.cycles_middle_wait > 0,
            "B must wait out A's virtual hold on slot 5"
        );
        assert!(b.stats.cycles_middle_wait <= b.stats.cycles_lock_wait);
    }

    #[test]
    fn two_path_policy_never_takes_the_middle_path() {
        // `two_path()` on the default policy reproduces the legacy
        // executor even when a footprint is declared.
        let (_rt, mut ctx) = vctx();
        let fb = TxCell::new(0u64);
        let cell = TxCell::new(0u64);
        let locks = BitLockVector::new(64);
        let fp = Footprint::new(&locks, &[2]);
        let policy = RetryPolicy::default().two_path();
        let out = ctx.htm_execute_with(&fb, &policy, Some(&fp), |tx| {
            if tx.is_fallback() {
                let v = tx.read(&cell)?;
                tx.write(&cell, v + 1)
            } else {
                tx.explicit_abort(1)
            }
        });
        assert_eq!(out.path, Path::Fallback);
        assert_eq!(ctx.exec_stages().middle_attempts, 0);
        assert_eq!(ctx.stats.cycles_middle_wait, 0);
        assert_eq!(cell.load_plain(), 1);
    }

    #[test]
    fn path_labels_and_ordering_are_stable() {
        assert_eq!(Path::Htm.label(), "htm");
        assert_eq!(Path::Middle.label(), "middle");
        assert_eq!(Path::Fallback.label(), "fallback");
        assert!(Path::Htm < Path::Middle && Path::Middle < Path::Fallback);
    }

    #[test]
    fn optimistic_execute_counts_retries() {
        let (_rt, mut ctx) = vctx();
        let mut tries = 0;
        let v = ctx.optimistic_execute(
            Some(7),
            |_| false,
            |_ctx| {
                tries += 1;
                if tries < 3 {
                    None
                } else {
                    Some(99u64)
                }
            },
        );
        assert_eq!(v, 99);
        assert_eq!(ctx.stats.optimistic_retries, 2);
    }
}
