//! Node arenas with deferred reclamation and byte accounting.
//!
//! The paper reuses DBX's deferred deletion/garbage-collection scheme
//! (§4.2.4): nodes unlinked from the tree are not freed immediately, so
//! concurrent readers can never observe a dangling pointer. Early revisions
//! of this arena took that to the degenerate extreme — unlinked nodes were
//! merely *counted* as retired and every allocation lived until the arena
//! dropped, so the §5.7 memory experiment measured a leak. Retirement now
//! hands the node to the engine's epoch collector ([`crate::epoch`]):
//! [`Arena::retire`] removes the node from the arena's registry and defers
//! the actual `Box` free until two epochs have passed, at which point no
//! reader pinned while the node was reachable can still hold a pointer.
//!
//! The byte counters feed the §5.7 memory-consumption experiment. Each
//! node is charged its `size_of::<T>()` **plus** whatever the arena's
//! `payload_bytes` hook reports for owned heap storage at allocation time;
//! the charge is remembered per node so retirement releases exactly what
//! allocation charged (an earlier revision charged only `size_of::<T>()`,
//! making heap payloads invisible to `BENCH_mem.json`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::epoch::Collector;

/// Byte counters, shared with deferred-free closures via `Arc` so a
/// reclamation that runs after the arena has dropped still settles the
/// pending/reclaimed books.
#[derive(Default)]
struct ArenaCounters {
    /// Bytes in nodes still linked into the structure.
    live_bytes: AtomicUsize,
    /// Bytes unlinked and awaiting their epoch grace period.
    retired_pending_bytes: AtomicUsize,
    /// Bytes actually freed (cumulative).
    reclaimed_bytes: AtomicUsize,
    /// Cumulative bytes ever retired (pending + reclaimed stays equal to
    /// this minus nothing; kept separate so the legacy `retired_bytes`
    /// reading survives the pending→reclaimed transition).
    retired_cumulative_bytes: AtomicUsize,
}

impl ArenaCounters {
    /// Saturating subtraction from `live_bytes`; returns `true` if the
    /// subtraction had to clamp (i.e. it would have underflowed).
    fn sub_live(&self, bytes: usize) -> bool {
        let mut clamped = false;
        let _ = self
            .live_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                clamped = v < bytes;
                Some(v.saturating_sub(bytes))
            });
        clamped
    }
}

/// An allocation registry for nodes of type `T` with epoch-deferred frees.
pub struct Arena<T> {
    /// Address → bytes charged at allocation. Retirement removes the entry
    /// (detecting double-retires) and releases exactly the recorded charge.
    nodes: Mutex<HashMap<usize, usize>>,
    counters: Arc<ArenaCounters>,
    /// Reports heap bytes owned by a node beyond `size_of::<T>()`.
    payload_bytes: fn(&T) -> usize,
}

// Safety: the raw addresses are uniquely owned by the arena (created from
// Box::into_raw, freed exactly once — either by a deferred-free closure or
// in Drop for still-live nodes); shared access to the `T`s is governed by
// the engine's protocols, which require T: Sync.
unsafe impl<T: Send + Sync> Send for Arena<T> {}
unsafe impl<T: Send + Sync> Sync for Arena<T> {}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    pub fn new() -> Self {
        Self::with_payload_bytes(|_| 0)
    }

    /// An arena whose nodes own heap storage: `payload_bytes` reports the
    /// extra bytes a node carries beyond `size_of::<T>()` so the §5.7
    /// counters see the real footprint.
    pub fn with_payload_bytes(payload_bytes: fn(&T) -> usize) -> Self {
        Arena {
            nodes: Mutex::new(HashMap::new()),
            counters: Arc::new(ArenaCounters::default()),
            payload_bytes,
        }
    }

    /// Allocate a node. The reference is valid until the node is retired
    /// *and* its epoch grace period elapses; readers must therefore hold an
    /// epoch pin ([`Collector`] guard) while dereferencing nodes that can
    /// be unlinked concurrently.
    pub fn alloc(&self, value: T) -> &T {
        let bytes = std::mem::size_of::<T>() + (self.payload_bytes)(&value);
        let ptr = Box::into_raw(Box::new(value));
        self.nodes.lock().unwrap().insert(ptr as usize, bytes);
        self.counters.live_bytes.fetch_add(bytes, Ordering::Relaxed);
        // Safety: the allocation is stable until retirement, and retirement
        // defers the free past any pinned reader's lifetime.
        unsafe { &*ptr }
    }

    /// Unlink-and-defer: remove `node` from the registry, move its charged
    /// bytes from *live* to *retired-pending*, and hand the actual free to
    /// `epoch` so it runs only after two epoch advances. The caller must be
    /// pinned (the grace argument hangs on it) and must have already made
    /// the node unreachable. Returns `false` (and frees nothing) on a
    /// double retire or a pointer this arena never allocated.
    pub fn retire(&self, epoch: &Collector, node: *const T) -> bool
    where
        T: Send,
    {
        let addr = node as usize;
        let bytes = match self.nodes.lock().unwrap().remove(&addr) {
            Some(b) => b,
            None => {
                debug_assert!(false, "double retire or foreign pointer: {addr:#x}");
                return false;
            }
        };
        let clamped = self.counters.sub_live(bytes);
        debug_assert!(!clamped, "retire underflowed live_bytes");
        self.counters
            .retired_pending_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        self.counters
            .retired_cumulative_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        let counters = Arc::clone(&self.counters);
        epoch.retire(bytes, move || {
            // Safety: the address came from Box::into_raw in alloc, was
            // removed from the registry above (so Drop won't free it), and
            // the collector runs each deferred free exactly once.
            unsafe { drop(Box::from_raw(addr as *mut T)) };
            let _ = counters.retired_pending_bytes.fetch_update(
                Ordering::Relaxed,
                Ordering::Relaxed,
                |v| Some(v.saturating_sub(bytes)),
            );
            counters.reclaimed_bytes.fetch_add(bytes, Ordering::Relaxed);
        });
        true
    }

    /// Count-only retirement for callers that track unlinking themselves
    /// (legacy §5.7 accounting): moves one node's `size_of` charge from
    /// live to retired without freeing anything. Saturates at zero instead
    /// of wrapping — a double fire is an accounting bug (flagged in debug
    /// builds), not a reason to report 2^64 live bytes.
    pub fn retire_one(&self) {
        let sz = std::mem::size_of::<T>();
        let clamped = self.counters.sub_live(sz);
        debug_assert!(!clamped, "retire_one underflowed live_bytes");
        self.counters
            .retired_cumulative_bytes
            .fetch_add(sz, Ordering::Relaxed);
    }

    /// Bytes in nodes still linked into the structure.
    pub fn live_bytes(&self) -> usize {
        self.counters.live_bytes.load(Ordering::Relaxed)
    }

    /// Cumulative bytes retired (both still-pending and already freed).
    pub fn retired_bytes(&self) -> usize {
        self.counters
            .retired_cumulative_bytes
            .load(Ordering::Relaxed)
    }

    /// Bytes unlinked but still awaiting their epoch grace period.
    pub fn retired_pending_bytes(&self) -> usize {
        self.counters.retired_pending_bytes.load(Ordering::Relaxed)
    }

    /// Bytes actually freed by the epoch collector (cumulative).
    pub fn reclaimed_bytes(&self) -> usize {
        self.counters.reclaimed_bytes.load(Ordering::Relaxed)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.lock().unwrap().len()
    }
}

impl<T> Drop for Arena<T> {
    fn drop(&mut self) {
        // Poison-tolerant: a panic inside `retire` (e.g. the double-retire
        // debug assertion) must not turn cleanup into an abort.
        let nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
        for (&addr, _) in nodes.iter() {
            // Safety: each address came from Box::into_raw, retired nodes
            // were removed from the map, so every entry is freed exactly
            // once here.
            unsafe { drop(Box::from_raw(addr as *mut T)) };
        }
    }
}

/// A monotonically-growing peak/live byte tracker for transient buffers
/// (the Euno tree's *reserved keys*, §4.1/§5.7).
#[derive(Default)]
pub struct TransientBytes {
    live: AtomicUsize,
    peak: AtomicUsize,
    cumulative: AtomicUsize,
}

impl TransientBytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn allocated(&self, bytes: usize) {
        let now = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.cumulative.fetch_add(bytes, Ordering::Relaxed);
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    pub fn freed(&self, bytes: usize) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    pub fn cumulative(&self) -> usize {
        self.cumulative.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_counts_bytes_and_nodes() {
        let a: Arena<[u64; 8]> = Arena::new();
        let x = a.alloc([1; 8]);
        let y = a.alloc([2; 8]);
        assert_eq!(x[0], 1);
        assert_eq!(y[0], 2);
        assert_eq!(a.node_count(), 2);
        assert_eq!(a.live_bytes(), 128);
        assert_eq!(a.retired_bytes(), 0);
    }

    #[test]
    fn retire_one_moves_bytes() {
        let a: Arena<u64> = Arena::new();
        a.alloc(1);
        a.alloc(2);
        a.retire_one();
        assert_eq!(a.live_bytes(), 8);
        assert_eq!(a.retired_bytes(), 8);
        // Count-only retirement leaves the node allocated (legacy path).
        assert_eq!(a.node_count(), 2);
    }

    /// Satellite regression: heap payloads owned by a node must be charged
    /// to the live counter, not just `size_of::<T>()`.
    #[test]
    fn payload_bytes_are_charged_and_released() {
        struct Rec {
            data: Vec<u8>,
        }
        let a: Arena<Rec> = Arena::with_payload_bytes(|r| r.data.capacity());
        let node = a.alloc(Rec {
            data: Vec::with_capacity(1000),
        }) as *const Rec;
        assert_eq!(a.live_bytes(), std::mem::size_of::<Rec>() + 1000);

        let epoch = Collector::new();
        let pin = epoch.pin_scoped();
        assert!(a.retire(&epoch, node));
        drop(pin);
        // The *charged* bytes (struct + payload) move to retired-pending.
        assert_eq!(a.live_bytes(), 0);
        assert_eq!(a.retired_pending_bytes(), std::mem::size_of::<Rec>() + 1000);
        epoch.collect();
        epoch.collect();
        assert_eq!(a.retired_pending_bytes(), 0);
        assert_eq!(a.reclaimed_bytes(), std::mem::size_of::<Rec>() + 1000);
    }

    /// Satellite regression: `retire_one` saturates instead of wrapping
    /// `live_bytes` to ~2^64 when it over-fires.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "release-mode behaviour; debug builds assert instead"
    )]
    fn retire_one_saturates_instead_of_underflowing() {
        let a: Arena<u64> = Arena::new();
        a.alloc(7);
        a.retire_one();
        a.retire_one(); // double fire: would have wrapped before the fix
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert only fires in debug")]
    #[should_panic(expected = "retire_one underflowed")]
    fn retire_one_underflow_asserts_in_debug() {
        let a: Arena<u64> = Arena::new();
        a.retire_one();
    }

    #[test]
    fn retire_frees_after_grace_and_rejects_double_retire() {
        let a: Arena<u64> = Arena::new();
        let epoch = Collector::new();
        a.alloc(1);
        let second = a.alloc(2) as *const u64;

        let pin = epoch.pin_scoped();
        assert!(a.retire(&epoch, second));
        assert_eq!(a.node_count(), 1);
        assert_eq!(a.live_bytes(), 8);
        assert_eq!(a.retired_pending_bytes(), 8);
        assert_eq!(a.reclaimed_bytes(), 0);
        drop(pin);

        epoch.collect();
        epoch.collect();
        assert_eq!(a.retired_pending_bytes(), 0);
        assert_eq!(a.reclaimed_bytes(), 8);
        assert_eq!(a.retired_bytes(), 8);
        assert_eq!(a.live_bytes(), 8);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert only fires in debug")]
    #[should_panic(expected = "double retire")]
    fn double_retire_asserts_in_debug() {
        let a: Arena<u64> = Arena::new();
        let epoch = Collector::new();
        let node = a.alloc(1) as *const u64;
        let _pin = epoch.pin_scoped();
        assert!(a.retire(&epoch, node));
        a.retire(&epoch, node);
    }

    #[test]
    fn references_stay_valid_across_growth() {
        let a: Arena<u64> = Arena::new();
        let first = a.alloc(42);
        let ptr = first as *const u64;
        for i in 0..10_000 {
            a.alloc(i);
        }
        assert_eq!(unsafe { *ptr }, 42, "early allocation must not move");
        assert_eq!(*first, 42);
    }

    #[test]
    fn concurrent_allocation_is_safe() {
        let a: Arena<u64> = Arena::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let a = &a;
                s.spawn(move || {
                    for i in 0..1000 {
                        a.alloc(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(a.node_count(), 4000);
        assert_eq!(a.live_bytes(), 32_000);
    }

    #[test]
    fn transient_tracks_peak_and_cumulative() {
        let t = TransientBytes::new();
        t.allocated(100);
        t.allocated(50);
        assert_eq!(t.live(), 150);
        assert_eq!(t.peak(), 150);
        t.freed(100);
        assert_eq!(t.live(), 50);
        assert_eq!(t.peak(), 150);
        t.allocated(20);
        assert_eq!(t.peak(), 150);
        assert_eq!(t.cumulative(), 170);
    }
}
