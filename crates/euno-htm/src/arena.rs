//! Node arenas with deferred reclamation and byte accounting.
//!
//! The paper reuses DBX's deferred deletion/garbage-collection scheme
//! (§4.2.4): nodes unlinked from the tree are not freed immediately, so
//! concurrent readers can never observe a dangling pointer. This arena
//! takes the same stance to its logical conclusion for a bounded-length
//! experiment: allocations live until the arena is dropped, unlinked nodes
//! are merely counted as *retired*. That makes handing out `&T` with the
//! arena's lifetime sound without hazard pointers or epochs.
//!
//! The byte counters feed the §5.7 memory-consumption experiment.

use std::sync::atomic::{AtomicUsize, Ordering};

use std::sync::Mutex;

/// An append-only allocation registry for nodes of type `T`.
pub struct Arena<T> {
    nodes: Mutex<Vec<*mut T>>,
    live_bytes: AtomicUsize,
    retired_bytes: AtomicUsize,
}

// Safety: the raw pointers are uniquely owned by the arena (created from
// Box::into_raw, freed exactly once in Drop); shared access to the `T`s is
// governed by the engine's protocols, which require T: Sync.
unsafe impl<T: Send + Sync> Send for Arena<T> {}
unsafe impl<T: Send + Sync> Sync for Arena<T> {}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    pub fn new() -> Self {
        Arena {
            nodes: Mutex::new(Vec::new()),
            live_bytes: AtomicUsize::new(0),
            retired_bytes: AtomicUsize::new(0),
        }
    }

    /// Allocate a node; it lives until the arena is dropped.
    pub fn alloc(&self, value: T) -> &T {
        let ptr = Box::into_raw(Box::new(value));
        self.nodes.lock().unwrap().push(ptr);
        self.live_bytes
            .fetch_add(std::mem::size_of::<T>(), Ordering::Relaxed);
        // Safety: the allocation is stable (never moved/freed before drop)
        // and &self outlives the returned reference's uses by contract.
        unsafe { &*ptr }
    }

    /// Mark one node's bytes as garbage (unlinked from the structure but
    /// still allocated — deferred reclamation).
    pub fn retire_one(&self) {
        let sz = std::mem::size_of::<T>();
        self.live_bytes.fetch_sub(sz, Ordering::Relaxed);
        self.retired_bytes.fetch_add(sz, Ordering::Relaxed);
    }

    /// Bytes in nodes still linked into the structure.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Bytes awaiting deferred reclamation.
    pub fn retired_bytes(&self) -> usize {
        self.retired_bytes.load(Ordering::Relaxed)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.lock().unwrap().len()
    }
}

impl<T> Drop for Arena<T> {
    fn drop(&mut self) {
        for &ptr in self.nodes.lock().unwrap().iter() {
            // Safety: each pointer came from Box::into_raw and is freed
            // exactly once here.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

/// A monotonically-growing peak/live byte tracker for transient buffers
/// (the Euno tree's *reserved keys*, §4.1/§5.7).
#[derive(Default)]
pub struct TransientBytes {
    live: AtomicUsize,
    peak: AtomicUsize,
    cumulative: AtomicUsize,
}

impl TransientBytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn allocated(&self, bytes: usize) {
        let now = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.cumulative.fetch_add(bytes, Ordering::Relaxed);
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    pub fn freed(&self, bytes: usize) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    pub fn cumulative(&self) -> usize {
        self.cumulative.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_counts_bytes_and_nodes() {
        let a: Arena<[u64; 8]> = Arena::new();
        let x = a.alloc([1; 8]);
        let y = a.alloc([2; 8]);
        assert_eq!(x[0], 1);
        assert_eq!(y[0], 2);
        assert_eq!(a.node_count(), 2);
        assert_eq!(a.live_bytes(), 128);
        assert_eq!(a.retired_bytes(), 0);
    }

    #[test]
    fn retire_moves_bytes() {
        let a: Arena<u64> = Arena::new();
        a.alloc(1);
        a.alloc(2);
        a.retire_one();
        assert_eq!(a.live_bytes(), 8);
        assert_eq!(a.retired_bytes(), 8);
        // Retired nodes are still dereferenceable until drop (deferred GC).
        assert_eq!(a.node_count(), 2);
    }

    #[test]
    fn references_stay_valid_across_growth() {
        let a: Arena<u64> = Arena::new();
        let first = a.alloc(42);
        let ptr = first as *const u64;
        for i in 0..10_000 {
            a.alloc(i);
        }
        assert_eq!(unsafe { *ptr }, 42, "early allocation must not move");
        assert_eq!(*first, 42);
    }

    #[test]
    fn concurrent_allocation_is_safe() {
        let a: Arena<u64> = Arena::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let a = &a;
                s.spawn(move || {
                    for i in 0..1000 {
                        a.alloc(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(a.node_count(), 4000);
        assert_eq!(a.live_bytes(), 32_000);
    }

    #[test]
    fn transient_tracks_peak_and_cumulative() {
        let t = TransientBytes::new();
        t.allocated(100);
        t.allocated(50);
        assert_eq!(t.live(), 150);
        assert_eq!(t.peak(), 150);
        t.freed(100);
        assert_eq!(t.live(), 50);
        assert_eq!(t.peak(), 150);
        t.allocated(20);
        assert_eq!(t.peak(), 150);
        assert_eq!(t.cumulative(), 170);
    }
}
