//! Cycle cost model for the virtual-time execution mode.
//!
//! The paper's testbed is a 2×10-core 2.30 GHz Haswell Xeon (§5.1). The
//! host running this reproduction has a single core, so throughput and
//! scalability are measured on a virtual clock: every instrumented memory
//! access, CAS, transaction boundary and abort charges cycles from this
//! model, and throughput is `committed ops ÷ virtual seconds`.
//!
//! Absolute constants are calibrated in `EXPERIMENTS.md` against the
//! paper's anchors (e.g. HTM-B+Tree ≈ 27 M ops/s at 16 threads under no
//! skew, ≈ 1.7 M ops/s at θ = 0.99; Euno-B+Tree ≈ 18.6 M ops/s at
//! θ = 0.99). The *relative* magnitudes follow published Haswell latencies:
//! an L1 hit is a few cycles, a cross-core/cross-socket line transfer tens
//! to hundreds, a transactional abort restores register state and refetches
//! code, and `XBEGIN`/`XEND` cost a few tens of cycles each.

/// Cycle charges for every instrumented event. All fields are public so
/// experiments can explore sensitivity (see the ablation benches).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Core frequency in Hz used to convert virtual cycles to seconds.
    pub freq_hz: f64,
    /// Plain access to a word already in the transaction/episode footprint.
    pub access_hit: u64,
    /// First access to a cache line within one transactional or locked
    /// episode: models the load-into-L1 plus read/write-set bookkeeping
    /// TSX performs (fallback and locked-write episodes pay it for the
    /// coherence upgrades their footprint causes).
    pub line_first_touch: u64,
    /// First access to a cache line within an *optimistic read* section.
    /// Those sections execute plain loads, so there is no transactional
    /// bookkeeping to pay — but the line still has to be fetched through
    /// the cache hierarchy, and the traversal instructions around the
    /// load (compares, branches, the dependent pointer chase) are real.
    /// Between [`CostModel::access_hit`] (a pure L1 hit — too cheap for a
    /// first touch over a multi-MiB tree) and
    /// [`CostModel::line_first_touch`] (which includes the TSX read-set
    /// insert that plain loads skip). The episode footprint is still
    /// recorded in full for virtual-mode conflict-window detection.
    pub plain_first_touch: u64,
    /// Additional charge when the line is *hot*, i.e. was written by another
    /// thread recently — models the cache-coherence transfer the paper's
    /// NUMA discussion highlights. Applied by the simulator, not the tree.
    pub line_transfer: u64,
    /// A successful or failed atomic compare-and-swap.
    pub cas: u64,
    /// Entering an RTM region (`XBEGIN` + checkpoint).
    pub xbegin: u64,
    /// Committing an RTM region (`XEND`).
    pub xend: u64,
    /// Fixed rollback penalty on abort (register restore, pipeline flush,
    /// abort-handler dispatch), charged on top of the wasted attempt.
    pub abort_penalty: u64,
    /// Base unit for exponential backoff between retries.
    pub backoff_base: u64,
    /// Cap for the exponential backoff.
    pub backoff_cap: u64,
    /// Fixed per-operation overhead outside the tree (benchmark loop, key
    /// generation, call frames).
    pub op_overhead: u64,
    /// Generic ALU work charged explicitly by data-structure code
    /// (hashing, comparisons not expressed as cell reads).
    pub alu: u64,
    /// Acquiring an uncontended advisory lock (CAS + fence).
    pub lock_acquire: u64,
    /// Releasing an advisory lock.
    pub lock_release: u64,
    /// One spin-loop iteration while waiting (PAUSE + reload).
    pub spin_iter: u64,
    /// Maximum number of distinct lines a transactional *write set* may hold
    /// before a capacity abort (TSX write set is bounded by L1D: 32 KiB /
    /// 64 B = 512 lines).
    pub write_capacity_lines: usize,
    /// Maximum number of distinct lines in the *read set* (tracked in L2/L3
    /// on Haswell; far larger than the write set).
    pub read_capacity_lines: usize,
    /// Rate of spurious aborts (interrupts, TLB shootdowns, …) per cycle of
    /// transaction duration. TSX transactions longer than a scheduling
    /// quantum essentially never commit; with the default rate a 1 k-cycle
    /// transaction aborts spuriously about 0.1 % of the time.
    pub spurious_abort_per_cycle: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            freq_hz: 2.3e9, // §5.1: 2.30 GHz Xeon E5-2650 v3
            access_hit: 3,
            line_first_touch: 26,
            plain_first_touch: 16,
            line_transfer: 180,
            cas: 26,
            xbegin: 54,
            xend: 16,
            abort_penalty: 200,
            backoff_base: 40,
            backoff_cap: 1_200,
            op_overhead: 700,
            alu: 1,
            lock_acquire: 26,
            lock_release: 8,
            spin_iter: 40,
            write_capacity_lines: 512,
            read_capacity_lines: 8192,
            spurious_abort_per_cycle: 1e-6,
        }
    }
}

impl CostModel {
    /// Exponential backoff with cap: `base * 2^attempt`, saturating.
    #[inline]
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.backoff_base
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.backoff_cap)
    }

    /// Convert a span of virtual cycles to seconds.
    #[inline]
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz
    }

    /// Probability that a transaction of `duration` cycles suffers a
    /// spurious (non-conflict, non-capacity) abort.
    #[inline]
    pub fn spurious_probability(&self, duration: u64) -> f64 {
        let lambda = self.spurious_abort_per_cycle * duration as f64;
        1.0 - (-lambda).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let c = CostModel::default();
        assert_eq!(c.backoff(0), c.backoff_base);
        assert_eq!(c.backoff(1), c.backoff_base * 2);
        assert!(c.backoff(30) <= c.backoff_cap);
        assert_eq!(c.backoff(30), c.backoff_cap);
    }

    #[test]
    fn cycle_conversion_uses_frequency() {
        let c = CostModel::default();
        let secs = c.cycles_to_secs(2_300_000_000);
        assert!((secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spurious_probability_monotone_in_duration() {
        let c = CostModel::default();
        let p1 = c.spurious_probability(100);
        let p2 = c.spurious_probability(10_000);
        let p3 = c.spurious_probability(10_000_000);
        assert!(p1 < p2 && p2 < p3);
        assert!(p1 >= 0.0 && p3 <= 1.0);
        // A transaction far longer than a scheduling quantum never commits.
        assert!(p3 > 0.99);
    }
}
