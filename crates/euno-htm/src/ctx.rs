//! Per-thread execution contexts, episodes and the HTM region executor.
//!
//! A [`ThreadCtx`] is the handle through which one (virtual or OS) thread
//! touches shared state. All instrumented accesses flow through it so the
//! engine can
//!
//! * maintain the current *episode*'s cache-line footprint,
//! * charge virtual cycles from the [`CostModel`](crate::cost::CostModel),
//! * validate / conflict-check / commit HTM transactions, and
//! * keep the per-thread statistics the paper's figures are built from.
//!
//! An **episode** is any instrumented span: an HTM transaction attempt, a
//! fallback critical section, a Masstree-style optimistic read, or a locked
//! write section. HTM transactions add write-buffering and abort semantics
//! on top of the shared footprint machinery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use euno_rng::{Rng, SmallRng};
use euno_trace::{codes, EventKind, TraceBuf};

use crate::abort::{AbortCause, ConflictInfo, ConflictKind, TxResult};
use crate::line::{LineId, LineSet};
use crate::obs::{OpKind, OpObserver, OpOutput};
use crate::runtime::{EpisodeRecord, Mode, Runtime};
use crate::stats::ThreadStats;
use crate::word::{TxCell, TxWord};

/// Raw cell pointer usable across the engine's internal logs.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct CellPtr(pub *const AtomicU64);
// Safety: logs never outlive the operation; cells outlive operations
// (trees pin an epoch around every operation, and retired nodes are freed
// only after a grace period covering any operation that could have logged
// their cells — see `crate::epoch`).
unsafe impl Send for CellPtr {}

/// What kind of instrumented span is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpisodeKind {
    /// A hardware-transaction attempt: write-buffered, abortable.
    HtmTx,
    /// The serialized fallback path of an HTM region (lock held).
    Fallback,
    /// A version-validated optimistic read section (Masstree §4.6).
    OptimisticRead,
    /// An in-place write section under a per-node lock.
    LockedWrite,
}

pub(crate) struct EpisodeState {
    kind: EpisodeKind,
    start: u64,
    /// TL2 read version (concurrent mode): every read observed so far is
    /// consistent as of this point of the global clock. Extended forward
    /// (with revalidation) when a read finds a newer line version.
    rv: u64,
    op_key: Option<u64>,
    reads: LineSet,
    writes: LineSet,
    /// TL2 read log: each read line with the version-lock word's version
    /// at first read. Validation compares versions — never cell values —
    /// so reuse of retired memory with equal bytes cannot validate.
    ver_log: Vec<(LineId, u64)>,
    write_buf: Vec<(CellPtr, u64)>,
    /// Commit scratch: sorted, deduplicated version-table slot indices of
    /// the write footprint (kept per-episode so steady-state commits
    /// allocate nothing).
    wslots: Vec<u32>,
    /// Subscribed fallback lock (for abort-cause attribution).
    fb_line: Option<LineId>,
    fb_ptr: Option<CellPtr>,
    /// The episode runs under an advisory lock that serializes its
    /// contenders: storm extrapolation is skipped (the writers feeding the
    /// line heat are queued behind the lock, not concurrent).
    serialized: bool,
}

impl EpisodeState {
    fn new(kind: EpisodeKind, start: u64, rv: u64) -> Box<Self> {
        Box::new(EpisodeState {
            kind,
            start,
            rv,
            op_key: None,
            reads: LineSet::with_capacity(16),
            writes: LineSet::with_capacity(8),
            ver_log: Vec::with_capacity(32),
            write_buf: Vec::with_capacity(8),
            wslots: Vec::with_capacity(8),
            fb_line: None,
            fb_ptr: None,
            serialized: false,
        })
    }

    /// Re-arm a recycled episode. The footprints and logs were cleared by
    /// [`ThreadCtx::recycle`]; only the header fields need stamping.
    fn reset(&mut self, kind: EpisodeKind, start: u64, rv: u64) {
        self.kind = kind;
        self.start = start;
        self.rv = rv;
        self.op_key = None;
        self.fb_line = None;
        self.fb_ptr = None;
        self.serialized = false;
    }
}

/// Per-thread execution handle. Create via [`Runtime::thread`].
pub struct ThreadCtx {
    pub(crate) rt: Arc<Runtime>,
    /// Stable thread id (also used for conflict attribution).
    pub id: u32,
    /// Virtual cycle clock. In concurrent mode it still accumulates and
    /// serves as a work-cycle counter.
    pub clock: u64,
    pub stats: ThreadStats,
    pub(crate) rng: SmallRng,
    /// A real hardware (RTM) transaction is executing on this thread: all
    /// `Tx` accesses degrade to plain atomic loads/stores — the silicon
    /// does conflict detection, buffering and rollback. Set and cleared
    /// only by the executor's hardware attempt (`hw-rtm` feature); always
    /// `false` otherwise. The flag itself is speculative state: set
    /// inside the transaction, a hardware abort rolls it back.
    pub(crate) hw_txn: bool,
    /// The running hardware transaction issued at least one `Tx::write`.
    /// The executor bumps `Runtime::seq` inside the transaction for
    /// writing bodies (so episode-free optimistic readers see the
    /// commit); speculative like `hw_txn` — rolled back on abort.
    pub(crate) hw_wrote: bool,
    ep: Option<Box<EpisodeState>>,
    /// Scratch pool: the one recycled episode box. Episodes are strictly
    /// non-nested, so a single slot makes every steady-state
    /// `episode_begin` allocation-free (the box, its footprint sets and
    /// its logs are all reused with their capacities intact).
    spare: Option<Box<EpisodeState>>,
    /// Optional operation-history observer (see [`crate::obs`]).
    obs: Option<Box<dyn OpObserver>>,
    /// Optional trace ring buffer (see `euno-trace`). Like `obs`, the
    /// hot-path cost with no buffer installed is one branch.
    tracer: Option<Box<TraceBuf>>,
    /// This thread's epoch-reclamation participant (see [`crate::epoch`]):
    /// trees pin it around every operation via
    /// [`ThreadCtx::epoch_enter`]/[`ThreadCtx::epoch_exit`].
    reclaim: crate::epoch::Participant,
    /// Unpin counter driving the opportunistic collection cadence.
    reclaim_ticks: u64,
    /// This thread's metrics shard (see `euno-metrics`): single-writer
    /// atomic counters the sampler reads concurrently. `None` when the
    /// runtime's registry is disabled — every hook is then one branch.
    shard: Option<Arc<euno_metrics::ThreadShard>>,
    /// Per-backend commit counter, resolved once at registration: the
    /// runtime's mode and RTM availability are fixed at construction, so
    /// the commit hot path skips the match.
    backend_commit: euno_metrics::Counter,
}

/// Run a reclamation pass every this many operation unpins per thread:
/// frequent enough that garbage drains within a few hundred operations,
/// rare enough that the (mutex-protected) slot scan stays off the hot path.
const EPOCH_COLLECT_EVERY: u64 = 64;

/// Map an [`EpisodeKind`] to its `euno-trace` code point.
#[inline]
pub(crate) fn trace_episode_code(kind: EpisodeKind) -> u8 {
    match kind {
        EpisodeKind::HtmTx => codes::EP_HTM_TX,
        EpisodeKind::Fallback => codes::EP_FALLBACK,
        EpisodeKind::OptimisticRead => codes::EP_OPTIMISTIC_READ,
        EpisodeKind::LockedWrite => codes::EP_LOCKED_WRITE,
    }
}

/// Map a [`ConflictKind`] to its `euno-trace` abort-cause code point.
#[inline]
pub(crate) fn trace_conflict_code(kind: ConflictKind) -> u8 {
    match kind {
        ConflictKind::TrueSameRecord => codes::AB_CONFLICT_TRUE,
        ConflictKind::FalseDifferentRecord => codes::AB_CONFLICT_FALSE_RECORD,
        ConflictKind::FalseMetadata => codes::AB_CONFLICT_FALSE_METADATA,
        ConflictKind::FalseStructure => codes::AB_CONFLICT_FALSE_STRUCTURE,
        ConflictKind::Unclassified => codes::AB_CONFLICT_UNCLASSIFIED,
    }
}

/// Map an [`AbortCause`] to its abort-bucket index — the same order as
/// [`AbortCounts`](crate::stats::AbortCounts)'s fields and the
/// `euno_metrics::ABORTS_HTM`/`ABORTS_MIDDLE` counter arrays.
pub(crate) fn abort_bucket(cause: &AbortCause) -> usize {
    match cause {
        AbortCause::Conflict(ci) => match ci.kind {
            ConflictKind::TrueSameRecord => 0,
            ConflictKind::FalseDifferentRecord => 1,
            ConflictKind::FalseMetadata => 2,
            ConflictKind::FalseStructure => 3,
            ConflictKind::Unclassified => 4,
        },
        AbortCause::Capacity => 5,
        AbortCause::Explicit(_) => 6,
        AbortCause::Spurious => 7,
        AbortCause::FallbackLocked => 8,
    }
}

/// Map an [`AbortCause`] to its `euno-trace` code point plus the
/// conflicting line's base address (0 when the cause carries none).
pub(crate) fn trace_abort_code(cause: &AbortCause) -> (u8, u64) {
    match cause {
        AbortCause::Conflict(ci) => (trace_conflict_code(ci.kind), ci.line.base_addr()),
        AbortCause::Capacity => (codes::AB_CAPACITY, 0),
        AbortCause::Explicit(_) => (codes::AB_EXPLICIT, 0),
        AbortCause::Spurious => (codes::AB_SPURIOUS, 0),
        AbortCause::FallbackLocked => (codes::AB_FALLBACK_LOCKED, 0),
    }
}

impl ThreadCtx {
    pub(crate) fn new(rt: Arc<Runtime>, id: u32, seed: u64) -> Self {
        let reclaim = rt.epoch().register();
        let shard = rt.metrics().register_shard();
        let backend_commit = match rt.mode() {
            Mode::Virtual => euno_metrics::Counter::CommitsVirtual,
            Mode::Concurrent => {
                if rt.rtm_active() {
                    euno_metrics::Counter::CommitsRtm
                } else {
                    euno_metrics::Counter::CommitsStm
                }
            }
        };
        ThreadCtx {
            rt,
            id,
            clock: 0,
            stats: ThreadStats::default(),
            rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            hw_txn: false,
            hw_wrote: false,
            ep: None,
            spare: None,
            obs: None,
            tracer: None,
            reclaim,
            reclaim_ticks: 0,
            shard,
            backend_commit,
        }
    }

    /// Install an operation-history observer (replacing any previous one).
    pub fn set_op_observer(&mut self, obs: Box<dyn OpObserver>) {
        self.obs = Some(obs);
    }

    /// Remove and return the installed observer, if any. Dropping the
    /// context also drops (and thereby flushes) the observer.
    pub fn take_op_observer(&mut self) -> Option<Box<dyn OpObserver>> {
        self.obs.take()
    }

    /// Install a trace ring buffer (replacing any previous one). Events
    /// are recorded with this thread's clock as the timestamp; emission
    /// never charges cycles or touches the RNG, so installing a tracer
    /// does not perturb the deterministic virtual-time schedule.
    pub fn set_tracer(&mut self, buf: Box<TraceBuf>) {
        self.tracer = Some(buf);
    }

    /// Remove and return the trace buffer for collection, if any.
    pub fn take_tracer(&mut self) -> Option<Box<TraceBuf>> {
        self.tracer.take()
    }

    /// Whether a trace buffer is installed.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Record one trace event. With no buffer installed this is a single
    /// branch — the instrumentation points stay in the hot paths
    /// permanently, matching the `OpObserver` contract.
    #[inline]
    pub fn trace(&mut self, kind: EventKind) {
        if let Some(t) = self.tracer.as_mut() {
            t.push(self.clock, self.id, kind);
        }
    }

    // ================= always-on metrics (euno-metrics) =================

    /// Bump one metrics counter on this thread's shard. With the registry
    /// disabled this is a single branch — the instrumentation points stay
    /// in the hot paths permanently, like `trace`. Metrics never charge
    /// cycles and never touch the RNG, so they are schedule-neutral.
    #[inline]
    pub fn metric_add(&self, c: euno_metrics::Counter, n: u64) {
        if let Some(s) = self.shard.as_ref() {
            s.add(c, n);
        }
    }

    /// Read one counter back from this thread's shard (tests, drivers).
    #[inline]
    pub fn metric(&self, c: euno_metrics::Counter) -> u64 {
        self.shard.as_ref().map_or(0, |s| s.get(c))
    }

    /// This thread's executor-stage counters (attempts/commits/middles/…)
    /// as one struct, read from the metrics shard.
    pub fn exec_stages(&self) -> euno_metrics::ExecStages {
        self.shard
            .as_ref()
            .map(|s| s.exec_stages())
            .unwrap_or_default()
    }

    /// Record one operation latency (virtual cycles or wall µs) into this
    /// thread's shard histogram.
    #[inline]
    pub fn metric_record_latency(&self, v: u64) {
        if let Some(s) = self.shard.as_ref() {
            s.record_latency(v);
        }
    }

    /// Snapshot this shard's counters so a warmup span can be rolled back
    /// (paired with [`ThreadCtx::metrics_restore`]); symmetric with the
    /// `ThreadStats` clone/restore the harness already does.
    pub fn metrics_mark(&self) -> Option<euno_metrics::ShardMark> {
        self.shard.as_ref().map(|s| s.mark())
    }

    /// Roll the shard's counters back to a [`ThreadCtx::metrics_mark`].
    pub fn metrics_restore(&self, mark: &Option<euno_metrics::ShardMark>) {
        if let (Some(s), Some(m)) = (self.shard.as_ref(), mark.as_ref()) {
            s.restore(m);
        }
    }

    /// Record one CCM bypass-state flip: directional counters on the shard
    /// plus a timestamped event in the registry's flip log (from which the
    /// sampler derives the adaptation-lag metric).
    pub fn metric_flip(&self, addr: u64, bypass: bool) {
        if let Some(s) = self.shard.as_ref() {
            s.add(euno_metrics::Counter::CcmBypassFlips, 1);
            s.add(
                if bypass {
                    euno_metrics::Counter::CcmFlipsToBypass
                } else {
                    euno_metrics::Counter::CcmFlipsToProtect
                },
                1,
            );
            self.rt.metrics().record_flip(self.clock, addr, bypass);
        }
    }

    /// Flush a committed episode's batched executor counters to the shard
    /// in a single pass: commit counters (total, per-path, per-backend)
    /// plus the retry-loop accumulators. The retry loop counts attempts /
    /// middle attempts / backoffs / per-cause aborts in plain executor
    /// locals, so the per-iteration hot path costs no shard traffic at
    /// all; only episode completion touches the atomics, and a first-try
    /// commit — the common case — is four counter bumps behind one branch.
    #[inline]
    pub(crate) fn metric_commit_episode(
        &self,
        middle: bool,
        attempts: u32,
        middle_attempts: u32,
        backoffs: u32,
        aborts_htm: &[u32; euno_metrics::ABORT_BUCKETS],
        aborts_middle: &[u32; euno_metrics::ABORT_BUCKETS],
    ) {
        use euno_metrics::Counter as C;
        if let Some(s) = self.shard.as_ref() {
            s.add(C::Commits, 1);
            s.add(if middle { C::Middles } else { C::CommitsHtm }, 1);
            s.add(self.backend_commit, 1);
            s.add(C::Attempts, u64::from(attempts));
            if attempts == 1 {
                // First-try commit: no aborts, no backoffs, no middle path
                // (each implies a second attempt) — skip the bucket scans.
                return;
            }
            Self::episode_tail(s, middle_attempts, backoffs, aborts_htm, aborts_middle);
        }
    }

    /// Flush an episode that escalated to the fallback path (no commit
    /// counters — the serial section is counted separately as a Fallback).
    #[inline]
    pub(crate) fn metric_episode(
        &self,
        attempts: u32,
        middle_attempts: u32,
        backoffs: u32,
        aborts_htm: &[u32; euno_metrics::ABORT_BUCKETS],
        aborts_middle: &[u32; euno_metrics::ABORT_BUCKETS],
    ) {
        if let Some(s) = self.shard.as_ref() {
            s.add(euno_metrics::Counter::Attempts, u64::from(attempts));
            Self::episode_tail(s, middle_attempts, backoffs, aborts_htm, aborts_middle);
        }
    }

    /// Shared slow tail of the episode flush: the conditional counters an
    /// aborted-at-least-once episode may have accumulated.
    fn episode_tail(
        s: &euno_metrics::ThreadShard,
        middle_attempts: u32,
        backoffs: u32,
        aborts_htm: &[u32; euno_metrics::ABORT_BUCKETS],
        aborts_middle: &[u32; euno_metrics::ABORT_BUCKETS],
    ) {
        use euno_metrics::Counter as C;
        if middle_attempts > 0 {
            s.add(C::MiddleAttempts, u64::from(middle_attempts));
        }
        if backoffs > 0 {
            s.add(C::Backoffs, u64::from(backoffs));
        }
        for (i, &n) in aborts_htm.iter().enumerate() {
            if n > 0 {
                s.add(euno_metrics::ABORTS_HTM[i], u64::from(n));
            }
        }
        for (i, &n) in aborts_middle.iter().enumerate() {
            if n > 0 {
                s.add(euno_metrics::ABORTS_MIDDLE[i], u64::from(n));
            }
        }
    }

    /// Announce an operation invocation to the observer, if installed.
    #[inline]
    pub fn observe_invoke(&mut self, kind: OpKind, key: u64, arg: u64) {
        if let Some(obs) = self.obs.as_mut() {
            obs.on_invoke(self.id, kind, key, arg);
        }
    }

    /// Announce the last invoked operation's response to the observer.
    #[inline]
    pub fn observe_response(&mut self, output: OpOutput) {
        if let Some(obs) = self.obs.as_mut() {
            obs.on_response(self.id, output);
        }
    }

    #[inline]
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    #[inline]
    pub fn mode(&self) -> Mode {
        self.rt.mode()
    }

    /// Charge `cycles` of plain work to this thread's virtual clock.
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    /// Account one *failed* CAS attempt without touching memory: the
    /// virtual-time lock paths never execute the losing CASes a concurrent
    /// spinner issues (the hold-time model skips straight to the release
    /// point), so they charge the attempt explicitly to keep `cas_ops` and
    /// cycle accounting symmetric across modes.
    #[inline]
    pub fn charge_cas_miss(&mut self) {
        self.stats.cas_ops += 1;
        self.clock += self.rt.cost.cas;
    }

    /// Deterministic per-thread random source (write scheduler, backoff
    /// jitter, workload drivers).
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Snapshot the clock into the stats (drivers call this at run end).
    pub fn finish(&mut self) {
        self.stats.cycles_total = self.clock;
    }

    // ================= epoch reclamation =================

    /// Pin this thread to the current epoch. Trees call this at the top of
    /// every `ConcurrentMap` operation so any node reachable during the
    /// operation survives until the matching [`ThreadCtx::epoch_exit`].
    /// Re-entrant (an operation that triggers maintenance pins again);
    /// charges no cycles and draws no randomness, so the virtual-time
    /// schedule is unaffected.
    #[inline]
    pub fn epoch_enter(&mut self) {
        self.reclaim.enter(self.rt.epoch());
    }

    /// Undo one [`ThreadCtx::epoch_enter`]. The outermost exit unpins and,
    /// on a fixed cadence, runs a collection pass — advancing the global
    /// epoch and freeing matured garbage — so reclamation needs no
    /// background thread.
    pub fn epoch_exit(&mut self) {
        self.reclaim.exit();
        if !self.reclaim.pinned() {
            self.reclaim_ticks += 1;
            if self.reclaim_ticks.is_multiple_of(EPOCH_COLLECT_EVERY) {
                let out = self.rt.epoch().collect();
                if let Some(epoch) = out.advanced_to {
                    self.trace(EventKind::EpochAdvance { epoch });
                }
                if out.freed > 0 {
                    self.trace(EventKind::EpochReclaim {
                        nodes: out.freed as u64,
                        bytes: out.freed_bytes as u64,
                    });
                }
            }
        }
    }

    /// Whether this thread currently holds an epoch pin.
    #[inline]
    pub fn epoch_pinned(&self) -> bool {
        self.reclaim.pinned()
    }

    // ================= footprint & charging =================

    /// Record one instrumented access; charges cycles; enforces HTM
    /// capacity limits.
    #[inline]
    fn note_access(&mut self, line: LineId, is_write: bool) -> Result<(), AbortCause> {
        self.stats.mem_accesses += 1;
        let cost = &self.rt.cost;
        if let Some(ep) = self.ep.as_mut() {
            let newly = if is_write {
                ep.writes.insert(line)
            } else {
                ep.reads.insert(line)
            };
            // An optimistic read section executes plain loads — no
            // transactional read-set insertion on a fresh line — so it
            // pays the cheaper plain first touch. The footprint is still
            // recorded: virtual-mode conflict-window detection needs it.
            let first_touch = if ep.kind == EpisodeKind::OptimisticRead {
                cost.plain_first_touch
            } else {
                cost.line_first_touch
            };
            self.clock += if newly { first_touch } else { cost.access_hit };
            if ep.kind == EpisodeKind::HtmTx
                && (ep.writes.len() > cost.write_capacity_lines
                    || ep.reads.len() > cost.read_capacity_lines)
            {
                return Err(AbortCause::Capacity);
            }
        } else {
            self.clock += cost.access_hit;
        }
        Ok(())
    }

    // ================= direct (non-transactional) accesses =================

    #[inline]
    pub(crate) fn direct_load(&mut self, ptr: *const AtomicU64) -> u64 {
        debug_assert!(
            self.ep
                .as_ref()
                .is_none_or(|e| e.kind != EpisodeKind::HtmTx),
            "direct access inside an HTM transaction: use Tx::read/write"
        );
        let _ = self.note_access(LineId::of_ptr(ptr), false);
        unsafe { (*ptr).load(Ordering::Acquire) }
    }

    /// Concurrent-mode counterpart of [`ThreadCtx::publish_point_write`]:
    /// make a direct (unbuffered) write visible to TL2 validation by
    /// advancing the global clock and raising the line's version slot to
    /// the new clock value. Applies to *every* non-quiet direct write —
    /// in-place writes under node locks and fallback-section stores
    /// bypass the commit protocol. Anchoring the bump to `rt.seq`
    /// (rather than a local `+1`) is load-bearing twice over:
    ///
    /// * slot versions can never exceed the clock, so a committer whose
    ///   `wv` is below a bump-inflated slot version is releasing after a
    ///   strictly *later* clock tick than anything a pre-commit reader
    ///   logged — the commit cannot become version-invisible
    ///   ([`crate::lock::VersionTable::unlock_commit`]);
    /// * any post-snapshot direct write yields `ver > rv` at the next
    ///   `tl2_read`, forcing the extension revalidation — so even a
    ///   read-only transaction (which has no commit-time validation)
    ///   aborts rather than spanning a multi-line direct update.
    #[inline]
    fn bump_line_version(&self, line: LineId) {
        if self.rt.mode() == Mode::Concurrent {
            let ver = self.rt.seq.fetch_add(1, Ordering::SeqCst) + 1;
            self.rt.vlocks.bump_line_to(line, ver);
        }
    }

    #[inline]
    pub(crate) fn direct_store(&mut self, ptr: *const AtomicU64, v: u64) {
        debug_assert!(
            self.ep
                .as_ref()
                .is_none_or(|e| e.kind != EpisodeKind::HtmTx),
            "direct access inside an HTM transaction: use Tx::read/write"
        );
        let _ = self.note_access(LineId::of_ptr(ptr), true);
        let in_episode = self.ep.is_some();
        unsafe { (*ptr).store(v, Ordering::Release) };
        self.bump_line_version(LineId::of_ptr(ptr));
        if !in_episode {
            self.publish_point_write(LineId::of_ptr(ptr));
        }
    }

    #[inline]
    pub(crate) fn direct_cas(&mut self, ptr: *const AtomicU64, old: u64, new: u64) -> bool {
        self.stats.cas_ops += 1;
        self.charge(self.rt.cost.cas);
        let _ = self.note_access(LineId::of_ptr(ptr), true);
        let ok = unsafe {
            (*ptr)
                .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        };
        if ok {
            self.bump_line_version(LineId::of_ptr(ptr));
            if self.ep.is_none() {
                self.publish_point_write(LineId::of_ptr(ptr));
            }
        }
        ok
    }

    #[inline]
    pub(crate) fn direct_store_quiet(&mut self, ptr: *const AtomicU64, v: u64) {
        let _ = self.note_access(LineId::of_ptr(ptr), true);
        unsafe { (*ptr).store(v, Ordering::Release) };
    }

    #[inline]
    pub(crate) fn direct_cas_quiet(&mut self, ptr: *const AtomicU64, old: u64, new: u64) -> bool {
        self.stats.cas_ops += 1;
        self.charge(self.rt.cost.cas);
        let _ = self.note_access(LineId::of_ptr(ptr), true);
        unsafe {
            (*ptr)
                .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        }
    }

    pub(crate) fn direct_fetch_or(&mut self, ptr: *const AtomicU64, bits: u64) -> u64 {
        self.stats.cas_ops += 1;
        self.charge(self.rt.cost.cas);
        let _ = self.note_access(LineId::of_ptr(ptr), true);
        let prev = unsafe { (*ptr).fetch_or(bits, Ordering::AcqRel) };
        self.bump_line_version(LineId::of_ptr(ptr));
        if self.ep.is_none() {
            self.publish_point_write(LineId::of_ptr(ptr));
        }
        prev
    }

    pub(crate) fn direct_fetch_and(&mut self, ptr: *const AtomicU64, bits: u64) -> u64 {
        self.stats.cas_ops += 1;
        self.charge(self.rt.cost.cas);
        let _ = self.note_access(LineId::of_ptr(ptr), true);
        let prev = unsafe { (*ptr).fetch_and(bits, Ordering::AcqRel) };
        self.bump_line_version(LineId::of_ptr(ptr));
        if self.ep.is_none() {
            self.publish_point_write(LineId::of_ptr(ptr));
        }
        prev
    }

    pub(crate) fn direct_fetch_add(&mut self, ptr: *const AtomicU64, n: u64) -> u64 {
        self.stats.cas_ops += 1;
        self.charge(self.rt.cost.cas);
        let _ = self.note_access(LineId::of_ptr(ptr), true);
        let prev = unsafe { (*ptr).fetch_add(n, Ordering::AcqRel) };
        self.bump_line_version(LineId::of_ptr(ptr));
        if self.ep.is_none() {
            self.publish_point_write(LineId::of_ptr(ptr));
        }
        prev
    }

    /// Strong atomicity in virtual mode: a bare (outside any episode)
    /// direct write is published as a zero-width committed episode so it
    /// aborts overlapping transactions whose footprint contains the line —
    /// exactly what a coherence invalidation does to a TSX transaction.
    fn publish_point_write(&mut self, line: LineId) {
        if self.rt.mode() != Mode::Virtual {
            return;
        }
        let mut writes = LineSet::with_capacity(1);
        writes.insert(line);
        self.rt.virt_commit(EpisodeRecord {
            start: self.clock.saturating_sub(self.rt.cost.cas),
            end: self.clock,
            thread: self.id,
            op_key: None,
            reads: LineSet::new(),
            writes,
        });
    }

    // ================= episodes =================

    /// Open an instrumented span. Panics if one is already open (RTM
    /// flattens nested transactions; the engine forbids nesting outright).
    pub fn episode_begin(&mut self, kind: EpisodeKind) {
        assert!(self.ep.is_none(), "episode nesting is not supported");
        let rv = if self.rt.mode() == Mode::Concurrent && kind == EpisodeKind::HtmTx {
            // TL2: sample the global version clock. No waiting — in-flight
            // commits are detected per line via the version-lock table.
            self.rt.seq.load(Ordering::SeqCst)
        } else {
            0
        };
        self.ep = Some(match self.spare.take() {
            Some(mut ep) => {
                ep.reset(kind, self.clock, rv);
                ep
            }
            None => {
                self.stats.episode_pool_allocs += 1;
                EpisodeState::new(kind, self.clock, rv)
            }
        });
        self.trace(EventKind::EpisodeBegin {
            kind: trace_episode_code(kind),
        });
    }

    /// Return a closed episode's scratch buffers to the per-thread pool so
    /// the next [`ThreadCtx::episode_begin`] is allocation-free.
    fn recycle(&mut self, mut ep: Box<EpisodeState>) {
        ep.reads.clear();
        ep.writes.clear();
        ep.ver_log.clear();
        ep.write_buf.clear();
        ep.wslots.clear();
        self.spare = Some(ep);
    }

    /// Tag the current episode with the operation's target key (true- vs
    /// false-conflict classification).
    pub fn set_op_key(&mut self, key: u64) {
        if let Some(ep) = self.ep.as_mut() {
            ep.op_key = Some(key);
        }
    }

    /// Declare that the current episode's contenders are serialized by an
    /// advisory lock held by this thread (see `EpisodeState::serialized`).
    pub fn set_serialized(&mut self) {
        if let Some(ep) = self.ep.as_mut() {
            ep.serialized = true;
        }
    }

    pub fn episode_kind(&self) -> Option<EpisodeKind> {
        self.ep.as_ref().map(|e| e.kind)
    }

    /// Discard the current episode (abort / retry path).
    pub fn episode_abort(&mut self) {
        if let Some(ep) = self.ep.take() {
            self.recycle(ep);
        }
    }

    /// Close an [`EpisodeKind::OptimisticRead`]: in virtual mode, report a
    /// collision with any overlapping committed writer (the version change
    /// a Masstree reader would observe); in concurrent mode the caller's
    /// own version protocol detects staleness and this returns `None`.
    pub fn episode_end_optimistic(&mut self) -> Option<ConflictInfo> {
        let out = self.episode_end_optimistic_inner();
        match &out {
            None => self.trace(EventKind::EpisodeCommit {
                kind: codes::EP_OPTIMISTIC_READ,
            }),
            Some(ci) => self.trace(EventKind::EpisodeAbort {
                kind: codes::EP_OPTIMISTIC_READ,
                cause: trace_conflict_code(ci.kind),
                line_addr: ci.line.base_addr(),
            }),
        }
        out
    }

    fn episode_end_optimistic_inner(&mut self) -> Option<ConflictInfo> {
        let rt = Arc::clone(&self.rt);
        let ep = self.ep.take().expect("no open episode");
        debug_assert_eq!(ep.kind, EpisodeKind::OptimisticRead);
        if rt.mode() != Mode::Virtual {
            self.recycle(ep);
            return None;
        }
        // One `virt` acquisition covers the transfer charge, the window
        // check and the storm draw (the episode-closing hot path used to
        // take the mutex once per step).
        let virt = rt.virt.lock().unwrap();
        let transfer =
            virt.transfer_charge(ep.reads.iter(), ep.start, self.id, rt.cost.line_transfer);
        self.clock += transfer;
        let out = if let Some((line, other_key, other_thread)) =
            virt.check(ep.start, &ep.reads, None, &rt.classes)
        {
            drop(virt);
            let kind = ConflictKind::classify(rt.class_of(line), ep.op_key, other_key);
            Some(ConflictInfo {
                line,
                kind,
                other_thread: Some(other_thread),
            })
        } else {
            let u: f64 = self.rng.gen();
            let storm = virt.storm_check(
                &ep.reads,
                None,
                ep.start,
                self.clock.saturating_sub(ep.start),
                self.id,
                u,
                &rt.classes,
            );
            drop(virt);
            storm.map(|line| {
                let kind = ConflictKind::classify(rt.class_of(line), ep.op_key, None);
                ConflictInfo {
                    line,
                    kind,
                    other_thread: None,
                }
            })
        };
        self.recycle(ep);
        out
    }

    /// Close an [`EpisodeKind::LockedWrite`]: publish the writes so
    /// overlapping optimistic readers (and transactions — strong atomicity)
    /// observe them.
    pub fn episode_end_locked_write(&mut self) {
        let rt = Arc::clone(&self.rt);
        let mut ep = self.ep.take().expect("no open episode");
        debug_assert_eq!(ep.kind, EpisodeKind::LockedWrite);
        self.trace(EventKind::EpisodeCommit {
            kind: codes::EP_LOCKED_WRITE,
        });
        if rt.mode() != Mode::Virtual {
            self.recycle(ep);
            return;
        }
        let mut virt = rt.virt.lock().unwrap();
        let transfer = virt.transfer_charge(
            ep.reads.iter().chain(ep.writes.iter()),
            ep.start,
            self.id,
            rt.cost.line_transfer,
        );
        self.clock += transfer;
        virt.commit(EpisodeRecord {
            start: ep.start,
            end: self.clock,
            thread: self.id,
            op_key: ep.op_key,
            reads: std::mem::take(&mut ep.reads),
            writes: std::mem::take(&mut ep.writes),
        });
        drop(virt);
        self.recycle(ep);
    }

    // ================= transactional accesses =================

    pub(crate) fn tx_read(&mut self, ptr: *const AtomicU64) -> Result<u64, AbortCause> {
        // Inside a real RTM transaction the silicon buffers, detects and
        // rolls back; instrumentation would only bloat the hardware
        // read set (there is no open episode on this path).
        if self.hw_txn {
            return Ok(unsafe { (*ptr).load(Ordering::Relaxed) });
        }
        let kind = self.ep.as_ref().expect("Tx::read outside a region").kind;
        match kind {
            EpisodeKind::Fallback | EpisodeKind::LockedWrite | EpisodeKind::OptimisticRead => {
                // Serialized / in-place paths read directly (still
                // footprint-recorded and charged).
                let _ = self.note_access(LineId::of_ptr(ptr), false);
                Ok(unsafe { (*ptr).load(Ordering::Acquire) })
            }
            EpisodeKind::HtmTx => {
                // Read-your-writes from the buffer.
                if let Some(&(_, v)) = self
                    .ep
                    .as_ref()
                    .unwrap()
                    .write_buf
                    .iter()
                    .rev()
                    .find(|(p, _)| p.0 == ptr)
                {
                    self.clock += self.rt.cost.access_hit;
                    self.stats.mem_accesses += 1;
                    return Ok(v);
                }
                self.note_access(LineId::of_ptr(ptr), false)?;
                match self.rt.mode() {
                    Mode::Virtual => Ok(unsafe { (*ptr).load(Ordering::Relaxed) }),
                    Mode::Concurrent => self.tl2_read(ptr),
                }
            }
        }
    }

    pub(crate) fn tx_write(&mut self, ptr: *const AtomicU64, v: u64) -> Result<(), AbortCause> {
        if self.hw_txn {
            self.hw_wrote = true;
            unsafe { (*ptr).store(v, Ordering::Relaxed) };
            return Ok(());
        }
        let kind = self.ep.as_ref().expect("Tx::write outside a region").kind;
        match kind {
            EpisodeKind::Fallback | EpisodeKind::LockedWrite => {
                let _ = self.note_access(LineId::of_ptr(ptr), true);
                unsafe { (*ptr).store(v, Ordering::Release) };
                // Direct (unbuffered) write: invalidate TL2 readers that
                // logged this line's version before it.
                self.bump_line_version(LineId::of_ptr(ptr));
                Ok(())
            }
            EpisodeKind::OptimisticRead => {
                panic!("write inside an optimistic read section")
            }
            EpisodeKind::HtmTx => {
                self.note_access(LineId::of_ptr(ptr), true)?;
                self.ep.as_mut().unwrap().write_buf.push((CellPtr(ptr), v));
                Ok(())
            }
        }
    }

    /// Pauses a TL2 read tolerates before declaring the locked slot a
    /// conflict. [`crate::lock::SpinBackoff`] doubles each pause, so the
    /// total tolerated wait is thousands of spin quanta — enough to ride
    /// out any writeback, bounded so a preempted committer cannot hang
    /// readers (they abort, back off per policy, and retry).
    const TL2_READ_MAX_PAUSES: u32 = 12;

    /// TL2-style versioned read (concurrent mode only): sandwich the cell
    /// load between two reads of the line's version-lock word; retry while
    /// a committer holds the slot; extend the episode's read version when
    /// the line is newer than `rv` (revalidating the whole read log);
    /// record `(line, version)` for commit-time validation.
    fn tl2_read(&mut self, ptr: *const AtomicU64) -> Result<u64, AbortCause> {
        // Eager fallback-lock check — the software edition of hardware
        // lock subscription. Fallback sections write directly, so even a
        // read-only transaction must abort as soon as the subscribed lock
        // is taken, not just at its next clock extension.
        if let Some(fb) = self.ep.as_ref().unwrap().fb_ptr {
            if unsafe { (*fb.0).load(Ordering::Acquire) } != 0 {
                return Err(AbortCause::FallbackLocked);
            }
        }
        let line = LineId::of_ptr(ptr);
        let slot = self.rt.vlocks.slot_of(line);
        let mut backoff = crate::lock::SpinBackoff::new();
        let mut pauses = 0u32;
        let (w1, v) = loop {
            let w1 = self.rt.vlocks.load(slot);
            if !crate::lock::VersionTable::is_locked(w1) {
                let v = unsafe { (*ptr).load(Ordering::Acquire) };
                if self.rt.vlocks.load(slot) == w1 {
                    break (w1, v);
                }
            }
            // Locked (a committer is writing this slot's lines back) or
            // the word moved under the load: bounded backoff — waited
            // cycles are charged to the clock and `cycles_lock_wait`,
            // and a capped wait aborts as a conflict instead of spinning
            // forever behind a preempted committer.
            pauses += 1;
            self.metric_add(euno_metrics::Counter::Tl2ReadWaits, 1);
            if pauses > Self::TL2_READ_MAX_PAUSES {
                return Err(self.line_conflict_cause(line));
            }
            backoff.pause(self);
        };
        let ver = crate::lock::VersionTable::version_of(w1);
        if ver > self.ep.as_ref().unwrap().rv {
            // The line committed after our snapshot point: extend the
            // read version to now, which is sound iff everything read so
            // far is still at its logged version.
            self.metric_add(euno_metrics::Counter::Tl2Extensions, 1);
            let new_rv = self.rt.seq.load(Ordering::SeqCst);
            let bad = {
                let ep = self.ep.as_ref().unwrap();
                ep.ver_log
                    .iter()
                    .find(|&&(l, lv)| {
                        let w = self.rt.vlocks.load(self.rt.vlocks.slot_of(l));
                        crate::lock::VersionTable::is_locked(w)
                            || crate::lock::VersionTable::version_of(w) != lv
                    })
                    .map(|&(l, _)| l)
            };
            if let Some(l) = bad {
                self.metric_add(euno_metrics::Counter::Tl2ValidationFails, 1);
                return Err(self.line_conflict_cause(l));
            }
            self.ep.as_mut().unwrap().rv = new_rv;
        }
        let consistent = {
            let ep = self.ep.as_mut().unwrap();
            match ep.ver_log.iter().find(|&&(l, _)| l == line) {
                // Re-reading a logged line must see the logged version,
                // or the two reads straddle a commit.
                Some(&(_, lv)) => lv == ver,
                None => {
                    ep.ver_log.push((line, ver));
                    true
                }
            }
        };
        if !consistent {
            self.metric_add(euno_metrics::Counter::Tl2ValidationFails, 1);
            return Err(self.line_conflict_cause(line));
        }
        Ok(v)
    }

    /// Abort cause for a TL2 validation / lock-wait failure on `line`.
    fn line_conflict_cause(&self, line: LineId) -> AbortCause {
        let ep = self.ep.as_ref().unwrap();
        if ep.fb_line == Some(line) {
            return AbortCause::FallbackLocked;
        }
        let kind = ConflictKind::classify(self.rt.class_of(line), ep.op_key, None);
        AbortCause::Conflict(ConflictInfo {
            line,
            kind,
            other_thread: None,
        })
    }

    // ================= HTM commit =================

    pub(crate) fn htm_commit(&mut self) -> Result<(), AbortCause> {
        match self.rt.mode() {
            Mode::Concurrent => self.commit_concurrent(),
            Mode::Virtual => self.commit_virtual(),
        }
    }

    /// Lock attempts per write slot at commit before giving up. Commit
    /// locks are held only across validation + writeback (no body work),
    /// so a handful of doubling pauses rides out any live committer;
    /// capped acquisition keeps the protocol deadlock-free even without
    /// the sorted order (which exists to make collisions rare, not to
    /// carry correctness).
    const TL2_COMMIT_MAX_TRIES: u32 = 10;

    /// TL2 commit (concurrent mode): lock the write footprint's version
    /// slots in sorted order, validate the read log's line versions, bump
    /// the global clock, write back, release at the new write version. No
    /// global lock anywhere — disjoint commits proceed fully in parallel.
    fn commit_concurrent(&mut self) -> Result<(), AbortCause> {
        if self.ep.as_ref().unwrap().write_buf.is_empty() {
            // Read-only: every read was version-validated (with rv
            // extension) at read time, so the snapshot is consistent as
            // of `rv`; nothing to publish, nothing to lock.
            self.finish_episode_concurrent();
            self.trace(EventKind::EpisodeCommit {
                kind: codes::EP_HTM_TX,
            });
            return Ok(());
        }
        let mut ep = self.ep.take().unwrap();

        // 1. Write footprint → sorted, deduplicated slot indices. Sorting
        // by *slot* (not LineId) is what makes acquisition order globally
        // consistent: striping does not preserve line order.
        ep.wslots.clear();
        for line in ep.writes.iter() {
            ep.wslots.push(self.rt.vlocks.slot_of(line));
        }
        ep.wslots.sort_unstable();
        ep.wslots.dedup();

        // 2. Acquire each slot with a bounded try-lock.
        for i in 0..ep.wslots.len() {
            let slot = ep.wslots[i];
            let mut backoff = crate::lock::SpinBackoff::new();
            let mut tries = 0u32;
            loop {
                if self.rt.vlocks.try_lock(slot) {
                    self.metric_add(euno_metrics::Counter::Tl2LockAcquires, 1);
                    break;
                }
                tries += 1;
                if tries > Self::TL2_COMMIT_MAX_TRIES {
                    self.metric_add(euno_metrics::Counter::Tl2LockFails, 1);
                    for &held in &ep.wslots[..i] {
                        self.rt.vlocks.unlock_abort(held);
                    }
                    let cause = Self::slot_conflict_cause(&self.rt, &ep, slot);
                    self.ep = Some(ep);
                    return Err(cause);
                }
                backoff.pause(self);
            }
        }

        // 3. Announce the writeback *before* validating: a fallback
        // acquirer that wins the lock cell after our check in step 4
        // spins on `wb_active` until our store in step 7 lands, so its
        // direct accesses never interleave a half-applied buffer. The
        // same counter gates episode-free optimistic snapshots.
        self.rt.wb_active.fetch_add(1, Ordering::SeqCst);

        // 4. The subscribed fallback lock must still be free.
        if let Some(fb) = ep.fb_ptr {
            if unsafe { (*fb.0).load(Ordering::SeqCst) } != 0 {
                Self::abort_writeback(&self.rt, &ep);
                self.ep = Some(ep);
                return Err(AbortCause::FallbackLocked);
            }
        }

        // 5. Validate the read log: every line still at its logged
        // version, and locked only if we hold the lock (write-after-read
        // of our own footprint).
        for i in 0..ep.ver_log.len() {
            let (l, lv) = ep.ver_log[i];
            let slot = self.rt.vlocks.slot_of(l);
            let w = self.rt.vlocks.load(slot);
            let locked_by_other =
                crate::lock::VersionTable::is_locked(w) && ep.wslots.binary_search(&slot).is_err();
            if locked_by_other || crate::lock::VersionTable::version_of(w) != lv {
                self.metric_add(euno_metrics::Counter::Tl2ValidationFails, 1);
                Self::abort_writeback(&self.rt, &ep);
                let cause = {
                    self.ep = Some(ep);
                    self.line_conflict_cause(l)
                };
                return Err(cause);
            }
        }

        // 6. Serialization point: one clock tick for this commit.
        let wv = self.rt.seq.fetch_add(1, Ordering::SeqCst) + 1;

        // 7. Write back and release each slot at the new version.
        for (p, v) in &ep.write_buf {
            unsafe { (*p.0).store(*v, Ordering::Release) };
        }
        for &slot in ep.wslots.iter() {
            self.rt.vlocks.unlock_commit(slot, wv);
        }
        self.rt.wb_active.fetch_sub(1, Ordering::SeqCst);

        self.recycle(ep);
        self.trace(EventKind::EpisodeCommit {
            kind: codes::EP_HTM_TX,
        });
        Ok(())
    }

    /// Abort-path unwind for a commit that already announced its
    /// writeback: release every held slot (preserving version bumps) and
    /// retract the announcement.
    fn abort_writeback(rt: &Runtime, ep: &EpisodeState) {
        for &slot in ep.wslots.iter() {
            rt.vlocks.unlock_abort(slot);
        }
        rt.wb_active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Abort cause for a commit-time lock-acquisition failure on `slot`:
    /// attribute it to the first write line mapping there.
    fn slot_conflict_cause(rt: &Runtime, ep: &EpisodeState, slot: u32) -> AbortCause {
        let line = ep
            .writes
            .iter()
            .find(|&l| rt.vlocks.slot_of(l) == slot)
            .unwrap_or(LineId(0));
        if ep.fb_line == Some(line) {
            return AbortCause::FallbackLocked;
        }
        let kind = ConflictKind::classify(rt.class_of(line), ep.op_key, None);
        AbortCause::Conflict(ConflictInfo {
            line,
            kind,
            other_thread: None,
        })
    }

    fn finish_episode_concurrent(&mut self) {
        if let Some(ep) = self.ep.take() {
            self.recycle(ep);
        }
    }

    fn commit_virtual(&mut self) -> Result<(), AbortCause> {
        let rt = Arc::clone(&self.rt);
        let mut ep = self.ep.take().unwrap();
        // One `virt` acquisition covers the transfer charge, the window
        // check, the storm draw and the commit publish — the commit hot
        // path used to take the mutex once per step. On every abort path
        // the episode goes back into `self.ep`: the executor's classify
        // stage still needs its footprint (note_attempt_writes) before
        // discarding it.
        let mut virt = rt.virt.lock().unwrap();

        // Cache-coherence charges for hot lines extend the interval first.
        let transfer = virt.transfer_charge(
            ep.reads.iter().chain(ep.writes.iter()),
            ep.start,
            self.id,
            rt.cost.line_transfer,
        );
        self.clock += transfer;
        let start = ep.start;
        let end = self.clock;

        if let Some((line, other_key, other_thread)) =
            virt.check(start, &ep.reads, Some(&ep.writes), &rt.classes)
        {
            drop(virt);
            let cause = if Some(line) == ep.fb_line {
                AbortCause::FallbackLocked
            } else {
                let kind = ConflictKind::classify(rt.class_of(line), ep.op_key, other_key);
                AbortCause::Conflict(ConflictInfo {
                    line,
                    kind,
                    other_thread: Some(other_thread),
                })
            };
            self.ep = Some(ep);
            return Err(cause);
        }

        // Statistical collision with wall-clock-concurrent writers the
        // serial order hides (see VirtState::storm_check). Episodes
        // running under a contender-serializing advisory lock are exempt:
        // the threads that generated the line heat are waiting behind the
        // lock, so the Poisson-arrival assumption does not apply (the
        // deterministic interval-overlap check above still catches every
        // genuinely concurrent writer).
        if !ep.serialized {
            let u: f64 = self.rng.gen();
            if let Some(line) = virt.storm_check(
                &ep.reads,
                Some(&ep.writes),
                start,
                end.saturating_sub(start),
                self.id,
                u,
                &rt.classes,
            ) {
                drop(virt);
                let kind = ConflictKind::classify(rt.class_of(line), ep.op_key, None);
                self.ep = Some(ep);
                return Err(AbortCause::Conflict(ConflictInfo {
                    line,
                    kind,
                    other_thread: None,
                }));
            }
        }

        let p = rt.cost.spurious_probability(end.saturating_sub(start));
        if p > 0.0 && self.rng.gen_bool(p.min(1.0)) {
            drop(virt);
            self.ep = Some(ep);
            return Err(AbortCause::Spurious);
        }

        // Commit: apply the buffer, publish the footprint. `mem::take` of
        // an inline LineSet is a memcpy — the committed record borrows no
        // heap unless the footprint spilled past the inline capacity.
        for (p, v) in &ep.write_buf {
            unsafe { (*p.0).store(*v, Ordering::Relaxed) };
        }
        virt.commit(EpisodeRecord {
            start,
            end,
            thread: self.id,
            op_key: ep.op_key,
            reads: std::mem::take(&mut ep.reads),
            writes: std::mem::take(&mut ep.writes),
        });
        drop(virt);
        self.recycle(ep);
        self.trace(EventKind::EpisodeCommit {
            kind: codes::EP_HTM_TX,
        });
        Ok(())
    }

    // ================= fallback lock plumbing =================

    pub(crate) fn fb_wait_free(&mut self, fb: &TxCell<u64>) {
        match self.rt.mode() {
            Mode::Concurrent => {
                let mut backoff = crate::lock::SpinBackoff::new();
                while fb.raw().load(Ordering::Acquire) != 0 {
                    backoff.pause(self);
                }
            }
            Mode::Virtual => {
                let key = fb.raw_ptr() as u64;
                let free_at = self.rt.vlock_free_at(key, self.clock);
                if free_at > self.clock {
                    self.stats.cycles_lock_wait += free_at - self.clock;
                    self.clock = free_at;
                }
            }
        }
    }

    /// Subscribe the open transaction to the fallback lock: its word joins
    /// the read set, so a fallback acquisition aborts us.
    pub(crate) fn fb_subscribe(&mut self, fb: &TxCell<u64>) -> Result<(), AbortCause> {
        let ptr = fb.raw_ptr();
        let line = LineId::of_ptr(ptr);
        {
            let ep = self.ep.as_mut().unwrap();
            ep.fb_line = Some(line);
            ep.fb_ptr = Some(CellPtr(ptr));
            ep.reads.insert(line);
        }
        match self.rt.mode() {
            Mode::Concurrent => {
                // The lock cell is value-checked — not version-logged —
                // at every subsequent TL2 read (`tl2_read`) and at commit
                // (`commit_concurrent` step 4); here we only reject an
                // attempt that starts while the fallback path is active.
                let v = unsafe { (*ptr).load(Ordering::Acquire) };
                if v != 0 {
                    return Err(AbortCause::FallbackLocked);
                }
                Ok(())
            }
            Mode::Virtual => Ok(()),
        }
    }

    pub(crate) fn fb_acquire(&mut self, fb: &TxCell<u64>) {
        let addr = fb.raw_ptr() as u64;
        match self.rt.mode() {
            Mode::Concurrent => {
                let mut backoff = crate::lock::SpinBackoff::new();
                loop {
                    // SeqCst CAS: the quiesce below is a total-order
                    // argument against the committer's SeqCst fallback
                    // check (commit step 4) and `wb_active` announcement.
                    if fb.raw().load(Ordering::Acquire) == 0
                        && fb
                            .raw()
                            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::Acquire)
                            .is_ok()
                    {
                        break;
                    }
                    backoff.pause(self);
                }
                // Quiesce in-flight writebacks: any committer that passed
                // its fallback check before our CAS announced itself on
                // `wb_active` *before* that check, so spinning the counter
                // to zero guarantees its buffer is fully applied; every
                // later committer fails the check and unwinds. Direct
                // reads and writes on the fallback path are then safe.
                let mut backoff = crate::lock::SpinBackoff::new();
                while self.rt.wb_active.load(Ordering::SeqCst) != 0 {
                    backoff.pause(self);
                }
                self.stats.cas_ops += 1;
                self.charge(self.rt.cost.lock_acquire);
                self.trace(EventKind::LockAcquire {
                    addr,
                    wait_cycles: 0,
                });
            }
            Mode::Virtual => {
                let free_at = self.rt.vlock_free_at(addr, self.clock);
                let waited = free_at.saturating_sub(self.clock);
                if free_at > self.clock {
                    self.stats.cycles_lock_wait += free_at - self.clock;
                    self.clock = free_at;
                }
                // The winning CAS a concurrent acquirer would issue.
                self.stats.cas_ops += 1;
                self.charge(self.rt.cost.lock_acquire);
                fb.raw().store(1, Ordering::Release);
                self.trace(EventKind::LockAcquire {
                    addr,
                    wait_cycles: waited,
                });
            }
        }
    }

    pub(crate) fn fb_release(&mut self, fb: &TxCell<u64>) {
        self.charge(self.rt.cost.lock_release);
        match self.rt.mode() {
            Mode::Concurrent => {
                // Fallback sections write *directly* (no TL2 buffer), so
                // an episode-free optimistic reader validating against
                // `rt.seq` cannot see them through the sequence alone. Bump
                // the sequence while the fallback cell is still held: a
                // reader that snapshotted before this release observes
                // either the held cell or the moved sequence — never a
                // torn fallback section. (Clearing the cell first would
                // open a window where both of the reader's checks pass.)
                // Transactions need no extra signal: every direct write in
                // the section already bumped its line's version.
                self.rt.seq.fetch_add(1, Ordering::SeqCst);
                fb.raw().store(0, Ordering::Release);
            }
            Mode::Virtual => {
                self.rt.vlock_hold(fb.raw_ptr() as u64, self.clock);
                fb.raw().store(0, Ordering::Release);
            }
        }
        self.trace(EventKind::LockRelease {
            addr: fb.raw_ptr() as u64,
        });
    }

    // ============ episode-free optimistic-read validation ============

    /// Snapshot for an episode-free optimistic read: in concurrent mode,
    /// the TL2 clock at a writeback-quiescent point (`wb_active == 0`).
    /// The quiescence wait is bounded-backoff, not a tight spin: writers
    /// hold `wb_active` only across validation + writeback. Virtual mode
    /// needs no snapshot — episodes are physically serialized, and the
    /// read set is checked against the committed window by
    /// [`ThreadCtx::episode_end_optimistic`].
    pub fn optimistic_snapshot(&mut self) -> u64 {
        match self.rt.mode() {
            Mode::Virtual => 0,
            Mode::Concurrent => {
                let mut backoff = crate::lock::SpinBackoff::new();
                loop {
                    let s = self.rt.seq.load(Ordering::SeqCst);
                    if self.rt.wb_active.load(Ordering::SeqCst) == 0 {
                        break s;
                    }
                    backoff.pause(self);
                }
            }
        }
    }

    /// Validate an episode-free optimistic read section against `snap`:
    /// no writing commit has landed (`rt.seq` unchanged) and no
    /// direct-writing fallback section is active on `fb`. This is sound
    /// because every committer orders `wb_active += 1` → clock bump →
    /// writeback → `wb_active -= 1`: a reader whose snapshot saw
    /// `wb_active == 0` *after* loading `seq == snap` can only observe
    /// writeback stores from commits that bumped the clock first — and
    /// any such bump makes this check fail. A fallback section that
    /// *completed* since the snapshot is caught the same way
    /// ([`ThreadCtx::fb_release`] bumps `rt.seq` before clearing the
    /// cell); an *active* one by the cell check. Virtual mode always
    /// validates here — its collision detection runs at episode close.
    pub fn optimistic_validate(&mut self, fb: &TxCell<u64>, snap: u64) -> bool {
        match self.rt.mode() {
            Mode::Virtual => true,
            Mode::Concurrent => {
                fb.raw().load(Ordering::Acquire) == 0 && self.rt.seq.load(Ordering::SeqCst) == snap
            }
        }
    }

    // ============ mechanism hooks for the layered executor ============
    //
    // The retry/fallback *policy* lives in [`crate::exec`]; these helpers
    // expose the episode-state manipulations its stages need without
    // leaking `EpisodeState` itself.

    /// The attempt's speculative writes were coherence traffic even though
    /// they never commit: keep their lines hot so concurrent and
    /// subsequent attempts see the storm (virtual mode only).
    pub(crate) fn note_attempt_writes(&mut self) {
        if self.rt.mode() != Mode::Virtual {
            return;
        }
        if let Some(ep) = self.ep.as_ref() {
            self.rt
                .virt_note_attempt_writes(&ep.writes, self.clock, self.id);
        }
    }

    /// Put the fallback lock's line into the open fallback episode's write
    /// footprint so overlapping transactions observe the serialization.
    pub(crate) fn fallback_mark(&mut self, fb: &TxCell<u64>) {
        let ep = self.ep.as_mut().unwrap();
        let line = LineId::of_ptr(fb.raw_ptr());
        ep.writes.insert(line);
        ep.fb_line = Some(line);
    }

    /// Close the fallback episode: publish its section (virtual mode) so
    /// overlapping transactions abort on the subscribed lock line.
    pub(crate) fn fallback_publish(&mut self) {
        let mut ep = self.ep.take().unwrap();
        if self.rt.mode() == Mode::Virtual {
            self.rt.virt_commit(EpisodeRecord {
                start: ep.start,
                end: self.clock,
                thread: self.id,
                op_key: ep.op_key,
                reads: std::mem::take(&mut ep.reads),
                writes: std::mem::take(&mut ep.writes),
            });
        }
        self.recycle(ep);
        self.trace(EventKind::EpisodeCommit {
            kind: codes::EP_FALLBACK,
        });
    }
}

/// Handle for transactional reads/writes inside [`ThreadCtx::htm_execute`].
pub struct Tx<'a> {
    pub(crate) ctx: &'a mut ThreadCtx,
}

impl<'a> Tx<'a> {
    /// Transactionally read a cell.
    #[inline]
    pub fn read<T: TxWord>(&mut self, cell: &TxCell<T>) -> TxResult<T> {
        self.ctx.tx_read(cell.raw_ptr()).map(T::from_word)
    }

    /// Transactionally write a cell (buffered until commit).
    #[inline]
    pub fn write<T: TxWord>(&mut self, cell: &TxCell<T>, v: T) -> TxResult<()> {
        self.ctx.tx_write(cell.raw_ptr(), v.to_word())
    }

    /// `XABORT imm8`: explicitly abort this attempt.
    #[inline]
    pub fn explicit_abort<R>(&mut self, code: u8) -> TxResult<R> {
        Err(AbortCause::Explicit(code))
    }

    /// Tag the enclosing episode with the operation's target key.
    #[inline]
    pub fn set_op_key(&mut self, key: u64) {
        self.ctx.set_op_key(key);
    }

    /// Declare the region lock-serialized with its contenders — disables
    /// the storm extrapolation for this attempt (the deterministic
    /// conflict checks still apply).
    #[inline]
    pub fn mark_serialized(&mut self) {
        self.ctx.set_serialized();
    }

    /// Whether this body invocation runs on the serialized fallback path.
    #[inline]
    pub fn is_fallback(&self) -> bool {
        self.ctx.episode_kind() == Some(EpisodeKind::Fallback)
    }

    /// Charge explicit ALU work (hashing, merges) to the thread clock.
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.ctx.charge(cycles);
    }

    /// Escape hatch to the thread context (RNG, stats).
    #[inline]
    pub fn ctx(&mut self) -> &mut ThreadCtx {
        self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[repr(align(64))]
    struct Aligned(TxCell<u64>);

    /// Regression: a read-only transaction has no commit-time validation,
    /// so its snapshot consistency rests entirely on the read path's
    /// rv-extension. The old `+1` line bump could leave a direct write's
    /// slot version at or below the reader's `rv`, so the extension never
    /// fired and a read-only transaction could span a multi-line
    /// LockedWrite/fallback update. Clock-anchored bumps make any
    /// post-snapshot direct write read as `ver > rv`, forcing
    /// revalidation of the whole read log.
    #[test]
    fn read_only_tx_cannot_span_a_multi_line_direct_update() {
        let rt = Runtime::new_concurrent();
        // Age the clock well past the slots' initial versions, so a
        // local "+1" bump could never exceed `rv` on its own — exactly
        // the old bug's window.
        rt.seq.fetch_add(100, Ordering::SeqCst);
        let mut reader = rt.thread(0);
        let mut writer = rt.thread(1);
        let a = Aligned(TxCell::new(1u64));
        let b = Aligned(TxCell::new(1u64));

        reader.episode_begin(EpisodeKind::HtmTx);
        assert_eq!(reader.tx_read(a.0.raw_ptr()).unwrap(), 1);
        // A two-line direct update (the shape of an in-place locked
        // write or a fallback section) lands between the reader's reads.
        a.0.store_direct(&mut writer, 2);
        b.0.store_direct(&mut writer, 2);
        // The second read must abort: b's version is a fresh clock draw
        // above `rv`, and the forced revalidation finds `a` changed.
        assert!(
            reader.tx_read(b.0.raw_ptr()).is_err(),
            "read-only tx observed old `a` next to new `b` — torn snapshot"
        );
        reader.episode_abort();
    }
}
