//! TSX-like abort status codes and the paper's conflict taxonomy.
//!
//! Intel RTM reports the abort reason through `EAX` status bits
//! (conflict, capacity, explicit `XABORT`, retry-possible, debug, nested).
//! The engine mirrors that interface and — because, unlike hardware, it
//! knows both sides of every collision — additionally classifies each
//! conflict the way §2.3 of the paper does: *true* conflicts (two requests
//! to the same record), *false* conflicts from different records sharing a
//! cache line, and *false* conflicts on shared metadata.

use crate::line::{LineClass, LineId};

/// Why a transaction attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortCause {
    /// Another thread's footprint collided with ours (the dominant cause
    /// under contention). Carries the classification evidence.
    Conflict(ConflictInfo),
    /// Read or write set exceeded the hardware tracking capacity.
    Capacity,
    /// The program executed `XABORT imm8`.
    Explicit(u8),
    /// Interrupt / TLB shootdown / other environmental abort.
    Spurious,
    /// The subscribed fallback lock was held when the region started (or
    /// was acquired while it ran), which aborts all elided transactions.
    FallbackLocked,
}

impl AbortCause {
    /// Whether the TSX "retry" hint bit would be set: retrying may succeed.
    /// Capacity aborts of a deterministic overflow would fail again, and
    /// fallback-lock aborts should wait for the lock instead.
    pub fn may_retry(self) -> bool {
        matches!(
            self,
            AbortCause::Conflict(_) | AbortCause::Spurious | AbortCause::FallbackLocked
        )
    }
}

/// The paper's abort taxonomy (§2.3, Figures 2 and 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// Both requests targeted exactly the same record.
    TrueSameRecord,
    /// Different records that share a cache line (consecutive layout).
    FalseDifferentRecord,
    /// Collision on shared per-node metadata (counts, versions, locks).
    FalseMetadata,
    /// Collision inside the interior index (internal-node keys/children).
    FalseStructure,
    /// The colliding line was never registered with a class.
    Unclassified,
}

impl ConflictKind {
    /// Derive the taxonomy bucket from the colliding line's class and the
    /// two operations' target keys (when both are known).
    pub fn classify(class: LineClass, my_key: Option<u64>, other_key: Option<u64>) -> Self {
        match class {
            LineClass::Record => match (my_key, other_key) {
                (Some(a), Some(b)) if a == b => ConflictKind::TrueSameRecord,
                _ => ConflictKind::FalseDifferentRecord,
            },
            LineClass::Metadata => ConflictKind::FalseMetadata,
            LineClass::Structure => ConflictKind::FalseStructure,
            LineClass::Unknown => ConflictKind::Unclassified,
        }
    }

    /// Whether the conflict happened at the leaf level of a tree (record or
    /// leaf metadata) as opposed to the interior index — the paper reports
    /// >90 % of conflicts at the leaf level (§2.3).
    pub fn is_leaf_level(self) -> bool {
        !matches!(self, ConflictKind::FalseStructure)
    }
}

/// Evidence attached to a conflict abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictInfo {
    /// The first colliding cache line found.
    pub line: LineId,
    /// Taxonomy bucket.
    pub kind: ConflictKind,
    /// Virtual-thread id of the transaction we collided with, when known.
    pub other_thread: Option<u32>,
}

/// Outcome of running a region body: commit or abort with a cause.
pub type TxResult<R> = Result<R, AbortCause>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_same_record_is_true_conflict() {
        let k = ConflictKind::classify(LineClass::Record, Some(42), Some(42));
        assert_eq!(k, ConflictKind::TrueSameRecord);
    }

    #[test]
    fn classify_adjacent_records_is_false_conflict() {
        let k = ConflictKind::classify(LineClass::Record, Some(42), Some(43));
        assert_eq!(k, ConflictKind::FalseDifferentRecord);
        // Unknown counterpart key can't be proven equal → false conflict.
        let k = ConflictKind::classify(LineClass::Record, Some(42), None);
        assert_eq!(k, ConflictKind::FalseDifferentRecord);
    }

    #[test]
    fn classify_metadata_and_structure() {
        assert_eq!(
            ConflictKind::classify(LineClass::Metadata, Some(1), Some(1)),
            ConflictKind::FalseMetadata,
            "metadata collisions are false conflicts even on equal keys"
        );
        assert_eq!(
            ConflictKind::classify(LineClass::Structure, None, None),
            ConflictKind::FalseStructure
        );
        assert_eq!(
            ConflictKind::classify(LineClass::Unknown, None, None),
            ConflictKind::Unclassified
        );
    }

    #[test]
    fn leaf_level_attribution() {
        assert!(ConflictKind::TrueSameRecord.is_leaf_level());
        assert!(ConflictKind::FalseDifferentRecord.is_leaf_level());
        assert!(ConflictKind::FalseMetadata.is_leaf_level());
        assert!(!ConflictKind::FalseStructure.is_leaf_level());
    }

    #[test]
    fn retry_hint_bits() {
        assert!(AbortCause::Spurious.may_retry());
        assert!(!AbortCause::Capacity.may_retry());
        assert!(!AbortCause::Explicit(7).may_retry());
        let ci = ConflictInfo {
            line: LineId(1),
            kind: ConflictKind::TrueSameRecord,
            other_thread: None,
        };
        assert!(AbortCause::Conflict(ci).may_retry());
    }
}
