//! Advisory locks and atomic bit vectors.
//!
//! Eunomia throttles *true* conflicts with fine-grained advisory locks
//! taken **outside** HTM regions (§3, §4.1): a per-leaf split lock and the
//! conflict-control module's per-slot lock bits. In concurrent mode these
//! are plain CAS spinlocks; in virtual-time mode an acquirer arriving while
//! the lock is virtually held is charged the wait until the holder's
//! release time, which is how lock convoys show up in the figures.

use std::sync::atomic::{AtomicU64, Ordering};

use euno_trace::EventKind;

use crate::ctx::ThreadCtx;
use crate::runtime::{lock_key_for_bit, Mode};
use crate::word::TxCell;

/// Bounded exponential backoff for concurrent-mode spin loops.
///
/// Unbounded tight spinning is the software edition of the paper's §3
/// *lemming effect*: every waiter hammers the lock line, the holder's
/// release gets starved of coherence bandwidth, and the convoy feeds
/// itself. Each [`pause`](SpinBackoff::pause) doubles the wait up to
/// `spin_iter · 2^MAX_EXPONENT` cycles; once capped, the waiter also
/// yields the OS thread so an unscheduled holder can run. All waited
/// cycles are charged to the thread clock and `cycles_lock_wait`, exactly
/// like the virtual-mode hold-time model.
pub struct SpinBackoff {
    exponent: u32,
}

impl SpinBackoff {
    /// Backoff doubling stops at `spin_iter << MAX_EXPONENT` cycles.
    pub const MAX_EXPONENT: u32 = 6;

    pub fn new() -> Self {
        SpinBackoff { exponent: 0 }
    }

    /// Current doubling level (diagnostics/tests).
    pub fn exponent(&self) -> u32 {
        self.exponent
    }

    /// Reset the doubling level to zero. Every acquisition must start from
    /// a fresh (or reset) backoff: carrying a saturated exponent from one
    /// contended region into the next would make an unrelated, possibly
    /// uncontended lock pay multi-thousand-cycle pauses on its first miss.
    /// The acquire cores below construct a fresh `SpinBackoff` per call,
    /// which is equivalent; `reset` exists for callers that keep one
    /// backoff across acquisitions.
    pub fn reset(&mut self) {
        self.exponent = 0;
    }

    /// Wait one backoff step, charging the cycles to `ctx`.
    pub fn pause(&mut self, ctx: &mut ThreadCtx) {
        let unit = ctx.runtime().cost.spin_iter.max(1);
        let iters = unit << self.exponent;
        ctx.charge(iters);
        ctx.stats.cycles_lock_wait += iters;
        for _ in 0..iters {
            std::hint::spin_loop();
        }
        if self.exponent < Self::MAX_EXPONENT {
            self.exponent += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

impl Default for SpinBackoff {
    fn default() -> Self {
        Self::new()
    }
}

/// Blocking acquire of the bits in `mask` within `word` — the spin/acquire
/// core shared by [`AdvisoryLock`], [`BitLockVector`] and the CCM's
/// per-slot lock bits (which are the same mechanism at three different
/// granularities).
///
/// Concurrent mode test-and-test-and-sets with a fresh bounded
/// [`SpinBackoff`] (a *fresh* one per acquisition — see
/// [`SpinBackoff::reset`]); virtual mode charges the wait until the
/// holder's modeled release time plus one losing CAS observation, so both
/// modes account a contended acquisition identically: one losing + one
/// winning CAS. `vkey` is the virtual-lock identity of the bits being
/// taken. Returns the cycles spent waiting.
pub fn acquire_mask_blocking(ctx: &mut ThreadCtx, word: &TxCell<u64>, mask: u64, vkey: u64) -> u64 {
    debug_assert!(mask != 0);
    ctx.metric_add(euno_metrics::Counter::AdvisoryAcquires, 1);
    let wait_before = ctx.stats.cycles_lock_wait;
    match ctx.mode() {
        Mode::Concurrent => {
            let mut backoff = SpinBackoff::new();
            loop {
                if word.load_direct(ctx) & mask == 0 {
                    let prev = word.fetch_or_direct(ctx, mask);
                    if prev & mask == 0 {
                        break;
                    }
                }
                backoff.pause(ctx);
            }
        }
        Mode::Virtual => {
            let free_at = ctx.runtime().vlock_free_at(vkey, ctx.clock);
            if free_at > ctx.clock {
                // The losing CAS advances the clock too; only the residual
                // gap to the release time is spent waiting.
                ctx.charge_cas_miss();
                let wait = free_at.saturating_sub(ctx.clock);
                ctx.stats.cycles_lock_wait += wait;
                ctx.clock += wait;
            }
            let prev = word.fetch_or_direct(ctx, mask);
            debug_assert_eq!(prev & mask, 0, "virtual lock bits must be free");
        }
    }
    let waited = ctx.stats.cycles_lock_wait - wait_before;
    if waited > 0 {
        ctx.metric_add(euno_metrics::Counter::AdvisoryWaits, 1);
    }
    waited
}

/// Release counterpart of [`acquire_mask_blocking`]: records the virtual
/// hold time and clears the bits.
pub fn release_mask(ctx: &mut ThreadCtx, word: &TxCell<u64>, mask: u64, vkey: u64) {
    if ctx.mode() == Mode::Virtual {
        ctx.runtime().vlock_hold(vkey, ctx.clock);
    }
    word.fetch_and_direct(ctx, !mask);
}

/// Advisory slot-lock surface a middle-path [`Footprint`] locks against:
/// anything that exposes independently acquirable numbered slots. The
/// executor only ever acquires slots in sorted order, so any two regions
/// locking the same surface are deadlock-free by construction.
pub trait SlotLocks {
    /// Blocking acquire of one slot (outside any HTM episode).
    fn acquire_slot(&self, ctx: &mut ThreadCtx, slot: u32);
    /// Release one slot.
    fn release_slot(&self, ctx: &mut ThreadCtx, slot: u32);
}

impl SlotLocks for BitLockVector {
    fn acquire_slot(&self, ctx: &mut ThreadCtx, slot: u32) {
        self.acquire(ctx, slot as usize);
    }

    fn release_slot(&self, ctx: &mut ThreadCtx, slot: u32) {
        self.release(ctx, slot as usize);
    }
}

/// Most slots one region footprint may declare. Point operations need one
/// slot; structural operations (split: leaf + sibling + parent) stay small.
pub const MAX_FOOTPRINT_SLOTS: usize = 4;

/// Fibonacci-hash a key to an advisory slot in `0..nslots` (the paper's
/// Figure 5 hash) — shared by the CCM's slot map and the trees'
/// middle-path footprint tables, so both surfaces agree on which slot a
/// key contends for.
#[inline]
pub fn slot_for_key(key: u64, nslots: u32) -> u32 {
    debug_assert!(nslots > 0);
    let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> 32) as u32 % nslots
}

/// A region's declared middle-path footprint: which advisory slots of
/// which lock surface an attempt must hold before speculating. Slots are
/// sorted and deduplicated at construction, so acquisition order is
/// globally consistent across threads — two overlapping footprints always
/// take their common slots in the same order (no deadlock, no
/// double-lock).
pub struct Footprint<'f> {
    locks: &'f dyn SlotLocks,
    slots: [u32; MAX_FOOTPRINT_SLOTS],
    len: u8,
}

impl<'f> Footprint<'f> {
    pub fn new(locks: &'f dyn SlotLocks, slots: &[u32]) -> Self {
        assert!(
            slots.len() <= MAX_FOOTPRINT_SLOTS,
            "footprint of {} slots exceeds MAX_FOOTPRINT_SLOTS",
            slots.len()
        );
        let mut buf = [0u32; MAX_FOOTPRINT_SLOTS];
        buf[..slots.len()].copy_from_slice(slots);
        buf[..slots.len()].sort_unstable();
        let mut len = 0usize;
        for i in 0..slots.len() {
            if len == 0 || buf[i] != buf[len - 1] {
                buf[len] = buf[i];
                len += 1;
            }
        }
        Footprint {
            locks,
            slots: buf,
            len: len as u8,
        }
    }

    /// The slots in acquisition (ascending) order.
    pub fn slots(&self) -> &[u32] {
        &self.slots[..self.len as usize]
    }

    /// Acquire every slot in sorted order. Must be called outside any HTM
    /// episode (the lock words are accessed directly).
    pub fn acquire_all(&self, ctx: &mut ThreadCtx) {
        for &s in self.slots() {
            self.locks.acquire_slot(ctx, s);
        }
    }

    /// Release every slot (reverse order, symmetric with acquisition).
    pub fn release_all(&self, ctx: &mut ThreadCtx) {
        for &s in self.slots().iter().rev() {
            self.locks.release_slot(ctx, s);
        }
    }
}

/// A word-sized advisory spinlock (the paper's per-leaf "split lock").
pub struct AdvisoryLock {
    cell: TxCell<u64>,
}

impl Default for AdvisoryLock {
    fn default() -> Self {
        Self::new()
    }
}

impl AdvisoryLock {
    pub fn new() -> Self {
        AdvisoryLock {
            cell: TxCell::new(0),
        }
    }

    #[inline]
    fn key(&self) -> u64 {
        self.cell.raw_ptr() as u64
    }

    /// Blocking acquire. Concurrent mode test-and-test-and-sets with
    /// bounded exponential backoff ([`SpinBackoff`]); virtual mode charges
    /// the wait until the holder's modeled release time plus one losing
    /// CAS observation, so both modes account a contended acquisition the
    /// same way.
    pub fn acquire(&self, ctx: &mut ThreadCtx) {
        let waited = acquire_mask_blocking(ctx, &self.cell, 1, self.key());
        ctx.trace(EventKind::LockAcquire {
            addr: self.key(),
            wait_cycles: waited,
        });
    }

    /// Non-blocking acquire; returns whether the lock was taken. Both the
    /// success and the failure path cost exactly one CAS in both modes.
    pub fn try_acquire(&self, ctx: &mut ThreadCtx) -> bool {
        let taken = match ctx.mode() {
            Mode::Concurrent => self.cell.cas_direct(ctx, 0, 1),
            Mode::Virtual => {
                let free_at = ctx.runtime().vlock_free_at(self.key(), ctx.clock);
                if free_at > ctx.clock {
                    // The CAS a concurrent acquirer would lose.
                    ctx.charge_cas_miss();
                    false
                } else {
                    self.cell.cas_direct(ctx, 0, 1)
                }
            }
        };
        if taken {
            ctx.trace(EventKind::LockAcquire {
                addr: self.key(),
                wait_cycles: 0,
            });
        }
        taken
    }

    pub fn release(&self, ctx: &mut ThreadCtx) {
        if ctx.mode() == Mode::Virtual {
            ctx.runtime().vlock_hold(self.key(), ctx.clock);
        }
        // Whole-word store, not the shared fetch_and: the word holds only
        // this lock, and the cheaper release is part of the advisory-lock
        // cost model the figures were calibrated with.
        self.cell.store_direct(ctx, 0);
        ctx.trace(EventKind::LockRelease { addr: self.key() });
    }

    /// Instrumented check (Algorithm 2 line 52: `leaf.isLocked()`).
    pub fn is_locked(&self, ctx: &mut ThreadCtx) -> bool {
        self.cell.load_direct(ctx) != 0
    }

    /// Uninstrumented check for assertions.
    pub fn is_locked_plain(&self) -> bool {
        self.cell.load_plain() != 0
    }
}

/// Tree-level control words (root pointer, fallback lock, root lock),
/// boxed on their own cache line so the line assignment of these heavily
/// subscribed cells never depends on where the tree struct itself lives —
/// a prerequisite for bit-for-bit deterministic virtual-time runs.
#[repr(C, align(64))]
pub struct ControlBlock {
    /// Root node pointer bits.
    pub root: TxCell<u64>,
    /// Global fallback lock for HTM regions.
    pub fallback: TxCell<u64>,
    /// Serializes root replacement in lock-based trees.
    pub root_lock: AdvisoryLock,
    _pad: [u64; 5],
}

impl ControlBlock {
    pub fn new(root_bits: u64) -> Box<Self> {
        Box::new(ControlBlock {
            root: TxCell::new(root_bits),
            fallback: TxCell::new(0),
            root_lock: AdvisoryLock::new(),
            _pad: [0; 5],
        })
    }
}

/// A vector of independently acquirable one-bit spinlocks packed into
/// words — the CCM's *lock bits* (§4.1, Figure 5).
pub struct BitLockVector {
    words: Box<[TxCell<u64>]>,
    bits: usize,
}

impl BitLockVector {
    pub fn new(bits: usize) -> Self {
        let nwords = bits.div_ceil(64).max(1);
        BitLockVector {
            words: (0..nwords).map(|_| TxCell::new(0)).collect(),
            bits,
        }
    }

    pub fn len(&self) -> usize {
        self.bits
    }

    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    #[inline]
    fn locate(&self, slot: usize) -> (&TxCell<u64>, u64, u64) {
        assert!(slot < self.bits, "slot {slot} out of range {}", self.bits);
        let word = &self.words[slot / 64];
        let bit = (slot % 64) as u32;
        (
            word,
            1u64 << bit,
            lock_key_for_bit(word.raw_ptr() as usize, bit),
        )
    }

    /// Blocking acquire of one slot's lock bit (Algorithm 2 lines 30-31).
    /// Contended concurrent acquisitions back off like [`AdvisoryLock`]:
    /// the word is re-tested before each `fetch_or` so waiters don't keep
    /// dirtying a line shared by up to 64 independent locks.
    pub fn acquire(&self, ctx: &mut ThreadCtx, slot: usize) {
        let (word, mask, key) = self.locate(slot);
        let addr = word.raw_ptr() as u64;
        let waited = acquire_mask_blocking(ctx, word, mask, key);
        ctx.trace(EventKind::LockAcquire {
            addr,
            wait_cycles: waited,
        });
    }

    pub fn release(&self, ctx: &mut ThreadCtx, slot: usize) {
        let (word, mask, key) = self.locate(slot);
        release_mask(ctx, word, mask, key);
        ctx.trace(EventKind::LockRelease {
            addr: word.raw_ptr() as u64,
        });
    }

    pub fn is_locked(&self, ctx: &mut ThreadCtx, slot: usize) -> bool {
        let (word, mask, _) = self.locate(slot);
        word.load_direct(ctx) & mask != 0
    }
}

/// An instrumented atomic bit vector — the CCM's *mark bits* (Bloom-filter
/// style existence hints, §4.1).
pub struct AtomicBitVector {
    words: Box<[TxCell<u64>]>,
    bits: usize,
}

impl AtomicBitVector {
    pub fn new(bits: usize) -> Self {
        let nwords = bits.div_ceil(64).max(1);
        AtomicBitVector {
            words: (0..nwords).map(|_| TxCell::new(0)).collect(),
            bits,
        }
    }

    pub fn len(&self) -> usize {
        self.bits
    }

    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    #[inline]
    fn locate(&self, i: usize) -> (&TxCell<u64>, u64) {
        assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        (&self.words[i / 64], 1u64 << (i % 64))
    }

    pub fn get(&self, ctx: &mut ThreadCtx, i: usize) -> bool {
        let (w, m) = self.locate(i);
        w.load_direct(ctx) & m != 0
    }

    /// Set bit `i`; returns the previous value (Algorithm 2 line 38 uses
    /// the CAS flavour to atomically claim insertion rights).
    pub fn set(&self, ctx: &mut ThreadCtx, i: usize) -> bool {
        let (w, m) = self.locate(i);
        w.fetch_or_direct(ctx, m) & m != 0
    }

    pub fn clear(&self, ctx: &mut ThreadCtx, i: usize) -> bool {
        let (w, m) = self.locate(i);
        w.fetch_and_direct(ctx, !m) & m != 0
    }

    /// Uninstrumented population count (tests/diagnostics).
    pub fn count_ones_plain(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load_plain().count_ones() as usize)
            .sum()
    }

    /// Bytes occupied by the vector's words.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

// ================= TL2 per-line version locks =================

/// Log2 of the version-lock table size. 2^14 slots × 8 bytes = 128 KiB —
/// large enough that a tree footprint of tens of lines collides rarely,
/// small enough to stay cache-resident under heavy traffic.
const VERSION_TABLE_LOG2: u32 = 14;

/// TL2-style striped table of versioned write-locks, one word per slot:
/// `version << 1 | locked`. Concurrent-mode software transactions map each
/// cache line ([`crate::line::LineId`]) to a slot with the same Fibonacci
/// multiplier as [`slot_for_key`], lock their write slots at commit,
/// validate read slots by version equality, and release with a bumped
/// version taken from the global clock (`Runtime::seq`). *Every* version
/// stored in a slot — commit release and direct-write bump alike — is a
/// unique clock draw, so slot versions never outrun `Runtime::seq`.
/// Distinct lines may share a slot; collisions only ever cause
/// conservative aborts, never missed conflicts.
///
/// All operations are `SeqCst`: the commit protocol's correctness
/// argument (writeback counter vs. fallback quiesce vs. episode-free
/// readers, DESIGN.md §4.5) is a total-order argument, and the table is
/// not the bottleneck — the point of striping is that disjoint commits
/// touch disjoint slots.
pub struct VersionTable {
    slots: Box<[AtomicU64]>,
}

impl VersionTable {
    pub(crate) fn new() -> Self {
        VersionTable {
            slots: (0..1usize << VERSION_TABLE_LOG2)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Slot index of a line (top bits of the Fibonacci hash, like
    /// [`slot_for_key`] but with a power-of-two table).
    #[inline]
    pub fn slot_of(&self, line: crate::line::LineId) -> u32 {
        (line.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (64 - VERSION_TABLE_LOG2)) as u32
    }

    #[inline]
    pub fn load(&self, slot: u32) -> u64 {
        self.slots[slot as usize].load(Ordering::SeqCst)
    }

    #[inline]
    pub fn is_locked(word: u64) -> bool {
        word & 1 == 1
    }

    #[inline]
    pub fn version_of(word: u64) -> u64 {
        word >> 1
    }

    /// One lock attempt (no spin): set the lock bit, keeping the version.
    #[inline]
    pub(crate) fn try_lock(&self, slot: u32) -> bool {
        let s = &self.slots[slot as usize];
        let w = s.load(Ordering::SeqCst);
        !Self::is_locked(w)
            && s.compare_exchange(w, w | 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
    }

    /// Release a held slot without publishing: clear the lock bit only, so
    /// version bumps that landed while we held it survive.
    #[inline]
    pub(crate) fn unlock_abort(&self, slot: u32) {
        self.slots[slot as usize].fetch_and(!1, Ordering::SeqCst);
    }

    /// Release a held slot at write-version `wv`. Versions are monotone:
    /// if a concurrent direct-write bump already pushed the slot past
    /// `wv`, keep the higher version and just drop the lock bit. The
    /// keep-higher path is sound *because* bumps are clock-anchored
    /// ([`VersionTable::bump_line_to`]): every version ever stored is a
    /// unique `Runtime::seq` draw, so a slot version above `wv` was
    /// issued *after* our own clock tick — and strictly after anything a
    /// reader could have logged before we locked the slot (readers never
    /// log a locked slot). Either way the released word differs from
    /// every pre-commit observation, so revalidation always catches us.
    #[inline]
    pub(crate) fn unlock_commit(&self, slot: u32, wv: u64) {
        let s = &self.slots[slot as usize];
        let prev = s.fetch_max(wv << 1, Ordering::SeqCst);
        if Self::version_of(prev) >= wv {
            // fetch_max kept `prev`, which still carries our lock bit (we
            // are the only possible holder), so clear just that bit.
            s.fetch_and(!1, Ordering::SeqCst);
        }
    }

    /// Version bump for a non-transactional (direct / fallback) write:
    /// raise the slot covering `line` to `ver` — a fresh global-clock
    /// draw the caller obtained via `Runtime::seq.fetch_add(1) + 1` —
    /// preserving the lock bit of any in-flight committer. Anchoring the
    /// bump to the clock (instead of a local `+1`) maintains the
    /// invariant that a slot's version never exceeds `Runtime::seq`,
    /// which both [`VersionTable::unlock_commit`] and the TL2 read-path
    /// `rv`-extension rely on: a post-snapshot direct write always reads
    /// as `ver > rv` and forces revalidation.
    #[inline]
    pub(crate) fn bump_line_to(&self, line: crate::line::LineId, ver: u64) {
        let s = &self.slots[self.slot_of(line) as usize];
        let mut cur = s.load(Ordering::SeqCst);
        while Self::version_of(cur) < ver {
            let new = (ver << 1) | (cur & 1);
            match s.compare_exchange_weak(cur, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => break,
                Err(w) => cur = w,
            }
        }
    }

    /// Current version of the slot covering `line` (tests/diagnostics).
    pub fn line_version(&self, line: crate::line::LineId) -> u64 {
        Self::version_of(self.load(self.slot_of(line)))
    }
}

// Test-support helper: acquire a lock and hold it for `work` cycles.
#[cfg(test)]
impl crate::ctx::ThreadCtx {
    fn acquire_and_work(&mut self, l: &AdvisoryLock, work: u64) {
        l.acquire(self);
        self.charge(work);
        l.release(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn advisory_lock_acquire_release_virtual() {
        let rt = Runtime::new_virtual();
        let mut ctx = rt.thread(0);
        let l = AdvisoryLock::new();
        assert!(!l.is_locked_plain());
        l.acquire(&mut ctx);
        assert!(l.is_locked_plain());
        l.release(&mut ctx);
        assert!(!l.is_locked_plain());
    }

    #[test]
    fn later_virtual_acquirer_waits_for_hold() {
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(0);
        let mut b = rt.thread(1);
        let l = AdvisoryLock::new();
        a.acquire_and_work(&l, 1_000);
        // b starts at clock 0; must be pushed past a's release time.
        l.acquire(&mut b);
        assert!(b.clock >= 1_000, "b.clock = {}", b.clock);
        assert!(b.stats.cycles_lock_wait >= 1_000);
        l.release(&mut b);
    }

    #[test]
    fn try_acquire_fails_while_virtually_held() {
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(0);
        let mut b = rt.thread(1);
        let l = AdvisoryLock::new();
        a.acquire_and_work(&l, 5_000);
        assert!(!l.try_acquire(&mut b));
        b.charge(10_000);
        assert!(l.try_acquire(&mut b));
        l.release(&mut b);
    }

    #[test]
    fn advisory_lock_mutual_exclusion_concurrent() {
        let rt = Runtime::new_concurrent();
        let l = AdvisoryLock::new();
        let counter = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let mut ctx = rt.thread(t);
                let (l, counter) = (&l, &counter);
                s.spawn(move || {
                    for _ in 0..200 {
                        l.acquire(&mut ctx);
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        l.release(&mut ctx);
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 800);
    }

    #[test]
    fn bit_locks_are_independent() {
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(0);
        let mut b = rt.thread(1);
        let v = BitLockVector::new(32);
        v.acquire(&mut a, 3);
        a.charge(10_000);
        v.release(&mut a, 3);
        // A different slot is free immediately.
        v.acquire(&mut b, 4);
        assert!(b.clock < 10_000);
        v.release(&mut b, 4);
        // The same slot would have waited.
        let mut c = rt.thread(2);
        v.acquire(&mut c, 3);
        assert!(c.clock >= 10_000);
        v.release(&mut c, 3);
    }

    #[test]
    fn bit_lock_concurrent_mutex() {
        let rt = Runtime::new_concurrent();
        let v = BitLockVector::new(8);
        let shared = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let mut ctx = rt.thread(t);
                let (v, shared) = (&v, &shared);
                s.spawn(move || {
                    for i in 0..100usize {
                        let slot = i % 8;
                        v.acquire(&mut ctx, slot);
                        let x = shared.load(std::sync::atomic::Ordering::Relaxed);
                        shared.store(x + 1, std::sync::atomic::Ordering::Relaxed);
                        v.release(&mut ctx, slot);
                    }
                });
            }
        });
        // Different slots allow racing on `shared`, so we cannot assert 400
        // here — only that all locks were released.
        let mut ctx = rt.thread(9);
        for slot in 0..8 {
            assert!(!v.is_locked(&mut ctx, slot));
        }
    }

    #[test]
    fn mark_bits_set_get_clear() {
        let rt = Runtime::new_virtual();
        let mut ctx = rt.thread(0);
        let v = AtomicBitVector::new(100);
        assert!(!v.get(&mut ctx, 77));
        assert!(!v.set(&mut ctx, 77));
        assert!(v.get(&mut ctx, 77));
        assert!(v.set(&mut ctx, 77), "second set reports previous = true");
        assert_eq!(v.count_ones_plain(), 1);
        assert!(v.clear(&mut ctx, 77));
        assert!(!v.get(&mut ctx, 77));
        assert_eq!(v.count_ones_plain(), 0);
        assert_eq!(v.memory_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_vector_bounds_checked() {
        let rt = Runtime::new_virtual();
        let mut ctx = rt.thread(0);
        let v = AtomicBitVector::new(10);
        v.get(&mut ctx, 10);
    }

    #[test]
    fn spin_backoff_is_bounded_and_charged() {
        let rt = Runtime::new_concurrent();
        let mut ctx = rt.thread(0);
        let unit = rt.cost.spin_iter.max(1);
        let mut b = SpinBackoff::new();
        let mut expected = 0u64;
        // Doubling stops at MAX_EXPONENT; pausing beyond it stays capped.
        for i in 0..(SpinBackoff::MAX_EXPONENT + 4) {
            let before = ctx.clock;
            b.pause(&mut ctx);
            let step = ctx.clock - before;
            expected += step;
            assert_eq!(step, unit << i.min(SpinBackoff::MAX_EXPONENT));
            assert!(b.exponent() <= SpinBackoff::MAX_EXPONENT);
        }
        assert_eq!(ctx.stats.cycles_lock_wait, expected);
    }

    #[test]
    fn contended_concurrent_acquire_backs_off_not_convoys() {
        // A long-held lock must not cost the waiter one CAS per spin
        // iteration: with test-and-test-and-set + backoff the number of
        // CAS attempts stays tiny while the waited cycles accumulate in
        // cycles_lock_wait.
        let rt = Runtime::new_concurrent();
        let l = AdvisoryLock::new();
        std::thread::scope(|s| {
            let mut holder = rt.thread(0);
            l.acquire(&mut holder);
            let l = &l;
            let rt2 = std::sync::Arc::clone(&rt);
            let waiter = s.spawn(move || {
                let mut ctx = rt2.thread(1);
                l.acquire(&mut ctx);
                l.release(&mut ctx);
                ctx.stats
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            l.release(&mut holder);
            let stats = waiter.join().unwrap();
            assert!(stats.cycles_lock_wait > 0, "wait cycles accounted");
            // 20 ms of tight CAS spinning would be millions of attempts;
            // backoff keeps it to one per pause, and the pause lengths
            // double, so the count stays small relative to the wait.
            assert!(
                stats.cas_ops < 1 + stats.cycles_lock_wait / rt.cost.spin_iter.max(1),
                "cas_ops = {}, cycles_lock_wait = {}",
                stats.cas_ops,
                stats.cycles_lock_wait
            );
        });
    }

    #[test]
    fn spin_backoff_resets_between_regions() {
        // Satellite audit: a fallback-heavy region must not poison the
        // next region's backoff schedule. The acquire cores construct a
        // fresh SpinBackoff per acquisition, and `reset` restores a kept
        // one to the fresh schedule.
        let rt = Runtime::new_concurrent();
        let mut ctx = rt.thread(0);
        let unit = rt.cost.spin_iter.max(1);

        let mut b = SpinBackoff::new();
        for _ in 0..SpinBackoff::MAX_EXPONENT + 2 {
            b.pause(&mut ctx);
        }
        assert_eq!(b.exponent(), SpinBackoff::MAX_EXPONENT, "saturated");
        b.reset();
        assert_eq!(b.exponent(), 0);
        let before = ctx.clock;
        b.pause(&mut ctx);
        assert_eq!(
            ctx.clock - before,
            unit,
            "first pause after reset is the base quantum again"
        );

        // An uncontended acquisition after a heavily contended one spins
        // zero times — the saturated exponent of the earlier acquire must
        // not leak in (fresh backoff per acquire call).
        let l = AdvisoryLock::new();
        let wait_before = ctx.stats.cycles_lock_wait;
        l.acquire(&mut ctx);
        l.release(&mut ctx);
        assert_eq!(
            ctx.stats.cycles_lock_wait, wait_before,
            "uncontended acquire must not pause at all"
        );
    }

    #[test]
    fn footprint_sorts_and_dedups_slots() {
        let v = BitLockVector::new(64);
        let fp = Footprint::new(&v, &[9, 3, 9, 60]);
        assert_eq!(fp.slots(), &[3, 9, 60]);
        let empty = Footprint::new(&v, &[]);
        assert_eq!(empty.slots(), &[] as &[u32]);

        // acquire_all takes exactly the deduped slots, in order.
        let rt = Runtime::new_virtual();
        let mut ctx = rt.thread(0);
        fp.acquire_all(&mut ctx);
        for &s in &[3usize, 9, 60] {
            assert!(v.is_locked(&mut ctx, s));
        }
        assert!(!v.is_locked(&mut ctx, 10));
        fp.release_all(&mut ctx);
        for &s in &[3usize, 9, 60] {
            assert!(!v.is_locked(&mut ctx, s));
        }
    }

    #[test]
    #[should_panic(expected = "MAX_FOOTPRINT_SLOTS")]
    fn footprint_rejects_oversized_slot_lists() {
        let v = BitLockVector::new(64);
        let _ = Footprint::new(&v, &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn commit_release_stays_visible_past_direct_write_bumps() {
        // Regression: the old `bump_line` added +1 per direct write
        // without advancing the global clock, so a hot line could push
        // its slot's version past `rt.seq`; a committer whose `wv` fell
        // at or below that version then released with the version word
        // unchanged, making the commit invisible to readers that logged
        // the inflated version before it — a missed conflict. With
        // clock-anchored bumps every stored version is a unique `seq`
        // draw, so a release always leaves the slot strictly newer than
        // any pre-commit observation.
        let rt = Runtime::new_concurrent();
        let mut ctx = rt.thread(0);
        let cell = TxCell::new(0u64);
        let line = crate::line::LineId::of_ptr(cell.raw_ptr());
        let slot = rt.vlocks.slot_of(line);

        // Hot direct-write traffic: versions must never outrun the clock.
        for i in 0..8 {
            cell.store_direct(&mut ctx, i);
            assert!(rt.vlocks.line_version(line) <= rt.seq.load(Ordering::SeqCst));
        }

        // A reader logs the current version; a committer locks the slot,
        // draws its write version and releases. The released word must
        // differ from the logged one or revalidation cannot catch the
        // commit.
        let logged = rt.vlocks.line_version(line);
        assert!(rt.vlocks.try_lock(slot));
        let wv = rt.seq.fetch_add(1, Ordering::SeqCst) + 1;
        rt.vlocks.unlock_commit(slot, wv);
        assert!(!VersionTable::is_locked(rt.vlocks.load(slot)));
        assert!(
            rt.vlocks.line_version(line) > logged,
            "release left the reader-visible version unchanged"
        );

        // A bump landing while the slot is locked preserves the lock bit,
        // and a lower-wv release keeps the higher (later-clock) version.
        assert!(rt.vlocks.try_lock(slot));
        let wv2 = rt.seq.fetch_add(1, Ordering::SeqCst) + 1;
        cell.store_direct(&mut ctx, 99); // clock draw above wv2
        assert!(VersionTable::is_locked(rt.vlocks.load(slot)));
        let high = rt.vlocks.line_version(line);
        assert!(high > wv2);
        rt.vlocks.unlock_commit(slot, wv2);
        assert!(!VersionTable::is_locked(rt.vlocks.load(slot)));
        assert_eq!(
            rt.vlocks.line_version(line),
            high,
            "keep-higher release must preserve the later bump"
        );
    }

    #[test]
    fn cas_charging_symmetric_across_paths() {
        // Regression: the virtual failure path of try_acquire charged
        // cycles without counting the CAS, and contended virtual acquires
        // skipped the losing CAS entirely, so policy figures undercounted
        // CAS traffic relative to concurrent mode.
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(0);
        let mut b = rt.thread(1);
        let l = AdvisoryLock::new();

        // Uncontended try_acquire: exactly one CAS.
        assert!(l.try_acquire(&mut a));
        assert_eq!(a.stats.cas_ops, 1);
        a.charge(5_000);
        l.release(&mut a);

        // Failing try_acquire while virtually held: also exactly one CAS.
        let before = b.stats.cas_ops;
        assert!(!l.try_acquire(&mut b));
        assert_eq!(b.stats.cas_ops, before + 1, "failed CAS must be counted");

        // Contended blocking acquire: one losing + one winning CAS.
        let before = b.stats.cas_ops;
        l.acquire(&mut b);
        assert_eq!(b.stats.cas_ops, before + 2);
        l.release(&mut b);

        // Bit locks follow the same rule.
        let v = BitLockVector::new(8);
        let mut c = rt.thread(2);
        v.acquire(&mut a, 3);
        a.charge(5_000);
        v.release(&mut a, 3);
        let before = c.stats.cas_ops;
        v.acquire(&mut c, 3); // must wait out the virtual hold
        assert!(c.stats.cycles_lock_wait > 0);
        assert_eq!(c.stats.cas_ops, before + 2, "losing + winning CAS");
        v.release(&mut c, 3);
    }
}
