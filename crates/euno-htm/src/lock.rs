//! Advisory locks and atomic bit vectors.
//!
//! Eunomia throttles *true* conflicts with fine-grained advisory locks
//! taken **outside** HTM regions (§3, §4.1): a per-leaf split lock and the
//! conflict-control module's per-slot lock bits. In concurrent mode these
//! are plain CAS spinlocks; in virtual-time mode an acquirer arriving while
//! the lock is virtually held is charged the wait until the holder's
//! release time, which is how lock convoys show up in the figures.

use crate::ctx::ThreadCtx;
use crate::runtime::{lock_key_for_bit, Mode};
use crate::word::TxCell;

/// A word-sized advisory spinlock (the paper's per-leaf "split lock").
pub struct AdvisoryLock {
    cell: TxCell<u64>,
}

impl Default for AdvisoryLock {
    fn default() -> Self {
        Self::new()
    }
}

impl AdvisoryLock {
    pub fn new() -> Self {
        AdvisoryLock {
            cell: TxCell::new(0),
        }
    }

    #[inline]
    fn key(&self) -> u64 {
        self.cell.raw_ptr() as u64
    }

    /// Blocking acquire.
    pub fn acquire(&self, ctx: &mut ThreadCtx) {
        match ctx.mode() {
            Mode::Concurrent => {
                let spin = ctx.runtime().cost.spin_iter;
                while !self.cell.cas_direct(ctx, 0, 1) {
                    ctx.charge(spin);
                    ctx.stats.cycles_lock_wait += spin;
                    std::hint::spin_loop();
                }
            }
            Mode::Virtual => {
                let free_at = ctx.runtime().vlock_free_at(self.key(), ctx.clock);
                if free_at > ctx.clock {
                    ctx.stats.cycles_lock_wait += free_at - ctx.clock;
                    ctx.clock = free_at;
                }
                let ok = self.cell.cas_direct(ctx, 0, 1);
                debug_assert!(ok, "virtual lock must be free after its hold time");
            }
        }
    }

    /// Non-blocking acquire; returns whether the lock was taken.
    pub fn try_acquire(&self, ctx: &mut ThreadCtx) -> bool {
        match ctx.mode() {
            Mode::Concurrent => self.cell.cas_direct(ctx, 0, 1),
            Mode::Virtual => {
                let free_at = ctx.runtime().vlock_free_at(self.key(), ctx.clock);
                if free_at > ctx.clock {
                    ctx.charge(ctx.runtime().cost.cas);
                    false
                } else {
                    self.cell.cas_direct(ctx, 0, 1)
                }
            }
        }
    }

    pub fn release(&self, ctx: &mut ThreadCtx) {
        if ctx.mode() == Mode::Virtual {
            ctx.runtime().vlock_hold(self.key(), ctx.clock);
        }
        self.cell.store_direct(ctx, 0);
    }

    /// Instrumented check (Algorithm 2 line 52: `leaf.isLocked()`).
    pub fn is_locked(&self, ctx: &mut ThreadCtx) -> bool {
        self.cell.load_direct(ctx) != 0
    }

    /// Uninstrumented check for assertions.
    pub fn is_locked_plain(&self) -> bool {
        self.cell.load_plain() != 0
    }
}

/// Tree-level control words (root pointer, fallback lock, root lock),
/// boxed on their own cache line so the line assignment of these heavily
/// subscribed cells never depends on where the tree struct itself lives —
/// a prerequisite for bit-for-bit deterministic virtual-time runs.
#[repr(C, align(64))]
pub struct ControlBlock {
    /// Root node pointer bits.
    pub root: TxCell<u64>,
    /// Global fallback lock for HTM regions.
    pub fallback: TxCell<u64>,
    /// Serializes root replacement in lock-based trees.
    pub root_lock: AdvisoryLock,
    _pad: [u64; 5],
}

impl ControlBlock {
    pub fn new(root_bits: u64) -> Box<Self> {
        Box::new(ControlBlock {
            root: TxCell::new(root_bits),
            fallback: TxCell::new(0),
            root_lock: AdvisoryLock::new(),
            _pad: [0; 5],
        })
    }
}

/// A vector of independently acquirable one-bit spinlocks packed into
/// words — the CCM's *lock bits* (§4.1, Figure 5).
pub struct BitLockVector {
    words: Box<[TxCell<u64>]>,
    bits: usize,
}

impl BitLockVector {
    pub fn new(bits: usize) -> Self {
        let nwords = bits.div_ceil(64).max(1);
        BitLockVector {
            words: (0..nwords).map(|_| TxCell::new(0)).collect(),
            bits,
        }
    }

    pub fn len(&self) -> usize {
        self.bits
    }

    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    #[inline]
    fn locate(&self, slot: usize) -> (&TxCell<u64>, u64, u64) {
        assert!(slot < self.bits, "slot {slot} out of range {}", self.bits);
        let word = &self.words[slot / 64];
        let bit = (slot % 64) as u32;
        (
            word,
            1u64 << bit,
            lock_key_for_bit(word.raw_ptr() as usize, bit),
        )
    }

    /// Blocking acquire of one slot's lock bit (Algorithm 2 lines 30-31).
    pub fn acquire(&self, ctx: &mut ThreadCtx, slot: usize) {
        let (word, mask, key) = self.locate(slot);
        match ctx.mode() {
            Mode::Concurrent => {
                let spin = ctx.runtime().cost.spin_iter;
                loop {
                    let prev = word.fetch_or_direct(ctx, mask);
                    if prev & mask == 0 {
                        return;
                    }
                    ctx.charge(spin);
                    ctx.stats.cycles_lock_wait += spin;
                    std::hint::spin_loop();
                }
            }
            Mode::Virtual => {
                let free_at = ctx.runtime().vlock_free_at(key, ctx.clock);
                if free_at > ctx.clock {
                    ctx.stats.cycles_lock_wait += free_at - ctx.clock;
                    ctx.clock = free_at;
                }
                let prev = word.fetch_or_direct(ctx, mask);
                debug_assert_eq!(prev & mask, 0, "virtual bit lock must be free");
            }
        }
    }

    pub fn release(&self, ctx: &mut ThreadCtx, slot: usize) {
        let (word, mask, key) = self.locate(slot);
        if ctx.mode() == Mode::Virtual {
            ctx.runtime().vlock_hold(key, ctx.clock);
        }
        word.fetch_and_direct(ctx, !mask);
    }

    pub fn is_locked(&self, ctx: &mut ThreadCtx, slot: usize) -> bool {
        let (word, mask, _) = self.locate(slot);
        word.load_direct(ctx) & mask != 0
    }
}

/// An instrumented atomic bit vector — the CCM's *mark bits* (Bloom-filter
/// style existence hints, §4.1).
pub struct AtomicBitVector {
    words: Box<[TxCell<u64>]>,
    bits: usize,
}

impl AtomicBitVector {
    pub fn new(bits: usize) -> Self {
        let nwords = bits.div_ceil(64).max(1);
        AtomicBitVector {
            words: (0..nwords).map(|_| TxCell::new(0)).collect(),
            bits,
        }
    }

    pub fn len(&self) -> usize {
        self.bits
    }

    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    #[inline]
    fn locate(&self, i: usize) -> (&TxCell<u64>, u64) {
        assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        (&self.words[i / 64], 1u64 << (i % 64))
    }

    pub fn get(&self, ctx: &mut ThreadCtx, i: usize) -> bool {
        let (w, m) = self.locate(i);
        w.load_direct(ctx) & m != 0
    }

    /// Set bit `i`; returns the previous value (Algorithm 2 line 38 uses
    /// the CAS flavour to atomically claim insertion rights).
    pub fn set(&self, ctx: &mut ThreadCtx, i: usize) -> bool {
        let (w, m) = self.locate(i);
        w.fetch_or_direct(ctx, m) & m != 0
    }

    pub fn clear(&self, ctx: &mut ThreadCtx, i: usize) -> bool {
        let (w, m) = self.locate(i);
        w.fetch_and_direct(ctx, !m) & m != 0
    }

    /// Uninstrumented population count (tests/diagnostics).
    pub fn count_ones_plain(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load_plain().count_ones() as usize)
            .sum()
    }

    /// Bytes occupied by the vector's words.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

// Test-support helper: acquire a lock and hold it for `work` cycles.
#[cfg(test)]
impl crate::ctx::ThreadCtx {
    fn acquire_and_work(&mut self, l: &AdvisoryLock, work: u64) {
        l.acquire(self);
        self.charge(work);
        l.release(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn advisory_lock_acquire_release_virtual() {
        let rt = Runtime::new_virtual();
        let mut ctx = rt.thread(0);
        let l = AdvisoryLock::new();
        assert!(!l.is_locked_plain());
        l.acquire(&mut ctx);
        assert!(l.is_locked_plain());
        l.release(&mut ctx);
        assert!(!l.is_locked_plain());
    }

    #[test]
    fn later_virtual_acquirer_waits_for_hold() {
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(0);
        let mut b = rt.thread(1);
        let l = AdvisoryLock::new();
        a.acquire_and_work(&l, 1_000);
        // b starts at clock 0; must be pushed past a's release time.
        l.acquire(&mut b);
        assert!(b.clock >= 1_000, "b.clock = {}", b.clock);
        assert!(b.stats.cycles_lock_wait >= 1_000);
        l.release(&mut b);
    }

    #[test]
    fn try_acquire_fails_while_virtually_held() {
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(0);
        let mut b = rt.thread(1);
        let l = AdvisoryLock::new();
        a.acquire_and_work(&l, 5_000);
        assert!(!l.try_acquire(&mut b));
        b.charge(10_000);
        assert!(l.try_acquire(&mut b));
        l.release(&mut b);
    }

    #[test]
    fn advisory_lock_mutual_exclusion_concurrent() {
        let rt = Runtime::new_concurrent();
        let l = AdvisoryLock::new();
        let counter = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let mut ctx = rt.thread(t);
                let (l, counter) = (&l, &counter);
                s.spawn(move || {
                    for _ in 0..200 {
                        l.acquire(&mut ctx);
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        l.release(&mut ctx);
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 800);
    }

    #[test]
    fn bit_locks_are_independent() {
        let rt = Runtime::new_virtual();
        let mut a = rt.thread(0);
        let mut b = rt.thread(1);
        let v = BitLockVector::new(32);
        v.acquire(&mut a, 3);
        a.charge(10_000);
        v.release(&mut a, 3);
        // A different slot is free immediately.
        v.acquire(&mut b, 4);
        assert!(b.clock < 10_000);
        v.release(&mut b, 4);
        // The same slot would have waited.
        let mut c = rt.thread(2);
        v.acquire(&mut c, 3);
        assert!(c.clock >= 10_000);
        v.release(&mut c, 3);
    }

    #[test]
    fn bit_lock_concurrent_mutex() {
        let rt = Runtime::new_concurrent();
        let v = BitLockVector::new(8);
        let shared = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let mut ctx = rt.thread(t);
                let (v, shared) = (&v, &shared);
                s.spawn(move || {
                    for i in 0..100usize {
                        let slot = i % 8;
                        v.acquire(&mut ctx, slot);
                        let x = shared.load(std::sync::atomic::Ordering::Relaxed);
                        shared.store(x + 1, std::sync::atomic::Ordering::Relaxed);
                        v.release(&mut ctx, slot);
                    }
                });
            }
        });
        // Different slots allow racing on `shared`, so we cannot assert 400
        // here — only that all locks were released.
        let mut ctx = rt.thread(9);
        for slot in 0..8 {
            assert!(!v.is_locked(&mut ctx, slot));
        }
    }

    #[test]
    fn mark_bits_set_get_clear() {
        let rt = Runtime::new_virtual();
        let mut ctx = rt.thread(0);
        let v = AtomicBitVector::new(100);
        assert!(!v.get(&mut ctx, 77));
        assert!(!v.set(&mut ctx, 77));
        assert!(v.get(&mut ctx, 77));
        assert!(v.set(&mut ctx, 77), "second set reports previous = true");
        assert_eq!(v.count_ones_plain(), 1);
        assert!(v.clear(&mut ctx, 77));
        assert!(!v.get(&mut ctx, 77));
        assert_eq!(v.count_ones_plain(), 0);
        assert_eq!(v.memory_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_vector_bounds_checked() {
        let rt = Runtime::new_virtual();
        let mut ctx = rt.thread(0);
        let v = AtomicBitVector::new(10);
        v.get(&mut ctx, 10);
    }
}
