//! Real Intel RTM (TSX) primitives and a hardware lock-elision executor.
//!
//! The reproduction's figures run on the software engine, but when the
//! host CPU actually implements Restricted Transactional Memory this
//! module lets the same `TxCell`-based data structures execute inside
//! genuine hardware transactions: `XBEGIN`/`XEND`/`XABORT`/`XTEST` are
//! issued via their raw byte encodings (stable Rust has no RTM
//! intrinsics), and [`HwRegion::execute`] implements the classic
//! lock-elision pattern — attempt transactionally with the fallback lock
//! subscribed, retry per policy on abort, serialize on the lock after the
//! budget is exhausted.
//!
//! Inside a hardware transaction the cells are accessed with plain atomic
//! loads/stores (`TxCell::load_plain` / `store_plain`): conflict
//! detection, rollback and atomicity come from the silicon, not from the
//! engine. The abort status word follows the Intel SDM layout.
//!
//! Enable with the `hw-rtm` cargo feature; always gate calls behind
//! [`rtm_supported`] — executing `XBEGIN` on a CPU without TSX raises
//! `#UD`.

#![cfg(all(feature = "hw-rtm", target_arch = "x86_64"))]

use std::arch::asm;

use crate::word::{TxCell, TxWord};

/// `_XBEGIN_STARTED`: the value "returned" by a successfully started
/// transaction (EAX is left untouched, and we preload it with all-ones).
pub const XBEGIN_STARTED: u32 = u32::MAX;

/// Abort-status bits (Intel SDM vol. 1 §16.3.5).
pub mod status {
    /// Set if the abort was caused by `XABORT imm8`.
    pub const EXPLICIT: u32 = 1 << 0;
    /// Set if the transaction may succeed on retry.
    pub const RETRY: u32 = 1 << 1;
    /// Set if another logical processor conflicted.
    pub const CONFLICT: u32 = 1 << 2;
    /// Set on read/write-set capacity overflow.
    pub const CAPACITY: u32 = 1 << 3;

    /// The `imm8` operand of the aborting `XABORT`.
    pub fn xabort_code(st: u32) -> u8 {
        (st >> 24) as u8
    }
}

/// Does this CPU (and kernel) expose RTM?
pub fn rtm_supported() -> bool {
    std::is_x86_feature_detected!("rtm")
}

/// Start a hardware transaction. Returns [`XBEGIN_STARTED`] when
/// speculation begins; on abort, control returns *here* with the status
/// word instead.
///
/// # Safety
/// The CPU must support RTM ([`rtm_supported`]); `#UD` otherwise.
#[inline(always)]
pub unsafe fn xbegin() -> u32 {
    let mut ret: u32 = XBEGIN_STARTED;
    // xbegin rel32=0 → the abort handler is the next instruction.
    asm!(
        ".byte 0xc7, 0xf8, 0x00, 0x00, 0x00, 0x00",
        inout("eax") ret,
        options(nostack)
    );
    ret
}

/// Commit the current hardware transaction.
///
/// # Safety
/// Must be transactionally executing (`#GP` otherwise).
#[inline(always)]
pub unsafe fn xend() {
    asm!(".byte 0x0f, 0x01, 0xd5", options(nostack));
}

/// Abort the current transaction with code 0xff.
///
/// # Safety
/// CPU must support RTM. Outside a transaction this is a no-op.
#[inline(always)]
pub unsafe fn xabort_ff() {
    asm!(".byte 0xc6, 0xf8, 0xff", options(nostack));
}

/// Abort the current transaction with code 0x01 — the executor's "body
/// returned `Err`" code, distinct from the 0xff fallback-subscription
/// abort so the classify stage can tell them apart.
///
/// # Safety
/// CPU must support RTM. Outside a transaction this is a no-op.
#[inline(always)]
pub unsafe fn xabort_01() {
    asm!(".byte 0xc6, 0xf8, 0x01", options(nostack));
}

/// Is the processor currently executing transactionally?
///
/// # Safety
/// The CPU must support RTM.
#[inline(always)]
pub unsafe fn xtest() -> bool {
    let out: u8;
    asm!(
        ".byte 0x0f, 0x01, 0xd6", // xtest
        "setnz {0}",
        out(reg_byte) out,
        options(nostack)
    );
    out != 0
}

/// Outcome of a hardware-elided region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HwOutcome {
    /// Transactional attempts made (0 if RTM unsupported).
    pub attempts: u32,
    /// Abort statuses observed (ORed together for compactness).
    pub abort_status_union: u32,
    /// Whether the body finally ran under the fallback lock.
    pub used_fallback: bool,
}

/// A hardware lock-elision region over a fallback-lock cell.
pub struct HwRegion<'a> {
    fallback: &'a TxCell<u64>,
    max_attempts: u32,
}

impl<'a> HwRegion<'a> {
    pub fn new(fallback: &'a TxCell<u64>) -> Self {
        HwRegion {
            fallback,
            max_attempts: 8,
        }
    }

    pub fn with_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Run `body` atomically: hardware transactions first (subscribing the
    /// fallback lock), the lock after `max_attempts` aborts. Returns the
    /// body's value plus attempt telemetry. Falls back immediately when
    /// the CPU lacks RTM.
    ///
    /// `body` must be idempotent up to its cell writes (it may run and be
    /// rolled back several times) and must not panic mid-transaction.
    pub fn execute<R>(&self, mut body: impl FnMut() -> R) -> (R, HwOutcome) {
        let mut out = HwOutcome {
            attempts: 0,
            abort_status_union: 0,
            used_fallback: false,
        };
        if rtm_supported() {
            while out.attempts < self.max_attempts {
                out.attempts += 1;
                // Wait for the lock to be free before eliding it.
                while self.fallback.load_plain() != 0 {
                    std::hint::spin_loop();
                }
                let st = unsafe { xbegin() };
                if st == XBEGIN_STARTED {
                    // Subscribe: reading the lock puts it in the read set;
                    // a concurrent acquisition aborts us. If already held,
                    // abort explicitly.
                    if self.fallback.load_plain() != 0 {
                        unsafe { xabort_ff() };
                    }
                    let r = body();
                    unsafe { xend() };
                    return (r, out);
                }
                out.abort_status_union |= st;
                if st & status::RETRY == 0 && st & status::EXPLICIT == 0 {
                    break; // hopeless (capacity etc.)
                }
            }
        }
        // Serialized fallback.
        loop {
            if self.fallback.cas_direct_plain(0, 1) {
                break;
            }
            std::hint::spin_loop();
        }
        let r = body();
        self.fallback.store_plain(0);
        out.used_fallback = true;
        (r, out)
    }
}

/// Plain CAS helper for the fallback word (no engine context needed on
/// the hardware path).
trait PlainCas {
    fn cas_direct_plain(&self, old: u64, new: u64) -> bool;
}

impl<T: TxWord> PlainCas for TxCell<T> {
    fn cas_direct_plain(&self, old: u64, new: u64) -> bool {
        self.raw()
            .compare_exchange(
                old,
                new,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_does_not_crash() {
        // Must be callable on any x86-64 host.
        let _ = rtm_supported();
    }

    #[test]
    fn elision_executes_body_exactly_once_observably() {
        // Runs transactionally on TSX hardware, on the fallback lock
        // otherwise — either way the counter increments atomically.
        let fb = TxCell::new(0u64);
        let counter = TxCell::new(0u64);
        let region = HwRegion::new(&fb);
        for i in 0..100u64 {
            let (v, out) = region.execute(|| {
                let v = counter.load_plain();
                counter.store_plain(v + 1);
                v
            });
            assert_eq!(v, i);
            assert!(out.attempts > 0 || out.used_fallback);
        }
        assert_eq!(counter.load_plain(), 100);
        assert_eq!(fb.load_plain(), 0, "fallback lock released");
    }

    #[test]
    fn concurrent_elision_loses_no_updates() {
        let fb = TxCell::new(0u64);
        let counter = TxCell::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (fb, counter) = (&fb, &counter);
                s.spawn(move || {
                    let region = HwRegion::new(fb);
                    for _ in 0..500 {
                        region.execute(|| {
                            let v = counter.load_plain();
                            counter.store_plain(v + 1);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load_plain(), 2_000);
    }

    #[test]
    fn xtest_reports_non_transactional_outside() {
        if rtm_supported() {
            assert!(!unsafe { xtest() });
        }
    }
}
