//! Word-sized transactional cells.
//!
//! Every shared mutable location in every tree is a [`TxCell`], a
//! `repr(transparent)` wrapper over an `AtomicU64`. Two design forces pick
//! this representation:
//!
//! * The paper's workload uses 8-byte keys and 8-byte values (§5.1), and
//!   all tree bookkeeping (counts, versions, bit vectors, node pointers)
//!   fits a machine word, so a single cell width covers everything.
//! * Conflict detection is *address based*: a cell's cache line is derived
//!   from its own address, so arrays of cells inside a node share lines
//!   exactly like the C++ layout the paper measured — false sharing is
//!   reproduced by construction, not simulated by a parameter.
//!
//! Cells offer two access families with different semantics:
//!
//! * **Transactional** — through [`Tx::read`](crate::ctx::Tx::read) /
//!   [`Tx::write`](crate::ctx::Tx::write): write-buffered, validated,
//!   abortable.
//! * **Direct** — [`TxCell::load_direct`] etc.: immediate, strongly atomic
//!   (TSX §2.1 "strong atomicity": a direct write to a line inside some
//!   transaction's footprint aborts that transaction — the engine's
//!   validation reproduces this). Used for the CCM bit vectors and advisory
//!   locks, which the algorithms manipulate *outside* HTM regions.
//!
//! A given cell should be written through exactly one family for the whole
//! program (reads may mix); the trees in this workspace follow that
//! discipline and it is asserted in debug builds of the engine.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::ctx::ThreadCtx;
use crate::line::LineId;

/// Types storable in a [`TxCell`]: anything losslessly convertible to a
/// 64-bit word.
pub trait TxWord: Copy {
    fn to_word(self) -> u64;
    fn from_word(w: u64) -> Self;
}

macro_rules! impl_txword_int {
    ($($t:ty),*) => {$(
        impl TxWord for $t {
            #[inline]
            fn to_word(self) -> u64 { self as u64 }
            #[inline]
            fn from_word(w: u64) -> Self { w as $t }
        }
    )*};
}
impl_txword_int!(u64, u32, u16, u8, usize, i64, i32);

impl TxWord for bool {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w != 0
    }
}

/// A word-sized shared cell participating in HTM conflict detection.
#[repr(transparent)]
pub struct TxCell<T: TxWord> {
    raw: AtomicU64,
    _marker: PhantomData<T>,
}

impl<T: TxWord> TxCell<T> {
    pub fn new(v: T) -> Self {
        TxCell {
            raw: AtomicU64::new(v.to_word()),
            _marker: PhantomData,
        }
    }

    /// The cache line this cell occupies — derived from its real address.
    #[inline]
    pub fn line(&self) -> LineId {
        LineId::of_ptr(self.raw_ptr())
    }

    #[inline]
    pub(crate) fn raw_ptr(&self) -> *const AtomicU64 {
        &self.raw as *const AtomicU64
    }

    #[inline]
    pub(crate) fn raw(&self) -> &AtomicU64 {
        &self.raw
    }

    /// Uninstrumented load. For single-threaded setup, assertions and
    /// statistics only — charges no cycles and records no footprint.
    #[inline]
    pub fn load_plain(&self) -> T {
        T::from_word(self.raw.load(Ordering::Acquire))
    }

    /// Uninstrumented store. For single-threaded setup only.
    #[inline]
    pub fn store_plain(&self, v: T) {
        self.raw.store(v.to_word(), Ordering::Release)
    }

    /// Direct (non-transactional) load: immediate, charged, recorded in the
    /// current episode's read footprint if one is open.
    #[inline]
    pub fn load_direct(&self, ctx: &mut ThreadCtx) -> T {
        T::from_word(ctx.direct_load(self.raw_ptr()))
    }

    /// Direct (non-transactional) store. Strongly atomic with respect to
    /// running transactions.
    #[inline]
    pub fn store_direct(&self, ctx: &mut ThreadCtx, v: T) {
        ctx.direct_store(self.raw_ptr(), v.to_word())
    }

    /// Direct compare-and-swap; returns whether the swap happened.
    #[inline]
    pub fn cas_direct(&self, ctx: &mut ThreadCtx, old: T, new: T) -> bool {
        ctx.direct_cas(self.raw_ptr(), old.to_word(), new.to_word())
    }

    /// Direct store that is *protocol-invisible*: charged and recorded in
    /// the current episode's footprint, but not published as a point write
    /// to the virtual conflict window. For writes whose observable value is
    /// unchanged for validating readers (e.g. clearing a version word's
    /// lock bit without bumping its counters): the cache line is
    /// invalidated physically, but an optimistic protocol validating the
    /// *value* sees nothing.
    #[inline]
    pub fn store_direct_quiet(&self, ctx: &mut ThreadCtx, v: T) {
        ctx.direct_store_quiet(self.raw_ptr(), v.to_word())
    }

    /// Quiet counterpart of [`TxCell::cas_direct`]; see
    /// [`TxCell::store_direct_quiet`].
    #[inline]
    pub fn cas_direct_quiet(&self, ctx: &mut ThreadCtx, old: T, new: T) -> bool {
        ctx.direct_cas_quiet(self.raw_ptr(), old.to_word(), new.to_word())
    }

    /// Direct fetch-or on the underlying word (bit-vector manipulation).
    #[inline]
    pub fn fetch_or_direct(&self, ctx: &mut ThreadCtx, bits: u64) -> u64 {
        ctx.direct_fetch_or(self.raw_ptr(), bits)
    }

    /// Direct fetch-and on the underlying word.
    #[inline]
    pub fn fetch_and_direct(&self, ctx: &mut ThreadCtx, bits: u64) -> u64 {
        ctx.direct_fetch_and(self.raw_ptr(), bits)
    }

    /// Direct fetch-add on the underlying word.
    #[inline]
    pub fn fetch_add_direct(&self, ctx: &mut ThreadCtx, n: u64) -> u64 {
        ctx.direct_fetch_add(self.raw_ptr(), n)
    }
}

impl<T: TxWord + std::fmt::Debug> std::fmt::Debug for TxCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxCell({:?})", self.load_plain())
    }
}

impl<T: TxWord + Default> Default for TxCell<T> {
    fn default() -> Self {
        TxCell::new(T::default())
    }
}

// Safety: the cell is just an atomic word; all shared access goes through
// atomics or the engine's validated protocols.
unsafe impl<T: TxWord> Send for TxCell<T> {}
unsafe impl<T: TxWord> Sync for TxCell<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        assert_eq!(u64::from_word(42u64.to_word()), 42);
        assert_eq!(u32::from_word(7u32.to_word()), 7);
        assert_eq!(i64::from_word((-3i64).to_word()), -3);
        assert!(bool::from_word(true.to_word()));
        assert!(!bool::from_word(false.to_word()));
    }

    #[test]
    fn plain_load_store() {
        let c = TxCell::new(11u64);
        assert_eq!(c.load_plain(), 11);
        c.store_plain(99);
        assert_eq!(c.load_plain(), 99);
    }

    #[test]
    fn cell_is_word_sized() {
        // repr(transparent) over AtomicU64: arrays of cells are contiguous,
        // so 8 consecutive cells share at most two cache lines — the layout
        // property the whole false-sharing analysis rests on.
        assert_eq!(std::mem::size_of::<TxCell<u64>>(), 8);
        let arr: [TxCell<u64>; 8] = Default::default();
        let distinct: std::collections::HashSet<_> = arr.iter().map(|c| c.line()).collect();
        assert!(distinct.len() <= 2);
    }

    #[test]
    fn adjacent_cells_share_lines() {
        let arr: Vec<TxCell<u64>> = (0..16).map(TxCell::new).collect();
        // At least one pair of neighbours must share a line.
        assert!((1..16).any(|i| arr[i].line() == arr[i - 1].line()));
    }
}
