//! The common key-value interface all trees in this workspace implement.
//!
//! The paper evaluates four systems (Euno-B+Tree, HTM-B+Tree, Masstree,
//! HTM-Masstree) under one YCSB-style client (§5.1). This trait is that
//! client's view: word keys and values (8 bytes each, as in the paper),
//! point gets/puts/deletes and an ordered range scan.

use crate::ctx::ThreadCtx;

/// Reserved value meaning "deleted tombstone"; user values must be below.
pub const TOMBSTONE: u64 = u64::MAX;
/// Reserved key sentinel for empty slots; user keys must be below.
pub const KEY_SENTINEL: u64 = u64::MAX;

/// A concurrent ordered map of `u64 → u64`.
pub trait ConcurrentMap: Send + Sync {
    /// Point lookup.
    fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64>;

    /// Insert or update; returns the previous value if the key existed.
    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Option<u64>;

    /// Logical delete; returns the previous value if the key existed.
    fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64>;

    /// Ordered range scan: append up to `count` live records with
    /// `key ≥ from` to `out`, in ascending key order. Returns the number
    /// appended.
    fn scan(
        &self,
        ctx: &mut ThreadCtx,
        from: u64,
        count: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> usize;

    /// Run one structural-maintenance pass (deferred rebalancing, garbage
    /// sweeps) and return how many structural changes it made. Maintenance
    /// must be a no-op on the abstract map contents. Trees without a
    /// maintenance concept keep the default.
    fn maintain(&self, _ctx: &mut ThreadCtx) -> u64 {
        0
    }

    /// Human-readable system name for benchmark tables.
    fn name(&self) -> &'static str;

    /// Memory accounting for the §5.7 experiment.
    fn memory(&self) -> MemoryReport {
        MemoryReport::default()
    }
}

/// Byte accounting per structure class, mirroring the §5.7 breakdown
/// (baseline structure vs. reserved keys vs. conflict-control module).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Bytes in tree nodes (keys, values, children, per-node headers).
    pub structural_bytes: usize,
    /// Bytes in conflict-control modules (mark + lock bit vectors).
    pub ccm_bytes: usize,
    /// Bytes currently held by transient reserved-key buffers.
    pub reserved_live_bytes: usize,
    /// High-water mark of transient reserved-key buffers.
    pub reserved_peak_bytes: usize,
    /// Cumulative bytes ever allocated for reserved-key buffers.
    pub reserved_cumulative_bytes: usize,
    /// Bytes of retired nodes awaiting their grace period (unlinked but
    /// not yet freed by the epoch collector).
    pub retired_pending_bytes: usize,
    /// Cumulative bytes actually freed by the epoch collector.
    pub reclaimed_bytes: usize,
}

impl MemoryReport {
    pub fn total_live(&self) -> usize {
        self.structural_bytes + self.ccm_bytes + self.reserved_live_bytes
    }

    /// Overhead of the Eunomia auxiliaries relative to the bare structure,
    /// as a fraction (the paper reports 2.2 %–7.6 %).
    pub fn overhead_fraction(&self) -> f64 {
        if self.structural_bytes == 0 {
            0.0
        } else {
            (self.ccm_bytes + self.reserved_peak_bytes) as f64 / self.structural_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_fraction_math() {
        let r = MemoryReport {
            structural_bytes: 1000,
            ccm_bytes: 30,
            reserved_live_bytes: 0,
            reserved_peak_bytes: 20,
            reserved_cumulative_bytes: 500,
            retired_pending_bytes: 64,
            reclaimed_bytes: 128,
        };
        assert!((r.overhead_fraction() - 0.05).abs() < 1e-12);
        assert_eq!(r.total_live(), 1030);
    }

    #[test]
    fn zero_structure_is_zero_overhead() {
        assert_eq!(MemoryReport::default().overhead_fraction(), 0.0);
    }
}
