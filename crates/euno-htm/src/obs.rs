//! Operation-history observer hooks.
//!
//! The correctness subsystem (`euno-check`) validates real-thread runs by
//! recording every client-level operation as an *invocation/response* pair
//! and replaying the history against a sequential model. The engine knows
//! nothing about trees or checkers — it only offers a per-thread hook:
//! a driver installs an [`OpObserver`] on its [`ThreadCtx`](crate::ThreadCtx)
//! and brackets each map operation with
//! [`observe_invoke`](crate::ThreadCtx::observe_invoke) /
//! [`observe_response`](crate::ThreadCtx::observe_response). With no
//! observer installed both calls are a branch and a return, so the hooks
//! can stay in harness code permanently.

/// The client-level operation kinds a history can contain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    Get,
    Put,
    Delete,
    Scan,
    /// A deferred-rebalance sweep — structurally significant but a no-op
    /// on the abstract map (checkers verify it *preserves* the state).
    Maintain,
}

/// The value an operation returned to the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpOutput {
    /// `get`/`put`/`delete`: the (previous) value, if any.
    Value(Option<u64>),
    /// `scan`: the records delivered, in delivery order.
    Scan(Vec<(u64, u64)>),
    /// `maintain` and other counters (merges performed).
    Count(u64),
}

/// Receives invocation/response events for one thread's operations.
///
/// Implementations are installed per [`ThreadCtx`](crate::ThreadCtx), so
/// they need no internal synchronization beyond what their own storage
/// requires; `Send` is required because contexts move onto OS threads.
pub trait OpObserver: Send {
    /// An operation is about to start. `key` is its target key (for scans,
    /// the range start) and `arg` its second argument (put value / scan
    /// count), 0 otherwise.
    fn on_invoke(&mut self, thread: u32, kind: OpKind, key: u64, arg: u64);

    /// The operation that the last `on_invoke` announced has returned.
    fn on_response(&mut self, thread: u32, output: OpOutput);
}
