//! Engine-wide shared state: execution mode, the NOrec sequence lock for
//! real-thread commits, and the virtual-time conflict bookkeeping
//! (committed-episode window, virtual lock table, hot-line map, line-class
//! registry).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use std::sync::{Mutex, RwLock};

use crate::abort::{ConflictInfo, ConflictKind};
use crate::cost::CostModel;
use crate::line::{LineClass, LineId, LineSet, CACHE_LINE_BYTES};

/// How transactions execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Real OS threads; NOrec-style software transactions (global sequence
    /// lock, value-based validation). Used by stress tests — genuinely
    /// concurrent and linearizable, but abort statistics reflect the STM,
    /// not TSX.
    Concurrent,
    /// Deterministic single-threaded virtual-time execution; conflicts
    /// derived from interval overlap × cache-line footprint intersection,
    /// faithfully mimicking TSX's line-granularity detection. Used by all
    /// paper-figure experiments.
    Virtual,
}

/// One committed episode visible to later overlapping episodes.
#[derive(Clone, Debug)]
pub struct EpisodeRecord {
    pub start: u64,
    pub end: u64,
    pub thread: u32,
    pub op_key: Option<u64>,
    pub reads: LineSet,
    pub writes: LineSet,
}

/// Write-recency record for one cache line.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LineHeat {
    pub end: u64,
    pub thread: u32,
    /// EWMA of the gap between consecutive writes (cycles); `u64::MAX`
    /// until a second write establishes a rate.
    pub gap_ewma: u64,
}

/// Virtual-mode shared state. Guarded by a mutex for `Send`/`Sync`, but in
/// virtual mode all access is from the single scheduler thread, so the lock
/// is never contended.
#[derive(Default)]
pub(crate) struct VirtState {
    /// Recently committed episodes, ordered by start time (execution order).
    window: VecDeque<EpisodeRecord>,
    /// Advisory-lock table: lock key → virtual time it is held until.
    locks: HashMap<u64, u64>,
    /// Per-line write heat: last writer end/thread plus an EWMA of the
    /// write interarrival gap. Drives both the cross-core line-transfer
    /// charge and the storm (write-rate) extrapolation.
    recent_writes: HashMap<u64, LineHeat>,
    /// Cycles of history to keep in `recent_writes` for hot-line charging.
    transfer_horizon: u64,
}

/// The engine runtime shared by all threads of one experiment.
///
/// Trees hold an `Arc<Runtime>`; per-thread handles are
/// [`ThreadCtx`](crate::ctx::ThreadCtx)s created via [`Runtime::thread`].
pub struct Runtime {
    mode: Mode,
    pub cost: CostModel,
    /// NOrec global sequence lock (even = stable, odd = commit in flight).
    pub(crate) seq: AtomicU64,
    /// Serializes NOrec commits.
    pub(crate) commit_lock: Mutex<()>,
    pub(crate) virt: Mutex<VirtState>,
    /// Line → data class, populated by trees at node allocation.
    classes: RwLock<HashMap<u64, LineClass>>,
    /// Object registry for trace attribution: `(base, len)` of registered
    /// objects (tree leaves), kept sorted by base for binary search.
    objects: RwLock<Vec<(u64, u64)>>,
    /// Monotonic source for thread ids handed out by [`Runtime::thread`].
    next_thread: AtomicU64,
}

impl Runtime {
    pub fn new(mode: Mode, cost: CostModel) -> Arc<Self> {
        Arc::new(Runtime {
            mode,
            cost,
            seq: AtomicU64::new(0),
            commit_lock: Mutex::new(()),
            virt: Mutex::new(VirtState {
                transfer_horizon: 20_000,
                ..VirtState::default()
            }),
            classes: RwLock::new(HashMap::new()),
            objects: RwLock::new(Vec::new()),
            next_thread: AtomicU64::new(0),
        })
    }

    /// Convenience: virtual-time runtime with the default cost model.
    pub fn new_virtual() -> Arc<Self> {
        Self::new(Mode::Virtual, CostModel::default())
    }

    /// Convenience: real-thread runtime with the default cost model.
    pub fn new_concurrent() -> Arc<Self> {
        Self::new(Mode::Concurrent, CostModel::default())
    }

    #[inline]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Create a per-thread execution handle with a deterministic RNG seed.
    pub fn thread(self: &Arc<Self>, seed: u64) -> crate::ctx::ThreadCtx {
        let id = self
            .next_thread
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed) as u32;
        crate::ctx::ThreadCtx::new(Arc::clone(self), id, seed)
    }

    // ----- line-class registry ---------------------------------------

    /// Tag every cache line overlapping `[addr, addr + bytes)` with `class`.
    /// Trees call this when allocating nodes so conflicts can be attributed
    /// to the paper's taxonomy buckets.
    pub fn register_region(&self, addr: usize, bytes: usize, class: LineClass) {
        if bytes == 0 {
            return;
        }
        let first = LineId::of_addr(addr).0;
        let last = LineId::of_addr(addr + bytes - 1).0;
        let mut map = self.classes.write().unwrap();
        for l in first..=last {
            map.insert(l, class);
        }
    }

    /// Convenience: register the memory occupied by a value.
    pub fn register_value<T>(&self, v: &T, class: LineClass) {
        self.register_region(v as *const T as usize, std::mem::size_of::<T>(), class);
    }

    pub fn class_of(&self, line: LineId) -> LineClass {
        self.classes
            .read()
            .unwrap()
            .get(&line.0)
            .copied()
            .unwrap_or(LineClass::Unknown)
    }

    /// Number of distinct registered lines (used to bound registry growth
    /// in tests).
    pub fn registered_lines(&self) -> usize {
        self.classes.read().unwrap().len()
    }

    // ----- object registry (trace attribution) -------------------------

    /// Register an object's memory range so the contention profiler can
    /// attribute address-carrying trace events (conflict lines, lock
    /// cells, CCM words) to it. Trees call this for each leaf alongside
    /// [`Runtime::register_region`].
    pub fn register_object(&self, base: usize, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let mut objs = self.objects.write().unwrap();
        let entry = (base as u64, bytes as u64);
        match objs.binary_search_by_key(&entry.0, |&(b, _)| b) {
            Ok(i) => objs[i] = entry, // re-registration (reused allocation)
            Err(i) => objs.insert(i, entry),
        }
    }

    /// Base address of the registered object containing `addr`, if any.
    pub fn object_base_of(&self, addr: u64) -> Option<u64> {
        let objs = self.objects.read().unwrap();
        let i = match objs.binary_search_by_key(&addr, |&(b, _)| b) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let (base, len) = objs[i];
        (addr < base + len).then_some(base)
    }

    /// Number of registered objects (observability/tests).
    pub fn registered_objects(&self) -> usize {
        self.objects.read().unwrap().len()
    }

    // ----- virtual-mode conflict window --------------------------------

    /// Check an episode's footprint against committed overlapping episodes.
    /// `check_reads_against_writes` only (optimistic reads) when
    /// `writes` is `None`.
    ///
    /// Returns the first collision found, classified.
    pub(crate) fn virt_check(
        &self,
        start: u64,
        reads: &LineSet,
        writes: Option<&LineSet>,
        my_key: Option<u64>,
    ) -> Option<ConflictInfo> {
        let virt = self.virt.lock().unwrap();
        for rec in virt.window.iter().rev() {
            if rec.end <= start {
                // Window is start-ordered, not end-ordered, so we cannot
                // break early; older records may still have larger ends.
                continue;
            }
            // Collision rules (TSX): my W ∩ their (R ∪ W), my R ∩ their W.
            let hit = if let Some(w) = writes {
                w.first_intersection(&rec.writes)
                    .or_else(|| w.first_intersection(&rec.reads))
                    .or_else(|| reads.first_intersection(&rec.writes))
            } else {
                reads.first_intersection(&rec.writes)
            };
            if let Some(line) = hit {
                let (other_key, other_thread) = (rec.op_key, rec.thread);
                drop(virt);
                let kind = ConflictKind::classify(self.class_of(line), my_key, other_key);
                return Some(ConflictInfo {
                    line,
                    kind,
                    other_thread: Some(other_thread),
                });
            }
        }
        None
    }

    /// Publish a committed episode and refresh the hot-line map.
    pub(crate) fn virt_commit(&self, rec: EpisodeRecord) {
        let mut virt = self.virt.lock().unwrap();
        for l in rec.writes.iter() {
            let heat = match virt.recent_writes.get(&l.0) {
                Some(prev) => {
                    let gap = rec.end.saturating_sub(prev.end).max(1);
                    let ewma = if prev.gap_ewma == u64::MAX {
                        gap
                    } else {
                        (3 * prev.gap_ewma + gap) / 4
                    };
                    LineHeat {
                        end: rec.end,
                        thread: rec.thread,
                        gap_ewma: ewma,
                    }
                }
                None => LineHeat {
                    end: rec.end,
                    thread: rec.thread,
                    gap_ewma: u64::MAX,
                },
            };
            virt.recent_writes.insert(l.0, heat);
        }
        // Opportunistic backstop pruning for drivers that never call
        // [`Runtime::virt_prune`] (ad-hoc tests, hand-rolled loops): any
        // future episode in a min-clock-ordered schedule starts no earlier
        // than this commit's start, so records ending a full safety margin
        // before it can never collide again. The scheduler still performs
        // exact pruning.
        if virt.window.len() >= 256 {
            let cutoff = rec.start.saturating_sub(200_000);
            while let Some(front) = virt.window.front() {
                if front.end <= cutoff {
                    virt.window.pop_front();
                } else {
                    break;
                }
            }
            if virt.window.len() >= 4096 {
                virt.window.retain(|r| r.end > cutoff);
            }
        }
        virt.window.push_back(rec);
    }

    /// Storm extrapolation: serial virtual execution can only see
    /// conflicts with *already committed* episodes, but on real hardware a
    /// transaction also races writers that are wall-clock concurrent yet
    /// execute later in the serial order. Model them statistically: if a
    /// line in the footprint was last written by another thread Δ cycles
    /// before this episode started, treat writes to it as a Poisson stream
    /// of rate 1/Δ, so an episode of duration L collides with probability
    /// `1 − exp(−L/Δ)`. Under a genuine storm Δ collapses and retries keep
    /// failing — reproducing TSX's retry livelock and the fallback convoy
    /// that drives the paper's throughput collapse; under low contention Δ
    /// is huge and the correction vanishes.
    pub(crate) fn virt_storm_check(
        &self,
        reads: &LineSet,
        writes: Option<&LineSet>,
        start: u64,
        duration: u64,
        me: u32,
        u: f64,
    ) -> Option<LineId> {
        let virt = self.virt.lock().unwrap();
        let l = duration.max(1) as f64;
        // Survival probability across all hot lines in the footprint: the
        // line's write process is modelled as Poisson with rate 1/EWMA-gap,
        // damped exponentially with the time since the last write so a
        // storm that has genuinely ended stops biting. A line with no rate
        // estimate yet falls back to the single-observation estimate
        // (gap ≈ time since that write).
        let mut log_survive = 0.0f64;
        let mut hottest: Option<(LineId, u64)> = None;
        let mut consider = |line: LineId, virt: &VirtState| {
            if let Some(heat) = virt.recent_writes.get(&line.0) {
                if heat.thread != me && heat.end <= start {
                    let since = (start - heat.end).max(1) as f64;
                    let lambda = if heat.gap_ewma == u64::MAX {
                        l / since
                    } else {
                        let gap = heat.gap_ewma.max(1) as f64;
                        (l / gap) * (-since / (20.0 * gap)).exp()
                    };
                    log_survive -= lambda;
                    if hottest.is_none_or(|(_, e)| heat.end > e) {
                        hottest = Some((line, heat.end));
                    }
                }
            }
        };
        for line in reads.iter() {
            consider(line, &virt);
        }
        if let Some(w) = writes {
            for line in w.iter() {
                consider(line, &virt);
            }
        }
        drop(virt);
        let p_abort = 1.0 - log_survive.exp();
        if p_abort > 0.0 && u < p_abort {
            hottest.map(|(line, _)| line)
        } else {
            None
        }
    }

    /// Record the write footprint of an *aborted* HTM attempt. Speculative
    /// stores issue request-for-ownership coherence traffic whether or not
    /// the transaction later commits, so aborted attempts keep contended
    /// lines hot — the positive feedback that turns contention into the
    /// retry storms the paper measures (60 aborts/op at θ = 0.99).
    pub(crate) fn virt_note_attempt_writes(&self, writes: &LineSet, end: u64, thread: u32) {
        if writes.is_empty() {
            return;
        }
        let mut virt = self.virt.lock().unwrap();
        for l in writes.iter() {
            let heat = match virt.recent_writes.get(&l.0) {
                Some(prev) => {
                    let gap = end.saturating_sub(prev.end).max(1);
                    let ewma = if prev.gap_ewma == u64::MAX {
                        gap
                    } else {
                        (3 * prev.gap_ewma + gap) / 4
                    };
                    LineHeat {
                        end,
                        thread,
                        gap_ewma: ewma,
                    }
                }
                None => LineHeat {
                    end,
                    thread,
                    gap_ewma: u64::MAX,
                },
            };
            virt.recent_writes.insert(l.0, heat);
        }
    }

    /// Cycles charged for cache-coherence transfers of recently-written hot
    /// lines (touched by another thread within the transfer horizon).
    pub(crate) fn virt_transfer_charge(
        &self,
        footprint: impl Iterator<Item = LineId>,
        now: u64,
        me: u32,
    ) -> u64 {
        let virt = self.virt.lock().unwrap();
        let mut hot = 0u64;
        for l in footprint {
            if let Some(heat) = virt.recent_writes.get(&l.0) {
                if heat.thread != me && heat.end + virt.transfer_horizon > now {
                    hot += 1;
                }
            }
        }
        hot * self.cost.line_transfer
    }

    /// Drop window entries and hot-line records that can no longer affect
    /// any episode starting at or after `before`. The scheduler calls this
    /// with the minimum pending start time.
    pub fn virt_prune(&self, before: u64) {
        let mut virt = self.virt.lock().unwrap();
        // Window is start-ordered; entries may have any end. Do a linear
        // retain occasionally — cheap because the window stays small.
        while let Some(front) = virt.window.front() {
            if front.end <= before {
                virt.window.pop_front();
            } else {
                break;
            }
        }
        if virt.window.len() > 4096 {
            virt.window.retain(|r| r.end > before);
        }
        if virt.recent_writes.len() > 1 << 16 {
            virt.recent_writes
                .retain(|_, heat| heat.end + 1_000_000 > before);
        }
        if virt.locks.len() > 1 << 14 {
            virt.locks.retain(|_, &mut until| until > before);
        }
    }

    /// Current number of live window entries (observability/tests).
    pub fn virt_window_len(&self) -> usize {
        self.virt.lock().unwrap().window.len()
    }

    // ----- virtual-mode advisory locks ---------------------------------

    /// Virtual time at which the lock `key` becomes free (≥ `now`).
    /// Public so downstream crates can build custom lock primitives (e.g.
    /// the CCM's single-word bit locks) with virtual-wait semantics.
    pub fn vlock_free_at(&self, key: u64, now: u64) -> u64 {
        self.virt
            .lock()
            .unwrap()
            .locks
            .get(&key)
            .copied()
            .unwrap_or(0)
            .max(now)
    }

    /// Record that `key` is held until `until`.
    pub fn vlock_hold(&self, key: u64, until: u64) {
        let mut virt = self.virt.lock().unwrap();
        let slot = virt.locks.entry(key).or_insert(0);
        *slot = (*slot).max(until);
    }

    /// Reset all engine state between experiment phases (keeps the class
    /// registry — the tree nodes are still alive).
    pub fn reset_dynamics(&self) {
        let mut virt = self.virt.lock().unwrap();
        virt.window.clear();
        virt.locks.clear();
        virt.recent_writes.clear();
    }
}

/// Derive a virtual-lock key from a cell address (one key per word).
#[inline]
pub fn lock_key_for_addr(addr: usize) -> u64 {
    addr as u64
}

/// Derive a virtual-lock key for a single bit of a bit-vector word, so the
/// CCM's per-slot lock bits are independent locks.
#[inline]
pub fn lock_key_for_bit(addr: usize, bit: u32) -> u64 {
    // Word addresses are 8-byte aligned, so the low 3 bits are free; bits
    // run 0..64, needing 6 bits. Shift the address up to make room.
    ((addr as u64) << 6) | (bit as u64 & 63)
}

/// Size sanity: a cache line holds 8 cells.
pub const CELLS_PER_LINE: usize = CACHE_LINE_BYTES / 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_classify() {
        let rt = Runtime::new_virtual();
        let buf = vec![0u8; 256];
        rt.register_region(buf.as_ptr() as usize, 256, LineClass::Record);
        let l = LineId::of_ptr(buf.as_ptr().wrapping_add(100));
        assert_eq!(rt.class_of(l), LineClass::Record);
        let unrelated = LineId(0xdead_beef);
        assert_eq!(rt.class_of(unrelated), LineClass::Unknown);
    }

    #[test]
    fn object_registry_resolves_containing_object() {
        let rt = Runtime::new_virtual();
        rt.register_object(0x1000, 256);
        rt.register_object(0x3000, 64);
        assert_eq!(rt.registered_objects(), 2);
        assert_eq!(rt.object_base_of(0x1000), Some(0x1000));
        assert_eq!(rt.object_base_of(0x10ff), Some(0x1000));
        assert_eq!(rt.object_base_of(0x1100), None);
        assert_eq!(rt.object_base_of(0x3020), Some(0x3000));
        assert_eq!(rt.object_base_of(0x0fff), None);
        // Re-registering a reused base replaces the entry.
        rt.register_object(0x1000, 64);
        assert_eq!(rt.registered_objects(), 2);
        assert_eq!(rt.object_base_of(0x10ff), None);
    }

    #[test]
    fn window_conflict_detection_basic() {
        let rt = Runtime::new_virtual();
        let reads: LineSet = [LineId(10)].into_iter().collect();
        let writes: LineSet = [LineId(20)].into_iter().collect();
        rt.virt_commit(EpisodeRecord {
            start: 0,
            end: 100,
            thread: 0,
            op_key: Some(7),
            reads,
            writes,
        });

        // Overlapping reader of line 20 collides with the committed write.
        let r: LineSet = [LineId(20)].into_iter().collect();
        let w = LineSet::new();
        let c = rt.virt_check(50, &r, Some(&w), Some(9));
        assert!(c.is_some());
        assert_eq!(c.unwrap().other_thread, Some(0));

        // Non-overlapping (starts after the episode ended): no conflict.
        assert!(rt.virt_check(100, &r, Some(&w), Some(9)).is_none());

        // Overlapping but disjoint lines: no conflict.
        let r2: LineSet = [LineId(99)].into_iter().collect();
        assert!(rt.virt_check(50, &r2, Some(&w), Some(9)).is_none());
    }

    #[test]
    fn writer_collides_with_committed_reader() {
        // TSX aborts a running reader when a writer intrudes; in the model
        // the later-executing writer takes the abort instead — same count.
        let rt = Runtime::new_virtual();
        rt.virt_commit(EpisodeRecord {
            start: 0,
            end: 100,
            thread: 1,
            op_key: None,
            reads: [LineId(5)].into_iter().collect(),
            writes: LineSet::new(),
        });
        let w: LineSet = [LineId(5)].into_iter().collect();
        let c = rt.virt_check(10, &LineSet::new(), Some(&w), None);
        assert!(c.is_some());
    }

    #[test]
    fn optimistic_read_only_checks_writes() {
        let rt = Runtime::new_virtual();
        rt.virt_commit(EpisodeRecord {
            start: 0,
            end: 100,
            thread: 1,
            op_key: None,
            reads: [LineId(5)].into_iter().collect(),
            writes: [LineId(6)].into_iter().collect(),
        });
        // Optimistic read of line 5 (their read): fine.
        let r: LineSet = [LineId(5)].into_iter().collect();
        assert!(rt.virt_check(10, &r, None, None).is_none());
        // Optimistic read of line 6 (their write): retry.
        let r: LineSet = [LineId(6)].into_iter().collect();
        assert!(rt.virt_check(10, &r, None, None).is_some());
    }

    #[test]
    fn prune_discards_expired_records() {
        let rt = Runtime::new_virtual();
        for i in 0..10 {
            rt.virt_commit(EpisodeRecord {
                start: i * 10,
                end: i * 10 + 10,
                thread: 0,
                op_key: None,
                reads: LineSet::new(),
                writes: [LineId(i)].into_iter().collect(),
            });
        }
        assert_eq!(rt.virt_window_len(), 10);
        rt.virt_prune(55);
        assert!(rt.virt_window_len() <= 5);
        // Remaining entries still catch conflicts.
        let w: LineSet = [LineId(9)].into_iter().collect();
        assert!(rt.virt_check(91, &LineSet::new(), Some(&w), None).is_some());
    }

    #[test]
    fn vlock_hold_and_query() {
        let rt = Runtime::new_virtual();
        assert_eq!(rt.vlock_free_at(42, 100), 100);
        rt.vlock_hold(42, 500);
        assert_eq!(rt.vlock_free_at(42, 100), 500);
        assert_eq!(rt.vlock_free_at(42, 900), 900);
        // Holds never shrink.
        rt.vlock_hold(42, 300);
        assert_eq!(rt.vlock_free_at(42, 100), 500);
    }

    #[test]
    fn transfer_charge_for_hot_lines() {
        let rt = Runtime::new_virtual();
        rt.virt_commit(EpisodeRecord {
            start: 0,
            end: 100,
            thread: 1,
            op_key: None,
            reads: LineSet::new(),
            writes: [LineId(3)].into_iter().collect(),
        });
        let cost = rt.cost.line_transfer;
        // Another thread touching the line soon after pays a transfer.
        let c = rt.virt_transfer_charge([LineId(3)].into_iter(), 150, 0);
        assert_eq!(c, cost);
        // The writer itself does not.
        let c = rt.virt_transfer_charge([LineId(3)].into_iter(), 150, 1);
        assert_eq!(c, 0);
        // Long after the horizon: cold again.
        let c = rt.virt_transfer_charge([LineId(3)].into_iter(), 10_000_000, 0);
        assert_eq!(c, 0);
    }

    #[test]
    fn bit_lock_keys_are_distinct() {
        let addr = 0x1000usize;
        let mut keys = std::collections::HashSet::new();
        for b in 0..64 {
            keys.insert(lock_key_for_bit(addr, b));
        }
        assert_eq!(keys.len(), 64);
        assert!(!keys.contains(&lock_key_for_bit(0x1008, 0)));
    }
}
