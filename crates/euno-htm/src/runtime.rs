//! Engine-wide shared state: execution mode, the NOrec sequence lock for
//! real-thread commits, and the virtual-time conflict bookkeeping
//! (committed-episode window, virtual lock table, hot-line map, line-class
//! registry).

use std::collections::VecDeque;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use std::sync::Mutex;

/// Multiply-based hasher for the engine's `u64`-keyed maps (line ids,
/// lock keys). The default SipHash costs more than the lookups it guards
/// on the episode hot path — several line-keyed probes per commit — and
/// HashDoS resistance buys nothing against keys derived from our own
/// allocations. One odd-constant multiply (Fibonacci hashing) spreads
/// sequential line ids across the high bits hashbrown uses for its
/// control tags. Deterministic, so map *behaviour* is reproducible — and
/// nothing schedule-visible iterates these maps, so bucket order never
/// reaches the run report either way.
#[derive(Default)]
struct FibHasher(u64);

impl Hasher for FibHasher {
    #[inline]
    fn write_u64(&mut self, n: u64) {
        // 2^64 / phi, forced odd — the classic Fibonacci multiplier.
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Not reached by u64 keys; fold bytes so any other key type still
        // hashes sanely.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type HashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FibHasher>>;

#[cfg(test)]
use crate::abort::{ConflictInfo, ConflictKind};
use crate::cost::CostModel;
use crate::line::{LineClass, LineId, LineSet, CACHE_LINE_BYTES};
use crate::registry::{ClassRegistry, ObjectRegistry};

/// How transactions execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Real OS threads; TL2-style software transactions (per-line version
    /// locks, read-version validation — see DESIGN.md §4.5) or, with the
    /// `hw-rtm` feature on a TSX CPU, real hardware transactions. Used by
    /// stress tests — genuinely concurrent and linearizable, but abort
    /// statistics reflect the STM/RTM, not the modeled TSX.
    Concurrent,
    /// Deterministic single-threaded virtual-time execution; conflicts
    /// derived from interval overlap × cache-line footprint intersection,
    /// faithfully mimicking TSX's line-granularity detection. Used by all
    /// paper-figure experiments.
    Virtual,
}

/// Which engine executes concurrent-mode transactions. The third axis of
/// the engine (virtual / software TL2 / hardware RTM): all three run the
/// same bodies behind the same staged executor ([`crate::exec`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConcurrentBackend {
    /// TL2-style software transactions: per-line version locks, buffered
    /// writes, read-version validation.
    #[default]
    Stm,
    /// Real Intel RTM lock-elision (`hw-rtm` feature, x86-64 with TSX).
    /// Degrades to [`ConcurrentBackend::Stm`] when unavailable — check
    /// [`Runtime::rtm_active`] for what actually runs.
    HwRtm,
}

/// Does this build *and* CPU support hardware RTM? `false` whenever the
/// `hw-rtm` feature is off, the target is not x86-64, or CPUID lacks TSX.
pub fn hw_rtm_available() -> bool {
    #[cfg(all(feature = "hw-rtm", target_arch = "x86_64"))]
    {
        crate::hw::rtm_supported()
    }
    #[cfg(not(all(feature = "hw-rtm", target_arch = "x86_64")))]
    {
        false
    }
}

/// One committed episode visible to later overlapping episodes.
#[derive(Clone, Debug)]
pub struct EpisodeRecord {
    pub start: u64,
    pub end: u64,
    pub thread: u32,
    pub op_key: Option<u64>,
    pub reads: LineSet,
    pub writes: LineSet,
}

/// Write-recency record for one cache line.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LineHeat {
    pub end: u64,
    pub thread: u32,
    /// EWMA of the gap between consecutive writes (cycles); `u64::MAX`
    /// until a second write establishes a rate.
    pub gap_ewma: u64,
}

/// A committed episode in the window, stamped with its commit sequence
/// number (the key the line index refers to).
struct WindowRec {
    seq: u64,
    rec: EpisodeRecord,
}

/// One committed access to a line: the episode's commit sequence number,
/// its end time, and the running maximum end over this entry and every
/// older one in the same list. Commit order is *not* end order (a
/// later-committing episode can end earlier), so a backward walk cannot
/// stop at the first `end <= start` — but it *can* stop once the prefix
/// maximum is `<= start`, because then no older access can overlap
/// either. That early exit is what keeps the no-conflict case O(1) even
/// while stale entries (records already pruned from the window) await the
/// amortized sweep.
#[derive(Clone, Copy)]
struct LineAccess {
    seq: u64,
    end: u64,
    max_end: u64,
}

/// Accesses kept inline before an [`AccessList`] spills to the heap. A
/// skewed workload touches a long tail of lines once or twice per window;
/// two inline slots mean those lines never allocate, while the few hot
/// lines (root, fallback word) spill once and then reuse the buffer.
const INLINE_ACCESSES: usize = 2;

/// Access history of one line, in ascending-seq order (commit order), so
/// a backward walk visits newest-first. Same inline/spill design as
/// [`LineSet`]: elements live in `spill` iff it is non-empty.
struct AccessList {
    inline_len: u8,
    inline: [LineAccess; INLINE_ACCESSES],
    spill: Vec<LineAccess>,
}

impl Default for AccessList {
    fn default() -> Self {
        AccessList {
            inline_len: 0,
            inline: [LineAccess {
                seq: 0,
                end: 0,
                max_end: 0,
            }; INLINE_ACCESSES],
            spill: Vec::new(),
        }
    }
}

impl AccessList {
    #[inline]
    fn as_slice(&self) -> &[LineAccess] {
        if self.spill.is_empty() {
            &self.inline[..self.inline_len as usize]
        } else {
            &self.spill
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.inline_len == 0 && self.spill.is_empty()
    }

    /// Append one access, maintaining the prefix-maximum end.
    fn push(&mut self, seq: u64, end: u64) {
        let max_end = self.as_slice().last().map_or(end, |a| a.max_end.max(end));
        let a = LineAccess { seq, end, max_end };
        if self.spill.is_empty() {
            let n = self.inline_len as usize;
            if n < INLINE_ACCESSES {
                self.inline[n] = a;
                self.inline_len += 1;
                return;
            }
            self.spill.reserve(INLINE_ACCESSES + 1);
            self.spill.extend_from_slice(&self.inline);
            self.inline_len = 0;
        }
        self.spill.push(a);
    }

    /// Drop accesses older than `min_seq`, rebuilding the prefix maxima
    /// (the retained suffix's stored maxima still cover removed entries —
    /// correct but loose, and tight maxima are what make the early exit
    /// bite). Keeps the spill buffer's capacity for reuse.
    fn sweep(&mut self, min_seq: u64) {
        if self.spill.is_empty() {
            let mut k = 0usize;
            for i in 0..self.inline_len as usize {
                if self.inline[i].seq >= min_seq {
                    self.inline[k] = self.inline[i];
                    k += 1;
                }
            }
            self.inline_len = k as u8;
            let mut running = 0u64;
            for a in &mut self.inline[..k] {
                running = running.max(a.end);
                a.max_end = running;
            }
        } else {
            self.spill.retain(|a| a.seq >= min_seq);
            let mut running = 0u64;
            for a in self.spill.iter_mut() {
                running = running.max(a.end);
                a.max_end = running;
            }
        }
    }
}

/// Inverted-index entry for one cache line: which committed episodes
/// wrote / read it.
#[derive(Default)]
struct LineIndexEntry {
    writers: AccessList,
    readers: AccessList,
}

/// Sweep the line index once this many entries refer to records already
/// removed from the window. Amortizes the O(index) sweep across at least
/// as many removals.
const INDEX_SWEEP_STALE: usize = 4096;

/// Virtual-mode shared state. Guarded by a mutex for `Send`/`Sync`, but in
/// virtual mode all access is from the single scheduler thread, so the lock
/// is never contended.
///
/// The conflict/storm/transfer logic lives in methods on this struct (not
/// on [`Runtime`]) so the episode-closing paths in `ctx.rs` can take the
/// mutex **once** per episode and run every check under the same guard —
/// the per-episode lock traffic used to be 3-4 acquisitions. The
/// `Runtime::virt_*` wrappers below keep the one-call-one-lock API for
/// tests and single-shot callers.
#[derive(Default)]
pub(crate) struct VirtState {
    /// Recently committed episodes, ordered by commit sequence number
    /// (which is also start-time order under min-clock scheduling).
    window: VecDeque<WindowRec>,
    /// Next commit sequence number.
    next_seq: u64,
    /// line → committed episodes touching it. Commit-time conflict
    /// detection probes only the episode's own footprint lines here —
    /// O(footprint × per-line history) instead of O(window) per check.
    line_index: HashMap<u64, LineIndexEntry>,
    /// Upper bound on index entries referring to removed records; a sweep
    /// runs once it passes [`INDEX_SWEEP_STALE`].
    index_stale: usize,
    /// Advisory-lock table: lock key → virtual time it is held until.
    locks: HashMap<u64, u64>,
    /// Per-line write heat: last writer end/thread plus an EWMA of the
    /// write interarrival gap. Drives both the cross-core line-transfer
    /// charge and the storm (write-rate) extrapolation.
    recent_writes: HashMap<u64, LineHeat>,
    /// Cycles of history to keep in `recent_writes` for hot-line charging.
    transfer_horizon: u64,
}

impl LineHeat {
    /// Fold one write at `end` by `thread` into the line's heat record.
    #[inline]
    fn update(prev: Option<LineHeat>, end: u64, thread: u32) -> LineHeat {
        match prev {
            Some(prev) => {
                let gap = end.saturating_sub(prev.end).max(1);
                let ewma = if prev.gap_ewma == u64::MAX {
                    gap
                } else {
                    (3 * prev.gap_ewma + gap) / 4
                };
                LineHeat {
                    end,
                    thread,
                    gap_ewma: ewma,
                }
            }
            None => LineHeat {
                end,
                thread,
                gap_ewma: u64::MAX,
            },
        }
    }
}

impl VirtState {
    /// Check an episode's footprint against committed overlapping
    /// episodes — `reads` against their writes only (optimistic reads)
    /// when `writes` is `None`, the full TSX rules otherwise. Returns the
    /// colliding line plus the other side's op key and thread —
    /// classification (which needs the class registry) stays with the
    /// caller.
    ///
    /// The conflicting record is the *newest* (largest-seq) overlapping
    /// record whose footprint intersects — exactly what the old
    /// newest-first window scan returned — found here by probing the line
    /// index with only the episode's own lines. The reported line within
    /// that record follows the priority order my W ∩ their W, then
    /// my W ∩ their R, then my R ∩ their W; within one priority level the
    /// lowest-[`LineRank`](crate::registry::LineRank) common line wins, so
    /// the report does not depend on heap addresses (see
    /// [`ClassRegistry::best_common_line`]).
    pub(crate) fn check(
        &self,
        start: u64,
        reads: &LineSet,
        writes: Option<&LineSet>,
        reg: &ClassRegistry,
    ) -> Option<(LineId, Option<u64>, u32)> {
        // `below` excludes candidates already found to be stale (their
        // record was pruned while its index entries survive) — a case the
        // scheduler's prune invariant (`start` never precedes the cutoff)
        // makes unreachable, but ad-hoc drivers can construct.
        let mut below = u64::MAX;
        loop {
            let mut best: Option<u64> = None;
            {
                // Newest overlapping entry in one per-line history list.
                let mut consider = |list: &[LineAccess]| {
                    for a in list.iter().rev() {
                        if a.max_end <= start {
                            break; // nothing here or older can overlap
                        }
                        if a.seq >= below {
                            continue;
                        }
                        if best.is_some_and(|b| a.seq <= b) {
                            break; // walking descending seq: no improvement left
                        }
                        if a.end > start {
                            best = Some(a.seq);
                            break;
                        }
                    }
                };
                // Collision rules (TSX): my W ∩ their (R ∪ W), my R ∩ their W.
                if let Some(w) = writes {
                    for l in w.iter() {
                        if let Some(e) = self.line_index.get(&l.0) {
                            consider(e.writers.as_slice());
                            consider(e.readers.as_slice());
                        }
                    }
                }
                for l in reads.iter() {
                    if let Some(e) = self.line_index.get(&l.0) {
                        consider(e.writers.as_slice());
                    }
                }
            }
            let cand = best?;
            match self.window.binary_search_by_key(&cand, |wr| wr.seq) {
                Ok(i) => {
                    let rec = &self.window[i].rec;
                    let line = if let Some(w) = writes {
                        reg.best_common_line(w, &rec.writes)
                            .or_else(|| reg.best_common_line(w, &rec.reads))
                            .or_else(|| reg.best_common_line(reads, &rec.writes))
                    } else {
                        reg.best_common_line(reads, &rec.writes)
                    };
                    let line = line.expect("indexed record must intersect the footprint");
                    return Some((line, rec.op_key, rec.thread));
                }
                // Stale index entry: the record was pruned. Skip it and
                // look for the next-newest candidate.
                Err(_) => below = cand,
            }
        }
    }

    /// Publish a committed episode and refresh the hot-line map; see
    /// [`Runtime::virt_commit`].
    pub(crate) fn commit(&mut self, rec: EpisodeRecord) {
        for l in rec.writes.iter() {
            let heat = LineHeat::update(self.recent_writes.get(&l.0).copied(), rec.end, rec.thread);
            self.recent_writes.insert(l.0, heat);
        }
        // Opportunistic backstop pruning for drivers that never call
        // [`Runtime::virt_prune`] (ad-hoc tests, hand-rolled loops): any
        // future episode in a min-clock-ordered schedule starts no earlier
        // than this commit's start, so records ending a full safety margin
        // before it can never collide again. The scheduler still performs
        // exact pruning.
        if self.window.len() >= 256 {
            let cutoff = rec.start.saturating_sub(200_000);
            self.drop_window_prefix(cutoff);
            if self.window.len() >= 4096 {
                self.drop_window_all(cutoff);
            }
            self.maybe_sweep_index();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        for l in rec.writes.iter() {
            self.line_index
                .entry(l.0)
                .or_default()
                .writers
                .push(seq, rec.end);
        }
        for l in rec.reads.iter() {
            self.line_index
                .entry(l.0)
                .or_default()
                .readers
                .push(seq, rec.end);
        }
        self.window.push_back(WindowRec { seq, rec });
    }

    /// Pop window records (oldest-first) whose end is at or before
    /// `cutoff`, stopping at the first survivor.
    fn drop_window_prefix(&mut self, cutoff: u64) {
        while let Some(front) = self.window.front() {
            if front.rec.end <= cutoff {
                let wr = self.window.pop_front().unwrap();
                self.index_stale += wr.rec.writes.len() + wr.rec.reads.len();
            } else {
                break;
            }
        }
    }

    /// Drop *every* window record ending at or before `cutoff` (the rare
    /// linear pass — pop_front alone can strand long-lived records behind
    /// a long-running front entry).
    fn drop_window_all(&mut self, cutoff: u64) {
        let stale = &mut self.index_stale;
        self.window.retain(|wr| {
            if wr.rec.end > cutoff {
                true
            } else {
                *stale += wr.rec.writes.len() + wr.rec.reads.len();
                false
            }
        });
    }

    /// Drop index entries whose records left the window, once enough have
    /// accumulated. Entries are in ascending-seq order, so everything
    /// before the oldest live seq is a removable prefix; entries for
    /// records removed out of the middle (by [`VirtState::drop_window_all`])
    /// linger until the live horizon passes them, which is harmless — the
    /// checker skips candidates it cannot resolve.
    fn maybe_sweep_index(&mut self) {
        if self.index_stale < INDEX_SWEEP_STALE {
            return;
        }
        let min_seq = self.window.front().map_or(self.next_seq, |wr| wr.seq);
        self.line_index.retain(|_, e| {
            e.writers.sweep(min_seq);
            e.readers.sweep(min_seq);
            !e.writers.is_empty() || !e.readers.is_empty()
        });
        self.index_stale = 0;
    }

    /// Exact pruning driven by the scheduler: drop everything that cannot
    /// affect any episode starting at or after `before`.
    pub(crate) fn prune(&mut self, before: u64) {
        self.drop_window_prefix(before);
        if self.window.len() > 4096 {
            self.drop_window_all(before);
        }
        self.maybe_sweep_index();
        if self.recent_writes.len() > 1 << 16 {
            self.recent_writes
                .retain(|_, heat| heat.end + 1_000_000 > before);
        }
        if self.locks.len() > 1 << 14 {
            self.locks.retain(|_, &mut until| until > before);
        }
    }

    /// Storm extrapolation: serial virtual execution can only see
    /// conflicts with *already committed* episodes, but on real hardware a
    /// transaction also races writers that are wall-clock concurrent yet
    /// execute later in the serial order. Model them statistically: if a
    /// line in the footprint was last written by another thread Δ cycles
    /// before this episode started, treat writes to it as a Poisson stream
    /// of rate 1/Δ, so an episode of duration L collides with probability
    /// `1 − exp(−L/Δ)`. Under a genuine storm Δ collapses and retries keep
    /// failing — reproducing TSX's retry livelock and the fallback convoy
    /// that drives the paper's throughput collapse; under low contention Δ
    /// is huge and the correction vanishes.
    #[allow(clippy::too_many_arguments)] // episode scalars, not a config bag
    pub(crate) fn storm_check(
        &self,
        reads: &LineSet,
        writes: Option<&LineSet>,
        start: u64,
        duration: u64,
        me: u32,
        u: f64,
        reg: &ClassRegistry,
    ) -> Option<LineId> {
        let l = duration.max(1) as f64;
        // Survival probability across all hot lines in the footprint: the
        // line's write process is modelled as Poisson with rate
        // 1/EWMA-gap, damped exponentially with the time since the last
        // write so a storm that has genuinely ended stops biting. A line
        // with no rate estimate yet falls back to the single-observation
        // estimate (gap ≈ time since that write).
        let mut log_survive = 0.0f64;
        // Most-recently-written footprint line; `heat.end` ties (lines
        // written by the same committed episode) break on [`LineRank`],
        // not address order, so the reported line is layout-independent.
        let mut hottest: Option<(LineId, u64, crate::registry::LineRank)> = None;
        let mut consider = |line: LineId, heat: Option<&LineHeat>| {
            if let Some(heat) = heat {
                if heat.thread != me && heat.end <= start {
                    let since = (start - heat.end).max(1) as f64;
                    let lambda = if heat.gap_ewma == u64::MAX {
                        l / since
                    } else {
                        let gap = heat.gap_ewma.max(1) as f64;
                        (l / gap) * (-since / (20.0 * gap)).exp()
                    };
                    log_survive -= lambda;
                    if hottest.is_none_or(|(_, e, _)| heat.end >= e) {
                        let rank = reg.rank_of(line);
                        if hottest.is_none_or(|(_, e, r)| heat.end > e || rank < r) {
                            hottest = Some((line, heat.end, rank));
                        }
                    }
                }
            }
        };
        for line in reads.iter() {
            consider(line, self.recent_writes.get(&line.0));
        }
        if let Some(w) = writes {
            for line in w.iter() {
                consider(line, self.recent_writes.get(&line.0));
            }
        }
        let p_abort = 1.0 - log_survive.exp();
        if p_abort > 0.0 && u < p_abort {
            hottest.map(|(line, _, _)| line)
        } else {
            None
        }
    }

    /// Heat contribution of an aborted attempt's speculative writes; see
    /// [`Runtime::virt_note_attempt_writes`].
    pub(crate) fn note_attempt_writes(&mut self, writes: &LineSet, end: u64, thread: u32) {
        for l in writes.iter() {
            let heat = LineHeat::update(self.recent_writes.get(&l.0).copied(), end, thread);
            self.recent_writes.insert(l.0, heat);
        }
    }

    /// Cycles charged for cache-coherence transfers of recently-written
    /// hot lines (touched by another thread within the transfer horizon).
    pub(crate) fn transfer_charge(
        &self,
        footprint: impl Iterator<Item = LineId>,
        now: u64,
        me: u32,
        line_transfer_cost: u64,
    ) -> u64 {
        let mut hot = 0u64;
        for l in footprint {
            if let Some(heat) = self.recent_writes.get(&l.0) {
                if heat.thread != me && heat.end + self.transfer_horizon > now {
                    hot += 1;
                }
            }
        }
        hot * line_transfer_cost
    }
}

/// The engine runtime shared by all threads of one experiment.
///
/// Trees hold an `Arc<Runtime>`; per-thread handles are
/// [`ThreadCtx`](crate::ctx::ThreadCtx)s created via [`Runtime::thread`].
pub struct Runtime {
    mode: Mode,
    pub cost: CostModel,
    /// TL2 global version clock (concurrent mode): monotone, bumped once
    /// per writing commit (software TL2 and hardware RTM alike), once per
    /// completed fallback section, and once per non-quiet direct write
    /// (whose line-version bump is anchored to the drawn value — see
    /// `ThreadCtx::bump_line_version`). Read versions
    /// (`EpisodeState::rv`) and optimistic-read snapshots are taken from
    /// it; commit write-versions are `fetch_add(1) + 1`. Invariant: no
    /// slot of `vlocks` ever carries a version above this clock.
    pub(crate) seq: AtomicU64,
    /// TL2 per-line version-lock table (concurrent mode; see
    /// [`crate::lock::VersionTable`] and DESIGN.md §4.5).
    pub(crate) vlocks: crate::lock::VersionTable,
    /// Number of writing commits currently between their clock bump and
    /// the end of their writeback. Episode-free optimistic readers take
    /// snapshots only while this is zero, and a fallback acquirer spins it
    /// to zero before issuing direct writes — the two places that must not
    /// observe a half-applied write buffer.
    pub(crate) wb_active: AtomicU64,
    /// Which engine executes concurrent-mode transactions (STM or real
    /// RTM); `Mode::Virtual` ignores it.
    backend: ConcurrentBackend,
    /// `backend == HwRtm` resolved against compile-time feature and
    /// runtime CPUID support, cached at construction.
    rtm_ok: bool,
    pub(crate) virt: Mutex<VirtState>,
    /// Line-range → data class, populated by trees at node allocation.
    /// Snapshot structure: classification lookups are lock-free. Also the
    /// source of deterministic line ranks for conflict-line selection,
    /// which is why the episode-closing paths in `ctx.rs` pass it into
    /// [`VirtState::check`] / [`VirtState::storm_check`].
    pub(crate) classes: ClassRegistry,
    /// Object registry for trace attribution: `(base, len)` of registered
    /// objects (tree leaves), sorted by base, lock-free lookups.
    objects: ObjectRegistry,
    /// Epoch collector for deferred node reclamation: trees pin around
    /// every operation ([`crate::ctx::ThreadCtx::epoch_enter`]) and hand
    /// unlinked nodes to their [`crate::arena::Arena`], which defers the
    /// free here. Charges no cycles and draws no engine randomness, so it
    /// is invisible to the virtual-time schedule.
    epoch: crate::epoch::Collector,
    /// Always-on metric registry (per-thread counter shards, gauges, CCM
    /// flip log). Like the epoch collector it charges no cycles and draws
    /// no engine randomness — invisible to the virtual-time schedule.
    metrics: euno_metrics::Registry,
    /// Monotonic source for thread ids handed out by [`Runtime::thread`].
    next_thread: AtomicU64,
}

impl Runtime {
    pub fn new(mode: Mode, cost: CostModel) -> Arc<Self> {
        Self::new_with_backend(mode, cost, ConcurrentBackend::Stm)
    }

    /// Construct a runtime with an explicit concurrent-mode backend.
    /// `HwRtm` requires the `hw-rtm` feature *and* CPU support; without
    /// either, the runtime silently degrades to the software TL2 path
    /// (the same way [`crate::hw::HwRegion`] falls back), so callers may
    /// request it unconditionally.
    pub fn new_with_backend(mode: Mode, cost: CostModel, backend: ConcurrentBackend) -> Arc<Self> {
        let rtm_ok =
            mode == Mode::Concurrent && backend == ConcurrentBackend::HwRtm && hw_rtm_available();
        Arc::new(Runtime {
            mode,
            cost,
            seq: AtomicU64::new(0),
            vlocks: crate::lock::VersionTable::new(),
            wb_active: AtomicU64::new(0),
            backend,
            rtm_ok,
            virt: Mutex::new(VirtState {
                transfer_horizon: 20_000,
                ..VirtState::default()
            }),
            classes: ClassRegistry::new(),
            objects: ObjectRegistry::new(),
            epoch: crate::epoch::Collector::new(),
            metrics: euno_metrics::Registry::new(),
            next_thread: AtomicU64::new(0),
        })
    }

    /// Convenience: virtual-time runtime with the default cost model.
    pub fn new_virtual() -> Arc<Self> {
        Self::new(Mode::Virtual, CostModel::default())
    }

    /// Convenience: real-thread runtime with the default cost model.
    pub fn new_concurrent() -> Arc<Self> {
        Self::new(Mode::Concurrent, CostModel::default())
    }

    /// Convenience: real-thread runtime on the hardware-RTM backend (TL2
    /// software path when the feature or the CPU is missing).
    pub fn new_concurrent_rtm() -> Arc<Self> {
        Self::new_with_backend(
            Mode::Concurrent,
            CostModel::default(),
            ConcurrentBackend::HwRtm,
        )
    }

    #[inline]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The configured concurrent-mode backend.
    #[inline]
    pub fn backend(&self) -> ConcurrentBackend {
        self.backend
    }

    /// Whether transactions on this runtime actually execute as hardware
    /// RTM transactions (feature compiled in, CPU supports it, and the
    /// backend requested it).
    #[inline]
    pub fn rtm_active(&self) -> bool {
        self.rtm_ok
    }

    /// Current version of the TL2 slot covering `addr`'s cache line
    /// (tests/diagnostics).
    pub fn line_version_of(&self, addr: usize) -> u64 {
        self.vlocks.line_version(LineId::of_addr(addr))
    }

    /// The epoch collector governing deferred node reclamation.
    #[inline]
    pub fn epoch(&self) -> &crate::epoch::Collector {
        &self.epoch
    }

    /// The metric registry: per-thread counter shards, epoch gauges and
    /// the CCM flip log. Disable *before* creating threads (e.g. for an
    /// overhead baseline) with `rt.metrics().set_enabled(false)` — threads
    /// registered while disabled carry no shard.
    #[inline]
    pub fn metrics(&self) -> &euno_metrics::Registry {
        &self.metrics
    }

    /// Refresh the epoch-reclamation gauges from the collector (samplers
    /// call this right before each snapshot).
    pub fn publish_epoch_gauges(&self) {
        self.metrics.set_gauge(
            euno_metrics::Gauge::EpochRetiredPending,
            self.epoch.pending() as u64,
        );
        self.metrics.set_gauge(
            euno_metrics::Gauge::EpochRetiredPendingBytes,
            self.epoch.pending_bytes() as u64,
        );
        self.metrics
            .set_gauge(euno_metrics::Gauge::EpochReclaimed, self.epoch.reclaimed());
    }

    /// Create a per-thread execution handle with a deterministic RNG seed.
    pub fn thread(self: &Arc<Self>, seed: u64) -> crate::ctx::ThreadCtx {
        let raw = self
            .next_thread
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Thread ids feed conflict attribution and trace records as u32;
        // a silent wrap would alias two threads' histories.
        let id = u32::try_from(raw)
            .expect("Runtime::thread: more than u32::MAX thread handles created on one runtime");
        crate::ctx::ThreadCtx::new(Arc::clone(self), id, seed)
    }

    // ----- line-class registry ---------------------------------------

    /// Tag every cache line overlapping `[addr, addr + bytes)` with `class`.
    /// Trees call this when allocating nodes so conflicts can be attributed
    /// to the paper's taxonomy buckets.
    pub fn register_region(&self, addr: usize, bytes: usize, class: LineClass) {
        if bytes == 0 {
            return;
        }
        let first = LineId::of_addr(addr).0;
        let last = LineId::of_addr(addr + bytes - 1).0;
        self.classes.register(first, last, class);
    }

    /// Convenience: register the memory occupied by a value.
    pub fn register_value<T>(&self, v: &T, class: LineClass) {
        self.register_region(v as *const T as usize, std::mem::size_of::<T>(), class);
    }

    #[inline]
    pub fn class_of(&self, line: LineId) -> LineClass {
        self.classes.class_of(line)
    }

    /// Number of distinct registered lines (used to bound registry growth
    /// in tests).
    pub fn registered_lines(&self) -> usize {
        self.classes.registered_lines()
    }

    // ----- object registry (trace attribution) -------------------------

    /// Register an object's memory range so the contention profiler can
    /// attribute address-carrying trace events (conflict lines, lock
    /// cells, CCM words) to it. Trees call this for each leaf alongside
    /// [`Runtime::register_region`].
    pub fn register_object(&self, base: usize, bytes: usize) {
        if bytes == 0 {
            return;
        }
        self.objects.register(base as u64, bytes as u64);
    }

    /// Base address of the registered object containing `addr`, if any.
    #[inline]
    pub fn object_base_of(&self, addr: u64) -> Option<u64> {
        self.objects.base_of(addr)
    }

    /// Number of registered objects (observability/tests).
    pub fn registered_objects(&self) -> usize {
        self.objects.len()
    }

    // ----- virtual-mode conflict window --------------------------------

    /// Check an episode's footprint against committed overlapping episodes.
    /// `check_reads_against_writes` only (optimistic reads) when
    /// `writes` is `None`.
    ///
    /// Returns the first collision found, classified. The episode-closing
    /// hot paths in `ctx.rs` call [`VirtState::check`] directly under
    /// their single lock acquisition; this wrapper serves the unit tests.
    #[cfg(test)]
    pub(crate) fn virt_check(
        &self,
        start: u64,
        reads: &LineSet,
        writes: Option<&LineSet>,
        my_key: Option<u64>,
    ) -> Option<ConflictInfo> {
        let virt = self.virt.lock().unwrap();
        let (line, other_key, other_thread) = virt.check(start, reads, writes, &self.classes)?;
        drop(virt);
        let kind = ConflictKind::classify(self.class_of(line), my_key, other_key);
        Some(ConflictInfo {
            line,
            kind,
            other_thread: Some(other_thread),
        })
    }

    /// Publish a committed episode and refresh the hot-line map.
    pub(crate) fn virt_commit(&self, rec: EpisodeRecord) {
        self.virt.lock().unwrap().commit(rec);
    }

    /// Record the write footprint of an *aborted* HTM attempt. Speculative
    /// stores issue request-for-ownership coherence traffic whether or not
    /// the transaction later commits, so aborted attempts keep contended
    /// lines hot — the positive feedback that turns contention into the
    /// retry storms the paper measures (60 aborts/op at θ = 0.99).
    pub(crate) fn virt_note_attempt_writes(&self, writes: &LineSet, end: u64, thread: u32) {
        if writes.is_empty() {
            return;
        }
        self.virt
            .lock()
            .unwrap()
            .note_attempt_writes(writes, end, thread);
    }

    /// Cycles charged for cache-coherence transfers of recently-written hot
    /// lines (touched by another thread within the transfer horizon).
    /// The episode-closing hot paths in `ctx.rs` call
    /// [`VirtState::transfer_charge`] directly under their single lock
    /// acquisition; this wrapper serves the unit tests.
    #[cfg(test)]
    pub(crate) fn virt_transfer_charge(
        &self,
        footprint: impl Iterator<Item = LineId>,
        now: u64,
        me: u32,
    ) -> u64 {
        self.virt
            .lock()
            .unwrap()
            .transfer_charge(footprint, now, me, self.cost.line_transfer)
    }

    /// Drop window entries and hot-line records that can no longer affect
    /// any episode starting at or after `before`. The scheduler calls this
    /// with the minimum pending start time.
    pub fn virt_prune(&self, before: u64) {
        self.virt.lock().unwrap().prune(before);
    }

    /// Current number of live window entries (observability/tests).
    pub fn virt_window_len(&self) -> usize {
        self.virt.lock().unwrap().window.len()
    }

    // ----- virtual-mode advisory locks ---------------------------------

    /// Virtual time at which the lock `key` becomes free (≥ `now`).
    /// Public so downstream crates can build custom lock primitives (e.g.
    /// the CCM's single-word bit locks) with virtual-wait semantics.
    pub fn vlock_free_at(&self, key: u64, now: u64) -> u64 {
        self.virt
            .lock()
            .unwrap()
            .locks
            .get(&key)
            .copied()
            .unwrap_or(0)
            .max(now)
    }

    /// Record that `key` is held until `until`.
    pub fn vlock_hold(&self, key: u64, until: u64) {
        let mut virt = self.virt.lock().unwrap();
        let slot = virt.locks.entry(key).or_insert(0);
        *slot = (*slot).max(until);
    }

    /// Reset all engine state between experiment phases (keeps the class
    /// registry — the tree nodes are still alive).
    pub fn reset_dynamics(&self) {
        let mut virt = self.virt.lock().unwrap();
        virt.window.clear();
        virt.line_index.clear();
        virt.index_stale = 0;
        virt.locks.clear();
        virt.recent_writes.clear();
        drop(virt);
        // Preload / warmup traffic must not leak into measured metric
        // totals; registered threads keep their shard handles.
        self.metrics.reset();
    }
}

/// Derive a virtual-lock key from a cell address (one key per word).
#[inline]
pub fn lock_key_for_addr(addr: usize) -> u64 {
    addr as u64
}

/// Derive a virtual-lock key for a single bit of a bit-vector word, so the
/// CCM's per-slot lock bits are independent locks.
#[inline]
pub fn lock_key_for_bit(addr: usize, bit: u32) -> u64 {
    // Word addresses are 8-byte aligned, so the low 3 bits are free; bits
    // run 0..64, needing 6 bits. Shift the address up to make room.
    ((addr as u64) << 6) | (bit as u64 & 63)
}

/// Size sanity: a cache line holds 8 cells.
pub const CELLS_PER_LINE: usize = CACHE_LINE_BYTES / 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_classify() {
        let rt = Runtime::new_virtual();
        let buf = vec![0u8; 256];
        rt.register_region(buf.as_ptr() as usize, 256, LineClass::Record);
        let l = LineId::of_ptr(buf.as_ptr().wrapping_add(100));
        assert_eq!(rt.class_of(l), LineClass::Record);
        let unrelated = LineId(0xdead_beef);
        assert_eq!(rt.class_of(unrelated), LineClass::Unknown);
    }

    #[test]
    fn object_registry_resolves_containing_object() {
        let rt = Runtime::new_virtual();
        rt.register_object(0x1000, 256);
        rt.register_object(0x3000, 64);
        assert_eq!(rt.registered_objects(), 2);
        assert_eq!(rt.object_base_of(0x1000), Some(0x1000));
        assert_eq!(rt.object_base_of(0x10ff), Some(0x1000));
        assert_eq!(rt.object_base_of(0x1100), None);
        assert_eq!(rt.object_base_of(0x3020), Some(0x3000));
        assert_eq!(rt.object_base_of(0x0fff), None);
        // Re-registering a reused base replaces the entry.
        rt.register_object(0x1000, 64);
        assert_eq!(rt.registered_objects(), 2);
        assert_eq!(rt.object_base_of(0x10ff), None);
    }

    #[test]
    fn window_conflict_detection_basic() {
        let rt = Runtime::new_virtual();
        let reads: LineSet = [LineId(10)].into_iter().collect();
        let writes: LineSet = [LineId(20)].into_iter().collect();
        rt.virt_commit(EpisodeRecord {
            start: 0,
            end: 100,
            thread: 0,
            op_key: Some(7),
            reads,
            writes,
        });

        // Overlapping reader of line 20 collides with the committed write.
        let r: LineSet = [LineId(20)].into_iter().collect();
        let w = LineSet::new();
        let c = rt.virt_check(50, &r, Some(&w), Some(9));
        assert!(c.is_some());
        assert_eq!(c.unwrap().other_thread, Some(0));

        // Non-overlapping (starts after the episode ended): no conflict.
        assert!(rt.virt_check(100, &r, Some(&w), Some(9)).is_none());

        // Overlapping but disjoint lines: no conflict.
        let r2: LineSet = [LineId(99)].into_iter().collect();
        assert!(rt.virt_check(50, &r2, Some(&w), Some(9)).is_none());
    }

    #[test]
    fn writer_collides_with_committed_reader() {
        // TSX aborts a running reader when a writer intrudes; in the model
        // the later-executing writer takes the abort instead — same count.
        let rt = Runtime::new_virtual();
        rt.virt_commit(EpisodeRecord {
            start: 0,
            end: 100,
            thread: 1,
            op_key: None,
            reads: [LineId(5)].into_iter().collect(),
            writes: LineSet::new(),
        });
        let w: LineSet = [LineId(5)].into_iter().collect();
        let c = rt.virt_check(10, &LineSet::new(), Some(&w), None);
        assert!(c.is_some());
    }

    #[test]
    fn optimistic_read_only_checks_writes() {
        let rt = Runtime::new_virtual();
        rt.virt_commit(EpisodeRecord {
            start: 0,
            end: 100,
            thread: 1,
            op_key: None,
            reads: [LineId(5)].into_iter().collect(),
            writes: [LineId(6)].into_iter().collect(),
        });
        // Optimistic read of line 5 (their read): fine.
        let r: LineSet = [LineId(5)].into_iter().collect();
        assert!(rt.virt_check(10, &r, None, None).is_none());
        // Optimistic read of line 6 (their write): retry.
        let r: LineSet = [LineId(6)].into_iter().collect();
        assert!(rt.virt_check(10, &r, None, None).is_some());
    }

    #[test]
    fn prune_discards_expired_records() {
        let rt = Runtime::new_virtual();
        for i in 0..10 {
            rt.virt_commit(EpisodeRecord {
                start: i * 10,
                end: i * 10 + 10,
                thread: 0,
                op_key: None,
                reads: LineSet::new(),
                writes: [LineId(i)].into_iter().collect(),
            });
        }
        assert_eq!(rt.virt_window_len(), 10);
        rt.virt_prune(55);
        assert!(rt.virt_window_len() <= 5);
        // Remaining entries still catch conflicts.
        let w: LineSet = [LineId(9)].into_iter().collect();
        assert!(rt.virt_check(91, &LineSet::new(), Some(&w), None).is_some());
    }

    #[test]
    fn vlock_hold_and_query() {
        let rt = Runtime::new_virtual();
        assert_eq!(rt.vlock_free_at(42, 100), 100);
        rt.vlock_hold(42, 500);
        assert_eq!(rt.vlock_free_at(42, 100), 500);
        assert_eq!(rt.vlock_free_at(42, 900), 900);
        // Holds never shrink.
        rt.vlock_hold(42, 300);
        assert_eq!(rt.vlock_free_at(42, 100), 500);
    }

    #[test]
    fn transfer_charge_for_hot_lines() {
        let rt = Runtime::new_virtual();
        rt.virt_commit(EpisodeRecord {
            start: 0,
            end: 100,
            thread: 1,
            op_key: None,
            reads: LineSet::new(),
            writes: [LineId(3)].into_iter().collect(),
        });
        let cost = rt.cost.line_transfer;
        // Another thread touching the line soon after pays a transfer.
        let c = rt.virt_transfer_charge([LineId(3)].into_iter(), 150, 0);
        assert_eq!(c, cost);
        // The writer itself does not.
        let c = rt.virt_transfer_charge([LineId(3)].into_iter(), 150, 1);
        assert_eq!(c, 0);
        // Long after the horizon: cold again.
        let c = rt.virt_transfer_charge([LineId(3)].into_iter(), 10_000_000, 0);
        assert_eq!(c, 0);
    }

    #[test]
    fn bit_lock_keys_are_distinct() {
        let addr = 0x1000usize;
        let mut keys = std::collections::HashSet::new();
        for b in 0..64 {
            keys.insert(lock_key_for_bit(addr, b));
        }
        assert_eq!(keys.len(), 64);
        assert!(!keys.contains(&lock_key_for_bit(0x1008, 0)));
    }
}
