//! Per-thread and aggregated execution statistics.
//!
//! The paper's analysis figures (2 and 9) plot *aborts per operation broken
//! down by cause*, and §2.3 quotes the fraction of CPU cycles wasted in
//! aborted attempts (">94 % of total CPU cycles when θ = 0.9"). Each
//! [`ThreadStats`](ThreadStats) tracks exactly those quantities; the
//! simulator merges them into an [`AggregateStats`] per run.

use crate::abort::{AbortCause, ConflictKind};

/// Counters kept by one (virtual or OS) thread. Plain integers — each
/// thread owns its counters; aggregation happens after the run.
///
/// Stage **counts** (attempts, commits, middles, fallbacks, backoffs, CCM
/// flips) live in the thread's `euno-metrics` shard, not here — read them
/// via [`ThreadCtx::exec_stages`](crate::ThreadCtx::exec_stages). This
/// struct keeps what the shard does not: cycle accounting, the abort-cause
/// taxonomy, and memory/CAS instruction proxies.
#[derive(Clone, Debug, Default)]
pub struct ThreadStats {
    /// Completed top-level operations (get/put/delete/scan).
    pub ops: u64,
    /// Aborts by cause.
    pub aborts: AbortCounts,
    /// Optimistic-episode retries (Masstree-style version-validation
    /// failures; not HTM aborts).
    pub optimistic_retries: u64,
    /// Total virtual cycles consumed by this thread.
    pub cycles_total: u64,
    /// Thread clock at the moment measurement began (after warmup); the
    /// harness subtracts it from the makespan so warmup cycles don't
    /// dilute throughput. `None` until the thread finishes warmup — the
    /// merge below must not treat "never warmed up" as "warmed up at
    /// cycle 0", or merging into a default accumulator silently disables
    /// the warmup subtraction.
    pub measure_start_cycles: Option<u64>,
    /// Virtual cycles consumed inside attempts that later aborted, plus
    /// rollback penalties and backoff — the "wasted work" of §2.3.
    pub cycles_wasted: u64,
    /// Virtual cycles spent waiting for advisory locks and the fallback lock.
    pub cycles_lock_wait: u64,
    /// Virtual cycles spent in retry backoff (also counted in
    /// `cycles_wasted`).
    pub cycles_backoff: u64,
    /// Virtual cycles spent waiting to acquire (or waiting out) the
    /// fallback lock specifically (also counted in `cycles_lock_wait`).
    pub cycles_fallback_wait: u64,
    /// Virtual cycles spent acquiring middle-path footprint slot locks
    /// (also counted in `cycles_lock_wait`).
    pub cycles_middle_wait: u64,
    /// Instrumented memory accesses (instruction-count proxy; used for the
    /// "Masstree executes ~2.1× the instructions" comparison in §5.2).
    pub mem_accesses: u64,
    /// Atomic CAS operations issued.
    pub cas_ops: u64,
    /// Fresh `EpisodeState` heap allocations (scratch-pool misses). The
    /// pool recycles one episode box per thread, so in steady state this
    /// stays at 1 — the zero-alloc test asserts exactly that.
    pub episode_pool_allocs: u64,
}

/// Abort tallies following the paper's taxonomy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AbortCounts {
    pub true_same_record: u64,
    pub false_different_record: u64,
    pub false_metadata: u64,
    pub false_structure: u64,
    pub unclassified_conflict: u64,
    pub capacity: u64,
    pub explicit: u64,
    pub spurious: u64,
    pub fallback_locked: u64,
}

impl AbortCounts {
    pub fn record(&mut self, cause: AbortCause) {
        match cause {
            AbortCause::Conflict(info) => match info.kind {
                ConflictKind::TrueSameRecord => self.true_same_record += 1,
                ConflictKind::FalseDifferentRecord => self.false_different_record += 1,
                ConflictKind::FalseMetadata => self.false_metadata += 1,
                ConflictKind::FalseStructure => self.false_structure += 1,
                ConflictKind::Unclassified => self.unclassified_conflict += 1,
            },
            AbortCause::Capacity => self.capacity += 1,
            AbortCause::Explicit(_) => self.explicit += 1,
            AbortCause::Spurious => self.spurious += 1,
            AbortCause::FallbackLocked => self.fallback_locked += 1,
        }
    }

    /// All conflict-caused aborts (the taxonomy of Figure 2).
    pub fn conflicts(&self) -> u64 {
        self.true_same_record
            + self.false_different_record
            + self.false_metadata
            + self.false_structure
            + self.unclassified_conflict
    }

    /// Conflicts attributable to the leaf level (record + metadata), as in
    /// the ">90 % of conflicts occur in the leaf level" measurement.
    pub fn leaf_level_conflicts(&self) -> u64 {
        self.conflicts() - self.false_structure
    }

    pub fn total(&self) -> u64 {
        self.conflicts() + self.capacity + self.explicit + self.spurious + self.fallback_locked
    }

    pub fn merge(&mut self, other: &AbortCounts) {
        self.true_same_record += other.true_same_record;
        self.false_different_record += other.false_different_record;
        self.false_metadata += other.false_metadata;
        self.false_structure += other.false_structure;
        self.unclassified_conflict += other.unclassified_conflict;
        self.capacity += other.capacity;
        self.explicit += other.explicit;
        self.spurious += other.spurious;
        self.fallback_locked += other.fallback_locked;
    }
}

impl ThreadStats {
    pub fn merge(&mut self, other: &ThreadStats) {
        self.ops += other.ops;
        self.aborts.merge(&other.aborts);
        self.optimistic_retries += other.optimistic_retries;
        self.cycles_total += other.cycles_total;
        // Earliest measurement start among threads that *have* one. A bare
        // `min` over plain u64s would let a `Default` accumulator (0) win
        // and erase every real warmup mark.
        self.measure_start_cycles = match (self.measure_start_cycles, other.measure_start_cycles) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.cycles_wasted += other.cycles_wasted;
        self.cycles_lock_wait += other.cycles_lock_wait;
        self.cycles_backoff += other.cycles_backoff;
        self.cycles_fallback_wait += other.cycles_fallback_wait;
        self.cycles_middle_wait += other.cycles_middle_wait;
        self.mem_accesses += other.mem_accesses;
        self.cas_ops += other.cas_ops;
        self.episode_pool_allocs += other.episode_pool_allocs;
    }

    /// HTM aborts per completed operation (Figures 2 and 9 y-axis).
    pub fn aborts_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.aborts.total() as f64 / self.ops as f64
        }
    }

    /// Fraction of cycles burnt in aborted attempts (§2.3: >94 % at θ=0.9).
    pub fn wasted_cycle_fraction(&self) -> f64 {
        if self.cycles_total == 0 {
            0.0
        } else {
            self.cycles_wasted as f64 / self.cycles_total as f64
        }
    }
}

/// Statistics merged across all threads of one run.
#[derive(Clone, Debug, Default)]
pub struct AggregateStats {
    pub per_run: ThreadStats,
    pub threads: usize,
}

impl AggregateStats {
    pub fn from_threads<'a>(stats: impl IntoIterator<Item = &'a ThreadStats>) -> Self {
        let mut agg = AggregateStats::default();
        for s in stats {
            agg.per_run.merge(s);
            agg.threads += 1;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abort::{ConflictInfo, ConflictKind};
    use crate::line::LineId;

    fn conflict(kind: ConflictKind) -> AbortCause {
        AbortCause::Conflict(ConflictInfo {
            line: LineId(1),
            kind,
            other_thread: None,
        })
    }

    #[test]
    fn record_routes_to_buckets() {
        let mut a = AbortCounts::default();
        a.record(conflict(ConflictKind::TrueSameRecord));
        a.record(conflict(ConflictKind::FalseDifferentRecord));
        a.record(conflict(ConflictKind::FalseDifferentRecord));
        a.record(conflict(ConflictKind::FalseMetadata));
        a.record(conflict(ConflictKind::FalseStructure));
        a.record(AbortCause::Capacity);
        a.record(AbortCause::Explicit(3));
        a.record(AbortCause::Spurious);
        a.record(AbortCause::FallbackLocked);
        assert_eq!(a.true_same_record, 1);
        assert_eq!(a.false_different_record, 2);
        assert_eq!(a.conflicts(), 5);
        assert_eq!(a.leaf_level_conflicts(), 4);
        assert_eq!(a.total(), 9);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ThreadStats {
            ops: 10,
            cycles_total: 1000,
            cycles_wasted: 400,
            ..Default::default()
        };
        let mut b = ThreadStats {
            ops: 5,
            cycles_total: 500,
            ..Default::default()
        };
        b.aborts.record(AbortCause::Capacity);
        a.merge(&b);
        assert_eq!(a.ops, 15);
        assert_eq!(a.cycles_total, 1500);
        assert_eq!(a.aborts.capacity, 1);
    }

    #[test]
    fn merge_into_default_keeps_measure_start() {
        // Regression: `min(0, t)` used to pin the merged measure start to
        // the Default accumulator's 0, disabling warmup subtraction.
        let warmed = ThreadStats {
            measure_start_cycles: Some(12_345),
            ..Default::default()
        };
        let mut acc = ThreadStats::default();
        acc.merge(&warmed);
        assert_eq!(acc.measure_start_cycles, Some(12_345));

        // Two warmed threads: earliest start wins.
        let earlier = ThreadStats {
            measure_start_cycles: Some(7_000),
            ..Default::default()
        };
        acc.merge(&earlier);
        assert_eq!(acc.measure_start_cycles, Some(7_000));

        // Merging an un-warmed thread must not erase the mark.
        acc.merge(&ThreadStats::default());
        assert_eq!(acc.measure_start_cycles, Some(7_000));
    }

    #[test]
    fn merge_adds_stage_cycle_counters() {
        let mut a = ThreadStats::default();
        let b = ThreadStats {
            cycles_backoff: 120,
            cycles_fallback_wait: 55,
            cycles_middle_wait: 17,
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.cycles_backoff, 240);
        assert_eq!(a.cycles_fallback_wait, 110);
        assert_eq!(a.cycles_middle_wait, 34);
    }

    #[test]
    fn derived_ratios() {
        let mut s = ThreadStats::default();
        assert_eq!(s.aborts_per_op(), 0.0);
        assert_eq!(s.wasted_cycle_fraction(), 0.0);
        s.ops = 4;
        s.aborts.record(AbortCause::Spurious);
        s.aborts.record(AbortCause::Spurious);
        s.cycles_total = 100;
        s.cycles_wasted = 94;
        assert!((s.aborts_per_op() - 0.5).abs() < 1e-12);
        assert!((s.wasted_cycle_fraction() - 0.94).abs() < 1e-12);
    }

    #[test]
    fn aggregate_from_threads() {
        let a = ThreadStats {
            ops: 3,
            ..Default::default()
        };
        let b = ThreadStats {
            ops: 7,
            ..Default::default()
        };
        let agg = AggregateStats::from_threads([&a, &b]);
        assert_eq!(agg.threads, 2);
        assert_eq!(agg.per_run.ops, 10);
    }
}
