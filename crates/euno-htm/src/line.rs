//! Cache-line addressing and footprint sets.
//!
//! Intel TSX detects conflicts at 64-byte cache-line granularity: two
//! transactions conflict when the write set of one overlaps the read or
//! write set of the other *measured in cache lines*, not in program-level
//! objects. Everything the Eunomia paper calls a *false conflict* (adjacent
//! records sharing a line, shared metadata words) falls out of this
//! granularity, so the engine tracks footprints as sets of [`LineId`]s
//! derived from the *real addresses* of the cells a transaction touches.

use std::fmt;

/// Size of a cache line on the modelled machine (Intel Haswell: 64 bytes).
pub const CACHE_LINE_BYTES: usize = 64;
const LINE_SHIFT: u32 = 6;

/// Identifier of one 64-byte cache line: the address divided by 64.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineId(pub u64);

impl LineId {
    /// The line containing `addr`.
    #[inline]
    pub fn of_addr(addr: usize) -> Self {
        LineId((addr as u64) >> LINE_SHIFT)
    }

    /// The line containing the referent of `p`.
    #[inline]
    pub fn of_ptr<T>(p: *const T) -> Self {
        Self::of_addr(p as usize)
    }

    /// First byte address covered by this line.
    #[inline]
    pub fn base_addr(self) -> u64 {
        self.0 << LINE_SHIFT
    }
}

impl fmt::Debug for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// What kind of program-level data lives on a line.
///
/// The Eunomia paper decomposes HTM aborts into *true conflicts* (same
/// record), *false conflicts from different records* (consecutive layout)
/// and *false conflicts from shared metadata* (§2.3, Figure 2). Trees
/// register each allocated region with a class so the simulator can
/// attribute every conflict to one of these buckets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LineClass {
    /// Key/value record storage (leaf slots).
    Record,
    /// Per-node bookkeeping: counts, versions, locks, parent pointers.
    Metadata,
    /// Interior index structure: internal-node keys and child pointers.
    Structure,
    /// Anything not registered (stack temporaries, engine-internal words).
    #[default]
    Unknown,
}

/// Lines stored inline before a [`LineSet`] spills to the heap. Sixteen
/// covers a deep tree traversal (root→leaf reads, the fallback-lock line,
/// a couple of metadata words) with room to spare; node splits and long
/// scans are the rare episodes that spill.
const INLINE_LINES: usize = 16;

/// A small, allocation-free set of cache lines.
///
/// Transactional footprints are tiny (a handful of lines for a tree
/// traversal, a few dozen for a node split), so the set keeps up to
/// [`INLINE_LINES`] entries in a sorted inline array — zero heap traffic
/// on the episode hot path — and spills to a sorted `Vec` only above
/// that. Either representation keeps iteration ordered and deterministic,
/// which matters because the virtual-time simulator must be bit-for-bit
/// reproducible for a given seed.
///
/// Invariant: elements live in `spill` iff `spill` is non-empty (a spilled
/// set that is `clear()`ed returns to the inline representation, keeping
/// the spill buffer's capacity for reuse).
#[derive(Clone)]
pub struct LineSet {
    inline_len: u8,
    inline: [LineId; INLINE_LINES],
    spill: Vec<LineId>,
}

impl LineSet {
    pub fn new() -> Self {
        LineSet {
            inline_len: 0,
            inline: [LineId(0); INLINE_LINES],
            spill: Vec::new(),
        }
    }

    /// A set that can hold `cap` lines before (re)allocating. Capacities
    /// up to [`INLINE_LINES`] cost nothing.
    pub fn with_capacity(cap: usize) -> Self {
        let mut s = Self::new();
        if cap > INLINE_LINES {
            s.spill.reserve(cap);
        }
        s
    }

    /// Insert a line; returns `true` if it was not present before.
    #[inline]
    pub fn insert(&mut self, line: LineId) -> bool {
        if self.spill.is_empty() {
            let n = self.inline_len as usize;
            match self.inline[..n].binary_search(&line) {
                Ok(_) => false,
                Err(pos) => {
                    if n < INLINE_LINES {
                        self.inline.copy_within(pos..n, pos + 1);
                        self.inline[pos] = line;
                        self.inline_len += 1;
                    } else {
                        // Spill: move the inline elements (still sorted)
                        // plus the newcomer into the vector.
                        self.spill.reserve(INLINE_LINES + 1);
                        self.spill.extend_from_slice(&self.inline[..pos]);
                        self.spill.push(line);
                        self.spill.extend_from_slice(&self.inline[pos..]);
                        self.inline_len = 0;
                    }
                    true
                }
            }
        } else {
            match self.spill.binary_search(&line) {
                Ok(_) => false,
                Err(pos) => {
                    self.spill.insert(pos, line);
                    true
                }
            }
        }
    }

    #[inline]
    pub fn contains(&self, line: LineId) -> bool {
        self.as_slice().binary_search(&line).is_ok()
    }

    #[inline]
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.inline_len as usize
        } else {
            self.spill.len()
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&mut self) {
        self.inline_len = 0;
        self.spill.clear();
    }

    pub fn iter(&self) -> impl Iterator<Item = LineId> + '_ {
        self.as_slice().iter().copied()
    }

    #[inline]
    pub fn as_slice(&self) -> &[LineId] {
        if self.spill.is_empty() {
            &self.inline[..self.inline_len as usize]
        } else {
            &self.spill
        }
    }

    /// First line present in both sets, if any. O(n + m) merge walk.
    pub fn first_intersection(&self, other: &LineSet) -> Option<LineId> {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (self.as_slice(), other.as_slice());
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return Some(a[i]),
            }
        }
        None
    }

    /// Whether the two sets share any line.
    #[inline]
    pub fn intersects(&self, other: &LineSet) -> bool {
        self.first_intersection(other).is_some()
    }

    /// All lines present in both sets, in line order. O(n + m) merge walk,
    /// no allocation.
    pub fn common_iter<'a>(&'a self, other: &'a LineSet) -> impl Iterator<Item = LineId> + 'a {
        let (a, b) = (self.as_slice(), other.as_slice());
        let (mut i, mut j) = (0, 0);
        std::iter::from_fn(move || {
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let l = a[i];
                        i += 1;
                        j += 1;
                        return Some(l);
                    }
                }
            }
            None
        })
    }
}

impl Default for LineSet {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LineSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl FromIterator<LineId> for LineSet {
    fn from_iter<I: IntoIterator<Item = LineId>>(iter: I) -> Self {
        let mut s = LineSet::new();
        for l in iter {
            s.insert(l);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_addr_maps_64_byte_blocks() {
        assert_eq!(LineId::of_addr(0), LineId(0));
        assert_eq!(LineId::of_addr(63), LineId(0));
        assert_eq!(LineId::of_addr(64), LineId(1));
        assert_eq!(LineId::of_addr(128 + 17), LineId(2));
    }

    #[test]
    fn adjacent_words_share_a_line() {
        // Two u64s 8 bytes apart land on the same line unless they straddle
        // a boundary — the root cause of the paper's false conflicts.
        let xs = [0u64; 8];
        let distinct: std::collections::HashSet<_> = xs.iter().map(|x| LineId::of_ptr(x)).collect();
        assert!(
            distinct.len() <= 2,
            "8 contiguous words span at most two lines, got {}",
            distinct.len()
        );
        // And at least one pair of neighbours must share a line.
        assert!((1..8).any(|i| LineId::of_ptr(&xs[i]) == LineId::of_ptr(&xs[i - 1])));
    }

    #[test]
    fn lineset_insert_dedup_and_order() {
        let mut s = LineSet::new();
        assert!(s.insert(LineId(5)));
        assert!(s.insert(LineId(1)));
        assert!(!s.insert(LineId(5)));
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![LineId(1), LineId(5)]);
        assert!(s.contains(LineId(1)));
        assert!(!s.contains(LineId(2)));
    }

    #[test]
    fn lineset_intersection() {
        let a: LineSet = [1u64, 3, 9].iter().map(|&x| LineId(x)).collect();
        let b: LineSet = [2u64, 9, 11].iter().map(|&x| LineId(x)).collect();
        let c: LineSet = [4u64, 6].iter().map(|&x| LineId(x)).collect();
        assert_eq!(a.first_intersection(&b), Some(LineId(9)));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!c.intersects(&a));
    }

    #[test]
    fn lineset_spills_and_returns_inline_after_clear() {
        let mut s = LineSet::new();
        // Descending inserts exercise the shift path; cross the inline
        // boundary by a few elements.
        let n = INLINE_LINES + 5;
        for i in (0..n).rev() {
            assert!(s.insert(LineId(i as u64 * 3)));
        }
        assert_eq!(s.len(), n);
        let v: Vec<_> = s.iter().collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]), "iteration stays sorted");
        for i in 0..n {
            assert!(s.contains(LineId(i as u64 * 3)));
            assert!(!s.insert(LineId(i as u64 * 3)), "dedup across the spill");
        }
        assert!(!s.contains(LineId(1)));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.as_slice(), &[] as &[LineId]);
        // Refills inline after the clear.
        assert!(s.insert(LineId(7)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.as_slice(), &[LineId(7)]);
    }

    #[test]
    fn lineset_intersection_across_representations() {
        // One spilled set, one inline set, intersecting in the middle.
        let big: LineSet = (0..INLINE_LINES as u64 + 8)
            .map(|x| LineId(x * 2))
            .collect();
        let small: LineSet = [LineId(9), LineId(20), LineId(33)].into_iter().collect();
        assert_eq!(big.first_intersection(&small), Some(LineId(20)));
        assert_eq!(small.first_intersection(&big), Some(LineId(20)));
    }

    #[test]
    fn empty_sets_never_intersect() {
        let e = LineSet::new();
        let a: LineSet = [1u64].iter().map(|&x| LineId(x)).collect();
        assert!(!e.intersects(&a));
        assert!(!a.intersects(&e));
        assert!(!e.intersects(&e));
        assert!(e.is_empty());
    }
}
