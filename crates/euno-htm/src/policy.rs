//! DBX-style retry policy for HTM regions.
//!
//! RTM gives no forward-progress guarantee, so every region needs a
//! lock-based fallback (§2.1). Following DBX and DrTM (cited in §4.2.1:
//! "We set different thresholds for different types of aborts"), the policy
//! keeps an independent budget per abort cause: conflicts are worth many
//! retries (the other transaction will finish), capacity aborts almost none
//! (the footprint won't shrink), explicit aborts none by default.

use crate::abort::AbortCause;

/// Per-cause retry budgets. A region falls back to the serialized path as
/// soon as any cause exceeds its budget.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Budget for footprint-conflict aborts.
    pub conflict_retries: u32,
    /// Budget for capacity aborts (deterministic overflow ⇒ keep tiny).
    pub capacity_retries: u32,
    /// Budget for explicit `XABORT`s.
    pub explicit_retries: u32,
    /// Budget for spurious/environmental aborts.
    pub spurious_retries: u32,
    /// Budget for aborts caused by the fallback lock being held.
    pub fallback_lock_retries: u32,
    /// Middle-path attempts granted after the speculative budgets are
    /// exhausted and before the region escalates to the global fallback.
    /// Each one re-runs the region as an HTM episode holding the region's
    /// advisory slot locks, so only same-slot contenders wait. Zero
    /// reproduces the classic two-path executor exactly.
    pub middle_retries: u32,
    /// Exponential backoff between retries.
    pub backoff: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            conflict_retries: 10,
            capacity_retries: 1,
            explicit_retries: 0,
            spurious_retries: 4,
            fallback_lock_retries: 2,
            middle_retries: 4,
            backoff: true,
        }
    }
}

impl RetryPolicy {
    /// An aggressive policy that practically never falls back — used to
    /// isolate abort behaviour in analysis experiments.
    pub fn persistent() -> Self {
        RetryPolicy {
            conflict_retries: 64,
            capacity_retries: 2,
            explicit_retries: 0,
            spurious_retries: 16,
            fallback_lock_retries: 8,
            middle_retries: 8,
            backoff: true,
        }
    }

    /// The same budgets with the middle path disabled — the classic
    /// two-path executor (ablation baseline).
    pub fn two_path(mut self) -> Self {
        self.middle_retries = 0;
        self
    }

    /// Whether the accumulated aborts exhaust any budget.
    pub fn exhausted(&self, counts: &RetryCounts) -> bool {
        counts.conflict > self.conflict_retries
            || counts.capacity > self.capacity_retries
            || counts.explicit > self.explicit_retries
            || counts.spurious > self.spurious_retries
            || counts.fallback_locked > self.fallback_lock_retries
    }
}

/// Abort tallies accumulated by one region execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetryCounts {
    pub conflict: u32,
    pub capacity: u32,
    pub explicit: u32,
    pub spurious: u32,
    pub fallback_locked: u32,
    /// Middle-path attempts granted to this region so far. Tracked apart
    /// from the per-cause tallies: a middle attempt's abort still bumps
    /// its cause above, but the escalation schedule is charged here.
    pub middle: u32,
}

impl RetryCounts {
    pub fn bump(&mut self, cause: AbortCause) {
        match cause {
            AbortCause::Conflict(_) => self.conflict += 1,
            AbortCause::Capacity => self.capacity += 1,
            AbortCause::Explicit(_) => self.explicit += 1,
            AbortCause::Spurious => self.spurious += 1,
            AbortCause::FallbackLocked => self.fallback_locked += 1,
        }
    }

    /// Total failed attempts so far (backoff exponent).
    pub fn total_attempted(&self) -> u32 {
        self.conflict + self.capacity + self.explicit + self.spurious + self.fallback_locked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abort::{ConflictInfo, ConflictKind};
    use crate::line::LineId;

    fn conflict() -> AbortCause {
        AbortCause::Conflict(ConflictInfo {
            line: LineId(0),
            kind: ConflictKind::Unclassified,
            other_thread: None,
        })
    }

    #[test]
    fn budgets_are_per_cause() {
        let p = RetryPolicy::default();
        let mut c = RetryCounts::default();
        for _ in 0..p.conflict_retries {
            c.bump(conflict());
            assert!(!p.exhausted(&c), "within budget at {c:?}");
        }
        c.bump(conflict());
        assert!(p.exhausted(&c));
    }

    #[test]
    fn capacity_budget_is_small() {
        let p = RetryPolicy::default();
        let mut c = RetryCounts::default();
        c.bump(AbortCause::Capacity);
        assert!(!p.exhausted(&c));
        c.bump(AbortCause::Capacity);
        assert!(p.exhausted(&c));
    }

    #[test]
    fn explicit_aborts_never_retry_by_default() {
        let p = RetryPolicy::default();
        let mut c = RetryCounts::default();
        c.bump(AbortCause::Explicit(3));
        assert!(p.exhausted(&c));
    }

    #[test]
    fn total_counts_every_cause() {
        let mut c = RetryCounts::default();
        c.bump(conflict());
        c.bump(AbortCause::Spurious);
        c.bump(AbortCause::FallbackLocked);
        assert_eq!(c.total_attempted(), 3);
    }
}
