//! Epoch-based reclamation (EBR) — in-tree, no external dependencies.
//!
//! Unlinked tree nodes cannot be freed immediately: an optimistic reader
//! (or a two-step traversal holding a leaf pointer between its upper and
//! lower regions) may still dereference them. The classic answer — the one
//! `scc::ebr` and crossbeam implement — is to defer the free until every
//! thread that could possibly hold the pointer has provably moved on:
//!
//! * A global epoch counter advances one step at a time.
//! * Each participating thread *pins* itself to the current epoch for the
//!   duration of an operation and unpins afterwards.
//! * The epoch only advances when every pinned participant has caught up
//!   to it, so pinned threads lag the global epoch by at most one.
//! * Garbage retired under epoch `e` is freed once the global epoch
//!   reaches `e + 2`: by then every thread pinned while the node was
//!   reachable has unpinned at least once, and nobody pinned afterwards
//!   can have found the (already unlinked) node.
//!
//! The retiring thread must itself be pinned when it calls
//! [`Collector::retire`] — that is what anchors the "reachable ⇒ some pin
//! predates the stamp" argument. Tree operations satisfy this by pinning
//! around every `ConcurrentMap` call.
//!
//! Reclamation runs no background thread: [`Collector::collect`] is called
//! opportunistically from unpinning threads (see
//! `ThreadCtx::epoch_exit`) and drains whatever has matured. The collector
//! performs no cycle charges and draws no engine randomness, so wiring it
//! into the virtual-time mode leaves the simulated schedule untouched.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One participant's published state: `0` when not pinned, else
/// `(epoch << 1) | 1`.
#[derive(Debug, Default)]
struct Slot {
    state: AtomicU64,
}

/// A deferred destructor with its byte weight (for memory accounting and
/// trace events).
struct Garbage {
    stamp: u64,
    bytes: usize,
    run: Box<dyn FnOnce() + Send>,
}

/// What one [`Collector::collect`] call accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectOutcome {
    /// The new global epoch, when this call advanced it.
    pub advanced_to: Option<u64>,
    /// Deferred destructors run by this call.
    pub freed: usize,
    /// Byte weight of the destructors run.
    pub freed_bytes: usize,
}

/// The shared reclamation state: global epoch, participant slots, and the
/// bag of retired-but-not-yet-freed garbage.
#[derive(Default)]
pub struct Collector {
    global: AtomicU64,
    slots: Mutex<Vec<Arc<Slot>>>,
    garbage: Mutex<Vec<Garbage>>,
    /// Destructors retired and not yet run.
    pending: AtomicUsize,
    /// Byte weight of `pending`.
    pending_bytes: AtomicUsize,
    /// Destructors run over the collector's lifetime.
    reclaimed: AtomicU64,
}

impl Collector {
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Register a new participant. Unpinned participants never block the
    /// epoch, so a slot that is simply abandoned (its `Participant`
    /// dropped without [`Collector::unregister`]) is harmless.
    pub fn register(&self) -> Participant {
        let slot = Arc::new(Slot::default());
        self.slots.lock().unwrap().push(Arc::clone(&slot));
        Participant { slot, depth: 0 }
    }

    /// Remove a participant's slot. The participant must be unpinned.
    pub fn unregister(&self, p: &Participant) {
        assert_eq!(p.depth, 0, "unregistering a pinned participant");
        self.slots
            .lock()
            .unwrap()
            .retain(|s| !Arc::ptr_eq(s, &p.slot));
    }

    /// Current global epoch (diagnostics / tests).
    pub fn global_epoch(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Deferred destructors retired but not yet run.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Byte weight of the pending destructors.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes.load(Ordering::SeqCst)
    }

    /// Destructors run over the collector's lifetime.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::SeqCst)
    }

    /// Defer `f` until two epochs have passed. **The caller must be
    /// pinned**: the grace-period argument assumes the unlink that made
    /// the garbage unreachable happened under the caller's current pin.
    /// `bytes` is the garbage's accounting weight (0 if untracked).
    pub fn retire(&self, bytes: usize, f: impl FnOnce() + Send + 'static) {
        let stamp = self.global.load(Ordering::SeqCst);
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.pending_bytes.fetch_add(bytes, Ordering::SeqCst);
        self.garbage.lock().unwrap().push(Garbage {
            stamp,
            bytes,
            run: Box::new(f),
        });
    }

    /// Advance the epoch if every pinned participant has caught up.
    fn try_advance(&self) -> Option<u64> {
        let e = self.global.load(Ordering::SeqCst);
        {
            let slots = self.slots.lock().unwrap();
            for s in slots.iter() {
                let st = s.state.load(Ordering::SeqCst);
                if st & 1 == 1 && (st >> 1) != e {
                    return None; // a pinned participant lags
                }
            }
        }
        self.global
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .ok()
            .map(|_| e + 1)
    }

    /// Try to advance the epoch, then run every deferred destructor whose
    /// grace period (two epochs) has elapsed. Idempotent: garbage is
    /// removed from the bag before its destructor runs, so repeated calls
    /// (from any thread) free each retired node exactly once.
    pub fn collect(&self) -> CollectOutcome {
        let advanced_to = self.try_advance();
        let cur = self.global.load(Ordering::SeqCst);
        let ready: Vec<Garbage> = {
            let mut bag = self.garbage.lock().unwrap();
            let mut ready = Vec::new();
            let mut i = 0;
            while i < bag.len() {
                if bag[i].stamp + 2 <= cur {
                    ready.push(bag.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            ready
        };
        // Destructors run outside the bag lock: a destructor is allowed to
        // retire further garbage (e.g. a node freeing an owned child).
        let mut out = CollectOutcome {
            advanced_to,
            freed: 0,
            freed_bytes: 0,
        };
        for g in ready {
            (g.run)();
            out.freed += 1;
            out.freed_bytes += g.bytes;
            self.pending.fetch_sub(1, Ordering::SeqCst);
            self.pending_bytes.fetch_sub(g.bytes, Ordering::SeqCst);
            self.reclaimed.fetch_add(1, Ordering::SeqCst);
        }
        out
    }

    /// Pin through a temporary anonymous participant — for chain walkers
    /// that have no `ThreadCtx` (audits, seqno snapshots).
    pub fn pin_scoped(&self) -> ScopedPin<'_> {
        let mut participant = self.register();
        participant.enter(self);
        ScopedPin {
            collector: self,
            participant,
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // No participant can be pinned (they borrow the collector), so
        // everything left is safe to free. Poison-tolerant so an unwinding
        // retire path cannot turn cleanup into an abort.
        let mut bag = self.garbage.lock().unwrap_or_else(|e| e.into_inner());
        let leftovers = std::mem::take(&mut *bag);
        drop(bag);
        for g in leftovers {
            (g.run)();
            self.reclaimed.fetch_add(1, Ordering::SeqCst);
        }
        self.pending.store(0, Ordering::SeqCst);
        self.pending_bytes.store(0, Ordering::SeqCst);
    }
}

/// A registered thread's handle: its published slot plus a nesting depth,
/// so re-entrant pins (an operation that triggers maintenance, which pins
/// again) collapse into one epoch announcement.
pub struct Participant {
    slot: Arc<Slot>,
    depth: u32,
}

impl Participant {
    /// Pin to the current epoch. Nested calls only bump the depth.
    pub fn enter(&mut self, c: &Collector) {
        if self.depth == 0 {
            // Publish-then-verify: if the global epoch moved between the
            // read and our store, re-announce — otherwise an advancing
            // thread may have already skipped over this slot and freed
            // garbage this pin was supposed to protect.
            loop {
                let e = c.global.load(Ordering::SeqCst);
                self.slot.state.store((e << 1) | 1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if c.global.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        self.depth += 1;
    }

    /// Undo one [`Participant::enter`]; the outermost exit unpins.
    pub fn exit(&mut self) {
        debug_assert!(self.depth > 0, "epoch exit without a matching enter");
        self.depth -= 1;
        if self.depth == 0 {
            self.slot.state.store(0, Ordering::Release);
        }
    }

    /// Whether this participant currently holds a pin.
    pub fn pinned(&self) -> bool {
        self.depth > 0
    }
}

/// RAII pin for ctx-less callers; unregisters its temporary slot on drop.
pub struct ScopedPin<'a> {
    collector: &'a Collector,
    participant: Participant,
}

impl Drop for ScopedPin<'_> {
    fn drop(&mut self) {
        self.participant.exit();
        self.collector.unregister(&self.participant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn flag_retire(c: &Collector, freed: &Arc<AtomicU32>) {
        let f = Arc::clone(freed);
        c.retire(64, move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn nothing_frees_while_an_old_pin_is_held() {
        let c = Collector::new();
        let mut reader = c.register();
        let mut writer = c.register();
        let freed = Arc::new(AtomicU32::new(0));

        reader.enter(&c); // pinned at epoch e
        writer.enter(&c);
        flag_retire(&c, &freed);
        writer.exit();

        // However hard we try, the reader's pin blocks the second advance.
        for _ in 0..10 {
            c.collect();
        }
        assert_eq!(freed.load(Ordering::SeqCst), 0);
        assert_eq!(c.pending(), 1);
        assert_eq!(c.pending_bytes(), 64);

        reader.exit();
        c.collect();
        c.collect();
        assert_eq!(freed.load(Ordering::SeqCst), 1);
        assert_eq!(c.pending(), 0);
        assert_eq!(c.pending_bytes(), 0);
        assert_eq!(c.reclaimed(), 1);
    }

    #[test]
    fn unpinned_participants_never_block_advance() {
        let c = Collector::new();
        let _idle = c.register();
        let mut w = c.register();
        let freed = Arc::new(AtomicU32::new(0));
        w.enter(&c);
        flag_retire(&c, &freed);
        w.exit();
        c.collect();
        c.collect();
        assert_eq!(freed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn collect_is_idempotent_per_retired_node() {
        let c = Collector::new();
        let mut w = c.register();
        let freed = Arc::new(AtomicU32::new(0));
        w.enter(&c);
        for _ in 0..5 {
            flag_retire(&c, &freed);
        }
        w.exit();
        for _ in 0..8 {
            c.collect(); // far more calls than epochs needed
        }
        assert_eq!(freed.load(Ordering::SeqCst), 5, "each node freed once");
        assert_eq!(c.reclaimed(), 5);
    }

    #[test]
    fn nested_pins_collapse_into_one() {
        let c = Collector::new();
        let mut p = c.register();
        p.enter(&c);
        p.enter(&c); // e.g. maintenance inside an operation
        assert!(p.pinned());
        p.exit();
        assert!(p.pinned(), "inner exit must not unpin");
        p.exit();
        assert!(!p.pinned());
    }

    #[test]
    fn collector_drop_frees_leftovers_exactly_once() {
        let freed = Arc::new(AtomicU32::new(0));
        {
            let c = Collector::new();
            let mut w = c.register();
            w.enter(&c);
            flag_retire(&c, &freed);
            w.exit();
            // No collect: the garbage is still pending at drop.
        }
        assert_eq!(freed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scoped_pin_blocks_and_unblocks() {
        let c = Collector::new();
        let freed = Arc::new(AtomicU32::new(0));
        {
            let _pin = c.pin_scoped();
            let mut w = c.register();
            w.enter(&c);
            flag_retire(&c, &freed);
            w.exit();
            for _ in 0..6 {
                c.collect();
            }
            assert_eq!(freed.load(Ordering::SeqCst), 0);
        }
        c.collect();
        c.collect();
        assert_eq!(freed.load(Ordering::SeqCst), 1);
        // The temporary slot unregistered itself.
        assert_eq!(c.slots.lock().unwrap().len(), 1);
    }
}
