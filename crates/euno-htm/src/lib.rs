//! # euno-htm — a software HTM engine with TSX-like semantics
//!
//! The substrate for the Eunomia reproduction (Wang et al., *Eunomia:
//! Scaling Concurrent Search Trees under Contention Using HTM*, PPoPP
//! 2017). The paper's experiments run on Intel RTM hardware; this crate
//! recreates the behaviours the paper's analysis depends on in software so
//! the full evaluation can run anywhere:
//!
//! * **Cache-line-granularity conflict detection.** Footprints are sets of
//!   real 64-byte line addresses ([`line`]), so false sharing between
//!   adjacent records and shared metadata — the paper's dominant abort
//!   source — emerges from the actual memory layout.
//! * **TSX abort semantics.** Conflict / capacity / explicit / spurious
//!   abort codes ([`abort`]), bounded read/write sets, lock-subscribing
//!   fallback with per-cause retry budgets ([`policy`]).
//! * **Three engine backends.** A deterministic virtual-time mode where
//!   transactions occupy intervals of a cycle-charged clock ([`cost`])
//!   and conflict when overlapping intervals have colliding footprints —
//!   the mode every figure of the paper is regenerated under (the host
//!   has no 20-core TSX machine); real-thread software transactions
//!   (TL2-style per-line version locks, [`lock::VersionTable`]) for
//!   stress-testing correctness at wall-clock speed; and, with the
//!   `hw-rtm` feature on a TSX CPU, genuine RTM lock-elision behind the
//!   same staged executor ([`runtime::ConcurrentBackend`]).
//!
//! ## Quick example
//!
//! ```
//! use euno_htm::{Runtime, RetryPolicy, TxCell};
//!
//! let rt = Runtime::new_virtual();
//! let mut ctx = rt.thread(42);
//! let fallback = TxCell::new(0u64);
//! let counter = TxCell::new(0u64);
//!
//! let out = ctx.htm_execute(&fallback, &RetryPolicy::default(), |tx| {
//!     let v = tx.read(&counter)?;
//!     tx.write(&counter, v + 1)?;
//!     Ok(v)
//! });
//! assert_eq!(out.value, 0);
//! assert_eq!(counter.load_plain(), 1);
//! ```

pub mod abort;
pub mod arena;
pub mod cost;
pub mod ctx;
pub mod epoch;
pub mod exec;
#[cfg(all(feature = "hw-rtm", target_arch = "x86_64"))]
pub mod hw;
pub mod line;
pub mod lock;
pub mod map;
pub mod obs;
pub mod policy;
pub(crate) mod registry;
pub mod runtime;
pub mod stats;
pub mod word;

pub use abort::{AbortCause, ConflictInfo, ConflictKind, TxResult};
pub use arena::{Arena, TransientBytes};
pub use cost::CostModel;
pub use ctx::{EpisodeKind, ThreadCtx, Tx};
pub use epoch::{CollectOutcome, Collector, Participant, ScopedPin};
pub use exec::{
    AdaptiveBudget, AggressivePolicy, DbxPolicy, Decision, ExecObserver, ExecOutcome, Executor,
    Path, RetryStrategy, StatsObserver,
};
pub use line::{LineClass, LineId, LineSet, CACHE_LINE_BYTES};
pub use lock::{
    acquire_mask_blocking, release_mask, slot_for_key, AdvisoryLock, AtomicBitVector,
    BitLockVector, ControlBlock, Footprint, SlotLocks, SpinBackoff, VersionTable,
    MAX_FOOTPRINT_SLOTS,
};
pub use map::{ConcurrentMap, MemoryReport, KEY_SENTINEL, TOMBSTONE};
pub use obs::{OpKind, OpObserver, OpOutput};
pub use policy::{RetryCounts, RetryPolicy};
pub use runtime::{hw_rtm_available, ConcurrentBackend, Mode, Runtime};
pub use stats::{AbortCounts, AggregateStats, ThreadStats};
pub use word::{TxCell, TxWord};

// Trace-layer types, re-exported so downstream crates can install ring
// buffers and build profiles without depending on euno-trace directly.
pub use euno_trace::{codes as trace_codes, Event, EventKind, ThreadTrace, TraceBuf};

/// The metrics crate, re-exported whole so engine consumers can name
/// counters ([`euno_metrics::Counter`]) without a direct dependency.
pub use euno_metrics;
