//! Commit-path ABA regression: per-line *version* validation must abort a
//! reader whose logged line was retired, reclaimed, reused, and rewritten
//! with byte-identical contents.
//!
//! The predecessor NOrec commit path validated reads by *value*: a reader
//! re-read each logged cell and compared bytes. Epoch reclamation broke
//! that soundness argument — a leaf retired through the collector can be
//! freed and its allocation reused while a reader still holds the old
//! value in its log, and a writer storing the *same* bytes into the new
//! occupant makes stale validation pass (classic ABA). TL2-style per-line
//! versions close the hole: any commit to the line bumps its version
//! word, so the reader's `(line, version)` entry mismatches no matter
//! what bytes landed there.
//!
//! The choreography below forces exactly that interleaving with real
//! threads and channels:
//!
//! 1. Reader opens a transaction and reads `node.cell` (value 42),
//!    logging the line's version.
//! 2. Writer retires the node through the epoch collector, collects until
//!    the backing `Box` is actually freed, and re-allocates until the
//!    allocator hands the same address back.
//! 3. Writer transactionally stores **42** — stale-but-equal bytes — into
//!    the reused cell, and a flag into a second always-fresh cell.
//! 4. Reader resumes and reads the flag cell: its version is newer than
//!    the snapshot, which triggers read-set revalidation, which sees the
//!    reused line's bumped version and aborts the attempt.
//!
//! Value validation would have re-read 42 == 42 and committed on the
//! first attempt; version validation needs a second attempt. The assert
//! on `attempts == 2` is the regression gate.

use std::sync::mpsc;

use euno_htm::{Arena, RetryPolicy, Runtime, TxCell};

/// The reclaimed-and-reused payload. Plain `TxCell` so the reallocation
/// has the same size class as the retired node (the allocator reuses the
/// chunk immediately in practice; the test bounds the attempts).
struct Node {
    cell: TxCell<u64>,
}

const STALE_VALUE: u64 = 42;
const REUSE_TRIES: usize = 10_000;

#[repr(align(64))]
struct Padded(TxCell<u64>);

#[test]
fn reader_aborts_on_reused_line_with_equal_bytes() {
    let rt = Runtime::new_concurrent();
    let arena: Arena<Node> = Arena::new();
    let flag = Padded(TxCell::new(0u64));
    let fb = TxCell::new(0u64);

    let node = arena.alloc(Node {
        cell: TxCell::new(STALE_VALUE),
    });
    let node_addr = node as *const Node as usize;

    // reader -> writer: "I logged the line"; writer -> reader: "I
    // committed into the reused line" (false = reuse failed, bail out).
    let (logged_tx, logged_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<bool>();

    std::thread::scope(|s| {
        let (rt_ref, arena_ref, flag_ref, fb_ref) = (&rt, &arena, &flag, &fb);
        let writer = s.spawn(move || {
            let (rt, arena, flag, fb) = (rt_ref, arena_ref, flag_ref, fb_ref);
            let mut ctx = rt.thread(2);
            logged_rx.recv().unwrap();

            // Retire the node (pinned, per the grace-period contract) and
            // drain the collector until the deferred free has run. The
            // reader holds no pin — its open transaction is exactly the
            // hazard window the version table must cover.
            ctx.epoch_enter();
            assert!(arena.retire(rt.epoch(), node_addr as *const Node));
            ctx.epoch_exit();
            let mut spins = 0;
            while rt.epoch().reclaimed() == 0 {
                rt.epoch().collect();
                spins += 1;
                assert!(spins < 64, "collector never freed the retired node");
            }

            // Hammer the allocator until the freed chunk is reused. Keep
            // the misses alive so retrying does not just cycle one chunk.
            let mut _misses = Vec::new();
            let mut reused = None;
            for _ in 0..REUSE_TRIES {
                let n = arena.alloc(Node {
                    cell: TxCell::new(0),
                });
                if n as *const Node as usize == node_addr {
                    reused = Some(n);
                    break;
                }
                _misses.push(n as *const Node as usize);
            }
            let Some(new_node) = reused else {
                done_tx.send(false).unwrap();
                return;
            };

            // The ABA store: byte-identical contents into the reused
            // line, plus a fresh flag the reader will look at next.
            ctx.htm_execute(fb, &RetryPolicy::default(), |tx| {
                tx.write(&new_node.cell, STALE_VALUE)?;
                tx.write(&flag.0, 1)
            });
            done_tx.send(true).unwrap();
        });

        let mut ctx = rt.thread(1);
        let mut attempt = 0u32;
        let mut reuse_ok = true;
        let out = ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
            attempt += 1;
            if attempt == 1 {
                // Log the doomed line, then hold the transaction open
                // across the retire/reclaim/reuse/rewrite sequence.
                let v = tx.read(unsafe { &(*(node_addr as *const Node)).cell })?;
                assert_eq!(v, STALE_VALUE);
                logged_tx.send(()).unwrap();
                reuse_ok = done_rx.recv().unwrap();
                if !reuse_ok {
                    // Allocator never reused the address: nothing to
                    // assert, finish quietly.
                    return Ok(0);
                }
            }
            // Newer-version read forces read-set revalidation: on attempt
            // 1 the logged (reused) line fails it; attempt 2 is clean.
            tx.read(&flag.0)
        });
        writer.join().unwrap();

        if !reuse_ok {
            eprintln!("skipped: allocator never reused the retired node's address");
            return;
        }
        assert_eq!(out.value, 1, "reader must observe the committed flag");
        assert_eq!(
            out.attempts, 2,
            "version validation must abort the first attempt; value \
             validation would have passed it (ABA)"
        );
        assert!(
            ctx.stats.aborts.total() >= 1,
            "the aborted attempt must be tallied"
        );
    });
}
