//! Property tests for the decide stage: the per-cause retry budgets and
//! the [`RetryStrategy`] implementations built on them.
//!
//! Offline environment — no proptest; each property is driven by a seeded
//! [`SmallRng`] sweep over randomized budgets and abort sequences, so
//! failures reproduce deterministically.

use euno_htm::{
    AbortCause, AdaptiveBudget, AggressivePolicy, ConflictInfo, ConflictKind, DbxPolicy, Decision,
    LineId, Path, RetryCounts, RetryPolicy, RetryStrategy,
};
use euno_rng::{Rng, SmallRng};

fn conflict() -> AbortCause {
    AbortCause::Conflict(ConflictInfo {
        line: LineId(0),
        kind: ConflictKind::Unclassified,
        other_thread: None,
    })
}

/// All five causes, for random sequencing.
fn cause(i: u64) -> AbortCause {
    match i % 5 {
        0 => conflict(),
        1 => AbortCause::Capacity,
        2 => AbortCause::Explicit(7),
        3 => AbortCause::Spurious,
        _ => AbortCause::FallbackLocked,
    }
}

fn random_policy(rng: &mut SmallRng) -> RetryPolicy {
    RetryPolicy {
        conflict_retries: rng.gen_range(0..20u32),
        capacity_retries: rng.gen_range(0..4u32),
        explicit_retries: rng.gen_range(0..3u32),
        spurious_retries: rng.gen_range(0..8u32),
        fallback_lock_retries: rng.gen_range(0..6u32),
        middle_retries: rng.gen_range(0..5u32),
        backoff: rng.gen_range(0..2u32) == 0,
    }
}

fn budget_for(p: &RetryPolicy, c: AbortCause) -> u32 {
    match c {
        AbortCause::Conflict(_) => p.conflict_retries,
        AbortCause::Capacity => p.capacity_retries,
        AbortCause::Explicit(_) => p.explicit_retries,
        AbortCause::Spurious => p.spurious_retries,
        AbortCause::FallbackLocked => p.fallback_lock_retries,
    }
}

/// A budget of N means exactly N retries: the policy is not exhausted at N
/// aborts of one cause and is exhausted at N + 1, for every cause, under
/// randomized budgets.
#[test]
fn budget_exactly_exhausted_at_boundary() {
    let mut rng = SmallRng::seed_from_u64(0xB0D1);
    for case in 0..200u64 {
        let p = random_policy(&mut rng);
        for ci in 0..5u64 {
            let c = cause(ci);
            let budget = budget_for(&p, c);
            let mut counts = RetryCounts::default();
            for _ in 0..budget {
                counts.bump(c);
            }
            assert!(
                !p.exhausted(&counts),
                "case {case}: within budget must not exhaust ({c:?}, {counts:?})"
            );
            assert_eq!(
                p.decide(&counts, c),
                Decision::Retry { backoff: p.backoff },
                "case {case}: decide must retry exactly at the budget"
            );
            counts.bump(c);
            assert!(
                p.exhausted(&counts),
                "case {case}: budget + 1 must exhaust ({c:?})"
            );
            // Exhaustion escalates: first through the middle grants, then
            // to the serialized fallback.
            while counts.middle < p.middle_retries {
                assert_eq!(p.decide(&counts, c), Decision::Middle);
                counts.middle += 1;
            }
            assert_eq!(p.decide(&counts, c), Decision::Fallback);
        }
    }
}

/// The budgets are independent: spending the whole fallback-lock budget
/// never consumes conflict headroom, and vice versa — only the cause whose
/// own tally crosses its own budget flips the verdict.
#[test]
fn fallback_locked_and_conflict_budgets_are_independent() {
    let mut rng = SmallRng::seed_from_u64(0xFBC0);
    for _ in 0..200 {
        let p = random_policy(&mut rng);
        let mut counts = RetryCounts::default();
        for _ in 0..p.fallback_lock_retries {
            counts.bump(AbortCause::FallbackLocked);
        }
        for _ in 0..p.conflict_retries {
            counts.bump(conflict());
        }
        // Both tallies sit exactly at their budgets: still not exhausted,
        // even though the combined total may dwarf either budget alone.
        assert!(!p.exhausted(&counts), "at-budget on two causes: {counts:?}");
        let mut over_fb = counts;
        over_fb.bump(AbortCause::FallbackLocked);
        assert!(p.exhausted(&over_fb));
        let mut over_cf = counts;
        over_cf.bump(conflict());
        assert!(p.exhausted(&over_cf));
    }
}

/// Randomized abort sequences: `exhausted` is exactly the per-cause
/// comparison (no hidden coupling), and it is monotone — once exhausted,
/// further aborts never un-exhaust it.
#[test]
fn exhaustion_matches_model_and_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x5E0);
    for _ in 0..300 {
        let p = random_policy(&mut rng);
        let mut counts = RetryCounts::default();
        let mut was_exhausted = false;
        for _ in 0..rng.gen_range(1..40u32) {
            counts.bump(cause(rng.gen_range(0..5u64)));
            let model = counts.conflict > p.conflict_retries
                || counts.capacity > p.capacity_retries
                || counts.explicit > p.explicit_retries
                || counts.spurious > p.spurious_retries
                || counts.fallback_locked > p.fallback_lock_retries;
            assert_eq!(p.exhausted(&counts), model);
            if was_exhausted {
                assert!(p.exhausted(&counts), "exhaustion must be monotone");
            }
            was_exhausted = p.exhausted(&counts);
        }
    }
}

/// The backoff exponent (`total_attempted`) grows by exactly one per abort
/// regardless of cause, so the executor's exponential backoff doubles per
/// failed attempt, never jumps.
#[test]
fn backoff_exponent_grows_one_per_abort() {
    let mut rng = SmallRng::seed_from_u64(0xBAC0FF);
    for _ in 0..200 {
        let mut counts = RetryCounts::default();
        let n = rng.gen_range(1..64u32);
        for i in 0..n {
            assert_eq!(counts.total_attempted(), i);
            counts.bump(cause(rng.gen_range(0..5u64)));
        }
        assert_eq!(counts.total_attempted(), n);
        assert_eq!(
            counts.total_attempted(),
            counts.conflict
                + counts.capacity
                + counts.explicit
                + counts.spurious
                + counts.fallback_locked
        );
    }
}

/// `DbxPolicy` is the named form of the raw budgets: identical decisions on
/// every reachable (counts, cause) pair.
#[test]
fn dbx_policy_matches_raw_budgets() {
    let mut rng = SmallRng::seed_from_u64(0xDB0);
    for _ in 0..200 {
        let budgets = random_policy(&mut rng);
        let dbx = DbxPolicy {
            budgets: budgets.clone(),
        };
        let mut counts = RetryCounts::default();
        for _ in 0..rng.gen_range(1..40u32) {
            let c = cause(rng.gen_range(0..5u64));
            counts.bump(c);
            assert_eq!(dbx.decide(&counts, c), budgets.decide(&counts, c));
        }
    }
    assert_eq!(DbxPolicy::default().name(), "dbx");
}

/// The aggressive strategy dominates the default: wherever the default
/// budgets still retry, so does `AggressivePolicy` — it only ever falls
/// back strictly later.
#[test]
fn aggressive_retries_at_least_as_long_as_default() {
    let mut rng = SmallRng::seed_from_u64(0xA66);
    let default = RetryPolicy::default();
    let aggressive = AggressivePolicy::default();
    for _ in 0..300 {
        let mut counts = RetryCounts::default();
        for _ in 0..rng.gen_range(1..80u32) {
            let c = cause(rng.gen_range(0..5u64));
            counts.bump(c);
            if default.decide(&counts, c) == (Decision::Retry { backoff: true }) {
                assert_ne!(
                    aggressive.decide(&counts, c),
                    Decision::Fallback,
                    "aggressive fell back where the default still retries: {counts:?}"
                );
            }
        }
    }
}

/// The adaptive controller's conflict budget always stays within
/// [1, 64] — whatever feedback it receives, however extreme.
#[test]
fn adaptive_budget_stays_in_bounds() {
    let mut rng = SmallRng::seed_from_u64(0xADA0);
    for _ in 0..20 {
        let a = AdaptiveBudget::new(random_policy(&mut rng)).with_window(16);
        for _ in 0..2_000 {
            let fb = rng.gen_range(0..2u32) == 0;
            a.observe_region(
                rng.gen_range(1..8u32),
                if fb { Path::Fallback } else { Path::Htm },
            );
            let b = a.conflict_budget();
            assert!((1..=64).contains(&b), "budget {b} out of bounds");
        }
    }
}

/// Direction of adaptation: sustained fallback storms shrink the conflict
/// budget; sustained clean speculation grows it (up to the cap).
#[test]
fn adaptive_budget_tracks_fallback_rate() {
    let a = AdaptiveBudget::default().with_window(32);
    let start = a.conflict_budget();
    for _ in 0..256 {
        a.observe_region(4, Path::Fallback); // 100 % fallback
    }
    let shrunk = a.conflict_budget();
    assert!(
        shrunk < start,
        "all-fallback windows must shrink the budget ({start} -> {shrunk})"
    );
    for _ in 0..1_024 {
        a.observe_region(1, Path::Htm); // 0 % fallback
    }
    let grown = a.conflict_budget();
    assert!(
        grown > shrunk,
        "all-clean windows must grow the budget ({shrunk} -> {grown})"
    );
}

/// Adaptive decisions agree with a plain budget policy configured with the
/// controller's current conflict budget — adaptation changes *when* the
/// decision flips, never the decision rule itself.
#[test]
fn adaptive_decide_equals_snapshot_of_current_budget() {
    let mut rng = SmallRng::seed_from_u64(0xADA1);
    let a = AdaptiveBudget::default().with_window(8);
    for _ in 0..500 {
        // Random feedback nudges the controller around.
        let fb = rng.gen_range(0..3u32) == 0;
        a.observe_region(
            rng.gen_range(1..6u32),
            if fb { Path::Fallback } else { Path::Htm },
        );
        let snapshot = RetryPolicy {
            conflict_retries: a.conflict_budget(),
            ..Default::default()
        };
        let mut counts = RetryCounts::default();
        for _ in 0..rng.gen_range(1..20u32) {
            let c = cause(rng.gen_range(0..5u64));
            counts.bump(c);
            assert_eq!(a.decide(&counts, c), snapshot.decide(&counts, c));
        }
    }
}
