//! Property tests for middle-path footprints: sorted-slot acquisition
//! over a [`BitLockVector`] must be deadlock-free and must never acquire
//! the same slot bit twice.
//!
//! Offline environment — no proptest; each property is driven by a seeded
//! [`SmallRng`] sweep over randomized slot sets, so failures reproduce
//! deterministically. The deadlock property runs real threads over a
//! concurrent runtime with every thread taking randomly overlapping
//! footprints in a loop; sorted acquisition order means the test
//! terminates, while any ordering bug would hang it (the harness
//! timeout is the detector).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use euno_htm::{BitLockVector, Footprint, Runtime, SlotLocks, MAX_FOOTPRINT_SLOTS};
use euno_rng::{Rng, SmallRng};

#[test]
fn footprint_slots_are_sorted_and_deduplicated() {
    let locks = BitLockVector::new(64);
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    for _ in 0..2_000 {
        let n = rng.gen_range(0..MAX_FOOTPRINT_SLOTS as u64 + 1) as usize;
        let raw: Vec<u32> = (0..n).map(|_| rng.gen_range(0..64u64) as u32).collect();
        let fp = Footprint::new(&locks, &raw);
        let slots = fp.slots();
        // Sorted strictly ascending — sorted AND deduplicated in one.
        assert!(
            slots.windows(2).all(|w| w[0] < w[1]),
            "raw {raw:?} -> slots {slots:?}"
        );
        // Exactly the distinct input slots, nothing invented or lost.
        let mut expect = raw.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(slots, &expect[..], "raw {raw:?}");
    }
}

/// A slot surface that counts acquisitions and panics on a double-lock:
/// acquiring a slot already held by the same footprint pass would
/// self-deadlock on the real TTAS bit, so the recording surface turns it
/// into an immediate failure instead of a hang.
struct Recording {
    inner: BitLockVector,
    held: std::cell::RefCell<Vec<u32>>,
    acquires: std::cell::Cell<u64>,
}

impl SlotLocks for Recording {
    fn acquire_slot(&self, ctx: &mut euno_htm::ThreadCtx, slot: u32) {
        let mut held = self.held.borrow_mut();
        assert!(
            !held.contains(&slot),
            "double-lock: slot {slot} acquired while already held ({held:?})"
        );
        if let Some(&last) = held.last() {
            assert!(last < slot, "out-of-order acquisition: {last} then {slot}");
        }
        held.push(slot);
        self.acquires.set(self.acquires.get() + 1);
        self.inner.acquire_slot(ctx, slot);
    }

    fn release_slot(&self, ctx: &mut euno_htm::ThreadCtx, slot: u32) {
        self.held.borrow_mut().retain(|&s| s != slot);
        self.inner.release_slot(ctx, slot);
    }
}

#[test]
fn acquire_all_never_double_locks_and_takes_slots_in_order() {
    let rt = Runtime::new_virtual();
    let mut ctx = rt.thread(1);
    let surface = Recording {
        inner: BitLockVector::new(64),
        held: std::cell::RefCell::new(Vec::new()),
        acquires: std::cell::Cell::new(0),
    };
    let mut rng = SmallRng::seed_from_u64(0xB1B2);
    let mut total_distinct = 0u64;
    for _ in 0..500 {
        let n = rng.gen_range(1..MAX_FOOTPRINT_SLOTS as u64 + 1) as usize;
        // Duplicates on purpose: a tiny slot universe forces collisions.
        let raw: Vec<u32> = (0..n).map(|_| rng.gen_range(0..6u64) as u32).collect();
        let fp = Footprint::new(&surface, &raw);
        total_distinct += fp.slots().len() as u64;
        fp.acquire_all(&mut ctx);
        assert_eq!(surface.held.borrow().len(), fp.slots().len());
        fp.release_all(&mut ctx);
        assert!(surface.held.borrow().is_empty());
    }
    // One physical acquire per distinct slot — duplicates never reached
    // the lock word.
    assert_eq!(surface.acquires.get(), total_distinct);
}

#[test]
fn overlapping_footprints_from_real_threads_are_deadlock_free() {
    // Eight real threads, each looping over randomly drawn footprints of
    // up to MAX_FOOTPRINT_SLOTS slots from a 16-slot universe — heavy
    // overlap is guaranteed. Unsorted acquisition of such sets deadlocks
    // almost immediately (A holds 3 wants 7, B holds 7 wants 3);
    // Footprint's sorted order makes the loop finish. A shared critical
    // counter checked under the locks proves mutual exclusion held.
    const THREADS: u64 = 8;
    const ROUNDS: u64 = 2_000;
    const NSLOTS: usize = 16;

    let rt = Runtime::new_concurrent();
    let locks = BitLockVector::new(NSLOTS);
    // Per-slot owner cells: nonzero means "held by thread id". Written
    // only under the corresponding slot lock, so any torn observation is
    // a mutual-exclusion failure.
    let owners: Vec<AtomicU64> = (0..NSLOTS).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|s| {
        for t in 1..=THREADS {
            let rt = Arc::clone(&rt);
            let (locks, owners) = (&locks, &owners);
            s.spawn(move || {
                let mut ctx = rt.thread(t);
                let mut rng = SmallRng::seed_from_u64(0xDEAD ^ (t << 8));
                for _ in 0..ROUNDS {
                    let n = rng.gen_range(1..MAX_FOOTPRINT_SLOTS as u64 + 1) as usize;
                    let raw: Vec<u32> = (0..n)
                        .map(|_| rng.gen_range(0..NSLOTS as u64) as u32)
                        .collect();
                    let fp = Footprint::new(locks, &raw);
                    fp.acquire_all(&mut ctx);
                    for &slot in fp.slots() {
                        let prev = owners[slot as usize].swap(t, Ordering::SeqCst);
                        assert_eq!(prev, 0, "slot {slot} already owned by thread {prev}");
                    }
                    for &slot in fp.slots() {
                        let prev = owners[slot as usize].swap(0, Ordering::SeqCst);
                        assert_eq!(prev, t, "slot {slot} owner clobbered to {prev}");
                    }
                    fp.release_all(&mut ctx);
                }
            });
        }
    });

    // Quiescent: every slot free again.
    for (i, o) in owners.iter().enumerate() {
        assert_eq!(o.load(Ordering::SeqCst), 0, "slot {i} leaked an owner");
    }
    let mut ctx = rt.thread(0);
    for slot in 0..NSLOTS {
        assert!(!locks.is_locked(&mut ctx, slot), "slot {slot} left locked");
    }
}
