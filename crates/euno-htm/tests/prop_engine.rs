//! Randomized property tests for the engine's core data structures and
//! the transactional executor. Cases are generated from seeded `euno-rng`
//! streams so every run explores the same (large) sample deterministically.

use euno_rng::{Rng, SmallRng};

use euno_htm::{LineId, LineSet, RetryPolicy, Runtime, TxCell};

/// LineSet behaves exactly like a BTreeSet of line ids.
#[test]
fn lineset_matches_btreeset() {
    let mut rng = SmallRng::seed_from_u64(0x11e5e7);
    for _ in 0..64 {
        let n = rng.gen_range(0usize..200);
        let mut set = LineSet::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..n {
            let x = rng.gen_range(0u64..64);
            assert_eq!(set.insert(LineId(x)), model.insert(x));
        }
        assert_eq!(set.len(), model.len());
        let got: Vec<u64> = set.iter().map(|l| l.0).collect();
        let expect: Vec<u64> = model.iter().copied().collect();
        assert_eq!(got, expect, "iteration order is sorted");
        for x in 0..64u64 {
            assert_eq!(set.contains(LineId(x)), model.contains(&x));
        }
    }
}

/// Intersection is symmetric and agrees with the model.
#[test]
fn lineset_intersection_symmetric() {
    let mut rng = SmallRng::seed_from_u64(0x1256c7);
    for _ in 0..128 {
        let draw = |rng: &mut SmallRng| {
            let n = rng.gen_range(0usize..32);
            (0..n)
                .map(|_| rng.gen_range(0u64..48))
                .collect::<std::collections::BTreeSet<u64>>()
        };
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        let sa: LineSet = a.iter().map(|&x| LineId(x)).collect();
        let sb: LineSet = b.iter().map(|&x| LineId(x)).collect();
        let expect = a.intersection(&b).next().is_some();
        assert_eq!(sa.intersects(&sb), expect);
        assert_eq!(sb.intersects(&sa), expect);
        if let Some(l) = sa.first_intersection(&sb) {
            assert!(a.contains(&l.0) && b.contains(&l.0));
        }
    }
}

/// The small/spill representation agrees with the BTreeSet model on
/// insert/contains/intersects for footprints straddling the inline
/// boundary, including across clear-and-reuse cycles (the episode scratch
/// pool clears sets instead of dropping them, so a spilled-then-cleared
/// set must behave exactly like a fresh one).
#[test]
fn lineset_spill_boundary_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0x5b111);
    let mut set = LineSet::new(); // reused across cases, like the scratch pool
    for case in 0..256 {
        // Sizes clustered around the inline capacity (16): 0..40 inserts
        // from a key space wide enough to avoid constant duplicates.
        let n = rng.gen_range(0usize..40);
        set.clear();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..n {
            let x = rng.gen_range(0u64..96);
            assert_eq!(set.insert(LineId(x)), model.insert(x), "case {case}");
            assert_eq!(set.len(), model.len());
        }
        let got: Vec<u64> = set.iter().map(|l| l.0).collect();
        let expect: Vec<u64> = model.iter().copied().collect();
        assert_eq!(got, expect, "case {case}: sorted iteration");
        for x in 0..96u64 {
            assert_eq!(set.contains(LineId(x)), model.contains(&x), "case {case}");
        }
        // Intersection against an independently drawn set (sized to land
        // on either side of the boundary).
        let m = rng.gen_range(0usize..40);
        let other_model: std::collections::BTreeSet<u64> =
            (0..m).map(|_| rng.gen_range(0u64..96)).collect();
        let other: LineSet = other_model.iter().map(|&x| LineId(x)).collect();
        let expect_first = model.intersection(&other_model).next().copied();
        assert_eq!(
            set.first_intersection(&other).map(|l| l.0),
            expect_first,
            "case {case}: first intersection is the smallest common line"
        );
        assert_eq!(set.intersects(&other), other.intersects(&set));
    }
}

/// A transactional read-modify-write sequence over arbitrary cells is
/// equivalent to executing it directly: no lost or phantom updates,
/// regardless of how the adds are interleaved across virtual threads.
#[test]
fn virtual_transactions_apply_exactly_once() {
    let mut rng = SmallRng::seed_from_u64(0xa9911e);
    for case in 0..32 {
        let threads = rng.gen_range(1usize..6);
        let n_adds = rng.gen_range(1usize..60);
        let adds: Vec<(usize, u64)> = (0..n_adds)
            .map(|_| (rng.gen_range(0usize..8), rng.gen_range(1u64..100)))
            .collect();
        let rt = Runtime::new_virtual();
        let fb = TxCell::new(0u64);
        let cells: Vec<TxCell<u64>> = (0..8).map(|_| TxCell::new(0)).collect();
        let mut ctxs: Vec<_> = (0..threads).map(|i| rt.thread(i as u64)).collect();
        let mut expect = [0u64; 8];
        for (idx, n) in &adds {
            expect[*idx] += n;
            // Schedule by min virtual clock, like the simulator.
            let t = (0..threads).min_by_key(|&t| (ctxs[t].clock, t)).unwrap();
            ctxs[t].htm_execute(&fb, &RetryPolicy::default(), |tx| {
                let v = tx.read(&cells[*idx])?;
                tx.write(&cells[*idx], v + n)
            });
        }
        for (cell, want) in cells.iter().zip(expect) {
            assert_eq!(cell.load_plain(), want, "case {case}");
        }
    }
}

/// Concurrent-mode transactions preserve a global invariant (sum of two
/// cells constant) under arbitrary transfer schedules.
#[test]
fn concurrent_transfers_preserve_sum() {
    let mut rng = SmallRng::seed_from_u64(0x5c41e);
    for _ in 0..8 {
        let n = rng.gen_range(1usize..40);
        let transfers: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..10)).collect();
        let rt = Runtime::new_concurrent();
        let fb = TxCell::new(0u64);
        let a = Box::new(TxCell::new(1_000u64));
        let b = Box::new(TxCell::new(1_000u64));
        std::thread::scope(|s| {
            let chunks: Vec<Vec<u64>> = transfers.chunks(10).map(|c| c.to_vec()).collect();
            for (i, chunk) in chunks.into_iter().enumerate() {
                let (a, b, fb, rt) = (&a, &b, &fb, &rt);
                let mut ctx = rt.thread(i as u64);
                s.spawn(move || {
                    for amt in chunk {
                        ctx.htm_execute(fb, &RetryPolicy::default(), |tx| {
                            let va = tx.read(a)?;
                            let vb = tx.read(b)?;
                            let amt = amt.min(va);
                            tx.write(a, va - amt)?;
                            tx.write(b, vb + amt)
                        });
                    }
                });
            }
        });
        assert_eq!(a.load_plain() + b.load_plain(), 2_000);
    }
}
