//! Scenario tests for the HTM engine: TSX semantics the trees rely on.

use euno_htm::{
    AbortCause, AdvisoryLock, CostModel, EpisodeKind, Mode, RetryPolicy, Runtime, ThreadCtx, TxCell,
};

fn min_clock_step(ctxs: &mut [ThreadCtx], mut f: impl FnMut(usize, &mut ThreadCtx)) {
    let idx = (0..ctxs.len()).min_by_key(|&i| (ctxs[i].clock, i)).unwrap();
    let ctx = &mut ctxs[idx];
    f(idx, ctx);
}

/// Strong atomicity: a bare direct write (CCM-style CAS outside any
/// region) aborts an overlapping transaction that has the line in its
/// footprint.
#[test]
fn direct_writes_abort_overlapping_transactions() {
    let rt = Runtime::new_virtual();
    let mut a = rt.thread(1);
    let mut b = rt.thread(2);
    let fb = TxCell::new(0u64);
    let shared = TxCell::new(0u64);

    // Thread A's transaction reads `shared` over a long interval.
    // Thread B CASes it directly at an overlapping instant — B runs first
    // in virtual order (clock 0), so A's overlapping read must conflict.
    b.charge(50);
    assert!(shared.cas_direct(&mut b, 0, 7));

    let out = a.htm_execute(&fb, &RetryPolicy::default(), |tx| {
        tx.charge(500); // stretch the interval across B's write
        tx.read(&shared)
    });
    assert!(
        out.attempts > 1 || a.stats.aborts.total() > 0,
        "strong atomicity: the direct CAS must abort the reader"
    );
    assert_eq!(out.value, 7);
}

/// The fallback lock serializes: while one thread holds it, another
/// thread's transactions wait (virtual time) rather than run through it.
#[test]
fn fallback_lock_excludes_transactions() {
    let rt = Runtime::new_virtual();
    let mut holder = rt.thread(1);
    let mut other = rt.thread(2);
    let fb = TxCell::new(0u64);
    let cell = TxCell::new(0u64);

    // Force the holder onto the fallback path immediately.
    let zero_retry = RetryPolicy {
        conflict_retries: 0,
        capacity_retries: 0,
        explicit_retries: 0,
        spurious_retries: 0,
        fallback_lock_retries: 0,
        middle_retries: 0,
        backoff: false,
    };
    let out = holder.htm_execute(&fb, &zero_retry, |tx| {
        if tx.is_fallback() {
            tx.charge(10_000); // a long serialized section
            tx.write(&cell, 1)?;
            Ok(())
        } else {
            tx.explicit_abort(1)
        }
    });
    assert!(out.used_fallback());

    // `other` starts at clock 0, inside the holder's virtual hold window:
    // its attempt must wait for the lock release before committing.
    let out2 = other.htm_execute(&fb, &RetryPolicy::default(), |tx| {
        let v = tx.read(&cell)?;
        tx.write(&cell, v + 1)
    });
    assert!(!out2.used_fallback());
    assert!(
        other.clock >= 10_000,
        "the transaction must serialize behind the fallback section, clock={}",
        other.clock
    );
    assert_eq!(cell.load_plain(), 2);
}

/// Capacity thresholds follow the cost model exactly.
#[test]
fn capacity_threshold_is_exact() {
    let rt = Runtime::new(
        Mode::Virtual,
        CostModel {
            write_capacity_lines: 4,
            ..CostModel::default()
        },
    );
    let mut ctx = rt.thread(1);
    let fb = TxCell::new(0u64);
    // 64-byte aligned structs: one line each.
    #[repr(align(64))]
    struct Padded(TxCell<u64>);
    let cells: Vec<Padded> = (0..8).map(|_| Padded(TxCell::new(0))).collect();

    // Writing 4 distinct lines commits…
    let out = ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
        for c in cells.iter().take(4) {
            tx.write(&c.0, 1)?;
        }
        Ok(())
    });
    assert!(!out.used_fallback());
    assert_eq!(ctx.stats.aborts.capacity, 0);

    // …writing 5 aborts with Capacity and lands on the fallback.
    let out = ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
        for c in cells.iter().take(5) {
            tx.write(&c.0, 2)?;
        }
        Ok(())
    });
    assert!(out.used_fallback());
    assert!(ctx.stats.aborts.capacity >= 1);
}

/// Retry storms: once a line is written at a steady rate, later
/// overlapping transactions keep aborting until the heat decays.
#[test]
fn storm_heat_raises_abort_probability() {
    let rt = Runtime::new_virtual();
    let fb = TxCell::new(0u64);
    #[repr(align(64))]
    struct Hot(TxCell<u64>);
    let hot = Hot(TxCell::new(0));

    // Six writers hammer the hot line in min-clock order.
    let mut writers: Vec<ThreadCtx> = (0..6).map(|i| rt.thread(i)).collect();
    for _ in 0..600 {
        min_clock_step(&mut writers, |_, ctx| {
            ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
                let v = tx.read(&hot.0)?;
                tx.charge(300);
                tx.write(&hot.0, v + 1)
            });
            ctx.stats.ops += 1;
        });
    }
    let total_aborts: u64 = writers.iter().map(|c| c.stats.aborts.total()).sum();
    let total_ops: u64 = writers.iter().map(|c| c.stats.ops).sum();
    assert!(
        total_aborts as f64 / total_ops as f64 > 0.3,
        "hot-line writers must storm: {total_aborts} aborts / {total_ops} ops"
    );
    // And the updates all landed despite the storm.
    assert_eq!(hot.0.load_plain(), 600);
}

/// Virtual advisory locks compose with transactions: lock waits push the
/// clock, and work under the lock is observed by later acquirers.
#[test]
fn advisory_locks_and_transactions_compose() {
    let rt = Runtime::new_virtual();
    let fb = TxCell::new(0u64);
    let lock = AdvisoryLock::new();
    let cell = TxCell::new(0u64);
    let mut ctxs: Vec<ThreadCtx> = (0..4).map(|i| rt.thread(i)).collect();
    for round in 0..800 {
        min_clock_step(&mut ctxs, |_, ctx| {
            lock.acquire(ctx);
            ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
                tx.mark_serialized();
                let v = tx.read(&cell)?;
                tx.charge(100);
                tx.write(&cell, v + 1)
            });
            lock.release(ctx);
            ctx.stats.ops += 1;
        });
        let _ = round;
    }
    assert_eq!(cell.load_plain(), 800);
    // Lock-protected writers should see almost no HTM conflicts: the lock
    // serializes them before the region (the CCM lock-bit principle).
    let aborts: u64 = ctxs.iter().map(|c| c.stats.aborts.total()).sum();
    let waits: u64 = ctxs.iter().map(|c| c.stats.cycles_lock_wait).sum();
    assert!(waits > 0, "contended lock must produce waits");
    assert!(
        aborts < 40,
        "lock-serialized writers should rarely conflict, got {aborts}"
    );
}

/// Nested episodes are rejected loudly.
#[test]
#[should_panic(expected = "nesting")]
fn episode_nesting_panics() {
    let rt = Runtime::new_virtual();
    let mut ctx = rt.thread(1);
    ctx.episode_begin(EpisodeKind::OptimisticRead);
    ctx.episode_begin(EpisodeKind::OptimisticRead);
}

/// Explicit aborts carry their code through the cause.
#[test]
fn explicit_abort_codes_surface_in_stats() {
    let rt = Runtime::new_virtual();
    let mut ctx = rt.thread(1);
    let fb = TxCell::new(0u64);
    let mut saw_code = None;
    let mut first = true;
    ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
        if first && !tx.is_fallback() {
            first = false;
            let r: Result<(), AbortCause> = tx.explicit_abort(0x2a);
            if let Err(AbortCause::Explicit(code)) = &r {
                saw_code = Some(*code);
            }
            return r.map(|_| 0u64);
        }
        Ok(1)
    });
    assert_eq!(saw_code, Some(0x2a));
    assert_eq!(ctx.stats.aborts.explicit, 1);
}

/// Two identical runtimes with identical seeds produce bit-identical
/// executions — the aligned-allocation determinism guarantee.
#[test]
fn fresh_runtimes_are_reproducible() {
    fn run() -> (u64, u64, u64) {
        let rt = Runtime::new_virtual();
        let fb = TxCell::new(0u64);
        #[repr(align(64))]
        struct Padded(TxCell<u64>);
        let cells: Vec<Padded> = (0..4).map(|_| Padded(TxCell::new(0))).collect();
        let mut ctxs: Vec<ThreadCtx> = (0..5).map(|i| rt.thread(i * 31)).collect();
        for _ in 0..400 {
            min_clock_step(&mut ctxs, |_, ctx| {
                let i = (euno_rng::Rng::gen_range(ctx.rng(), 0..4usize)) % 4;
                ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
                    let v = tx.read(&cells[i].0)?;
                    tx.write(&cells[i].0, v + 1)
                });
                ctx.stats.ops += 1;
            });
        }
        let clock_sum: u64 = ctxs.iter().map(|c| c.clock).sum();
        let aborts: u64 = ctxs.iter().map(|c| c.stats.aborts.total()).sum();
        let values: u64 = cells.iter().map(|c| c.0.load_plain()).sum();
        (clock_sum, aborts, values)
    }
    assert_eq!(run(), run());
}
